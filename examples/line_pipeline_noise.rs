//! The paper's §1.2 motivating example, live: a line network where a
//! single early corruption invalidates the expensive tail chatter, and
//! the flag-passing + rewind machinery contains the damage.
//!
//! Prints the per-iteration trace (G*, B*, potential proxy) with and
//! without the coordination phases.
//!
//! ```sh
//! cargo run --release -p mpic --example line_pipeline_noise
//! ```

use mpic::{RunOptions, SchemeConfig, Simulation};
use netgraph::DirectedLink;
use netsim::attacks::SingleError;
use netsim::PhaseKind;
use protocol::workloads::LinePipeline;
use protocol::Workload;

fn run_variant(disable_flag_passing: bool, disable_rewind: bool) {
    let n = 8;
    let workload = LinePipeline::new(n, 3, 11);
    let mut cfg = SchemeConfig::algorithm_a(workload.graph(), 5);
    cfg.disable_flag_passing = disable_flag_passing;
    cfg.disable_rewind = disable_rewind;
    let sim = Simulation::new(&workload, cfg, 3);
    let round = sim.geometry().phase_start(0, PhaseKind::Simulation) + 2;
    let attack = SingleError::new(workload.graph(), DirectedLink { from: 0, to: 1 }, round);
    let out = sim.run(
        Box::new(attack),
        RunOptions {
            record_trace: true,
            ..Default::default()
        },
    );
    println!(
        "\n--- flag passing {}, rewind {} ---",
        if disable_flag_passing { "OFF" } else { "on" },
        if disable_rewind { "OFF" } else { "on" }
    );
    println!("{:<6} {:>4} {:>4} {:>10}", "iter", "G*", "B*", "cc");
    for s in out.instrumentation.samples.iter().take(12) {
        println!(
            "{:<6} {:>4} {:>4} {:>10}",
            s.iteration, s.g_star, s.b_star, s.cc
        );
    }
    println!(
        "success = {} | total cc = {} bits",
        out.success, out.stats.cc
    );
}

fn main() {
    run();
}

/// The example body; also exercised by the `examples_smoke` suite.
pub fn run() {
    println!("one corruption on link (0,1) in the first simulated chunk of an");
    println!("8-party line; watch how fast the network recovers:");
    run_variant(false, false); // the full scheme
    run_variant(true, false); // no global flags: distant parties waste chunks
    run_variant(false, true); // no rewind wave: length gaps never close
}
