//! The §6.1 duel: a non-oblivious, seed-aware adversary hunts for
//! corruptions that the next meeting-points hash will fail to detect.
//! Constant-length hashes (Algorithm A) lose the duel as the network
//! grows; Θ(log m)-bit hashes (Algorithm B's choice) starve the hunter.
//!
//! ```sh
//! cargo run --release -p mpic --example adversary_duel
//! ```

use mpic::{RunOptions, SchemeConfig, Simulation};
use netsim::attacks::SeedAwareCollision;
use protocol::workloads::Gossip;
use protocol::Workload;

fn duel(n: usize, tau: u32) -> (bool, u64, u64) {
    let workload = Gossip::new(netgraph::topology::clique(n), 6, 5);
    let graph = workload.graph().clone();
    let mut cfg = SchemeConfig::algorithm_a(&graph, 0xdead);
    cfg.hash_bits = tau;
    let sim = Simulation::new(&workload, cfg, 21);
    let attack = SeedAwareCollision::new(sim.geometry(), graph.edge_count(), 1);
    let out = sim.run(Box::new(attack), RunOptions::default());
    (
        out.success,
        out.instrumentation.hash_collisions,
        out.stats.corruptions,
    )
}

fn main() {
    run();
}

/// The example body; also exercised by the `examples_smoke` suite.
pub fn run() {
    println!("seed-aware collision hunter vs hash length τ (clique networks)\n");
    println!(
        "{:>3} {:>4} {:>6} {:>9} {:>12} {:>12}",
        "n", "m", "tau", "success", "collisions", "corruptions"
    );
    for n in [5usize, 6, 7] {
        let m = n * (n - 1) / 2;
        let log_tau = (3.0 * (m as f64).log2()).ceil() as u32;
        for tau in [4u32, 8, log_tau] {
            let (ok, collisions, corruptions) = duel(n, tau);
            println!(
                "{:>3} {:>4} {:>6} {:>9} {:>12} {:>12}",
                n, m, tau, ok, collisions, corruptions
            );
        }
    }
    println!("\nEvery collision row is an error the checksum failed to see;");
    println!("with τ = Θ(log m) the hunter finds (almost) nothing to exploit.");
}
