//! Running without any pre-shared randomness (paper §5 / Algorithm B):
//! each link exchanges a 128-bit seed over the *noisy* network, protected
//! by a repeated Reed–Solomon code, then expands it into hash seeds
//! (δ-biased AGHP expansion or a PRG substitute).
//!
//! Also shows what it costs an adversary to destroy a seed exchange.
//!
//! ```sh
//! cargo run --release -p mpic --example crs_free
//! ```

use mpic::{RandomnessMode, RunOptions, SchemeConfig, SeedExpansion, Simulation};
use netsim::attacks::{NoNoise, PhaseTargeted};
use netsim::PhaseKind;
use protocol::workloads::PointerChase;
use protocol::Workload;

fn main() {
    run();
}

/// The example body; also exercised by the `examples_smoke` suite.
pub fn run() {
    let workload = PointerChase::new(5, 3, 3, 77);
    let graph = workload.graph().clone();

    for expansion in [SeedExpansion::Prg, SeedExpansion::Aghp] {
        let mut cfg = SchemeConfig::algorithm_b(&graph, 8);
        if let RandomnessMode::Exchanged { expansion: e, .. } = &mut cfg.randomness {
            *e = expansion;
        }
        let sim = Simulation::new(&workload, cfg, 5);
        let out = sim.run(Box::new(NoNoise), RunOptions::default());
        println!(
            "{expansion:?} expansion: success = {}, setup cost = {} rounds, blow-up ×{:.1}",
            out.success,
            sim.geometry().setup,
            out.blowup
        );
    }

    // Attack the exchange itself: corrupt 20% of the setup-phase symbols.
    let cfg = SchemeConfig::algorithm_b(&graph, 8);
    let sim = Simulation::new(&workload, cfg, 6);
    let geometry = sim.geometry();
    let attack = PhaseTargeted::new(&graph, geometry, PhaseKind::Setup, 0.2, 13);
    let out = sim.run(Box::new(attack), RunOptions::default());
    println!(
        "setup-targeted attack: success = {}, but it cost the adversary {} corruptions \
         ({:.1}% of all communication — far beyond the ε/(m log m) budget)",
        out.success,
        out.stats.corruptions,
        100.0 * out.stats.noise_fraction()
    );
}
