//! Quickstart: compile a noiseless protocol into its noise-resilient form
//! and run it through adversarial insertion/deletion/substitution noise.
//!
//! ```sh
//! cargo run --release -p mpic --example quickstart
//! ```

use mpic::{RunOptions, SchemeConfig, Simulation};
use netsim::attacks::IidNoise;
use protocol::workloads::SumTree;
use protocol::Workload;

fn main() {
    run();
}

/// The example body; also exercised by the `examples_smoke` suite.
pub fn run() {
    // A 3×3 grid of parties computing epochs of a global sum.
    let workload = SumTree::new(netgraph::topology::grid(3, 3), 4, 2, 2024);
    let graph = workload.graph().clone();
    let m = graph.edge_count();
    println!(
        "network: {} parties, {} links; CC(Π) = {} bits",
        graph.node_count(),
        m,
        workload.schedule().cc_bits()
    );

    // Algorithm A: shared randomness, oblivious adversary, noise ε/m.
    let cfg = SchemeConfig::algorithm_a(&graph, 0xfeed_f00d);
    let sim = Simulation::new(&workload, cfg, 7);
    println!(
        "compiled: |Π| = {} chunks of {} bits, {} iterations",
        sim.proto().real_chunks(),
        sim.proto().chunk_bits(),
        sim.iterations()
    );

    // Oblivious i.i.d. insertion/deletion/substitution noise at rate
    // ≈ 0.01/m of the communication.
    let predicted = sim.predicted_cc();
    let geometry = sim.geometry();
    let rounds = geometry.setup + sim.iterations() as u64 * geometry.iteration_rounds();
    let slots = rounds * 2 * m as u64;
    let fraction = 0.01 / m as f64;
    let prob = fraction * predicted as f64 / slots as f64;
    let adversary = IidNoise::new(&graph, prob, 99);

    let out = sim.run(Box::new(adversary), RunOptions::default());
    println!(
        "result: success = {} | corruptions = {} (noise fraction {:.5})",
        out.success,
        out.stats.corruptions,
        out.stats.noise_fraction()
    );
    println!(
        "communication: {} bits sent, blow-up ×{:.1} over CC(Π); {} hash collisions",
        out.stats.cc, out.blowup, out.instrumentation.hash_collisions
    );
    assert!(out.success, "the simulation should repair this noise level");
}
