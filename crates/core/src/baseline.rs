//! Baselines for Table 1: no coding, and per-bit repetition coding.
//!
//! * [`run_no_coding`] executes the chunked protocol directly over the
//!   noisy network — any corruption silently poisons downstream state.
//! * [`run_repetition`] sends every bit `r` times and majority-votes at
//!   the receiver; a constant-rate defense that handles scattered
//!   substitutions but has no mechanism against synchronization damage or
//!   targeted bursts, and (unlike the paper's schemes) can never *detect*
//!   that it failed.

use netgraph::LinkId;
use netsim::{Adversary, NetStats, Network, RoundFrame};
use protocol::reference::run_reference;
use protocol::{ChunkedParty, ChunkedProtocol, Workload};

/// Outcome of a baseline execution.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// All party outputs equal the noiseless reference outputs.
    pub success: bool,
    /// Engine accounting.
    pub stats: NetStats,
    /// `CC(Π)` of the unpadded protocol.
    pub payload_cc: u64,
    /// Communication blow-up relative to `CC(Π)`.
    pub blowup: f64,
}

/// Runs Π′ with no protection at all.
pub fn run_no_coding(
    workload: &dyn Workload,
    proto: &ChunkedProtocol,
    adversary: Box<dyn Adversary>,
    noise_budget: u64,
) -> BaselineOutcome {
    run_with_repetition(workload, proto, adversary, noise_budget, 1)
}

/// Runs Π′ with every transmission repeated `r` times (majority decode).
///
/// # Panics
///
/// Panics if `r` is even or zero — majority needs an odd repeat count.
pub fn run_repetition(
    workload: &dyn Workload,
    proto: &ChunkedProtocol,
    adversary: Box<dyn Adversary>,
    noise_budget: u64,
    r: usize,
) -> BaselineOutcome {
    assert!(r % 2 == 1, "repetition count must be odd");
    run_with_repetition(workload, proto, adversary, noise_budget, r)
}

fn run_with_repetition(
    workload: &dyn Workload,
    proto: &ChunkedProtocol,
    adversary: Box<dyn Adversary>,
    noise_budget: u64,
    r: usize,
) -> BaselineOutcome {
    let g = workload.graph().clone();
    let n = g.node_count();
    let reference = run_reference(workload, proto);
    let mut net = Network::new(g.clone(), adversary, noise_budget);
    let mut parties: Vec<ChunkedParty> = (0..n).map(|u| ChunkedParty::spawn(workload, u)).collect();
    // Scratch wire buffers, reused by every (repetition of every) round.
    let mut tx = RoundFrame::for_graph(&g);
    let mut rx = RoundFrame::for_graph(&g);

    for c in 0..proto.real_chunks() {
        let layout = proto.layout(c).clone();
        let pslots: Vec<Vec<protocol::PartySlot>> =
            (0..n).map(|u| proto.party_slots(c, u)).collect();
        let mut cursors = vec![0usize; n];
        for (ri, round) in layout.rounds.iter().enumerate() {
            // Compute this round's bits.
            tx.clear_all();
            let mut votes: Vec<(LinkId, usize, usize)> = Vec::with_capacity(round.len());
            for slot in round {
                let u = slot.link.from;
                let ps = &pslots[u];
                while !(ps[cursors[u]].round_in_chunk == ri
                    && ps[cursors[u]].is_send
                    && ps[cursors[u]].link == slot.link)
                {
                    cursors[u] += 1;
                }
                let pslot = ps[cursors[u]];
                cursors[u] += 1;
                let bit = parties[u].send(&pslot);
                let lid = g.link_id(slot.link).expect("layout slot on non-edge");
                tx.set(lid, bit);
                votes.push((lid, 0, 0));
            }
            // Transmit r times, majority-vote the receptions.
            for _ in 0..r {
                net.step_into(&tx, None, &mut rx);
                for v in votes.iter_mut() {
                    match rx.get(v.0) {
                        Some(true) => v.1 += 1,
                        Some(false) => v.2 += 1,
                        None => {}
                    }
                }
            }
            // Deliver, in round-slot order (sorted by link — the order
            // each receiver's pslot cursor expects).
            for (slot, &(_, ones, zeros)) in round.iter().zip(&votes) {
                let v = slot.link.to;
                let ps = &pslots[v];
                while !(ps[cursors[v]].round_in_chunk == ri
                    && !ps[cursors[v]].is_send
                    && ps[cursors[v]].link == slot.link)
                {
                    cursors[v] += 1;
                }
                let pslot = ps[cursors[v]];
                cursors[v] += 1;
                // Majority among received symbols; silence-only = default 0.
                parties[v].recv(&pslot, Some(ones > zeros));
            }
        }
    }

    let success = (0..n).all(|u| parties[u].output() == reference.outputs[u]);
    let stats = net.stats();
    let payload_cc = workload.schedule().cc_bits() as u64;
    BaselineOutcome {
        success,
        stats,
        payload_cc,
        blowup: stats.cc as f64 / payload_cc.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::attacks::{IidNoise, NoNoise};
    use protocol::workloads::Gossip;
    use protocol::Workload;

    fn setup() -> (Gossip, ChunkedProtocol) {
        let w = Gossip::new(netgraph::topology::ring(4), 8, 3);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        (w, p)
    }

    #[test]
    fn no_coding_succeeds_without_noise() {
        let (w, p) = setup();
        let out = run_no_coding(&w, &p, Box::new(NoNoise), 0);
        assert!(out.success);
        assert!(out.blowup >= 1.0, "padding costs something");
    }

    #[test]
    fn no_coding_fails_under_noise() {
        let (w, p) = setup();
        let mut failures = 0;
        for seed in 0..10 {
            let atk = IidNoise::new(w.graph(), 0.08, seed);
            let out = run_no_coding(&w, &p, Box::new(atk), u64::MAX);
            failures += usize::from(!out.success);
        }
        assert!(failures >= 7, "only {failures}/10 failed");
    }

    #[test]
    fn repetition_blowup_is_r() {
        let (w, p) = setup();
        let out = run_repetition(&w, &p, Box::new(NoNoise), 0, 5);
        let base = run_no_coding(&w, &p, Box::new(NoNoise), 0);
        assert!(out.success);
        let ratio = out.stats.cc as f64 / base.stats.cc as f64;
        assert!((ratio - 5.0).abs() < 1e-9);
    }

    #[test]
    fn repetition_survives_light_random_noise() {
        let (w, p) = setup();
        let mut successes = 0;
        for seed in 0..10 {
            let atk = IidNoise::new(w.graph(), 0.01, seed);
            let out = run_repetition(&w, &p, Box::new(atk), u64::MAX, 9);
            successes += usize::from(out.success);
        }
        assert!(successes >= 7, "only {successes}/10 succeeded");
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn repetition_rejects_even_r() {
        let (w, p) = setup();
        let _ = run_repetition(&w, &p, Box::new(NoNoise), 0, 2);
    }
}
