//! Scheme configurations: Algorithms A, B and C as parameter presets.

use crate::fault::FaultPlan;
use netgraph::Graph;

/// Where the hash seeds come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RandomnessMode {
    /// Pre-shared uniform common random string (Theorem 1.1 / Appendix B).
    /// `adversary_knows_seeds` decides whether the non-oblivious oracle may
    /// read them: Algorithm A assumes an adversary oblivious to the CRS;
    /// Algorithm C assumes a non-oblivious adversary that still cannot see
    /// the CRS.
    Crs {
        /// Master seed of the shared PRG.
        master: u64,
        /// Whether the seed-aware oracle is allowed to read hash seeds.
        adversary_knows_seeds: bool,
    },
    /// No pre-shared randomness (Theorem 1.2): each link exchanges a
    /// 128-bit seed over the noisy network (Algorithm 5), protected by a
    /// Reed–Solomon code repeated `code_repetitions` times, then expands it
    /// with the chosen expansion. Everything that crossed the wire is known
    /// to a non-oblivious adversary, so the oracle may read these seeds.
    Exchanged {
        /// How the 128-bit seed is stretched into per-hash seed streams.
        expansion: SeedExpansion,
        /// Codeword repetitions; raising this makes corrupting one
        /// exchange cost Θ(repetitions) corruptions (Claim 5.16's
        /// Θ(|Π|)-cost requirement).
        code_repetitions: usize,
    },
}

/// Expansion of an exchanged 128-bit seed into hash-seed streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedExpansion {
    /// The paper's δ-biased expansion (AGHP powering over GF(2^64),
    /// δ ≤ ℓ·2⁻⁶⁴). Information-theoretically faithful but ~50× slower
    /// than [`SeedExpansion::Prg`]; use for fidelity experiments (F7).
    Aghp,
    /// PRG expansion (xoshiro256**). A documented computational substitute
    /// for the δ-biased string: statistically it is not δ-biased, but no
    /// oblivious adversary in our experiment suite distinguishes the two.
    Prg,
}

/// Which transcript-hashing machinery the runner drives.
///
/// Both modes compute bit-identical hash values; they differ only in
/// cost. [`HashingMode::Reference`] exists to cross-check the incremental
/// path (see the `incremental_hashing` integration suite) and as the
/// executable specification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HashingMode {
    /// Per-link incremental sketches: appending a chunk extends a cached
    /// fold, each hash evaluation is `O(τ)`. The production path.
    #[default]
    Incremental,
    /// Recompute every sketch from the serialized transcript on every
    /// evaluation (`O(τ·|T|)`).
    Reference,
}

/// How much of the live execution the runner's [`netsim::AdaptiveView`]
/// reveals to a non-oblivious adversary.
///
/// This is orthogonal to [`crate::RunOptions`]'s `expose_view` (which
/// decides whether a view object exists at all): the class decides what
/// the view *answers*. Seed visibility is still governed separately by
/// [`RandomnessMode`] (Algorithm C hides the CRS from the oracle even at
/// full phase visibility).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdversaryClass {
    /// No live view is constructed, even if the run options would expose
    /// one — the oblivious additive model of §2.1.
    Oblivious,
    /// The pre-phase-aware surface: per-edge divergence, transcript
    /// lengths and the §6.1 collision oracle. Phase position, meeting
    /// point/flag/rewind state and the memory slot are withheld.
    SeedAware,
    /// Full phase visibility: everything in [`AdversaryClass::SeedAware`]
    /// plus phase position, per-endpoint meeting-point candidates, flag
    /// states, the rewind wave's active set, and the cross-iteration
    /// memory slot. The default — experiments that want a weaker
    /// adversary dial it down.
    #[default]
    PhaseAware,
}

/// Which wire-round machinery the runner drives for phases whose rounds
/// are independent (meeting points, randomness exchange).
///
/// Both modes produce byte-identical [`crate::SimOutcome`]s (cross-checked
/// by the `wire_batch` integration suite); they differ only in cost.
/// [`WireMode::Reference`] is the executable specification; the batched
/// path is the production path for large topologies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireMode {
    /// Word-level batches: a phase's independent rounds go through one
    /// `netsim::Network::step_rounds_into` call, each link's multi-round
    /// message marshalled into words once. The production path.
    #[default]
    Batched,
    /// Bit-serial rounds: one `step_into` per wire round, every link bit
    /// set individually (the pre-batching hot path, kept as the reference).
    Reference,
}

/// Intra-trial thread budget for the link-sharded phases (meeting-points
/// hash preparation, chunk-commit transcript appends).
///
/// Every mode produces byte-identical [`crate::SimOutcome`]s: per-link
/// seed streams are [`netgraph::LinkId`]-indexed, so workers own disjoint
/// link shards and write disjoint state regardless of scheduling (the
/// `parallel_equivalence` integration suite cross-checks this). The knob
/// trades only wall-clock time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Everything on the caller's thread. The default, so existing
    /// byte-identity suites and single-trial callers are unaffected.
    #[default]
    Serial,
    /// Exactly `n` worker threads per parallel region (`Threads(0)` and
    /// `Threads(1)` degrade to [`Parallelism::Serial`]).
    Threads(usize),
    /// The `SIM_THREADS` environment variable if set, otherwise
    /// [`std::thread::available_parallelism`].
    Auto,
}

impl Parallelism {
    /// The effective thread count: `Serial` → 1, `Threads(n)` → `max(n, 1)`,
    /// `Auto` → `SIM_THREADS` or the machine's available parallelism.
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => sim_threads_env().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            }),
        }
    }
}

/// The `SIM_THREADS` override, if set to a positive integer. Shared by
/// both thread pools: `Parallelism::Auto` here and `bench::run_many`'s
/// inter-trial worker budget.
pub fn sim_threads_env() -> Option<usize> {
    std::env::var("SIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Full parameterization of the coding scheme.
#[derive(Clone, Debug)]
pub struct SchemeConfig {
    /// The paper's `K` (chunk = 5K bits). Must be a positive multiple of
    /// `m` and at least `m`.
    pub k_param: usize,
    /// Hash output length τ per hash value.
    pub hash_bits: u32,
    /// Iterations = ceil(`iteration_factor` × |Π|) + `extra_iterations`.
    /// The theory uses factor 100 for worst-case guarantees; experiments
    /// default lower and sweep it.
    pub iteration_factor: f64,
    /// Additive slack iterations.
    pub extra_iterations: usize,
    /// Rounds of the rewind phase (the paper uses `n`; its footnote 8
    /// permits the diameter instead).
    pub rewind_rounds: usize,
    /// Seed provisioning.
    pub randomness: RandomnessMode,
    /// Ablation: disable the flag-passing phase (parties use only their
    /// local status; the phase's rounds still elapse so the geometry is
    /// unchanged). Used by experiment F4.
    pub disable_flag_passing: bool,
    /// Ablation: disable the rewind phase (rounds elapse, nobody rewinds).
    pub disable_rewind: bool,
    /// Transcript-hashing machinery (incremental vs. reference; identical
    /// hash values either way).
    pub hashing: HashingMode,
    /// Wire-round machinery for independent-round phases (batched vs.
    /// bit-serial reference; identical outcomes either way).
    pub wire: WireMode,
    /// How much live state the adaptive view reveals (phase visibility
    /// knob; seed visibility stays with [`RandomnessMode`]).
    pub adversary_class: AdversaryClass,
    /// Intra-trial thread budget for the link-sharded phases (byte-
    /// identical outcomes in every mode; wall-clock only).
    pub parallelism: Parallelism,
    /// Deterministic link/party fault schedule injected at the wire level
    /// (empty by default — zero engine overhead when no faults are
    /// scheduled). See [`FaultPlan`] for the degradation semantics.
    pub faults: FaultPlan,
}

impl SchemeConfig {
    /// **Algorithm A** (Theorem 1.1): CRS, oblivious adversary, `K = m`,
    /// constant hash length. Resilient to ε/m noise.
    pub fn algorithm_a(graph: &Graph, crs_master: u64) -> Self {
        let m = graph.edge_count();
        SchemeConfig {
            k_param: m,
            hash_bits: 8,
            iteration_factor: 3.0,
            extra_iterations: 10,
            rewind_rounds: graph.node_count(),
            randomness: RandomnessMode::Crs {
                master: crs_master,
                adversary_knows_seeds: true,
            },
            disable_flag_passing: false,
            disable_rewind: false,
            hashing: HashingMode::default(),
            wire: WireMode::default(),
            adversary_class: AdversaryClass::default(),
            parallelism: Parallelism::default(),
            faults: FaultPlan::default(),
        }
    }

    /// **Algorithm B** (Theorem 1.2): no shared randomness, non-oblivious
    /// adversary, `K = m·⌈log₂ m⌉`, `τ = Θ(log m)`. Resilient to
    /// ε/(m log m) noise.
    pub fn algorithm_b(graph: &Graph, proto_chunks_hint: usize) -> Self {
        let m = graph.edge_count();
        let log_m = usize::max(1, (m as f64).log2().ceil() as usize);
        SchemeConfig {
            k_param: m * log_m,
            hash_bits: u32::max(8, 3 * log_m as u32).min(60),
            iteration_factor: 3.0,
            extra_iterations: 10,
            rewind_rounds: graph.node_count(),
            randomness: RandomnessMode::Exchanged {
                expansion: SeedExpansion::Prg,
                code_repetitions: usize::max(1, proto_chunks_hint / 8),
            },
            disable_flag_passing: false,
            disable_rewind: false,
            hashing: HashingMode::default(),
            wire: WireMode::default(),
            adversary_class: AdversaryClass::default(),
            parallelism: Parallelism::default(),
            faults: FaultPlan::default(),
        }
    }

    /// **Algorithm C** (Appendix B): CRS *hidden from the adversary*,
    /// non-oblivious noise, `K = m·⌈log log m⌉`, `τ = Θ(log log m)`.
    /// Resilient to ε/(m log log m) noise.
    pub fn algorithm_c(graph: &Graph, crs_master: u64) -> Self {
        let m = graph.edge_count();
        let loglog = f64::max(1.0, (f64::max(2.0, (m as f64).log2())).log2()).ceil() as usize;
        SchemeConfig {
            k_param: m * loglog,
            hash_bits: u32::max(8, 4 * loglog as u32).min(60),
            iteration_factor: 3.0,
            extra_iterations: 10,
            rewind_rounds: graph.node_count(),
            randomness: RandomnessMode::Crs {
                master: crs_master,
                adversary_knows_seeds: false,
            },
            disable_flag_passing: false,
            disable_rewind: false,
            hashing: HashingMode::default(),
            wire: WireMode::default(),
            adversary_class: AdversaryClass::default(),
            parallelism: Parallelism::default(),
            faults: FaultPlan::default(),
        }
    }

    /// Chunk size `5K` in bits.
    pub fn chunk_bits(&self) -> usize {
        5 * self.k_param
    }

    /// Validates the configuration against a graph.
    ///
    /// # Panics
    ///
    /// Panics if `K` is not a positive multiple of `m`, `τ` is out of
    /// range, or the iteration parameters are non-positive.
    pub fn validate(&self, graph: &Graph) {
        let m = graph.edge_count();
        assert!(m > 0, "graph has no links");
        assert!(
            self.k_param >= m && self.k_param % m == 0,
            "K = {} must be a positive multiple of m = {m}",
            self.k_param
        );
        assert!((1..=60).contains(&self.hash_bits), "hash_bits out of range");
        assert!(self.iteration_factor > 0.0);
        assert!(self.rewind_rounds >= 1);
    }

    /// Number of iterations for a protocol with `real_chunks` chunks.
    pub fn iterations(&self, real_chunks: usize) -> usize {
        (self.iteration_factor * real_chunks.max(1) as f64).ceil() as usize + self.extra_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::topology;

    #[test]
    fn preset_a_valid() {
        let g = topology::clique(6);
        let cfg = SchemeConfig::algorithm_a(&g, 7);
        cfg.validate(&g);
        assert_eq!(cfg.k_param, g.edge_count());
        assert_eq!(cfg.chunk_bits(), 5 * g.edge_count());
    }

    #[test]
    fn preset_b_scales_hash_with_m() {
        let small = topology::ring(4);
        let big = topology::clique(12);
        let a = SchemeConfig::algorithm_b(&small, 10);
        let b = SchemeConfig::algorithm_b(&big, 10);
        a.validate(&small);
        b.validate(&big);
        assert!(b.hash_bits >= a.hash_bits);
        assert!(b.k_param > big.edge_count(), "K = m log m");
    }

    #[test]
    fn preset_c_hides_seeds() {
        let g = topology::grid(3, 3);
        let cfg = SchemeConfig::algorithm_c(&g, 1);
        cfg.validate(&g);
        match cfg.randomness {
            RandomnessMode::Crs {
                adversary_knows_seeds,
                ..
            } => assert!(!adversary_knows_seeds),
            _ => panic!("C uses a CRS"),
        }
    }

    #[test]
    fn iterations_scale() {
        let g = topology::ring(5);
        let cfg = SchemeConfig::algorithm_a(&g, 0);
        assert!(cfg.iterations(10) > cfg.iterations(1));
    }

    #[test]
    #[should_panic(expected = "multiple of m")]
    fn validate_rejects_bad_k() {
        let g = topology::ring(5);
        let mut cfg = SchemeConfig::algorithm_a(&g, 0);
        cfg.k_param = 7;
        cfg.validate(&g);
    }
}
