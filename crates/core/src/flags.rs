//! The flag-passing phase (paper §3.1(iii), Algorithm 3).
//!
//! A continue/stop bit is convergecast up the BFS spanning tree rooted at
//! ρ = node 0 and broadcast back down, in `2·d(T) − 1` rounds. Round
//! timing follows the paper's level arithmetic (`ℓ(ρ) = 1`):
//!
//! * up-sweep: node `u ≠ ρ` sends its aggregated flag to its parent at
//!   round `d − ℓ(u)`; hence it hears from its children at round
//!   `d − ℓ(u) − 1` and all children precede their parents;
//! * down-sweep: node `u` forwards the root's flag to its children at
//!   round `d + ℓ(u) − 1`.
//!
//! Wire encoding: `1` = continue, `0` = stop; a deleted flag reads as
//! *stop* (the conservative choice — a corruption here can idle the
//! network for one iteration, which Lemma 4.8's accounting already
//! charges to the adversary).

use netgraph::{DirectedLink, Graph, LinkId, NodeId, SpanningTree};

/// Precomputed per-node round roles for one flag-passing phase.
#[derive(Clone, Debug)]
pub struct FlagPlan {
    rounds: usize,
    depth: usize,
}

impl FlagPlan {
    /// Builds the plan for a tree of depth `d(T)`.
    ///
    /// # Panics
    ///
    /// Panics if the tree has depth < 2 (a single-node network).
    pub fn new(tree: &SpanningTree) -> Self {
        assert!(tree.depth() >= 2, "flag passing needs at least two levels");
        FlagPlan {
            rounds: 2 * tree.depth() - 1,
            depth: tree.depth(),
        }
    }

    /// Number of rounds the phase occupies.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The round at which `u` sends its aggregated flag to its parent
    /// (`None` for the root).
    pub fn up_send_round(&self, tree: &SpanningTree, u: NodeId) -> Option<usize> {
        if u == tree.root() {
            None
        } else {
            Some(self.depth - tree.level(u))
        }
    }

    /// The round at which `u` hears from its children (`None` for leaves).
    pub fn up_recv_round(&self, tree: &SpanningTree, u: NodeId) -> Option<usize> {
        if tree.is_leaf(u) {
            None
        } else {
            Some(self.depth - tree.level(u) - 1)
        }
    }

    /// The round at which `u` forwards the final flag to its children
    /// (`None` for leaves).
    pub fn down_send_round(&self, tree: &SpanningTree, u: NodeId) -> Option<usize> {
        if tree.is_leaf(u) {
            None
        } else {
            Some(self.depth + tree.level(u) - 1)
        }
    }

    /// The round at which `u` hears the final flag from its parent
    /// (`None` for the root).
    pub fn down_recv_round(&self, tree: &SpanningTree, u: NodeId) -> Option<usize> {
        if u == tree.root() {
            None
        } else {
            Some(self.depth + tree.level(u) - 2)
        }
    }
}

/// Precompiled per-round event lists of the flag-passing phase: which
/// `(party, link)` pairs send or receive in each round of the up/down
/// waves. Replaces a per-round scan of all `n` parties against
/// [`FlagPlan`]'s round arithmetic (Θ(n · tree depth) per iteration —
/// the flag-passing analogue of the meeting-points fill loops).
pub struct FlagSchedule {
    /// Per round: `(u, lid(u → parent))` — `u` sends its aggregate up.
    pub up_sends: Vec<Vec<(NodeId, LinkId)>>,
    /// Per round: `(u, lid(u → child))` — `u` forwards the flag down.
    pub down_sends: Vec<Vec<(NodeId, LinkId)>>,
    /// Per round: `(u, lid(child → u))` — `u` folds a child's aggregate.
    pub up_recvs: Vec<Vec<(NodeId, LinkId)>>,
    /// Per round: `(u, lid(parent → u))` — `u` hears the final flag.
    pub down_recvs: Vec<Vec<(NodeId, LinkId)>>,
}

impl FlagSchedule {
    /// Compiles the plan's round arithmetic into per-round event lists.
    ///
    /// # Panics
    ///
    /// Panics if a tree edge is not an edge of `graph`.
    pub fn new(graph: &Graph, tree: &SpanningTree, plan: &FlagPlan) -> FlagSchedule {
        let rounds = plan.rounds();
        let lid = |from: NodeId, to: NodeId| {
            graph
                .link_id(DirectedLink { from, to })
                .expect("tree edge on non-edge")
        };
        let mut s = FlagSchedule {
            up_sends: vec![Vec::new(); rounds],
            down_sends: vec![Vec::new(); rounds],
            up_recvs: vec![Vec::new(); rounds],
            down_recvs: vec![Vec::new(); rounds],
        };
        for u in 0..graph.node_count() {
            if let Some(o) = plan.up_send_round(tree, u) {
                s.up_sends[o].push((u, lid(u, tree.parent(u).unwrap())));
            }
            if let Some(o) = plan.down_send_round(tree, u) {
                for &c in tree.children(u) {
                    s.down_sends[o].push((u, lid(u, c)));
                }
            }
            if let Some(o) = plan.up_recv_round(tree, u) {
                for &c in tree.children(u) {
                    s.up_recvs[o].push((u, lid(c, u)));
                }
            }
            if let Some(o) = plan.down_recv_round(tree, u) {
                s.down_recvs[o].push((u, lid(tree.parent(u).unwrap(), u)));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{topology, SpanningTree};

    #[test]
    fn line_timing() {
        let g = topology::line(4);
        let t = SpanningTree::bfs(&g, 0);
        let p = FlagPlan::new(&t);
        assert_eq!(p.rounds(), 7);
        // Deepest node (level 4) sends first.
        assert_eq!(p.up_send_round(&t, 3), Some(0));
        assert_eq!(p.up_recv_round(&t, 2), Some(0));
        assert_eq!(p.up_send_round(&t, 2), Some(1));
        assert_eq!(p.up_send_round(&t, 1), Some(2));
        assert_eq!(p.up_send_round(&t, 0), None);
        assert_eq!(p.up_recv_round(&t, 0), Some(2));
        // Down sweep.
        assert_eq!(p.down_send_round(&t, 0), Some(4));
        assert_eq!(p.down_recv_round(&t, 1), Some(4));
        assert_eq!(p.down_send_round(&t, 1), Some(5));
        assert_eq!(p.down_send_round(&t, 3), None);
        assert_eq!(p.down_recv_round(&t, 3), Some(6));
    }

    #[test]
    fn child_sends_exactly_when_parent_listens() {
        let g = topology::random_connected(15, 25, 5);
        let t = SpanningTree::bfs(&g, 0);
        let p = FlagPlan::new(&t);
        for v in 0..15 {
            if let Some(parent) = t.parent(v) {
                assert_eq!(p.up_send_round(&t, v), p.up_recv_round(&t, parent));
                assert_eq!(p.down_recv_round(&t, v), p.down_send_round(&t, parent));
            }
        }
    }

    #[test]
    fn all_rounds_within_phase() {
        let g = topology::binary_tree(15);
        let t = SpanningTree::bfs(&g, 0);
        let p = FlagPlan::new(&t);
        for v in 0..15 {
            for r in [
                p.up_send_round(&t, v),
                p.up_recv_round(&t, v),
                p.down_send_round(&t, v),
                p.down_recv_round(&t, v),
            ]
            .into_iter()
            .flatten()
            {
                assert!(r < p.rounds(), "node {v} uses round {r}");
            }
        }
    }
}
