//! Fault plans: seedable, validated schedules of link outages and party
//! churn, compiled down to the engine's [`netsim::FaultSchedule`].
//!
//! A [`FaultPlan`] is plain data — explicit [`FaultEvent`]s plus seeded
//! [`BurstOutage`]s — so it travels inside [`crate::SchemeConfig`] like
//! any other knob and two runs with the same plan are bit-identical
//! regardless of `WireMode`, `HashingMode` or `Parallelism` (the
//! `fault_equivalence` integration suite pins this).
//!
//! Validation follows the same philosophy as the bench harness's
//! i.i.d.-fraction clamping: rates are sanitized through
//! [`FaultPlan::clamped_rate`] (NaN reads as 0, out-of-range clamps, a
//! `debug_assert` flags the caller in dev builds), and events naming
//! out-of-range edges or parties are dropped at compile time instead of
//! producing nonsense schedules.
//!
//! # Degradation semantics
//!
//! Faults are wire-level: a downed link delivers silence, a crashed
//! party is isolated (sends nothing, hears nothing) while its local
//! state machine keeps running. Recovery needs no dedicated protocol —
//! the next meeting-points phase compares transcript hashes across every
//! link, detects the divergence the outage caused, and the meeting-point
//! truncations plus the rewind wave roll the neighborhood back to the
//! longest common prefix (the run's `resync_rewinds` counter measures
//! exactly this repair work). A run that cannot repair in its iteration
//! budget terminates [`crate::Verdict::Degraded`] — never silently
//! wrong.

use netgraph::{DirectedLink, Graph};
use netsim::FaultSchedule;
use smallbias::splitmix64;

/// One scheduled fault transition, in absolute wire rounds (round 0 is
/// the first round of the run, including any randomness-exchange
/// prologue). Edges and parties are named by the graph's dense indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Edge `edge` goes down (both directions) from round `round`.
    LinkDown {
        /// First faulty round.
        round: u64,
        /// Undirected edge index.
        edge: usize,
    },
    /// Releases a [`FaultEvent::LinkDown`] hold on `edge` from `round`.
    LinkUp {
        /// First restored round.
        round: u64,
        /// Undirected edge index.
        edge: usize,
    },
    /// Party `party` crashes (fail-silent isolation) from round `round`.
    PartyCrash {
        /// First crashed round.
        round: u64,
        /// Party (node) index.
        party: usize,
    },
    /// Party `party` rejoins from round `round` and resyncs through the
    /// meeting-point/rewind machinery.
    PartyRecover {
        /// First recovered round.
        round: u64,
        /// Party (node) index.
        party: usize,
    },
}

impl FaultEvent {
    /// The round this event fires at.
    pub fn round(&self) -> u64 {
        match *self {
            FaultEvent::LinkDown { round, .. }
            | FaultEvent::LinkUp { round, .. }
            | FaultEvent::PartyCrash { round, .. }
            | FaultEvent::PartyRecover { round, .. } => round,
        }
    }
}

/// A timed burst outage: a seeded fraction of all edges goes down
/// together at `start` and comes back `rounds` later — the fault
/// analogue of the burst attacks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstOutage {
    /// First faulty round.
    pub start: u64,
    /// Outage length in rounds (clamped to ≥ 1 at compile time).
    pub rounds: u64,
    /// Fraction of edges downed, sanitized via
    /// [`FaultPlan::clamped_rate`]; the affected set is chosen by the
    /// plan seed.
    pub fraction: f64,
}

/// A deterministic, seedable schedule of faults for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Explicit transitions.
    pub events: Vec<FaultEvent>,
    /// Seeded burst outages.
    pub bursts: Vec<BurstOutage>,
    /// Seed selecting burst edge sets (and nothing else — explicit
    /// events are already fully determined).
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: no faults, zero engine overhead.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.bursts.is_empty()
    }

    /// The earliest round any fault fires at, `None` for an empty plan.
    pub fn first_round(&self) -> Option<u64> {
        self.events
            .iter()
            .map(FaultEvent::round)
            .chain(self.bursts.iter().map(|b| b.start))
            .min()
    }

    /// Sanitizes a probability/fraction to `[0, 1]`: NaN reads as 0 and
    /// out-of-range values clamp — the same rule the bench harness
    /// applies to `AttackSpec::Iid` fractions. A `debug_assert` flags
    /// invalid inputs in dev builds; release builds clamp silently.
    pub fn clamped_rate(rate: f64) -> f64 {
        if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        }
    }

    /// A seeded churn schedule over `horizon` rounds: each of `edges`
    /// edges suffers one outage of `outage_rounds` rounds with
    /// probability `link_rate`, and each of `parties` parties crashes
    /// once for `outage_rounds` rounds with probability `crash_rate`
    /// (start rounds uniform over the horizon). Deterministic in
    /// `(seed, edges, parties)`; rates are sanitized via
    /// [`FaultPlan::clamped_rate`] and the lengths clamped to ≥ 1.
    pub fn churn(
        edges: usize,
        parties: usize,
        link_rate: f64,
        crash_rate: f64,
        outage_rounds: u64,
        horizon: u64,
        seed: u64,
    ) -> FaultPlan {
        debug_assert!(
            !link_rate.is_nan() && (0.0..=1.0).contains(&link_rate),
            "link_rate {link_rate} outside [0, 1]"
        );
        debug_assert!(
            !crash_rate.is_nan() && (0.0..=1.0).contains(&crash_rate),
            "crash_rate {crash_rate} outside [0, 1]"
        );
        let link_rate = Self::clamped_rate(link_rate);
        let crash_rate = Self::clamped_rate(crash_rate);
        let horizon = horizon.max(1);
        let outage = outage_rounds.max(1);
        let mut events = Vec::new();
        let draw = |stream: u64, idx: usize| -> (f64, u64) {
            // Addressed splitmix streams: (seed, stream, idx) → one
            // uniform in [0, 1) and one start round.
            let mut s = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (idx as u64 + 1);
            let u = (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let start = splitmix64(&mut s) % horizon;
            (u, start)
        };
        for e in 0..edges {
            let (u, start) = draw(1, e);
            if u < link_rate {
                events.push(FaultEvent::LinkDown {
                    round: start,
                    edge: e,
                });
                events.push(FaultEvent::LinkUp {
                    round: start.saturating_add(outage),
                    edge: e,
                });
            }
        }
        for p in 0..parties {
            let (u, start) = draw(2, p);
            if u < crash_rate {
                events.push(FaultEvent::PartyCrash {
                    round: start,
                    party: p,
                });
                events.push(FaultEvent::PartyRecover {
                    round: start.saturating_add(outage),
                    party: p,
                });
            }
        }
        FaultPlan {
            events,
            bursts: Vec::new(),
            seed,
        }
    }

    /// Compiles the plan against `graph` into the engine's wire
    /// schedule. Events naming out-of-range edges or parties are dropped
    /// (validated clamping, not a panic — nonsense indices must not
    /// produce nonsense schedules); burst fractions are sanitized and
    /// their edge sets drawn from the plan seed.
    pub fn compile(&self, graph: &Graph) -> FaultSchedule {
        let m = graph.edge_count();
        let n = graph.node_count();
        let mut sched = FaultSchedule::new();
        let incident = |party: usize| -> Vec<netgraph::LinkId> {
            graph
                .neighbors(party)
                .iter()
                .flat_map(|&v| {
                    [
                        graph.link_id(DirectedLink { from: party, to: v }),
                        graph.link_id(DirectedLink { from: v, to: party }),
                    ]
                })
                .flatten()
                .collect()
        };
        for ev in &self.events {
            match *ev {
                FaultEvent::LinkDown { round, edge } if edge < m => {
                    sched.link_down(round, 2 * edge);
                    sched.link_down(round, 2 * edge + 1);
                }
                FaultEvent::LinkUp { round, edge } if edge < m => {
                    sched.link_up(round, 2 * edge);
                    sched.link_up(round, 2 * edge + 1);
                }
                FaultEvent::PartyCrash { round, party } if party < n => {
                    sched.crash_party(round, &incident(party));
                }
                FaultEvent::PartyRecover { round, party } if party < n => {
                    sched.recover_party(round, &incident(party));
                }
                _ => {} // out-of-range index: dropped by validation
            }
        }
        for (i, b) in self.bursts.iter().enumerate() {
            let fraction = Self::clamped_rate(b.fraction);
            let k = ((fraction * m as f64).ceil() as usize).min(m);
            let rounds = b.rounds.max(1);
            // Partial Fisher–Yates over the edge indices, seeded per
            // burst: the first k slots are the affected set.
            let mut order: Vec<usize> = (0..m).collect();
            let mut s = self.seed ^ (i as u64 + 0xB0_u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for j in 0..k {
                let r = j + (splitmix64(&mut s) as usize) % (m - j);
                order.swap(j, r);
            }
            for &e in &order[..k] {
                sched.link_down(b.start, 2 * e);
                sched.link_down(b.start, 2 * e + 1);
                sched.link_up(b.start.saturating_add(rounds), 2 * e);
                sched.link_up(b.start.saturating_add(rounds), 2 * e + 1);
            }
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::topology;

    #[test]
    fn clamped_rate_boundaries() {
        assert_eq!(FaultPlan::clamped_rate(0.0), 0.0);
        assert_eq!(FaultPlan::clamped_rate(1.0), 1.0);
        assert_eq!(FaultPlan::clamped_rate(0.25), 0.25);
        assert_eq!(FaultPlan::clamped_rate(-3.0), 0.0);
        assert_eq!(FaultPlan::clamped_rate(7.5), 1.0);
        assert_eq!(FaultPlan::clamped_rate(f64::NAN), 0.0);
        assert_eq!(FaultPlan::clamped_rate(f64::INFINITY), 1.0);
        assert_eq!(FaultPlan::clamped_rate(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn churn_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::churn(10, 5, 0.5, 0.3, 8, 100, 42);
        let b = FaultPlan::churn(10, 5, 0.5, 0.3, 8, 100, 42);
        let c = FaultPlan::churn(10, 5, 0.5, 0.3, 8, 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must draw different schedules");
        assert!(!a.is_empty());
    }

    #[test]
    fn churn_rate_extremes() {
        let none = FaultPlan::churn(8, 4, 0.0, 0.0, 5, 50, 1);
        assert!(none.is_empty());
        let all = FaultPlan::churn(8, 4, 1.0, 1.0, 5, 50, 1);
        // Every edge downs+ups, every party crashes+recovers.
        assert_eq!(all.events.len(), 2 * 8 + 2 * 4);
        assert!(all.first_round().unwrap() < 50);
    }

    #[test]
    fn churn_clamps_nonsense_rates_in_release_shape() {
        // Exercise the clamp helper the way attack_budget's tests do:
        // the debug_asserts flag misuse in dev builds, the clamp is the
        // contract. Zero-length outages and horizons clamp to 1.
        let p = FaultPlan::churn(4, 2, FaultPlan::clamped_rate(f64::NAN), 0.0, 0, 0, 9);
        assert!(p.is_empty());
        let p = FaultPlan::churn(4, 2, FaultPlan::clamped_rate(9.0), 0.0, 0, 0, 9);
        assert_eq!(p.events.len(), 8, "rate 1 downs every edge");
        for ev in &p.events {
            assert!(ev.round() <= 1, "horizon 0 clamps to 1");
        }
    }

    #[test]
    fn compile_drops_out_of_range_indices() {
        let g = topology::ring(4); // 4 edges, 4 nodes
        let plan = FaultPlan {
            events: vec![
                FaultEvent::LinkDown { round: 0, edge: 99 },
                FaultEvent::PartyCrash {
                    round: 0,
                    party: 99,
                },
                FaultEvent::LinkDown { round: 1, edge: 0 },
            ],
            bursts: Vec::new(),
            seed: 0,
        };
        let sched = plan.compile(&g);
        assert!(!sched.is_empty(), "in-range event survives");
        // Only the in-range edge contributes transitions: install into a
        // network and check exactly one edge masks.
        let mut net = netsim::Network::new(g.clone(), Box::new(netsim::attacks::NoNoise), 0);
        net.install_faults(sched);
        let mut tx = netsim::RoundFrame::for_graph(&g);
        let mut rx = netsim::RoundFrame::for_graph(&g);
        for lid in 0..g.link_count() {
            tx.set(lid, true);
        }
        net.step_into(&tx, None, &mut rx); // round 0: nothing down yet
        assert_eq!(net.fault_stats().masked_symbols, 0);
        net.step_into(&tx, None, &mut rx); // round 1: edge 0 (lids 0, 1) down
        assert_eq!(net.fault_stats().masked_symbols, 2);
        assert_eq!(net.fault_stats().links_downed, 2);
    }

    #[test]
    fn burst_downs_requested_fraction() {
        let g = topology::clique(5); // 10 edges
        let plan = FaultPlan {
            events: Vec::new(),
            bursts: vec![BurstOutage {
                start: 2,
                rounds: 3,
                fraction: 0.5,
            }],
            seed: 7,
        };
        let mut net = netsim::Network::new(g.clone(), Box::new(netsim::attacks::NoNoise), 0);
        net.install_faults(plan.compile(&g));
        let mut tx = netsim::RoundFrame::for_graph(&g);
        let mut rx = netsim::RoundFrame::for_graph(&g);
        for lid in 0..g.link_count() {
            tx.set(lid, true);
        }
        for _ in 0..2 {
            net.step_into(&tx, None, &mut rx);
        }
        assert_eq!(net.fault_stats().masked_symbols, 0);
        net.step_into(&tx, None, &mut rx);
        // ceil(0.5 × 10) = 5 edges → 10 directed links masked per round.
        assert_eq!(net.fault_stats().masked_symbols, 10);
        assert_eq!(net.fault_stats().links_downed, 10);
        for _ in 0..3 {
            net.step_into(&tx, None, &mut rx);
        }
        // Outage lasted rounds 2..5; round 5 is clean again.
        assert_eq!(net.fault_stats().masked_symbols, 30);
    }

    #[test]
    fn first_round_spans_events_and_bursts() {
        assert_eq!(FaultPlan::none().first_round(), None);
        let p = FaultPlan {
            events: vec![FaultEvent::LinkDown { round: 9, edge: 0 }],
            bursts: vec![BurstOutage {
                start: 4,
                rounds: 1,
                fraction: 0.1,
            }],
            seed: 0,
        };
        assert_eq!(p.first_round(), Some(4));
    }
}
