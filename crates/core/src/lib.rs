//! # mpic — Efficient Multiparty Interactive Coding
//!
//! A from-scratch reproduction of *"Efficient Multiparty Interactive
//! Coding for Insertions, Deletions and Substitutions"* (Gelles, Kalai,
//! Ramnarayan; PODC 2019, arXiv:1901.09863).
//!
//! Given any noiseless protocol Π over an arbitrary synchronous network
//! G = (V, E) with a fixed speaking order, the [`Simulation`] compiles it
//! into a noise-resilient protocol that tolerates adversarial
//! **insertions, deletions and substitutions** at a constant communication
//! blow-up:
//!
//! * **Algorithm A** ([`SchemeConfig::algorithm_a`]) — shared randomness
//!   (CRS), oblivious adversary, noise ε/m (Theorem 1.1);
//! * **Algorithm B** ([`SchemeConfig::algorithm_b`]) — no shared
//!   randomness, non-oblivious adversary, noise ε/(m log m)
//!   (Theorem 1.2);
//! * **Algorithm C** ([`SchemeConfig::algorithm_c`]) — CRS hidden from a
//!   non-oblivious adversary, noise ε/(m log log m) (Appendix B).
//!
//! The per-iteration loop is the paper's: **meeting points** (hash-based
//! consistency check per link) → **flag passing** (continue/stop over a
//! BFS spanning tree) → **simulation** (one 5K-bit chunk of Π, or idle) →
//! **rewind** (a wave of one-chunk rollback requests).
//!
//! ```
//! use mpic::{RunOptions, SchemeConfig, Simulation};
//! use netsim::attacks::NoNoise;
//! use protocol::workloads::TokenRing;
//!
//! let workload = TokenRing::new(4, 3, 7);
//! let cfg = SchemeConfig::algorithm_a(workload_graph(&workload), 42);
//! # use protocol::Workload;
//! # fn workload_graph(w: &TokenRing) -> &netgraph::Graph { w.graph() }
//! let sim = Simulation::new(&workload, cfg, 1);
//! let out = sim.run(Box::new(NoNoise), RunOptions::default());
//! assert!(out.success);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
pub mod baseline;
mod config;
mod fault;
mod flags;
mod instrument;
mod meeting;
mod runner;
mod transcript;

pub use artifact::{statics_fingerprint, ArtifactCache, ArtifactFingerprint, SimStatics};
pub use config::{
    sim_threads_env, AdversaryClass, HashingMode, Parallelism, RandomnessMode, SchemeConfig,
    SeedExpansion, WireMode,
};
pub use fault::{BurstOutage, FaultEvent, FaultPlan};
pub use flags::{FlagPlan, FlagSchedule};
pub use instrument::{Instrumentation, IterationSample};
pub use meeting::{transcript_hash, LinkStatus, MpDecision, MpMessage, MpState, RecvMpMessage};
pub use runner::{DegradeReason, RunOptions, RunScratch, SimOutcome, Simulation, Verdict};
pub use transcript::{
    sym_delta, symbol_bit_position, LinkTranscript, TranscriptHasher, SKETCH_BITS,
};
