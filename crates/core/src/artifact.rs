//! Precompiled simulation artifacts, shareable across runs.
//!
//! Compiling a [`crate::Simulation`] does two kinds of work: *structural*
//! compilation that depends only on the workload's graph and speaking
//! schedule (chunk layouts and per-party slot/position tables, the BFS
//! spanning tree, the flag-passing plan and its precompiled round
//! schedule), and *per-run* work that depends on the trial seed (party
//! inputs, the noiseless reference run, exchanged/CRS seed material).
//! The structural part — [`SimStatics`] — is by far the more expensive
//! half for short trials, and it is byte-for-byte deterministic in
//! `(graph, schedule, chunk_bits)`. That makes it safe to compile once
//! and share: two workloads with the same structure but different
//! payloads (e.g. the same `TokenRing` topology under different input
//! seeds) produce *identical* statics, so a serving layer can key a
//! cache by [`ArtifactFingerprint`] and hand every request an
//! [`Arc<SimStatics>`] without touching the outcome. The
//! `serve_identity` integration suite pins this: a cache-warm request is
//! byte-identical to a cold direct run.

use crate::flags::{FlagPlan, FlagSchedule};
use netgraph::{Graph, SpanningTree};
use protocol::{ChunkedProtocol, Workload};
use smallbias::splitmix64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// 128-bit structural fingerprint of `(graph, schedule, chunk_bits)`.
///
/// Two independently-mixed 64-bit streams over the same word sequence;
/// collisions would require both streams to collide simultaneously, so
/// accidental aliasing of distinct structures in an [`ArtifactCache`] is
/// not a practical concern (the cache trusts the fingerprint and does
/// not re-verify structure on hit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactFingerprint {
    hi: u64,
    lo: u64,
}

impl ArtifactFingerprint {
    /// The fingerprint as a printable 32-hex-digit token (stable across
    /// runs; used in logs and machine-readable bench output).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Incremental two-stream mixer behind [`ArtifactFingerprint`].
struct FingerprintHasher {
    a: u64,
    b: u64,
}

impl FingerprintHasher {
    fn new() -> Self {
        // Distinct nothing-up-my-sleeve offsets so the streams decorrelate
        // from the first word.
        FingerprintHasher {
            a: 0x6a09_e667_f3bc_c908,
            b: 0xbb67_ae85_84ca_a73b,
        }
    }

    fn word(&mut self, w: u64) {
        self.a ^= w;
        splitmix64(&mut self.a);
        self.b = self.b.rotate_left(17) ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        splitmix64(&mut self.b);
    }

    fn finish(mut self) -> ArtifactFingerprint {
        self.word(0x5be0_cd19_137e_2179);
        ArtifactFingerprint {
            hi: self.a,
            lo: self.b,
        }
    }
}

/// Fingerprints the structure a [`SimStatics`] is compiled from: the
/// graph's node count and directed-link list, the schedule's per-round
/// speaking links, and the chunk size. Payload content (party inputs,
/// logic state) is deliberately excluded — statics do not depend on it.
pub fn statics_fingerprint(w: &dyn Workload, chunk_bits: usize) -> ArtifactFingerprint {
    let mut h = FingerprintHasher::new();
    let g = w.graph();
    h.word(g.node_count() as u64);
    h.word(g.link_count() as u64);
    for link in g.links() {
        h.word(((link.from as u64) << 32) | link.to as u64);
    }
    h.word(chunk_bits as u64);
    let sched = w.schedule();
    h.word(sched.round_count() as u64);
    for r in 0..sched.round_count() {
        let links = sched.links_at(r);
        h.word(links.len() as u64);
        for link in links {
            h.word(((link.from as u64) << 32) | link.to as u64);
        }
    }
    h.finish()
}

/// The seed-independent compiled half of a simulation: everything
/// [`crate::Simulation::new`] derives from the workload's *structure*.
///
/// Immutable once compiled; share freely across threads and runs via
/// [`Arc`]. See the module docs for the determinism argument.
pub struct SimStatics {
    /// The workload's communication graph (with its dense link index).
    pub graph: Graph,
    /// The chunked protocol Π′: layouts, per-party slot tables, shape-
    /// deduplicated position plans.
    pub proto: ChunkedProtocol,
    /// BFS spanning tree rooted at node 0 (flag passing).
    pub tree: SpanningTree,
    /// Up/down sweep timetable over the tree.
    pub plan: FlagPlan,
    /// The plan precompiled into per-round send/receive tables.
    pub flag_sched: FlagSchedule,
    /// Fingerprint of the structure this was compiled from.
    pub fingerprint: ArtifactFingerprint,
}

impl SimStatics {
    /// Compiles the structural artifacts for `w` at the given chunk size.
    /// Deterministic: equal `(graph, schedule, chunk_bits)` structures
    /// yield byte-identical statics.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bits < 4m` (see [`ChunkedProtocol::new`]).
    pub fn compile(w: &dyn Workload, chunk_bits: usize) -> SimStatics {
        let graph = w.graph().clone();
        let proto = ChunkedProtocol::new(w, chunk_bits);
        let tree = SpanningTree::bfs(&graph, 0);
        let plan = FlagPlan::new(&tree);
        let flag_sched = FlagSchedule::new(&graph, &tree, &plan);
        let fingerprint = statics_fingerprint(w, chunk_bits);
        SimStatics {
            graph,
            proto,
            tree,
            plan,
            flag_sched,
            fingerprint,
        }
    }
}

/// Concurrency-safe cache of [`SimStatics`] keyed by
/// [`ArtifactFingerprint`], with hit/miss counters.
///
/// Shared by a serving layer's workers (and `bench::run_many`'s trial
/// workers): the first request for a structure compiles it, every later
/// request clones an [`Arc`]. Compilation happens *outside* the map
/// lock, so a slow compile never blocks hits on other keys; two racing
/// misses on the same key may both compile, and the loser adopts the
/// winner's entry (identical bytes either way, so sharing stays
/// maximal and outcomes are unaffected).
#[derive(Default)]
pub struct ArtifactCache {
    map: Mutex<HashMap<ArtifactFingerprint, Arc<SimStatics>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// Returns the statics for `(w, chunk_bits)`, compiling on miss.
    /// The boolean is `true` on a cache hit.
    pub fn get_or_compile(&self, w: &dyn Workload, chunk_bits: usize) -> (Arc<SimStatics>, bool) {
        let fp = statics_fingerprint(w, chunk_bits);
        if let Some(hit) = self.map.lock().unwrap().get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(SimStatics::compile(w, chunk_bits));
        let mut map = self.map.lock().unwrap();
        let entry = map.entry(fp).or_insert_with(|| Arc::clone(&compiled));
        (Arc::clone(entry), false)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compilations requested) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct structures currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::workloads::{Gossip, TokenRing};

    fn _statics_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimStatics>();
        assert_send_sync::<ArtifactCache>();
    }

    #[test]
    fn fingerprint_ignores_payload_seed() {
        // Same structure, different input seeds → same fingerprint.
        let a = TokenRing::new(5, 2, 1);
        let b = TokenRing::new(5, 2, 999);
        assert_eq!(statics_fingerprint(&a, 40), statics_fingerprint(&b, 40));
    }

    #[test]
    fn fingerprint_separates_structures() {
        let a = TokenRing::new(5, 2, 1);
        let b = TokenRing::new(5, 3, 1); // extra lap → longer schedule
        let c = TokenRing::new(6, 2, 1); // bigger ring → different graph
        let fa = statics_fingerprint(&a, 40);
        assert_ne!(fa, statics_fingerprint(&b, 40));
        assert_ne!(fa, statics_fingerprint(&c, 40));
        // Chunk size is part of the key.
        assert_ne!(fa, statics_fingerprint(&a, 60));
        assert_eq!(fa.to_hex().len(), 32);
    }

    #[test]
    fn cache_hits_share_one_arc() {
        let cache = ArtifactCache::new();
        let w = Gossip::new(netgraph::topology::ring(4), 3, 7);
        let (first, hit1) = cache.get_or_compile(&w, 5 * w.graph().edge_count());
        let (second, hit2) = cache.get_or_compile(&w, 5 * w.graph().edge_count());
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        // A different chunk size is a different artifact.
        let (_third, hit3) = cache.get_or_compile(&w, 10 * w.graph().edge_count());
        assert!(!hit3);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn compiled_statics_match_fingerprint() {
        let w = TokenRing::new(4, 2, 3);
        let s = SimStatics::compile(&w, 5 * w.graph().edge_count());
        assert_eq!(
            s.fingerprint,
            statics_fingerprint(&w, 5 * w.graph().edge_count())
        );
        assert_eq!(s.graph.node_count(), 4);
        assert!(s.proto.real_chunks() > 0);
    }
}
