//! Pairwise link transcripts `T_{u,v}` with incremental serialization
//! **and incremental hashing**.
//!
//! A transcript is the sequence of [`ChunkRecord`]s a party has recorded on
//! one link (§3.2): per chunk, the observed symbols in slot order plus the
//! chunk number. The serialization hashed by the meeting-points mechanism
//! is `[chunk id: 32 bits][symbols: 2 bits each]` per chunk — the embedded
//! chunk ids are what make prefix hashes length-binding (footnote 11).
//!
//! Since PR 3 the per-iteration transcript hashes are **two-level**: a
//! persistent per-link GF(2)-linear *sketch* ([`smallbias::PrefixHasher`],
//! [`SKETCH_BITS`] wide, fixed seed per link) is extended as chunks are
//! appended, and each iteration transmits a fresh τ-bit outer hash of
//! `sketch ∥ bit-length` (see [`crate::MpState::prepare`]). That turns the
//! per-iteration hashing cost from `O(|T|)` into `O(Δ)` amortized. The
//! sketch backend is attached per run via [`LinkTranscript::attach_hasher`]
//! — either incremental (the production path) or a recompute-from-scratch
//! reference ([`TranscriptHasher::reference`]) that produces bit-identical
//! digests, used to cross-check the incremental machinery.

use std::sync::Arc;

use protocol::{ChunkRecord, Sym};
use smallbias::{sketch_prefix, BitString, PrefixHasher, SeedLabel, SeedSource};

/// Width of the persistent per-link transcript sketch, in bits.
///
/// Two *distinct* transcripts collide in the sketch with probability
/// `2^{-64}` over the per-link seed — once per link pair, not per
/// iteration, so 64 bits keeps the union bound over a whole run
/// negligible. Per-iteration collision behavior (the `2^{-τ}` of
/// Lemma 2.3 that the meeting-points analysis consumes) comes from the
/// fresh outer hash, whose width is the scheme's `hash_bits`.
pub const SKETCH_BITS: u32 = 64;

/// The sketch backend attached to a [`LinkTranscript`] for one run.
#[derive(Clone)]
pub enum TranscriptHasher {
    /// The production path: a cached incremental fold, `O(Δ)` per append.
    Incremental(PrefixHasher),
    /// The reference path: recompute [`sketch_prefix`] from scratch on
    /// every query. Bit-identical digests, `O(|T|)` per query.
    Reference {
        /// Seed source shared by the link's endpoints.
        src: Arc<dyn SeedSource>,
        /// Label of the link's persistent sketch seed.
        label: SeedLabel,
    },
}

impl TranscriptHasher {
    /// The incremental backend over `src`/`label`.
    pub fn incremental(src: Arc<dyn SeedSource>, label: SeedLabel) -> Self {
        TranscriptHasher::Incremental(PrefixHasher::new(src, label, SKETCH_BITS))
    }

    /// The recompute-from-scratch reference backend over `src`/`label`.
    pub fn reference(src: Arc<dyn SeedSource>, label: SeedLabel) -> Self {
        TranscriptHasher::Reference { src, label }
    }
}

impl std::fmt::Debug for TranscriptHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranscriptHasher::Incremental(h) => write!(f, "Incremental({h:?})"),
            TranscriptHasher::Reference { label, .. } => write!(f, "Reference({label:?})"),
        }
    }
}

/// One party's transcript of one link.
///
/// # Examples
///
/// ```
/// use mpic::LinkTranscript;
/// use protocol::{ChunkRecord, Sym};
/// let mut t = LinkTranscript::new();
/// t.push(ChunkRecord { chunk: 0, syms: vec![Sym::Zero, Sym::One] });
/// t.push(ChunkRecord { chunk: 1, syms: vec![Sym::Star] });
/// assert_eq!(t.chunks(), 2);
/// t.truncate(1);
/// assert_eq!(t.chunks(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LinkTranscript {
    records: Vec<ChunkRecord>,
    bits: BitString,
    /// Serialized bit length after each chunk (prefix boundaries).
    boundaries: Vec<usize>,
    hasher: Option<TranscriptHasher>,
}

impl LinkTranscript {
    /// An empty transcript.
    pub fn new() -> Self {
        LinkTranscript::default()
    }

    /// Number of chunks `|T|`.
    pub fn chunks(&self) -> usize {
        self.records.len()
    }

    /// The recorded chunks.
    pub fn records(&self) -> &[ChunkRecord] {
        &self.records
    }

    /// The full serialization (for hashing).
    pub fn bits(&self) -> &BitString {
        &self.bits
    }

    /// Serialized bit length of the first `chunks` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunks > self.chunks()`.
    pub fn prefix_bit_len(&self, chunks: usize) -> usize {
        if chunks == 0 {
            0
        } else {
            self.boundaries[chunks - 1]
        }
    }

    /// Attaches the sketch backend for a run. An incremental backend is
    /// synchronized with any chunks already recorded, so attachment order
    /// does not matter.
    pub fn attach_hasher(&mut self, hasher: TranscriptHasher) {
        let mut hasher = hasher;
        if let TranscriptHasher::Incremental(h) = &mut hasher {
            debug_assert!(h.is_empty(), "attach expects a fresh hasher");
            let mut from = 0usize;
            for &b in &self.boundaries {
                for i in from..b {
                    h.push_bit(self.bits.bit(i));
                }
                h.mark();
                from = b;
            }
        }
        self.hasher = Some(hasher);
    }

    /// True if a sketch backend is attached.
    pub fn has_hasher(&self) -> bool {
        self.hasher.is_some()
    }

    /// Sketch digest and serialized bit length of the first `chunks`
    /// chunks — the input of the outer per-iteration hash.
    ///
    /// # Panics
    ///
    /// Panics if no backend is attached or `chunks > self.chunks()`.
    pub fn sketch_at(&mut self, chunks: usize) -> (u64, usize) {
        assert!(chunks <= self.records.len(), "prefix beyond transcript");
        match self.hasher.as_mut().expect("no sketch backend attached") {
            TranscriptHasher::Incremental(h) => {
                if chunks == 0 {
                    (0, 0)
                } else {
                    h.digest_at(chunks - 1)
                }
            }
            TranscriptHasher::Reference { src, label } => {
                let len = if chunks == 0 {
                    0
                } else {
                    self.boundaries[chunks - 1]
                };
                let d = sketch_prefix(&self.bits, len, SKETCH_BITS, &mut *src.stream(*label));
                (d, len)
            }
        }
    }

    /// Appends a chunk record.
    pub fn push(&mut self, rec: ChunkRecord) {
        let from = self.bits.len();
        self.bits.push_bits(rec.chunk, 32);
        for &s in &rec.syms {
            self.bits.push_bits(s.code(), 2);
        }
        if let Some(TranscriptHasher::Incremental(h)) = &mut self.hasher {
            for i in from..self.bits.len() {
                h.push_bit(self.bits.bit(i));
            }
            h.mark();
        }
        self.boundaries.push(self.bits.len());
        self.records.push(rec);
    }

    /// Keeps only the first `chunks` chunks.
    pub fn truncate(&mut self, chunks: usize) {
        if chunks >= self.records.len() {
            return;
        }
        self.records.truncate(chunks);
        self.boundaries.truncate(chunks);
        self.bits.truncate(self.prefix_bit_len(chunks));
        if let Some(TranscriptHasher::Incremental(h)) = &mut self.hasher {
            h.truncate_to_mark(chunks);
        }
    }

    /// [`LinkTranscript::truncate`], recycling the dropped chunks' symbol
    /// vectors into `pool` for reuse (the runner's per-chunk arena).
    pub fn truncate_into(&mut self, chunks: usize, pool: &mut Vec<Vec<Sym>>) {
        if chunks >= self.records.len() {
            return;
        }
        pool.extend(self.records.drain(chunks..).map(|r| r.syms));
        self.boundaries.truncate(chunks);
        self.bits.truncate(self.prefix_bit_len(chunks));
        if let Some(TranscriptHasher::Incremental(h)) = &mut self.hasher {
            h.truncate_to_mark(chunks);
        }
    }

    /// Length (in chunks) of the longest common prefix with `other` — the
    /// quantity `G_{u,v}` of the analysis (Eq. 1).
    pub fn common_prefix_chunks(&self, other: &LinkTranscript) -> usize {
        let mut g = 0;
        for (a, b) in self.records.iter().zip(&other.records) {
            if a == b {
                g += 1;
            } else {
                break;
            }
        }
        g
    }

    /// True if both transcripts are bit-identical.
    pub fn same_as(&self, other: &LinkTranscript) -> bool {
        self.records.len() == other.records.len()
            && self.common_prefix_chunks(other) == self.records.len()
    }

    /// Checks agreement with a reference edge transcript on its first
    /// `chunks` chunks.
    pub fn matches_reference(&self, reference: &[ChunkRecord], chunks: usize) -> bool {
        if self.records.len() < chunks || reference.len() < chunks {
            return false;
        }
        self.records[..chunks] == reference[..chunks]
    }
}

/// Serialized position of a symbol inside a transcript's bit string:
/// `prefix(chunks before) + 32 (chunk id) + 2·sym_index`. Used by the
/// seed-aware collision oracle to locate the bits a corruption would flip.
pub fn symbol_bit_position(transcript: &LinkTranscript, sym_index: usize) -> usize {
    transcript.bits.len() + 32 + 2 * sym_index
}

/// Encodes the 2-bit XOR difference between observing `a` and observing
/// `b` at the same slot.
pub fn sym_delta(a: Sym, b: Sym) -> u64 {
    a.code() ^ b.code()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smallbias::{hash_bits, CrsSource, SeedLabel, SeedSource};

    fn rec(chunk: u64, syms: &[Sym]) -> ChunkRecord {
        ChunkRecord {
            chunk,
            syms: syms.to_vec(),
        }
    }

    fn sketch_label() -> SeedLabel {
        SeedLabel {
            iteration: 0,
            channel: 0,
            slot: 2,
        }
    }

    #[test]
    fn serialization_lengths() {
        let mut t = LinkTranscript::new();
        t.push(rec(0, &[Sym::Zero, Sym::One, Sym::Star]));
        assert_eq!(t.bits().len(), 32 + 6);
        t.push(rec(1, &[Sym::One]));
        assert_eq!(t.bits().len(), 38 + 34);
        assert_eq!(t.prefix_bit_len(1), 38);
        assert_eq!(t.prefix_bit_len(2), 72);
        assert_eq!(t.prefix_bit_len(0), 0);
    }

    #[test]
    fn truncate_restores_exact_prefix_bits() {
        let mut a = LinkTranscript::new();
        a.push(rec(0, &[Sym::One, Sym::Star]));
        let snapshot = a.bits().clone();
        a.push(rec(1, &[Sym::Zero]));
        a.truncate(1);
        assert_eq!(a.bits(), &snapshot);
        assert_eq!(a.chunks(), 1);
        // Truncating beyond length is a no-op.
        a.truncate(5);
        assert_eq!(a.chunks(), 1);
    }

    #[test]
    fn truncate_into_recycles_symbol_vectors() {
        let mut a = LinkTranscript::new();
        for c in 0..4 {
            a.push(rec(c, &[Sym::Zero, Sym::One]));
        }
        let mut pool = Vec::new();
        a.truncate_into(1, &mut pool);
        assert_eq!(a.chunks(), 1);
        assert_eq!(pool.len(), 3);
        assert!(pool.iter().all(|v| v.len() == 2));
        // No-op beyond length.
        a.truncate_into(5, &mut pool);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn common_prefix() {
        let mut a = LinkTranscript::new();
        let mut b = LinkTranscript::new();
        for c in 0..4 {
            a.push(rec(c, &[Sym::Zero]));
            b.push(rec(c, &[if c == 2 { Sym::One } else { Sym::Zero }]));
        }
        assert_eq!(a.common_prefix_chunks(&b), 2);
        assert!(!a.same_as(&b));
        assert!(a.same_as(&a.clone()));
    }

    #[test]
    fn chunk_ids_bind_length() {
        // Transcripts differing only in *amount* of trailing content hash
        // differently because chunk ids are embedded: compare hash of
        // prefix lengths directly.
        let mut a = LinkTranscript::new();
        a.push(rec(0, &[Sym::Zero, Sym::Zero]));
        let mut b = a.clone();
        b.push(rec(1, &[Sym::Zero, Sym::Zero]));
        let src = CrsSource::new(3);
        let label = SeedLabel {
            iteration: 0,
            channel: 0,
            slot: 1,
        };
        let ha = hash_bits(a.bits(), 16, &mut *src.stream(label));
        let hb = hash_bits(b.bits(), 16, &mut *src.stream(label));
        assert_ne!(ha, hb);
    }

    #[test]
    fn incremental_and_reference_sketches_agree() {
        let src: Arc<dyn SeedSource> = Arc::new(CrsSource::new(99));
        let mut inc = LinkTranscript::new();
        inc.attach_hasher(TranscriptHasher::incremental(
            Arc::clone(&src),
            sketch_label(),
        ));
        let mut reference = LinkTranscript::new();
        reference.attach_hasher(TranscriptHasher::reference(
            Arc::clone(&src),
            sketch_label(),
        ));
        let syms = [Sym::Zero, Sym::One, Sym::Star, Sym::One];
        for c in 0..5u64 {
            inc.push(rec(c, &syms));
            reference.push(rec(c, &syms));
        }
        for chunks in 0..=5usize {
            assert_eq!(
                inc.sketch_at(chunks),
                reference.sketch_at(chunks),
                "chunks {chunks}"
            );
        }
        // Through truncation and regrowth too.
        inc.truncate(2);
        reference.truncate(2);
        inc.push(rec(2, &[Sym::Star]));
        reference.push(rec(2, &[Sym::Star]));
        for chunks in 0..=3usize {
            assert_eq!(inc.sketch_at(chunks), reference.sketch_at(chunks));
        }
    }

    #[test]
    fn late_attachment_syncs_existing_chunks() {
        let src: Arc<dyn SeedSource> = Arc::new(CrsSource::new(7));
        let mut t = LinkTranscript::new();
        for c in 0..3u64 {
            t.push(rec(c, &[Sym::One, Sym::Zero]));
        }
        let mut late = t.clone();
        late.attach_hasher(TranscriptHasher::incremental(
            Arc::clone(&src),
            sketch_label(),
        ));
        let mut early = LinkTranscript::new();
        early.attach_hasher(TranscriptHasher::incremental(
            Arc::clone(&src),
            sketch_label(),
        ));
        for c in 0..3u64 {
            early.push(rec(c, &[Sym::One, Sym::Zero]));
        }
        for chunks in 0..=3usize {
            assert_eq!(late.sketch_at(chunks), early.sketch_at(chunks));
        }
    }

    #[test]
    fn matches_reference_prefix() {
        let reference = vec![rec(0, &[Sym::One]), rec(1, &[Sym::Zero])];
        let mut t = LinkTranscript::new();
        t.push(rec(0, &[Sym::One]));
        assert!(t.matches_reference(&reference, 1));
        assert!(!t.matches_reference(&reference, 2));
        t.push(rec(1, &[Sym::Star]));
        assert!(!t.matches_reference(&reference, 2));
    }

    #[test]
    fn symbol_positions() {
        let mut t = LinkTranscript::new();
        t.push(rec(0, &[Sym::Zero, Sym::Zero]));
        // Next chunk's symbol 3 sits after 36 existing bits + 32-bit id.
        assert_eq!(symbol_bit_position(&t, 3), 36 + 32 + 6);
        assert_eq!(sym_delta(Sym::Zero, Sym::One), 0b01);
        assert_eq!(sym_delta(Sym::Zero, Sym::Star), 0b10);
        assert_eq!(sym_delta(Sym::One, Sym::Star), 0b11);
    }
}
