//! Pairwise link transcripts `T_{u,v}` with incremental serialization.
//!
//! A transcript is the sequence of [`ChunkRecord`]s a party has recorded on
//! one link (§3.2): per chunk, the observed symbols in slot order plus the
//! chunk number. The serialization hashed by the meeting-points mechanism
//! is `[chunk id: 32 bits][symbols: 2 bits each]` per chunk — the embedded
//! chunk ids are what make prefix hashes length-binding (footnote 11).

use protocol::{ChunkRecord, Sym};
use smallbias::BitString;

/// One party's transcript of one link.
///
/// # Examples
///
/// ```
/// use mpic::LinkTranscript;
/// use protocol::{ChunkRecord, Sym};
/// let mut t = LinkTranscript::new();
/// t.push(ChunkRecord { chunk: 0, syms: vec![Sym::Zero, Sym::One] });
/// t.push(ChunkRecord { chunk: 1, syms: vec![Sym::Star] });
/// assert_eq!(t.chunks(), 2);
/// t.truncate(1);
/// assert_eq!(t.chunks(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LinkTranscript {
    records: Vec<ChunkRecord>,
    bits: BitString,
    /// Serialized bit length after each chunk (prefix boundaries).
    boundaries: Vec<usize>,
}

impl LinkTranscript {
    /// An empty transcript.
    pub fn new() -> Self {
        LinkTranscript::default()
    }

    /// Number of chunks `|T|`.
    pub fn chunks(&self) -> usize {
        self.records.len()
    }

    /// The recorded chunks.
    pub fn records(&self) -> &[ChunkRecord] {
        &self.records
    }

    /// The full serialization (for hashing).
    pub fn bits(&self) -> &BitString {
        &self.bits
    }

    /// Serialized bit length of the first `chunks` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunks > self.chunks()`.
    pub fn prefix_bit_len(&self, chunks: usize) -> usize {
        if chunks == 0 {
            0
        } else {
            self.boundaries[chunks - 1]
        }
    }

    /// Appends a chunk record.
    pub fn push(&mut self, rec: ChunkRecord) {
        self.bits.push_bits(rec.chunk, 32);
        for &s in &rec.syms {
            self.bits.push_bits(s.code(), 2);
        }
        self.boundaries.push(self.bits.len());
        self.records.push(rec);
    }

    /// Keeps only the first `chunks` chunks.
    pub fn truncate(&mut self, chunks: usize) {
        if chunks >= self.records.len() {
            return;
        }
        self.records.truncate(chunks);
        self.boundaries.truncate(chunks);
        self.bits.truncate(self.prefix_bit_len(chunks));
    }

    /// Length (in chunks) of the longest common prefix with `other` — the
    /// quantity `G_{u,v}` of the analysis (Eq. 1).
    pub fn common_prefix_chunks(&self, other: &LinkTranscript) -> usize {
        let mut g = 0;
        for (a, b) in self.records.iter().zip(&other.records) {
            if a == b {
                g += 1;
            } else {
                break;
            }
        }
        g
    }

    /// True if both transcripts are bit-identical.
    pub fn same_as(&self, other: &LinkTranscript) -> bool {
        self.records.len() == other.records.len()
            && self.common_prefix_chunks(other) == self.records.len()
    }

    /// Checks agreement with a reference edge transcript on its first
    /// `chunks` chunks.
    pub fn matches_reference(&self, reference: &[ChunkRecord], chunks: usize) -> bool {
        if self.records.len() < chunks || reference.len() < chunks {
            return false;
        }
        self.records[..chunks] == reference[..chunks]
    }
}

/// Serialized position of a symbol inside a transcript's bit string:
/// `prefix(chunks before) + 32 (chunk id) + 2·sym_index`. Used by the
/// seed-aware collision oracle to locate the bits a corruption would flip.
pub fn symbol_bit_position(transcript: &LinkTranscript, sym_index: usize) -> usize {
    transcript.bits.len() + 32 + 2 * sym_index
}

/// Encodes the 2-bit XOR difference between observing `a` and observing
/// `b` at the same slot.
pub fn sym_delta(a: Sym, b: Sym) -> u64 {
    a.code() ^ b.code()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smallbias::{hash_bits, CrsSource, SeedLabel, SeedSource};

    fn rec(chunk: u64, syms: &[Sym]) -> ChunkRecord {
        ChunkRecord {
            chunk,
            syms: syms.to_vec(),
        }
    }

    #[test]
    fn serialization_lengths() {
        let mut t = LinkTranscript::new();
        t.push(rec(0, &[Sym::Zero, Sym::One, Sym::Star]));
        assert_eq!(t.bits().len(), 32 + 6);
        t.push(rec(1, &[Sym::One]));
        assert_eq!(t.bits().len(), 38 + 34);
        assert_eq!(t.prefix_bit_len(1), 38);
        assert_eq!(t.prefix_bit_len(2), 72);
        assert_eq!(t.prefix_bit_len(0), 0);
    }

    #[test]
    fn truncate_restores_exact_prefix_bits() {
        let mut a = LinkTranscript::new();
        a.push(rec(0, &[Sym::One, Sym::Star]));
        let snapshot = a.bits().clone();
        a.push(rec(1, &[Sym::Zero]));
        a.truncate(1);
        assert_eq!(a.bits(), &snapshot);
        assert_eq!(a.chunks(), 1);
        // Truncating beyond length is a no-op.
        a.truncate(5);
        assert_eq!(a.chunks(), 1);
    }

    #[test]
    fn common_prefix() {
        let mut a = LinkTranscript::new();
        let mut b = LinkTranscript::new();
        for c in 0..4 {
            a.push(rec(c, &[Sym::Zero]));
            b.push(rec(c, &[if c == 2 { Sym::One } else { Sym::Zero }]));
        }
        assert_eq!(a.common_prefix_chunks(&b), 2);
        assert!(!a.same_as(&b));
        assert!(a.same_as(&a.clone()));
    }

    #[test]
    fn chunk_ids_bind_length() {
        // Transcripts differing only in *amount* of trailing content hash
        // differently because chunk ids are embedded: compare hash of
        // prefix lengths directly.
        let mut a = LinkTranscript::new();
        a.push(rec(0, &[Sym::Zero, Sym::Zero]));
        let mut b = a.clone();
        b.push(rec(1, &[Sym::Zero, Sym::Zero]));
        let src = CrsSource::new(3);
        let label = SeedLabel {
            iteration: 0,
            channel: 0,
            slot: 1,
        };
        let ha = hash_bits(a.bits(), 16, &mut *src.stream(label));
        let hb = hash_bits(b.bits(), 16, &mut *src.stream(label));
        assert_ne!(ha, hb);
    }

    #[test]
    fn matches_reference_prefix() {
        let reference = vec![rec(0, &[Sym::One]), rec(1, &[Sym::Zero])];
        let mut t = LinkTranscript::new();
        t.push(rec(0, &[Sym::One]));
        assert!(t.matches_reference(&reference, 1));
        assert!(!t.matches_reference(&reference, 2));
        t.push(rec(1, &[Sym::Star]));
        assert!(!t.matches_reference(&reference, 2));
    }

    #[test]
    fn symbol_positions() {
        let mut t = LinkTranscript::new();
        t.push(rec(0, &[Sym::Zero, Sym::Zero]));
        // Next chunk's symbol 3 sits after 36 existing bits + 32-bit id.
        assert_eq!(symbol_bit_position(&t, 3), 36 + 32 + 6);
        assert_eq!(sym_delta(Sym::Zero, Sym::One), 0b01);
        assert_eq!(sym_delta(Sym::Zero, Sym::Star), 0b10);
        assert_eq!(sym_delta(Sym::One, Sym::Star), 0b11);
    }
}
