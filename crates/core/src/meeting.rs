//! The meeting-points mechanism (paper §3.1(ii), Appendix A).
//!
//! Reconstructed from the paper's description and from Haeupler'14
//! (Algorithm 3), since Appendix A's pseudocode is not in our copy of the
//! text. Per link, per iteration, each party sends four τ-bit hashes:
//! `h(k)`, `h(T)`, `h(T[..mpc1])`, `h(T[..mpc2])`, where `k` counts
//! consecutive meeting-points iterations, `k̃ = 2^⌊log₂ k⌋`, and
//! `mpc1 = k̃·⌊|T|/k̃⌋`, `mpc2 = mpc1 − k̃` are the two *meeting points* at
//! scale `k̃`.
//!
//! The three transcript hashes are **two-level**: each is the fresh
//! per-iteration inner-product hash ([`transcript_hash`]) of the
//! transcript's persistent incremental *sketch* at the relevant prefix
//! (see [`crate::transcript`]), so an evaluation costs `O(τ)` instead of
//! `O(τ·|T|)`. Two prefixes hash equal iff their `sketch ∥ length` inputs
//! agree (up to a `2^{-64}` per-pair sketch collision), and for distinct
//! inputs the fresh outer seed gives the `2^{-τ}` per-iteration collision
//! probability the analysis consumes — the sketch also hashes the prefix
//! *length*, which strengthens footnote 11's length binding (an all-zero
//! serialization no longer collides with the empty transcript).
//!
//! Outcome rules (per received message):
//! * corrupted or mismatching `h(k)` → reset `k, E` and stay in
//!   meeting-points state (the reset resynchronizes the two counters — a
//!   desync would otherwise deadlock, because an idle network freezes the
//!   transcripts the full-hash comparison needs to recover);
//! * matching `h(T)` → transcripts agree: status `Simulate`, reset;
//! * otherwise gather mismatch evidence `E`; once `2E ≥ k`, roll the
//!   transcript back to the largest own meeting point whose hash matches
//!   either of the peer's meeting-point hashes.
//!
//! Properties the outer scheme relies on (verified by the tests below and
//! the integration suite): agreement is confirmed in one iteration when
//! transcripts match; a divergence of `B` chunks is repaired within `O(B)`
//! noiseless iterations; each iteration truncates at most once; and a
//! single corrupted exchange causes only bounded damage.

use crate::transcript::LinkTranscript;
use smallbias::{hash_words, SeedBits};

/// The per-iteration outer transcript hash: a fresh τ-bit inner-product
/// hash of the 96-bit input `sketch (64 bits) ∥ prefix bit length (32
/// bits)`. GF(2)-linear in `sketch` for a fixed seed — the property the
/// §6.1 seed-aware oracle exploits to predict collisions.
pub fn transcript_hash(sketch: u64, len_bits: usize, tau: u32, seed: &mut dyn SeedBits) -> u64 {
    debug_assert!(len_bits < (1usize << 32), "transcript length overflow");
    hash_words(&[sketch, len_bits as u64], 96, tau, seed)
}

/// Per-link simulate/repair status (the paper's `status_{u,v}`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkStatus {
    /// Transcripts believed consistent; simulation may proceed.
    #[default]
    Simulate,
    /// Inconsistency suspected; the link is mid-meeting-points.
    MeetingPoints,
}

/// The four hash values exchanged per iteration, plus the local meeting
/// points they refer to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MpMessage {
    /// τ-bit hash of the iteration counter `k`.
    pub h_k: u64,
    /// τ-bit hash of the full transcript.
    pub h_full: u64,
    /// τ-bit hash of `T[..mpc1]`.
    pub h_mpc1: u64,
    /// τ-bit hash of `T[..mpc2]`.
    pub h_mpc2: u64,
    /// Local `mpc1` (chunks), not transmitted.
    pub mpc1: usize,
    /// Local `mpc2` (chunks), not transmitted.
    pub mpc2: usize,
}

impl MpMessage {
    /// Packs the four hashes into `4τ` wire bits, low bit first.
    pub fn to_bits(&self, tau: u32) -> Vec<bool> {
        (0..4 * tau as usize)
            .map(|o| self.wire_bit(o, tau))
            .collect()
    }

    /// Wire bit `o` of the `4τ`-bit message (the allocation-free form of
    /// [`MpMessage::to_bits`] the per-round send loop uses).
    ///
    /// # Panics
    ///
    /// Panics if `o >= 4τ`.
    pub fn wire_bit(&self, o: usize, tau: u32) -> bool {
        let tau = tau as usize;
        let h = match o / tau {
            0 => self.h_k,
            1 => self.h_full,
            2 => self.h_mpc1,
            3 => self.h_mpc2,
            _ => panic!("wire bit index out of range"),
        };
        (h >> (o % tau)) & 1 == 1
    }

    /// Number of words [`MpMessage::to_words`] fills for hash length `tau`
    /// (`4τ ≤ 240` bits for `τ ≤ 60`, so at most 4).
    pub fn wire_words(tau: u32) -> usize {
        (4 * tau as usize).div_ceil(64)
    }

    /// Packs the `4τ` wire bits into `out` words (bit `o` of the message
    /// in bit `o % 64` of `out[o / 64]` — the lane layout of
    /// `netsim::FrameBatch::set_bits`). Exactly the bit sequence of
    /// [`MpMessage::wire_bit`], marshalled once per message instead of
    /// once per round. Returns the bit count `4τ`.
    ///
    /// # Panics
    ///
    /// Panics if `out` has fewer than [`MpMessage::wire_words`] words.
    pub fn to_words(&self, tau: u32, out: &mut [u64]) -> usize {
        let tau = tau as usize;
        let nbits = 4 * tau;
        let words = nbits.div_ceil(64);
        assert!(
            out.len() >= words,
            "need {words} words for 4τ = {nbits} bits"
        );
        out[..words].fill(0);
        for (f, h) in [self.h_k, self.h_full, self.h_mpc1, self.h_mpc2]
            .into_iter()
            .enumerate()
        {
            let masked = h & mask_tau(tau);
            let start = f * tau;
            let (w, b) = (start / 64, start % 64);
            out[w] |= masked << b;
            if b + tau > 64 {
                out[w + 1] |= masked >> (64 - b);
            }
        }
        nbits
    }
}

/// Low `tau` bits set (`tau ≤ 60`).
fn mask_tau(tau: usize) -> u64 {
    (1u64 << tau) - 1
}

/// Extracts `tau` bits starting at bit `start` from little-endian words.
fn extract_bits(words: &[u64], start: usize, tau: usize) -> u64 {
    let (w, b) = (start / 64, start % 64);
    let mut v = words[w] >> b;
    if b + tau > 64 {
        v |= words[w + 1] << (64 - b);
    }
    v & mask_tau(tau)
}

/// A received message: each field is `None` if any of its bits was deleted.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecvMpMessage {
    /// Received `h(k)`, if intact.
    pub h_k: Option<u64>,
    /// Received `h(T)`, if intact.
    pub h_full: Option<u64>,
    /// Received `h(T[..mpc1])`, if intact.
    pub h_mpc1: Option<u64>,
    /// Received `h(T[..mpc2])`, if intact.
    pub h_mpc2: Option<u64>,
}

impl RecvMpMessage {
    /// Reassembles a message from `4τ` received wire bits (`None` =
    /// deleted bit).
    pub fn from_bits(bits: &[Option<bool>], tau: u32) -> Self {
        let tau = tau as usize;
        assert_eq!(bits.len(), 4 * tau, "wire length mismatch");
        let field = |i: usize| -> Option<u64> {
            let mut v = 0u64;
            for t in 0..tau {
                v |= u64::from(bits[i * tau + t]?) << t;
            }
            Some(v)
        };
        RecvMpMessage {
            h_k: field(0),
            h_full: field(1),
            h_mpc1: field(2),
            h_mpc2: field(3),
        }
    }

    /// Reassembles a message from a received word lane (`value` bits plus
    /// a `presence` mask, the layout of `netsim::FrameBatch::lane`): a
    /// field survives iff **all** of its `τ` presence bits are set, else it
    /// reads as deleted — exactly [`RecvMpMessage::from_bits`] on the
    /// equivalent `Option<bool>` sequence.
    ///
    /// # Panics
    ///
    /// Panics if the lanes are shorter than `ceil(4τ / 64)` words.
    pub fn from_words(value: &[u64], presence: &[u64], tau: u32) -> Self {
        let tau = tau as usize;
        let field = |i: usize| -> Option<u64> {
            let start = i * tau;
            if extract_bits(presence, start, tau) != mask_tau(tau) {
                return None;
            }
            Some(extract_bits(value, start, tau))
        };
        RecvMpMessage {
            h_k: field(0),
            h_full: field(1),
            h_mpc1: field(2),
            h_mpc2: field(3),
        }
    }
}

/// What the party should do after processing an exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MpDecision {
    /// The new link status.
    pub status: LinkStatus,
    /// If `Some(g)`, the transcript was rolled back to `g` chunks.
    pub truncated_to: Option<usize>,
    /// The `k, E` counters were reset because the peer's `h(k)` was
    /// corrupted or mismatched — the repair loop restarted from scratch
    /// (the stall event phase-aware attacks try to maximize; counted by
    /// the runner's instrumentation).
    pub reset: bool,
}

/// Per-link meeting-points state (`k_{u,v}`, `E_{u,v}` of Algorithm 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct MpState {
    /// Consecutive meeting-points iterations.
    pub k: u64,
    /// Mismatch evidence counter.
    pub e: u64,
    /// Current status of the link.
    pub status: LinkStatus,
}

/// Largest power of two ≤ `k` (`k ≥ 1`).
fn scale(k: u64) -> u64 {
    1u64 << (63 - k.leading_zeros())
}

impl MpState {
    /// Fresh state (status `Simulate`).
    pub fn new() -> Self {
        MpState::default()
    }

    /// Start-of-phase step: advance `k`, compute the meeting points and the
    /// outgoing message. `seed_k` seeds the `h(k)` hash; `seed_t` seeds the
    /// three outer transcript hashes (one fresh stream per evaluation, so
    /// cross-party prefix comparisons are meaningful). The transcript must
    /// have a sketch backend attached; each prefix evaluation reads the
    /// incremental sketch instead of rehashing the serialization.
    ///
    /// # Panics
    ///
    /// Panics if `transcript` has no sketch backend attached.
    pub fn prepare(
        &mut self,
        transcript: &mut LinkTranscript,
        tau: u32,
        seed_k: &mut dyn SeedBits,
        seed_t: impl Fn() -> Box<dyn SeedBits>,
    ) -> MpMessage {
        self.k += 1;
        let ell = transcript.chunks();
        let kt = scale(self.k) as usize;
        let mpc1 = kt * (ell / kt);
        let mpc2 = mpc1.saturating_sub(kt);
        let h_k = hash_words(&[self.k], 64, tau, seed_k);
        let outer = |(sketch, len): (u64, usize), seed: &mut dyn SeedBits| {
            transcript_hash(sketch, len, tau, seed)
        };
        let h_full = outer(transcript.sketch_at(ell), &mut *seed_t());
        let h_mpc1 = outer(transcript.sketch_at(mpc1), &mut *seed_t());
        let h_mpc2 = outer(transcript.sketch_at(mpc2), &mut *seed_t());
        MpMessage {
            h_k,
            h_full,
            h_mpc1,
            h_mpc2,
            mpc1,
            mpc2,
        }
    }

    /// End-of-phase step: compare with the peer's (possibly corrupted)
    /// message, decide the new status, and apply any rollback to
    /// `transcript`.
    pub fn process(
        &mut self,
        ours: &MpMessage,
        theirs: &RecvMpMessage,
        transcript: &mut LinkTranscript,
    ) -> MpDecision {
        // Corrupted or mismatching k: resynchronize counters.
        if theirs.h_k != Some(ours.h_k) {
            self.k = 0;
            self.e = 0;
            self.status = LinkStatus::MeetingPoints;
            return MpDecision {
                status: self.status,
                truncated_to: None,
                reset: true,
            };
        }
        // Full transcripts agree: back to simulation.
        if theirs.h_full == Some(ours.h_full) {
            self.k = 0;
            self.e = 0;
            self.status = LinkStatus::Simulate;
            return MpDecision {
                status: self.status,
                truncated_to: None,
                reset: false,
            };
        }
        // Confirmed mismatch.
        self.e += 1;
        if 2 * self.e >= self.k {
            let matches = |h: u64| theirs.h_mpc1 == Some(h) || theirs.h_mpc2 == Some(h);
            let target = if matches(ours.h_mpc1) {
                Some(ours.mpc1)
            } else if matches(ours.h_mpc2) {
                Some(ours.mpc2)
            } else {
                None
            };
            if let Some(g) = target {
                transcript.truncate(g);
                self.k = 0;
                self.e = 0;
                self.status = LinkStatus::Simulate;
                return MpDecision {
                    status: self.status,
                    truncated_to: Some(g),
                    reset: false,
                };
            }
        }
        self.status = LinkStatus::MeetingPoints;
        MpDecision {
            status: self.status,
            truncated_to: None,
            reset: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcript::TranscriptHasher;
    use protocol::{ChunkRecord, Sym};
    use smallbias::{CrsSource, SeedLabel, SeedSource};
    use std::sync::Arc;

    fn rec(chunk: u64, val: Sym) -> ChunkRecord {
        ChunkRecord {
            chunk,
            syms: vec![val, val],
        }
    }

    /// Attaches the shared persistent sketch backend both endpoints of the
    /// test link use (iteration-independent label, slot 2).
    fn attach(t: &mut LinkTranscript) {
        let src: Arc<dyn smallbias::SeedSource> = Arc::new(CrsSource::new(0xbeef));
        t.attach_hasher(TranscriptHasher::incremental(
            src,
            SeedLabel {
                iteration: 0,
                channel: 0,
                slot: 2,
            },
        ));
    }

    /// Simulates a noiseless meeting-points conversation between two
    /// parties until both return to `Simulate`; returns iterations taken.
    fn converge(a: &mut LinkTranscript, b: &mut LinkTranscript, max_iters: usize) -> usize {
        let src = CrsSource::new(0xbeef);
        let mut sa = MpState::new();
        let mut sb = MpState::new();
        if !a.has_hasher() {
            attach(a);
        }
        if !b.has_hasher() {
            attach(b);
        }
        for it in 0..max_iters {
            let lbl = |slot| SeedLabel {
                iteration: it as u64,
                channel: 0,
                slot,
            };
            let ma = sa.prepare(a, 16, &mut *src.stream(lbl(0)), || src.stream(lbl(1)));
            let mb = sb.prepare(b, 16, &mut *src.stream(lbl(0)), || src.stream(lbl(1)));
            let ra = RecvMpMessage {
                h_k: Some(mb.h_k),
                h_full: Some(mb.h_full),
                h_mpc1: Some(mb.h_mpc1),
                h_mpc2: Some(mb.h_mpc2),
            };
            let rb = RecvMpMessage {
                h_k: Some(ma.h_k),
                h_full: Some(ma.h_full),
                h_mpc1: Some(ma.h_mpc1),
                h_mpc2: Some(ma.h_mpc2),
            };
            let da = sa.process(&ma, &ra, a);
            let db = sb.process(&mb, &rb, b);
            if da.status == LinkStatus::Simulate
                && db.status == LinkStatus::Simulate
                && a.same_as(b)
            {
                return it + 1;
            }
        }
        panic!("did not converge in {max_iters} iterations");
    }

    fn transcript(vals: &[Sym]) -> LinkTranscript {
        let mut t = LinkTranscript::new();
        attach(&mut t);
        for (c, &v) in vals.iter().enumerate() {
            t.push(rec(c as u64, v));
        }
        t
    }

    #[test]
    fn equal_transcripts_confirm_in_one_iteration() {
        let mut a = transcript(&[Sym::Zero; 10]);
        let mut b = transcript(&[Sym::Zero; 10]);
        assert_eq!(converge(&mut a, &mut b, 5), 1);
        assert_eq!(a.chunks(), 10);
    }

    #[test]
    fn single_chunk_divergence_repairs_quickly() {
        let mut a = transcript(&[Sym::Zero; 10]);
        let mut b = transcript(&[Sym::Zero; 9]);
        b.push(rec(9, Sym::One)); // diverges at the last chunk
        let iters = converge(&mut a, &mut b, 20);
        assert!(iters <= 4, "took {iters}");
        assert!(a.same_as(&b));
        assert!(a.chunks() >= 8, "over-truncated to {}", a.chunks());
    }

    #[test]
    fn deep_divergence_converges_linearly() {
        for b_depth in [2usize, 4, 7, 12] {
            let len = 20;
            let mut a = transcript(&[Sym::Zero; 20]);
            let mut vals = vec![Sym::Zero; len - b_depth];
            vals.extend(std::iter::repeat(Sym::One).take(b_depth));
            let mut b = transcript(&vals);
            let iters = converge(&mut a, &mut b, 200);
            assert!(
                iters <= 6 * b_depth + 8,
                "B={b_depth} took {iters} iterations"
            );
            assert!(a.same_as(&b));
            // Not truncated unboundedly below the divergence point.
            assert!(
                a.chunks() + 4 * b_depth + 4 >= len - b_depth,
                "B={b_depth}: kept only {} chunks",
                a.chunks()
            );
        }
    }

    #[test]
    fn length_gap_divergence_repairs() {
        let mut a = transcript(&[Sym::Zero; 12]);
        let mut b = transcript(&[Sym::Zero; 10]);
        let iters = converge(&mut a, &mut b, 100);
        assert!(a.same_as(&b));
        assert!(iters <= 20, "took {iters}");
        assert!(a.chunks() >= 6);
    }

    #[test]
    fn corrupted_k_hash_resets_and_recovers() {
        let src = CrsSource::new(7);
        let mut a = transcript(&[Sym::Zero; 5]);
        let mut sa = MpState::new();
        let lbl = |slot| SeedLabel {
            iteration: 0,
            channel: 0,
            slot,
        };
        let ma = sa.prepare(&mut a, 16, &mut *src.stream(lbl(0)), || src.stream(lbl(1)));
        // Peer's k-hash arrives corrupted.
        let r = RecvMpMessage {
            h_k: Some(ma.h_k ^ 1),
            h_full: Some(ma.h_full),
            h_mpc1: Some(ma.h_mpc1),
            h_mpc2: Some(ma.h_mpc2),
        };
        let d = sa.process(&ma, &r, &mut a);
        assert_eq!(d.status, LinkStatus::MeetingPoints);
        assert_eq!(d.truncated_to, None);
        assert_eq!(sa.k, 0, "counter resets for resync");
        assert_eq!(a.chunks(), 5, "no truncation on k mismatch");
    }

    #[test]
    fn deleted_message_is_treated_as_mismatch() {
        let src = CrsSource::new(9);
        let mut a = transcript(&[Sym::Zero; 5]);
        let mut sa = MpState::new();
        let lbl = |slot| SeedLabel {
            iteration: 0,
            channel: 0,
            slot,
        };
        let ma = sa.prepare(&mut a, 8, &mut *src.stream(lbl(0)), || src.stream(lbl(1)));
        let d = sa.process(&ma, &RecvMpMessage::default(), &mut a);
        assert_eq!(d.status, LinkStatus::MeetingPoints);
        assert_eq!(a.chunks(), 5);
    }

    #[test]
    fn wire_roundtrip() {
        let msg = MpMessage {
            h_k: 0xAB,
            h_full: 0xCD,
            h_mpc1: 0x12,
            h_mpc2: 0x34,
            mpc1: 8,
            mpc2: 4,
        };
        let bits: Vec<Option<bool>> = msg.to_bits(8).into_iter().map(Some).collect();
        let r = RecvMpMessage::from_bits(&bits, 8);
        assert_eq!(r.h_k, Some(0xAB));
        assert_eq!(r.h_full, Some(0xCD));
        assert_eq!(r.h_mpc1, Some(0x12));
        assert_eq!(r.h_mpc2, Some(0x34));
        // A single deleted bit invalidates only its field.
        let mut bits2 = bits.clone();
        bits2[8] = None; // first bit of h_full
        let r2 = RecvMpMessage::from_bits(&bits2, 8);
        assert_eq!(r2.h_k, Some(0xAB));
        assert_eq!(r2.h_full, None);
        assert_eq!(r2.h_mpc1, Some(0x12));
    }

    #[test]
    fn empty_transcripts_agree() {
        let mut a = LinkTranscript::new();
        let mut b = LinkTranscript::new();
        assert_eq!(converge(&mut a, &mut b, 3), 1);
    }

    #[test]
    fn word_marshalling_matches_wire_bits() {
        let msg = MpMessage {
            h_k: 0x0ABC_DEF9_8765_4321,
            h_full: 0x0123_4567_89AB_CDEF,
            h_mpc1: 0x0F0F_F0F0_AA55_33CC,
            h_mpc2: 0x0313_3700_C0FF_EE42,
            mpc1: 8,
            mpc2: 4,
        };
        for tau in [1u32, 7, 8, 16, 17, 31, 32, 33, 48, 60] {
            let mut words = [0u64; 4];
            let nbits = msg.to_words(tau, &mut words);
            assert_eq!(nbits, 4 * tau as usize);
            assert_eq!(MpMessage::wire_words(tau), nbits.div_ceil(64));
            for o in 0..nbits {
                assert_eq!(
                    words[o / 64] >> (o % 64) & 1 == 1,
                    msg.wire_bit(o, tau),
                    "tau {tau} bit {o}"
                );
            }
            // Full-presence lanes decode to the same fields as from_bits.
            let presence = {
                let mut p = [0u64; 4];
                for o in 0..nbits {
                    p[o / 64] |= 1 << (o % 64);
                }
                p
            };
            let r = RecvMpMessage::from_words(&words, &presence, tau);
            let bits: Vec<Option<bool>> = msg.to_bits(tau).into_iter().map(Some).collect();
            let want = RecvMpMessage::from_bits(&bits, tau);
            assert_eq!(r.h_k, want.h_k, "tau {tau}");
            assert_eq!(r.h_full, want.h_full);
            assert_eq!(r.h_mpc1, want.h_mpc1);
            assert_eq!(r.h_mpc2, want.h_mpc2);
            // One deleted bit kills exactly its field.
            let mut p2 = presence;
            let dead = tau as usize; // first bit of h_full
            p2[dead / 64] &= !(1 << (dead % 64));
            let r2 = RecvMpMessage::from_words(&words, &p2, tau);
            assert_eq!(r2.h_k, want.h_k);
            assert_eq!(r2.h_full, None);
            assert_eq!(r2.h_mpc1, want.h_mpc1);
            assert_eq!(r2.h_mpc2, want.h_mpc2);
        }
    }
}
