//! Instrumentation: the measurable pieces of the §4.1 potential argument.
//!
//! The analysis tracks, per iteration, the per-link agreement `G_{u,v}`
//! (Eq. 1), the global floor `G* = min G_{u,v}` (Eq. 3), the ceiling
//! `H* = max |T_{u,v}|` (Eq. 4), the lag `B* = H* − G*` (Eq. 5), and the
//! error-and-hash-collision count `EHC`. The exact meeting-points term
//! `ϕ_{u,v}` (Eq. 39) lives in the unavailable appendix, so the exported
//! `potential_proxy` uses a documented stand-in with the same shape:
//!
//! ```text
//! φ̂ = (K/m)·Σ G_e − 2K·Σ B_e − 3K·B* + 10K·EHC
//! ```
//!
//! which preserves the qualitative behavior the experiments plot (F6):
//! steady growth of K per clean iteration, dips at error bursts repaid by
//! the EHC term.

use serde::Serialize;

/// One per-iteration measurement row.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IterationSample {
    /// Iteration index.
    pub iteration: u64,
    /// `G*` — chunks the whole network agrees on.
    pub g_star: usize,
    /// `H*` — longest transcript anywhere.
    pub h_star: usize,
    /// `B* = H* − G*`.
    pub b_star: usize,
    /// `Σ_e G_e`.
    pub sum_g: usize,
    /// `Σ_e B_e`.
    pub sum_b: usize,
    /// Cumulative errors + hash collisions observed so far.
    pub ehc: u64,
    /// Cumulative communication (bits) so far.
    pub cc: u64,
    /// Corruptions applied so far.
    pub corruptions: u64,
    /// The φ̂ proxy described in the module docs.
    pub potential_proxy: f64,
}

/// Collected trace plus headline counters.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Instrumentation {
    /// Per-iteration samples (only when tracing was requested).
    pub samples: Vec<IterationSample>,
    /// Full-transcript hash collisions detected (hashes equal, transcripts
    /// different) across all links and iterations.
    pub hash_collisions: u64,
    /// Meeting-point rollbacks that landed on non-matching prefixes
    /// (mpc-level collisions).
    pub bad_rollbacks: u64,
    /// Meeting-points `k, E` counter resets caused by a corrupted or
    /// mismatching `h(k)` (summed over links × iterations). Every reset
    /// restarts a link's repair loop from scratch, so this is the
    /// detection-latency cost a meeting-points attack inflicts.
    pub mp_resets: u64,
    /// Meeting-point rollbacks applied (transcript truncations decided by
    /// the meeting-points phase).
    pub mp_truncations: u64,
    /// Iterations in which at least one party sat out the simulation
    /// phase (`net_correct` false somewhere) — the stall metric of §1.2:
    /// a stalled iteration burns a full phase round-trip without
    /// simulating a chunk everywhere.
    pub stalled_iterations: u64,
    /// Transcript truncations performed by the rewind wave (own sends and
    /// honored requests), summed over iterations.
    pub rewind_truncations: u64,
    /// Deepest rewind wave observed: the maximum, over rewind phases, of
    /// the number of distinct rounds within one phase in which at least
    /// one truncation happened. ≥ 2 means a *multi-level* rewind — a
    /// request propagated and triggered further rollbacks downstream.
    pub rewind_wave_depth: u64,
    /// Scheduled link outage transitions applied by the fault layer
    /// (down-transitions only; crash isolation is counted separately).
    pub links_downed: u64,
    /// Σ over wire rounds of the number of crashed parties — the total
    /// party-round downtime the run absorbed.
    pub crash_rounds: u64,
    /// Symbols (honest or adversarial) silently dropped by downed links
    /// and crash isolation.
    pub masked_symbols: u64,
    /// Rewind-wave truncations performed at or after the first scheduled
    /// fault round — the repair work attributable to fault resync rather
    /// than ordinary noise recovery.
    pub resync_rewinds: u64,
    /// Numeric [`crate::Verdict`] code (0 = decoded correct, 1 = noise
    /// overwhelmed, 2 = fault churn); mirrors `SimOutcome::verdict` for
    /// serialization.
    pub degraded_reason: u8,
}

impl Instrumentation {
    /// Computes the potential proxy for a sample.
    pub fn proxy(k: usize, m: usize, sum_g: usize, sum_b: usize, b_star: usize, ehc: u64) -> f64 {
        let k = k as f64;
        (k / m as f64) * sum_g as f64 - 2.0 * k * sum_b as f64 - 3.0 * k * b_star as f64
            + 10.0 * k * ehc as f64
    }

    /// The adversary-search fitness numerator: total instrumented damage
    /// an attack inflicted — repair-loop restarts (`mp_resets`), burnt
    /// phase round-trips (`stalled_iterations`) and the deepest rewind
    /// cascade (`rewind_wave_depth`). Each term is a unit of progress
    /// the simulation lost and has to buy back.
    pub fn attack_damage(&self) -> u64 {
        self.mp_resets + self.stalled_iterations + self.rewind_wave_depth
    }

    /// [`Instrumentation::attack_damage`] per corruption-budget unit —
    /// the fitness the adversary search maximizes. A `budget` of 0 (or
    /// `u64::MAX`, the unbounded sentinel) scores as damage per single
    /// corruption so budgetless runs stay comparable.
    pub fn damage_per_budget(&self, budget: u64) -> f64 {
        let units = if budget == 0 || budget == u64::MAX {
            1
        } else {
            budget
        };
        self.attack_damage() as f64 / units as f64
    }
}
