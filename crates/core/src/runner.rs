//! The noise-resilient simulation (Algorithm 1 / A / B / C).
//!
//! [`Simulation`] compiles a noiseless [`Workload`] Π into the padded,
//! chunked Π′ and runs the paper's iteration loop over a noisy
//! [`Network`]: meeting points → flag passing → simulation → rewind, with
//! an optional randomness-exchange prologue (Algorithm 5) when no CRS is
//! assumed. The [`SimOutcome`] reports success against the noiseless
//! reference run, communication blow-up, and instrumentation.
//!
//! Hot-path layout: all per-party state ([`SimParty`]) is **flat** —
//! neighbor-indexed dense vectors addressed through the graph's
//! precomputed [`netgraph::Graph::link_src_nbr`]/`link_dst_nbr` tables,
//! bitsets for per-neighbor flags, and a [`RunScratch`] arena that pools
//! the per-chunk allocations so repeated trials ([`Simulation::run_with_scratch`])
//! allocate nothing per chunk. Transcript hashing is incremental (see
//! [`crate::transcript`]): each link owns a persistent sketch, and the
//! meeting-points phase hashes `O(τ)` bits per link per iteration instead
//! of the whole transcript.
//!
//! Wire rounds are **word-batched** where the rounds are independent
//! ([`WireMode::Batched`], the default): the 4τ meeting-points rounds
//! marshal each link's [`MpMessage`] into a [`netsim::FrameBatch`] lane
//! once ([`MpMessage::to_words`]) and go through a single
//! [`netsim::Network::step_rounds_into`] call, as does the Algorithm 5
//! randomness-exchange prologue (LinkId-indexed dense lanes end to end).
//! Flag passing is data-dependent round to round, so it stays bit-serial
//! but drives precompiled per-round event schedules; the rewind wave
//! tracks which parties can still send (truncation events only). Chunk
//! slot tables and per-neighbor symbol positions come precompiled from
//! [`protocol::ChunkedProtocol`] (`party_slots_cached`/`party_plan`),
//! and party snapshots are copy-on-write ([`protocol::ChunkedParty`]),
//! so an iteration deep-clones only states that actually advance Π.
//! [`WireMode::Reference`] keeps the bit-serial rounds as the executable
//! specification — the `wire_batch` integration suite cross-checks
//! byte-identical [`SimOutcome`]s between the modes.

// Throughout this module `u` is simultaneously a node id (sent on the
// wire, compared against link endpoints) and the index into the
// per-party state vectors; iterator-based rewrites of those loops obscure
// that correspondence.
#![allow(clippy::needless_range_loop)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::artifact::SimStatics;
use crate::config::{
    AdversaryClass, HashingMode, RandomnessMode, SchemeConfig, SeedExpansion, WireMode,
};

use crate::fault::FaultPlan;
use crate::instrument::{Instrumentation, IterationSample};
use crate::meeting::{transcript_hash, LinkStatus, MpMessage, MpState, RecvMpMessage};
use crate::transcript::{sym_delta, LinkTranscript, TranscriptHasher, SKETCH_BITS};
use netgraph::{DirectedLink, EdgeId, Graph, LinkId, NodeId};
use netsim::{
    AdaptiveView, Adversary, Corruption, EdgeMpView, FlagView, FrameBatch, MpSideView, NetStats,
    Network, PhaseGeometry, PhasePos, RoundFrame,
};
use protocol::reference::{run_reference, ReferenceRun};
use protocol::{ChunkRecord, ChunkedParty, ChunkedProtocol, SlotKind, Sym, Workload};
use rscode::{BinaryCode, BinaryWord};
use smallbias::{
    sketch_column_pair, splitmix64, CrsSource, DeltaBiasedSource, SeedLabel, SeedSource, Xoshiro256,
};

/// Seed slot of the per-iteration `h(k)` hash.
const SLOT_K: u32 = 0;
/// Seed slot of the per-iteration outer transcript hashes.
const SLOT_OUTER: u32 = 1;
/// Seed slot of the persistent per-link sketch (addressed at iteration 0;
/// the sketch seed is iteration-independent by design — that is what makes
/// the fold cacheable).
const SLOT_SKETCH: u32 = 2;
/// Seed slots per (iteration, channel) label pair.
const SEED_SLOTS: u64 = 3;

/// Label of the persistent sketch seed of `edge`.
fn sketch_label(edge: EdgeId) -> SeedLabel {
    SeedLabel {
        iteration: 0,
        channel: edge as u64,
        slot: SLOT_SKETCH,
    }
}

/// Why a run degraded instead of decoding correctly.
///
/// The taxonomy is deliberately coarse: it answers "was the adversary or
/// the fault schedule to blame?", which is what the churn experiments
/// aggregate over. Finer attribution lives in the fault counters of
/// [`Instrumentation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// No faults were injected: the corruption load alone exceeded what
    /// the iteration budget could repair.
    NoiseOverwhelmed,
    /// At least one scheduled fault fired (link outage or party crash):
    /// the churn plus any noise exceeded the repair budget.
    FaultChurn,
}

/// The explicit terminal verdict of a run: decoded correctly, or degraded
/// with a stated reason. A run is **never silently wrong** — `Degraded`
/// is an explicit outcome, pinned by the invariant suite to coincide
/// exactly with `success == false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Transcripts and outputs both match the noiseless reference.
    DecodedCorrect,
    /// The run terminated with incorrect transcripts or outputs, and says
    /// so explicitly.
    Degraded {
        /// Coarse blame attribution.
        reason: DegradeReason,
    },
}

impl Verdict {
    /// Stable numeric code for serialized rows: 0 = decoded correct,
    /// 1 = noise overwhelmed, 2 = fault churn.
    pub fn code(&self) -> u8 {
        match self {
            Verdict::DecodedCorrect => 0,
            Verdict::Degraded {
                reason: DegradeReason::NoiseOverwhelmed,
            } => 1,
            Verdict::Degraded {
                reason: DegradeReason::FaultChurn,
            } => 2,
        }
    }

    /// Whether the verdict is [`Verdict::DecodedCorrect`].
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::DecodedCorrect)
    }
}

/// Result of one noisy simulation.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// `transcripts_ok && outputs_ok`.
    pub success: bool,
    /// Every link transcript at both endpoints matches the noiseless
    /// reference on all real chunks.
    pub transcripts_ok: bool,
    /// Every party's replayed output equals its reference output.
    pub outputs_ok: bool,
    /// Engine accounting (CC, corruptions, rounds).
    pub stats: NetStats,
    /// `CC(Π)` — bits of the original unpadded protocol.
    pub payload_cc: u64,
    /// `|Π| × 5K` — bits of the padded chunked protocol.
    pub padded_cc: u64,
    /// Communication blow-up `CC(sim) / CC(Π)` (the inverse of the rate).
    pub blowup: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Final `G*` (endpoint agreement, in chunks).
    pub g_star: usize,
    /// Final `B*`.
    pub b_star: usize,
    /// Collected instrumentation.
    pub instrumentation: Instrumentation,
    /// Explicit terminal verdict: [`Verdict::DecodedCorrect`] or
    /// [`Verdict::Degraded`] with a reason — never silently wrong.
    pub verdict: Verdict,
}

/// Options for [`Simulation::run`].
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Hard cap on adversarial corruptions.
    pub noise_budget: u64,
    /// Record a per-iteration [`IterationSample`] trace.
    pub record_trace: bool,
    /// Pass the live view to the adversary (required by non-oblivious
    /// attacks; harmless for oblivious ones, which ignore it).
    pub expose_view: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            noise_budget: u64::MAX,
            record_trace: false,
            expose_view: true,
        }
    }
}

/// Reusable buffers of one simulation run: the two scratch wire frames and
/// the per-chunk allocation arena.
///
/// [`Simulation::run`] creates one internally;
/// [`Simulation::run_with_scratch`] lets a trial driver (`bench`'s
/// `run_many`) carry the same scratch across trials so repeated runs stop
/// allocating per chunk. A scratch is topology-agnostic: it resizes itself
/// to whatever graph the next run uses.
#[derive(Default)]
pub struct RunScratch {
    frames: Option<Frames>,
    arena: Arena,
    /// Batch buffers of the exchange prologue and the per-iteration
    /// meeting-points rounds.
    batches: Option<Batches>,
    /// Batch buffers of the (disabled-)rewind phase, kept separate so
    /// alternating phase geometries never thrash one slot.
    rewind_batches: Option<Batches>,
    /// Reusable party-tracking buffers of the rewind wave.
    rewind_parties: RewindScratch,
    /// Persistent intra-trial worker pool, rebuilt only when the resolved
    /// thread count changes. A run enters a parallel region twice per
    /// iteration; keeping the workers alive across regions (and across
    /// trials sharing this scratch) is what makes those regions cheaper
    /// than the serial loop they replace.
    pool: Option<crossbeam::WorkerPool>,
}

/// The rewind wave's active-set tracking buffers (see
/// [`Simulation`]'s rewind phase): pooled here so an iteration allocates
/// nothing.
#[derive(Default)]
struct RewindScratch {
    active: Vec<NodeId>,
    next: Vec<NodeId>,
    marked: Vec<bool>,
}

impl RunScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        RunScratch::default()
    }

    fn frames_for(&mut self, graph: &Graph) -> &mut Frames {
        let need = graph.link_count();
        if self.frames.as_ref().map(|f| f.tx.link_count()) != Some(need) {
            self.frames = Some(Frames {
                tx: RoundFrame::for_graph(graph),
                rx: RoundFrame::for_graph(graph),
            });
        }
        self.frames.as_mut().unwrap()
    }
}

/// The batched counterpart of [`Frames`]: one tx and one rx
/// [`FrameBatch`], re-shaped in place whenever its phase needs a
/// different `(links, rounds)` geometry. Each batched phase family gets
/// its own slot in [`RunScratch`] (meeting-points/exchange vs. rewind),
/// so after warm-up a run never reallocates a batch.
struct Batches {
    tx: FrameBatch,
    rx: FrameBatch,
}

/// The scratch's batch buffers, (re)sized to `links × rounds`.
fn batches_for(slot: &mut Option<Batches>, links: usize, rounds: usize) -> &mut Batches {
    let fits = slot
        .as_ref()
        .map(|b| b.tx.link_count() == links && b.tx.rounds() == rounds)
        .unwrap_or(false);
    if !fits {
        *slot = Some(Batches {
            tx: FrameBatch::new(links, rounds),
            rx: FrameBatch::new(links, rounds),
        });
    }
    slot.as_mut().unwrap()
}

/// Pool of retired per-chunk allocations.
#[derive(Default)]
struct Arena {
    syms: Vec<Vec<Sym>>,
}

/// A configured, compiled simulation instance.
pub struct Simulation<'w> {
    workload: &'w dyn Workload,
    cfg: SchemeConfig,
    statics: Arc<SimStatics>,
    reference: ReferenceRun,
    geometry: PhaseGeometry,
    iterations: usize,
    trial_seed: u64,
    exchange_bits: usize,
    max_link_syms: usize,
}

impl<'w> Simulation<'w> {
    /// Compiles `workload` under `cfg`. `trial_seed` drives all private
    /// party randomness (exchanged seeds).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid for the workload's graph.
    pub fn new(workload: &'w dyn Workload, cfg: SchemeConfig, trial_seed: u64) -> Self {
        cfg.validate(workload.graph());
        let statics = Arc::new(SimStatics::compile(workload, cfg.chunk_bits()));
        Simulation::with_statics(workload, cfg, trial_seed, statics)
    }

    /// [`Simulation::new`] with the structural artifacts supplied by the
    /// caller — typically an [`crate::ArtifactCache`] entry shared across
    /// requests. Because [`SimStatics::compile`] is deterministic in the
    /// workload's structure, running with cached statics is byte-identical
    /// to compiling fresh; only the compile cost changes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid for the workload's graph. In debug
    /// builds, also asserts that `statics` fingerprints to exactly what
    /// `(workload, cfg.chunk_bits())` would compile to — handing in
    /// statics for a different structure is a caller bug.
    pub fn with_statics(
        workload: &'w dyn Workload,
        cfg: SchemeConfig,
        trial_seed: u64,
        statics: Arc<SimStatics>,
    ) -> Self {
        cfg.validate(workload.graph());
        debug_assert_eq!(
            statics.fingerprint,
            crate::artifact::statics_fingerprint(workload, cfg.chunk_bits()),
            "statics compiled for a different (graph, schedule, chunk_bits)"
        );
        let reference = run_reference(workload, &statics.proto);
        let iterations = cfg.iterations(statics.proto.real_chunks());
        let exchange_bits = match &cfg.randomness {
            RandomnessMode::Crs { .. } => 0,
            RandomnessMode::Exchanged {
                code_repetitions, ..
            } => {
                let code = BinaryCode::rate_one_third();
                code.encoded_len(128) * code_repetitions.max(&1)
            }
        };
        let geometry = PhaseGeometry {
            setup: exchange_bits as u64,
            meeting_points: 4 * cfg.hash_bits as u64,
            flag_passing: statics.plan.rounds() as u64,
            simulation: 1 + statics.proto.max_rounds_per_chunk() as u64,
            rewind: cfg.rewind_rounds as u64,
        };
        let max_link_syms = max_link_syms(&statics.proto, &statics.graph);
        Simulation {
            workload,
            cfg,
            statics,
            reference,
            geometry,
            iterations,
            trial_seed,
            exchange_bits,
            max_link_syms,
        }
    }

    /// The fixed phase layout (public; hand it to phase-targeted attacks).
    pub fn geometry(&self) -> PhaseGeometry {
        self.geometry
    }

    /// Replaces the run's fault schedule after construction.
    ///
    /// The plan normally travels inside [`SchemeConfig::faults`], but
    /// trial drivers often need the compiled geometry (predicted rounds)
    /// to *build* the plan, which they only have once the simulation
    /// exists — this setter closes that ordering loop without recompiling
    /// statics.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.cfg.faults = plan;
    }

    /// The chunked protocol Π′.
    pub fn proto(&self) -> &ChunkedProtocol {
        &self.statics.proto
    }

    /// The noiseless reference run.
    pub fn reference(&self) -> &ReferenceRun {
        &self.reference
    }

    /// Iterations the simulation will execute.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// A rough prediction of total communication, for sizing noise budgets
    /// before running: metadata plus one chunk per iteration plus the
    /// exchange.
    pub fn predicted_cc(&self) -> u64 {
        let m = self.statics.graph.edge_count() as u64;
        let per_iter = 2 * m * 4 * self.cfg.hash_bits as u64  // meeting points
            + 2 * (self.statics.graph.node_count() as u64 - 1)        // flag passing
            + self.cfg.chunk_bits() as u64; // simulated chunk
        self.exchange_bits as u64 * m + self.iterations as u64 * per_iter
    }

    /// Runs the simulation against `adversary`.
    pub fn run(&self, adversary: Box<dyn Adversary>, opts: RunOptions) -> SimOutcome {
        self.run_with_scratch(adversary, opts, &mut RunScratch::new())
    }

    /// Runs the simulation against `adversary`, reusing `scratch`'s
    /// buffers. Outcomes are identical to [`Simulation::run`]; trial
    /// drivers pass the same scratch to consecutive runs so per-chunk and
    /// per-round allocations are paid once per thread, not per trial.
    pub fn run_with_scratch(
        &self,
        adversary: Box<dyn Adversary>,
        opts: RunOptions,
        scratch: &mut RunScratch,
    ) -> SimOutcome {
        let mut net = Network::new(self.statics.graph.clone(), adversary, opts.noise_budget);
        // Wire-level fault injection: compiled once per run, applied by
        // the engine on both the serial and batched step paths. The empty
        // plan installs nothing, keeping the no-fault fast path (and all
        // existing byte-identity fixtures) untouched.
        let first_fault = self.cfg.faults.first_round();
        if !self.cfg.faults.is_empty() {
            net.install_faults(self.cfg.faults.compile(&self.statics.graph));
        }
        let (mut parties, mut lanes) = self.init_state();
        // Resolved once per run so `Parallelism::Auto` reads the
        // environment once, not per phase; the pool persists across runs
        // sharing this scratch as long as the count stays the same.
        let threads = self.cfg.parallelism.resolve();
        if scratch.pool.as_ref().map(crossbeam::WorkerPool::threads) != Some(threads) {
            scratch.pool = Some(crossbeam::WorkerPool::new(threads));
        }
        scratch.frames_for(&self.statics.graph);
        let RunScratch {
            frames,
            arena,
            batches,
            rewind_batches,
            rewind_parties,
            pool,
        } = scratch;
        let pool = pool.as_ref().expect("pool sized above");
        let fr = frames.as_mut().expect("frames sized above");
        let sources = self.establish_randomness(&mut net, fr, batches);
        self.attach_hashers(&mut lanes, &sources);
        let mut inst = Instrumentation::default();
        // The adversary's cross-iteration scratch slot: owned by the run,
        // surfaced through the view, never read by honest parties.
        let memory = Cell::new(0u64);

        for iter in 0..self.iterations {
            self.meeting_points_phase(
                &mut net,
                &mut parties,
                &mut lanes,
                &sources,
                iter as u64,
                pool,
                &mut inst,
                fr,
                batches,
                &memory,
                opts,
            );
            self.flag_passing_phase(
                &mut net,
                &mut parties,
                &lanes,
                &sources,
                &mut inst,
                fr,
                &memory,
                opts,
            );
            self.simulation_phase(
                &mut net,
                &mut parties,
                &mut lanes,
                &sources,
                iter as u64,
                pool,
                fr,
                arena,
                &memory,
                opts,
            );
            let rewinds_before = inst.rewind_truncations;
            self.rewind_phase(
                &mut net,
                &mut parties,
                &mut lanes,
                &sources,
                &mut inst,
                fr,
                rewind_batches,
                rewind_parties,
                &memory,
                opts,
            );
            // Attribute rewind-wave repair work performed at or after the
            // first scheduled fault to resync (the documented recovery
            // rule: crashed/partitioned neighborhoods re-converge through
            // the ordinary meeting-point + rewind machinery).
            if first_fault.is_some_and(|f| net.stats().rounds > f) {
                inst.resync_rewinds += inst.rewind_truncations - rewinds_before;
            }
            if opts.record_trace {
                self.sample(&lanes, &net, iter as u64, &mut inst);
            }
        }
        let outcome = self.evaluate(&parties, &lanes, &net, inst);
        // Recycle this run's buffers into the scratch for the next trial:
        // every chunk's symbol vector (the transcripts are fully read by
        // `evaluate` above) plus the lane-local pools.
        for lane in &mut lanes {
            lane.t.truncate_into(0, &mut arena.syms);
            arena.syms.push(std::mem::take(&mut lane.inprog));
            arena.syms.append(&mut lane.pool);
        }
        outcome
    }

    /// Dense index of the directed link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if `(from, to)` is not an edge of the topology.
    #[inline]
    fn lid(&self, from: NodeId, to: NodeId) -> LinkId {
        self.statics
            .graph
            .link_id(DirectedLink { from, to })
            .expect("send on non-edge")
    }

    fn init_state(&self) -> (Vec<SimParty>, Vec<LinkLane>) {
        let parties = (0..self.statics.graph.node_count())
            .map(|u| {
                let neighbors: Vec<NodeId> = self.statics.graph.neighbors(u).to_vec();
                let deg = neighbors.len();
                let lid_out: Vec<LinkId> = neighbors.iter().map(|&v| self.lid(u, v)).collect();
                let lid_in: Vec<LinkId> = neighbors.iter().map(|&v| self.lid(v, u)).collect();
                SimParty {
                    node: u,
                    neighbors,
                    lid_out,
                    lid_in,
                    snapshots: vec![ChunkedParty::spawn(self.workload, u)],
                    status: true,
                    fp_agg: true,
                    net_correct: true,
                    sim_active: false,
                    sim_chunk: 0,
                    excluded: NbrSet::with_capacity(deg),
                    work: None,
                    pslot_cursor: 0,
                    already_rewound: NbrSet::with_capacity(deg),
                }
            })
            .collect();
        let lanes = (0..self.statics.graph.link_count())
            .map(|_| LinkLane::new())
            .collect();
        (parties, lanes)
    }

    /// Attaches the per-link sketch backends (incremental or reference,
    /// per the config) once the seed sources exist. Links are edge-major
    /// (`lid(u → v) = 2e` for `u < v`), so the lane's edge id is `lid / 2`.
    fn attach_hashers(&self, lanes: &mut [LinkLane], sources: &Sources) {
        for (lid, lane) in lanes.iter_mut().enumerate() {
            let src = Arc::clone(&sources.by_link[lid]);
            let label = sketch_label(lid / 2);
            let hasher = match self.cfg.hashing {
                HashingMode::Incremental => TranscriptHasher::incremental(src, label),
                HashingMode::Reference => TranscriptHasher::reference(src, label),
            };
            lane.t.attach_hasher(hasher);
        }
    }

    /// Randomness provisioning: CRS, or the Algorithm 5 exchange.
    ///
    /// The exchange's wire state is [`LinkId`]-indexed and dense end to
    /// end: each transmitting link's coded seed is packed into a word
    /// lane, pushed through one batched engine step (or bit-serially
    /// under [`WireMode::Reference`] — identical receptions), and decoded
    /// straight off the received lane.
    fn establish_randomness(
        &self,
        net: &mut Network,
        fr: &mut Frames,
        batches: &mut Option<Batches>,
    ) -> Sources {
        // `by_link[lid(u → v)]` is the source party `u` uses for the link.
        match &self.cfg.randomness {
            RandomnessMode::Crs { master, .. } => {
                let src: Arc<dyn SeedSource> = Arc::new(CrsSource::new(*master));
                Sources {
                    by_link: self
                        .statics
                        .graph
                        .links()
                        .iter()
                        .map(|_| Arc::clone(&src))
                        .collect(),
                }
            }
            RandomnessMode::Exchanged {
                expansion,
                code_repetitions,
            } => {
                let reps = (*code_repetitions).max(1);
                let code = BinaryCode::rate_one_third();
                let m = self.statics.graph.edge_count();
                let rounds = self.exchange_bits;
                let lane_words = rounds.div_ceil(64).max(1);
                // Per edge: the lower endpoint samples and transmits a
                // 128-bit seed, RS-coded and repeated, packed into a lane.
                let mut true_seeds: Vec<(u64, u64)> = Vec::with_capacity(m);
                let mut lanes: Vec<u64> = vec![0; m * lane_words];
                for (e, _, _) in self.statics.graph.edges() {
                    let mut rng =
                        Xoshiro256::seeded(self.trial_seed ^ splitmix64(&mut (e as u64 + 1)));
                    let (x, y) = (rng.next_u64(), rng.next_u64());
                    true_seeds.push((x, y));
                    let mut seed_bits = Vec::with_capacity(128);
                    for j in 0..64 {
                        seed_bits.push((x >> j) & 1 == 1);
                    }
                    for j in 0..64 {
                        seed_bits.push((y >> j) & 1 == 1);
                    }
                    let one = code.encode(&seed_bits).bits;
                    let lane = &mut lanes[e * lane_words..(e + 1) * lane_words];
                    for o in 0..rounds {
                        if one[o % one.len()] {
                            lane[o / 64] |= 1 << (o % 64);
                        }
                    }
                }
                // Transmit, one bit per edge per round (sender = lower id).
                let elids: Vec<LinkId> = self
                    .statics
                    .graph
                    .edges()
                    .map(|(_, u, v)| self.lid(u, v))
                    .collect();
                let mut received: Vec<Vec<Option<bool>>> = vec![vec![None; rounds]; m];
                match self.cfg.wire {
                    WireMode::Batched => {
                        let b = batches_for(batches, self.statics.graph.link_count(), rounds);
                        b.tx.clear_all();
                        for e in 0..m {
                            b.tx.set_bits(
                                elids[e],
                                &lanes[e * lane_words..(e + 1) * lane_words],
                                rounds,
                            );
                        }
                        net.step_rounds_into(&b.tx, None, &mut b.rx);
                        for e in 0..m {
                            let (value, presence) = b.rx.lane(elids[e]);
                            for o in 0..rounds {
                                if presence[o / 64] >> (o % 64) & 1 == 1 {
                                    received[e][o] = Some(value[o / 64] >> (o % 64) & 1 == 1);
                                }
                            }
                        }
                    }
                    WireMode::Reference => {
                        for o in 0..rounds {
                            fr.tx.clear_all();
                            for e in 0..m {
                                let bit = lanes[e * lane_words + o / 64] >> (o % 64) & 1 == 1;
                                fr.tx.set(elids[e], bit);
                            }
                            net.step_into(&fr.tx, None, &mut fr.rx);
                            for e in 0..m {
                                if let Some(bit) = fr.rx.get(elids[e]) {
                                    received[e][o] = Some(bit);
                                }
                            }
                        }
                    }
                }
                // Decode at the receivers, flattening straight to the
                // dense LinkId index (links are edge-major: lid(u → v) =
                // 2e for u < v, 2e + 1 the other way).
                let mut by_link: Vec<Arc<dyn SeedSource>> =
                    Vec::with_capacity(self.statics.graph.link_count());
                for (e, _, _) in self.statics.graph.edges() {
                    let (x, y) = true_seeds[e];
                    by_link.push(self.expand_seed(*expansion, x, y));
                    let (dx, dy) = decode_seed(&code, &received[e], reps);
                    by_link.push(self.expand_seed(*expansion, dx, dy));
                }
                Sources { by_link }
            }
        }
    }

    fn expand_seed(&self, expansion: SeedExpansion, x: u64, y: u64) -> Arc<dyn SeedSource> {
        match expansion {
            SeedExpansion::Prg => {
                let mut s = x;
                Arc::new(CrsSource::new(splitmix64(&mut s) ^ y.rotate_left(17)))
            }
            SeedExpansion::Aghp => {
                let m = self.statics.graph.edge_count() as u64;
                Arc::new(DeltaBiasedSource::new(
                    x,
                    y,
                    m,
                    SEED_SLOTS,
                    self.region_words() as u64,
                ))
            }
        }
    }

    /// Seed words reserved per (iteration, edge, slot) label in δ-biased
    /// mode. The binding constraint is the persistent sketch: τ_sketch
    /// interleaved words per word of the longest possible transcript. The
    /// per-iteration labels (`h(k)`: τ words, outer hashes: 2τ words per
    /// evaluation) fit with room to spare.
    fn region_words(&self) -> usize {
        let max_bits = (self.iterations + 2) * (32 + 2 * self.max_link_syms);
        SKETCH_BITS as usize * (max_bits / 64 + 2)
    }

    // ------------------------------------------------------------------
    // Phase 1: meeting points
    // ------------------------------------------------------------------
    #[allow(clippy::too_many_arguments)]
    fn meeting_points_phase(
        &self,
        net: &mut Network,
        parties: &mut [SimParty],
        lanes: &mut [LinkLane],
        sources: &Sources,
        iter: u64,
        pool: &crossbeam::WorkerPool,
        inst: &mut Instrumentation,
        fr: &mut Frames,
        batches: &mut Option<Batches>,
        memory: &Cell<u64>,
        opts: RunOptions,
    ) {
        let tau = self.cfg.hash_bits;
        let batched = self.cfg.wire == WireMode::Batched;
        // Prepare outgoing messages (O(τ) per link: sketch + outer hash).
        // This is the phase's hash-heavy hot loop; each lane is
        // self-contained (its own transcript hasher and a pure per-label
        // seed source), so the lane vector shards across worker threads by
        // contiguous LinkId range. The outcome is byte-identical to the
        // serial order because no lane reads another lane's state.
        let by_link = &sources.by_link[..];
        pool.run_chunks(lanes, 16, |start, shard| {
            for (off, lane) in shard.iter_mut().enumerate() {
                let lid = start + off;
                let src = &by_link[lid];
                let e = (lid / 2) as u64;
                let lbl = |slot| SeedLabel {
                    iteration: iter,
                    channel: e,
                    slot,
                };
                lane.mp_out =
                    lane.mp
                        .prepare(&mut lane.t, tau, &mut *src.stream(lbl(SLOT_K)), || {
                            src.stream(lbl(SLOT_OUTER))
                        });
                if !batched {
                    lane.mp_in.clear();
                    lane.mp_in.resize(4 * tau as usize, None);
                }
            }
        });
        // The 4τ wire rounds. Batched: every link's whole message is
        // marshalled into its lane once and the engine applies the
        // adversary to all rounds in a single pass — no per-round fill
        // loop over n·Δ link slots. (Every directed link speaks, so every
        // lane is overwritten; no clear needed.)
        if batched {
            let nbits = 4 * tau as usize;
            let b = batches_for(batches, self.statics.graph.link_count(), nbits);
            let mut words = [0u64; 4];
            for (lid, lane) in lanes.iter().enumerate() {
                let n = lane.mp_out.to_words(tau, &mut words);
                b.tx.set_bits(lid, &words, n);
            }
            self.step_batch(
                net,
                parties,
                lanes,
                sources,
                b,
                StepCtx::plain(iter, memory),
                opts,
            );
            // Process straight off the received lanes.
            let rx = &b.rx;
            for p in parties.iter_mut() {
                for ni in 0..p.neighbors.len() {
                    let lane = &mut lanes[p.lid_out[ni]];
                    let ours = lane.mp_out;
                    let (value, presence) = rx.lane(p.lid_in[ni]);
                    let theirs = RecvMpMessage::from_words(value, presence, tau);
                    let decision = lane.mp.process(&ours, &theirs, &mut lane.t);
                    inst.mp_resets += u64::from(decision.reset);
                    if let Some(g) = decision.truncated_to {
                        inst.mp_truncations += 1;
                        p.prune_snapshots(g);
                    }
                }
            }
        } else {
            for o in 0..4 * tau as usize {
                fr.tx.clear_all();
                for (lid, lane) in lanes.iter().enumerate() {
                    fr.tx.set(lid, lane.mp_out.wire_bit(o, tau));
                }
                self.step(
                    net,
                    parties,
                    lanes,
                    sources,
                    fr,
                    StepCtx::plain(iter, memory),
                    opts,
                );
                // `lid ^ 1` is the reverse direction: a lane's reception
                // buffer fills from the paired incoming link.
                for (lid, lane) in lanes.iter_mut().enumerate() {
                    if let Some(bit) = fr.rx.get(lid ^ 1) {
                        lane.mp_in[o] = Some(bit);
                    }
                }
            }
            // Process.
            for p in parties.iter_mut() {
                for ni in 0..p.neighbors.len() {
                    let lane = &mut lanes[p.lid_out[ni]];
                    let ours = lane.mp_out;
                    let theirs = RecvMpMessage::from_bits(&lane.mp_in, tau);
                    let decision = lane.mp.process(&ours, &theirs, &mut lane.t);
                    inst.mp_resets += u64::from(decision.reset);
                    if let Some(g) = decision.truncated_to {
                        inst.mp_truncations += 1;
                        p.prune_snapshots(g);
                    }
                }
            }
        }
        // Instrumentation: true full-hash collisions (global knowledge).
        for (e, _, _) in self.statics.graph.edges() {
            let lu = &lanes[2 * e];
            let lv = &lanes[2 * e + 1];
            if lu.mp_out.h_full == lv.mp_out.h_full && !lu.t.same_as(&lv.t) {
                inst.hash_collisions += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: flag passing
    // ------------------------------------------------------------------
    #[allow(clippy::too_many_arguments)]
    fn flag_passing_phase(
        &self,
        net: &mut Network,
        parties: &mut [SimParty],
        lanes: &[LinkLane],
        sources: &Sources,
        inst: &mut Instrumentation,
        fr: &mut Frames,
        memory: &Cell<u64>,
        opts: RunOptions,
    ) {
        // Compute own status (Algorithm 1 lines 6–13).
        for p in parties.iter_mut() {
            let min_chunk = p
                .lid_out
                .iter()
                .map(|&l| lanes[l].t.chunks())
                .min()
                .unwrap_or(0);
            let mp_busy = p
                .lid_out
                .iter()
                .any(|&l| lanes[l].mp.status == LinkStatus::MeetingPoints);
            let uneven = p.lid_out.iter().any(|&l| lanes[l].t.chunks() > min_chunk);
            p.status = !mp_busy && !uneven;
            p.fp_agg = p.status;
            p.net_correct = p.status; // provisional; refined below
        }
        // The up/down waves are data-dependent round to round (a parent's
        // send folds bits received in earlier rounds), so the phase steps
        // bit-serially in both wire modes — but each round touches only
        // its precompiled schedule entries instead of scanning all n
        // parties ([`FlagSchedule`]).
        let root = self.statics.tree.root();
        for o in 0..self.statics.plan.rounds() {
            fr.tx.clear_all();
            for &(u, lid) in &self.statics.flag_sched.up_sends[o] {
                fr.tx.set(lid, parties[u].fp_agg);
            }
            for &(u, lid) in &self.statics.flag_sched.down_sends[o] {
                let flag = if u == root {
                    parties[u].fp_agg
                } else {
                    parties[u].net_correct
                };
                fr.tx.set(lid, flag);
            }
            self.step(
                net,
                parties,
                lanes,
                sources,
                fr,
                StepCtx::plain(0, memory),
                opts,
            );
            for &(u, lid) in &self.statics.flag_sched.up_recvs[o] {
                // Deleted flag reads as stop (false).
                let bit = fr.rx.get(lid).unwrap_or(false);
                parties[u].fp_agg &= bit;
            }
            for &(u, lid) in &self.statics.flag_sched.down_recvs[o] {
                let bit = fr.rx.get(lid).unwrap_or(false);
                parties[u].net_correct = bit && parties[u].status;
            }
        }
        // The root's final flag is its own aggregate.
        parties[root].net_correct = parties[root].fp_agg && parties[root].status;
        if self.cfg.disable_flag_passing {
            // Ablation (F4): no global coordination — every party acts on
            // its local status alone.
            for p in parties.iter_mut() {
                p.net_correct = p.status;
            }
        }
        inst.stalled_iterations += u64::from(parties.iter().any(|p| !p.net_correct));
    }

    // ------------------------------------------------------------------
    // Phase 3: simulation
    // ------------------------------------------------------------------
    #[allow(clippy::too_many_arguments)]
    fn simulation_phase(
        &self,
        net: &mut Network,
        parties: &mut [SimParty],
        lanes: &mut [LinkLane],
        sources: &Sources,
        iter: u64,
        pool: &crossbeam::WorkerPool,
        fr: &mut Frames,
        arena: &mut Arena,
        memory: &Cell<u64>,
        opts: RunOptions,
    ) {
        // ⊥ round: non-participants announce themselves.
        fr.tx.clear_all();
        for p in parties.iter() {
            if !p.net_correct {
                for &lid in &p.lid_out {
                    fr.tx.set(lid, true);
                }
            }
        }
        self.step(
            net,
            parties,
            lanes,
            sources,
            fr,
            StepCtx::plain(iter, memory),
            opts,
        );
        for u in 0..parties.len() {
            let p = &mut parties[u];
            p.sim_active = p.net_correct;
            p.excluded.clear_all();
            p.work = None;
            for &lid in &p.lid_out {
                lanes[lid].inprog_active = false;
            }
            if !p.sim_active {
                continue;
            }
            for ni in 0..p.neighbors.len() {
                if fr.rx.get(p.lid_in[ni]).is_some() {
                    p.excluded.set(ni);
                }
            }
            // All transcripts have equal length here (status == 1).
            let c = p
                .lid_out
                .iter()
                .map(|&l| lanes[l].t.chunks())
                .min()
                .unwrap_or(0);
            p.sim_chunk = c;
            assert!(
                p.snapshots.len() > c,
                "snapshot chain broken: len {} need {}",
                p.snapshots.len(),
                c + 1
            );
            // Copy-on-write: the working state deep-clones only at this
            // chunk's first payload bit (never, for padding-only chunks).
            p.work = Some(p.snapshots[c].clone());
            p.pslot_cursor = 0;
            // Per-neighbor symbol positions come from the chunk shape's
            // precompiled [`protocol::PartyPlan`] — the per-iteration
            // layout walk this loop used to do.
            let plan = self.statics.proto.party_plan(c, u);
            for ni in 0..p.neighbors.len() {
                if plan.pair_syms[ni] > 0 && !p.excluded.contains(ni) {
                    let lane = &mut lanes[p.lid_out[ni]];
                    lane.inprog_active = true;
                    lane.sim_chunk = c as u64;
                    lane.inprog.clear();
                    lane.inprog.resize(plan.pair_syms[ni], Sym::Star);
                    // Stock the lane-local pool (serially) so the parallel
                    // commit below never touches the shared arena.
                    if lane.pool.is_empty() {
                        if let Some(v) = arena.syms.pop() {
                            lane.pool.push(v);
                        }
                    }
                }
            }
        }
        // Chunk rounds.
        let max_rounds = self.statics.proto.max_rounds_per_chunk();
        for jr in 0..max_rounds {
            fr.tx.clear_all();
            for p in parties.iter_mut() {
                if !p.sim_active {
                    continue;
                }
                let pslots = self.statics.proto.party_slots_cached(p.sim_chunk, p.node);
                let plan = self.statics.proto.party_plan(p.sim_chunk, p.node);
                while p.pslot_cursor < pslots.len() {
                    let slot = pslots[p.pslot_cursor];
                    if slot.round_in_chunk != jr || !slot.is_send {
                        break;
                    }
                    p.pslot_cursor += 1;
                    let bit = p.work.as_mut().unwrap().send(&slot);
                    let ni = self.statics.graph.link_src_nbr(slot.lid);
                    if !p.excluded.contains(ni) {
                        fr.tx.set(slot.lid, bit);
                        // Own sent bits are part of T_{u,v}.
                        let idx = plan.pos_out_idx(ni, jr);
                        lanes[slot.lid].inprog[idx] = Sym::from_bit(bit);
                    }
                }
            }
            self.step(
                net,
                parties,
                lanes,
                sources,
                fr,
                StepCtx::chunk(iter, jr, memory),
                opts,
            );
            for p in parties.iter_mut() {
                if !p.sim_active {
                    continue;
                }
                let pslots = self.statics.proto.party_slots_cached(p.sim_chunk, p.node);
                let plan = self.statics.proto.party_plan(p.sim_chunk, p.node);
                while p.pslot_cursor < pslots.len() {
                    let slot = pslots[p.pslot_cursor];
                    if slot.round_in_chunk != jr {
                        break;
                    }
                    debug_assert!(!slot.is_send);
                    p.pslot_cursor += 1;
                    let ni = self.statics.graph.link_dst_nbr(slot.lid);
                    if p.excluded.contains(ni) {
                        // Not simulating with that neighbor: feed the
                        // default, record nothing.
                        p.work.as_mut().unwrap().recv(&slot, None);
                        continue;
                    }
                    let got = fr.rx.get(slot.lid);
                    let idx = plan.pos_in_idx(ni, jr);
                    // The receiver's own copy of the link lives on the
                    // reverse lane (`lid ^ 1`).
                    lanes[slot.lid ^ 1].inprog[idx] = match got {
                        Some(b) => Sym::from_bit(b),
                        None => Sym::Star,
                    };
                    p.work.as_mut().unwrap().recv(&slot, got);
                }
            }
        }
        // Commit. The transcript appends (which feed each lane's
        // incremental hasher — the expensive part on large topologies)
        // shard across threads by LinkId range; each lane draws its
        // recycled symbol buffer from its own pool, never the shared
        // arena, so shards stay disjoint and the result is byte-identical
        // to the serial order.
        pool.run_chunks(lanes, 16, |_, shard| {
            for lane in shard.iter_mut() {
                if !lane.inprog_active {
                    continue;
                }
                lane.inprog_active = false;
                let mut syms = lane.pool.pop().unwrap_or_default();
                syms.clear();
                syms.extend_from_slice(&lane.inprog);
                lane.t.push(ChunkRecord {
                    chunk: lane.sim_chunk,
                    syms,
                });
            }
        });
        for p in parties.iter_mut() {
            if !p.sim_active {
                continue;
            }
            let work = p.work.take().unwrap();
            p.snapshots.truncate(p.sim_chunk + 1);
            p.snapshots.push(work);
        }
    }

    // ------------------------------------------------------------------
    // Phase 4: rewind
    // ------------------------------------------------------------------
    #[allow(clippy::too_many_arguments)]
    fn rewind_phase(
        &self,
        net: &mut Network,
        parties: &mut [SimParty],
        lanes: &mut [LinkLane],
        sources: &Sources,
        inst: &mut Instrumentation,
        fr: &mut Frames,
        batches: &mut Option<Batches>,
        rw: &mut RewindScratch,
        memory: &Cell<u64>,
        opts: RunOptions,
    ) {
        for p in parties.iter_mut() {
            p.already_rewound.clear_all();
        }
        if self.cfg.disable_rewind {
            // Ablation (F4): the phase's rounds elapse silently — nobody
            // sends and receptions are ignored, so the rounds are
            // independent and the batched mode pushes them through one
            // engine call.
            if self.cfg.wire == WireMode::Batched {
                let b = batches_for(
                    batches,
                    self.statics.graph.link_count(),
                    self.cfg.rewind_rounds,
                );
                b.tx.clear_all();
                self.step_batch(
                    net,
                    parties,
                    lanes,
                    sources,
                    b,
                    StepCtx::plain(0, memory),
                    opts,
                );
            } else {
                for _ in 0..self.cfg.rewind_rounds {
                    fr.tx.clear_all();
                    self.step(
                        net,
                        parties,
                        lanes,
                        sources,
                        fr,
                        StepCtx::plain(0, memory),
                        opts,
                    );
                }
            }
            return;
        }
        // A party can newly become able to send a rewind bit only after
        // one of its transcripts truncated (its own send or a received
        // request) — nothing else in this phase moves its chunk counts.
        // So each round scans only the parties that truncated last round
        // (`active`), plus everyone once at phase start; receptions are
        // enumerated from the frame's set bits. A round with nothing to
        // rewind and no noise costs O(m/64) instead of O(Σ deg).
        let n = parties.len();
        let RewindScratch {
            active,
            next,
            marked,
        } = rw;
        active.clear();
        active.extend(0..n);
        next.clear();
        marked.clear();
        marked.resize(n, false);
        let mut wave_rounds = 0u64;
        for _ in 0..self.cfg.rewind_rounds {
            fr.tx.clear_all();
            let mut truncated_this_round = false;
            for &u in active.iter() {
                let p = &mut parties[u];
                let min_chunk = p
                    .lid_out
                    .iter()
                    .map(|&l| lanes[l].t.chunks())
                    .min()
                    .unwrap_or(0);
                for ni in 0..p.neighbors.len() {
                    let lane = &mut lanes[p.lid_out[ni]];
                    let ok = lane.mp.status != LinkStatus::MeetingPoints
                        && !p.already_rewound.contains(ni)
                        && lane.t.chunks() > min_chunk;
                    if ok {
                        fr.tx.set(p.lid_out[ni], true);
                        let new_len = lane.t.chunks() - 1;
                        lane.t.truncate_into(new_len, &mut lane.pool);
                        p.prune_snapshots(new_len);
                        p.already_rewound.set(ni);
                        inst.rewind_truncations += 1;
                        truncated_this_round = true;
                        if !marked[u] {
                            marked[u] = true;
                            next.push(u);
                        }
                    }
                }
            }
            self.step(
                net,
                parties,
                lanes,
                sources,
                fr,
                StepCtx::rewind(active.len(), memory),
                opts,
            );
            for (lid, _) in fr.rx.iter_set() {
                let u = self.statics.graph.link(lid).to;
                let ni = self.statics.graph.link_dst_nbr(lid);
                let p = &mut parties[u];
                let lane = &mut lanes[lid ^ 1];
                let ok = lane.mp.status != LinkStatus::MeetingPoints
                    && !p.already_rewound.contains(ni)
                    && lane.t.chunks() > 0;
                if ok {
                    let new_len = lane.t.chunks() - 1;
                    lane.t.truncate_into(new_len, &mut lane.pool);
                    p.prune_snapshots(new_len);
                    p.already_rewound.set(ni);
                    inst.rewind_truncations += 1;
                    truncated_this_round = true;
                    if !marked[u] {
                        marked[u] = true;
                        next.push(u);
                    }
                }
            }
            wave_rounds += u64::from(truncated_this_round);
            std::mem::swap(active, next);
            next.clear();
            for &u in active.iter() {
                marked[u] = false;
            }
        }
        inst.rewind_wave_depth = inst.rewind_wave_depth.max(wave_rounds);
    }

    /// Whether this run hands the adversary a live view at all: the run
    /// options must expose it *and* the scheme's adversary class must not
    /// be [`AdversaryClass::Oblivious`].
    fn view_exposed(&self, opts: RunOptions) -> bool {
        opts.expose_view && self.cfg.adversary_class != AdversaryClass::Oblivious
    }

    /// One engine round over the scratch frames (`fr.tx` → `fr.rx`),
    /// wiring up the adaptive view when exposed.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        net: &mut Network,
        parties: &[SimParty],
        lanes: &[LinkLane],
        sources: &Sources,
        fr: &mut Frames,
        ctx: StepCtx,
        opts: RunOptions,
    ) {
        let Frames { tx, rx } = fr;
        if self.view_exposed(opts) {
            let view = OracleView {
                sim: self,
                parties,
                lanes,
                sources,
                ctx,
            };
            net.step_into(tx, Some(&view), rx);
        } else {
            net.step_into(tx, None, rx);
        }
    }

    /// One batched engine pass over `b.tx` → `b.rx` (the multi-round
    /// analogue of [`Simulation::step`]), wiring up the adaptive view when
    /// exposed. Batches never overlap chunk-simulation rounds, so the
    /// oracle's `chunk_round` is `None`.
    #[allow(clippy::too_many_arguments)]
    fn step_batch(
        &self,
        net: &mut Network,
        parties: &[SimParty],
        lanes: &[LinkLane],
        sources: &Sources,
        b: &mut Batches,
        ctx: StepCtx,
        opts: RunOptions,
    ) {
        let Batches { tx, rx } = b;
        if self.view_exposed(opts) {
            let view = OracleView {
                sim: self,
                parties,
                lanes,
                sources,
                ctx,
            };
            net.step_rounds_into(tx, Some(&view), rx);
        } else {
            net.step_rounds_into(tx, None, rx);
        }
    }

    fn sample(&self, lanes: &[LinkLane], net: &Network, iter: u64, inst: &mut Instrumentation) {
        let mut g_star = usize::MAX;
        let mut h_star = 0usize;
        let mut sum_g = 0usize;
        let mut sum_b = 0usize;
        for (e, _, _) in self.statics.graph.edges() {
            let tu = &lanes[2 * e].t;
            let tv = &lanes[2 * e + 1].t;
            let g = tu.common_prefix_chunks(tv);
            let h = tu.chunks().max(tv.chunks());
            g_star = g_star.min(g);
            h_star = h_star.max(h);
            sum_g += g;
            sum_b += h - g;
        }
        if g_star == usize::MAX {
            g_star = 0;
        }
        let stats = net.stats();
        let ehc = stats.corruptions + inst.hash_collisions;
        inst.samples.push(IterationSample {
            iteration: iter,
            g_star,
            h_star,
            b_star: h_star - g_star,
            sum_g,
            sum_b,
            ehc,
            cc: stats.cc,
            corruptions: stats.corruptions,
            potential_proxy: Instrumentation::proxy(
                self.cfg.k_param,
                self.statics.graph.edge_count(),
                sum_g,
                sum_b,
                h_star - g_star,
                ehc,
            ),
        });
    }

    fn evaluate(
        &self,
        parties: &[SimParty],
        lanes: &[LinkLane],
        net: &Network,
        mut inst: Instrumentation,
    ) -> SimOutcome {
        let real = self.statics.proto.real_chunks();
        let mut transcripts_ok = true;
        let mut g_star = usize::MAX;
        let mut h_star = 0usize;
        for (e, _, _) in self.statics.graph.edges() {
            let reference = &self.reference.edge_transcripts[e];
            let tu = &lanes[2 * e].t;
            let tv = &lanes[2 * e + 1].t;
            transcripts_ok &= tu.matches_reference(reference, real);
            transcripts_ok &= tv.matches_reference(reference, real);
            g_star = g_star.min(tu.common_prefix_chunks(tv));
            h_star = h_star.max(tu.chunks().max(tv.chunks()));
        }
        if g_star == usize::MAX {
            g_star = 0;
        }
        let mut outputs_ok = true;
        for p in parties {
            if p.snapshots.len() > real {
                outputs_ok &= p.snapshots[real].output() == self.reference.outputs[p.node];
            } else {
                outputs_ok = false;
            }
        }
        let stats = net.stats();
        let payload_cc = self.workload.schedule().cc_bits() as u64;
        let faults = net.fault_stats();
        inst.links_downed = faults.links_downed;
        inst.crash_rounds = faults.crash_rounds;
        inst.masked_symbols = faults.masked_symbols;
        let success = transcripts_ok && outputs_ok;
        let faulted = faults.links_downed > 0 || faults.crash_rounds > 0;
        let verdict = if success {
            Verdict::DecodedCorrect
        } else {
            Verdict::Degraded {
                reason: if faulted {
                    DegradeReason::FaultChurn
                } else {
                    DegradeReason::NoiseOverwhelmed
                },
            }
        };
        inst.degraded_reason = verdict.code();
        SimOutcome {
            success,
            transcripts_ok,
            outputs_ok,
            stats,
            payload_cc,
            padded_cc: (real * self.statics.proto.chunk_bits()) as u64,
            blowup: stats.cc as f64 / payload_cc.max(1) as f64,
            iterations: self.iterations,
            g_star,
            b_star: h_star - g_star,
            instrumentation: inst,
            verdict,
        }
    }
}

/// Per-run seed sources, flattened to the dense [`LinkId`] index:
/// `by_link[lid(u → v)]` is the source party `u` uses for that link (the
/// two directions differ in `Exchanged` mode, where the receiver decoded
/// its copy off the noisy wire).
struct Sources {
    by_link: Vec<Arc<dyn SeedSource>>,
}

/// The run's two persistent scratch wire buffers: honest sends (`tx`) and
/// receptions (`rx`). Allocated once per scratch and reused by every round
/// of every phase of every run.
struct Frames {
    tx: RoundFrame,
    rx: RoundFrame,
}

/// A dense bitset over a party's neighbor indices.
#[derive(Clone, Debug, Default)]
struct NbrSet {
    words: Vec<u64>,
}

impl NbrSet {
    fn with_capacity(n: usize) -> Self {
        NbrSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

/// Per-directed-link live state, dense over [`LinkId`].
///
/// `lanes[lid(u → v)]` holds party `u`'s endpoint state for its link to
/// `v`: the transcript copy, the meeting-points counter machine, the
/// outgoing/incoming message buffers and the in-progress chunk symbols.
/// Pulling this out of [`SimParty`] makes the per-link phases (hash
/// preparation, chunk commits) shardable: a worker thread owns a
/// contiguous `LinkId` range and touches nothing outside its shard, so
/// [`crossbeam::par_chunks_mut`] over the lane vector is deterministic.
struct LinkLane {
    t: LinkTranscript,
    mp: MpState,
    mp_out: MpMessage,
    /// Per-round reception buffer ([`WireMode::Reference`] only).
    mp_in: Vec<Option<bool>>,
    /// Reused per-chunk symbol buffer.
    inprog: Vec<Sym>,
    /// Whether `inprog` holds symbols to commit this iteration.
    inprog_active: bool,
    /// The chunk `inprog` belongs to (owner party's `sim_chunk`).
    sim_chunk: u64,
    /// Lane-local `Vec<Sym>` pool so the parallel commit never touches
    /// the shared arena; refilled from the arena on (serial) activation
    /// and by this lane's own rewind truncations.
    pool: Vec<Vec<Sym>>,
}

impl LinkLane {
    fn new() -> Self {
        LinkLane {
            t: LinkTranscript::new(),
            mp: MpState::new(),
            mp_out: MpMessage::default(),
            mp_in: Vec::new(),
            inprog: Vec::new(),
            inprog_active: false,
            sim_chunk: 0,
            pool: Vec::new(),
        }
    }
}

/// Per-party live state of the simulation — flat, neighbor-indexed.
///
/// Per-link endpoint state lives in the dense [`LinkLane`] vector
/// (`lanes[lid_out[ni]]`); the party keeps only the genuinely per-party
/// pieces (Π′ snapshots, flags, slot cursor) plus the precomputed link
/// ids so the phase loops never search the adjacency. Per-neighbor flags
/// are [`NbrSet`] bitsets.
struct SimParty {
    node: NodeId,
    neighbors: Vec<NodeId>,
    /// `lid_out[ni]` = LinkId of `node → neighbors[ni]`.
    lid_out: Vec<LinkId>,
    /// `lid_in[ni]` = LinkId of `neighbors[ni] → node`.
    lid_in: Vec<LinkId>,
    /// `snapshots[i]` = Π′-state after simulating `i` chunks.
    snapshots: Vec<ChunkedParty>,
    status: bool,
    fp_agg: bool,
    net_correct: bool,
    sim_active: bool,
    sim_chunk: usize,
    excluded: NbrSet,
    work: Option<ChunkedParty>,
    /// Progress through the chunk's precompiled
    /// [`protocol::ChunkedProtocol::party_slots_cached`] table (the slot
    /// data itself is borrowed from the protocol, not copied per
    /// iteration; positions come from [`protocol::PartyPlan`]).
    pslot_cursor: usize,
    already_rewound: NbrSet,
}

impl SimParty {
    /// Drops Π′-state snapshots invalidated by truncating any link to
    /// `new_len` chunks.
    fn prune_snapshots(&mut self, new_len: usize) {
        if self.snapshots.len() > new_len + 1 {
            self.snapshots.truncate(new_len + 1);
        }
    }
}

/// Decodes an exchanged seed from possibly corrupted repetitions.
fn decode_seed(code: &BinaryCode, received: &[Option<bool>], reps: usize) -> (u64, u64) {
    let block = received.len() / reps;
    let mut votes: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for r in 0..reps {
        let slice = &received[r * block..(r + 1) * block];
        let word = BinaryWord {
            bits: slice.iter().map(|b| b.unwrap_or(false)).collect(),
            erasures: slice
                .iter()
                .enumerate()
                .filter(|(_, b)| b.is_none())
                .map(|(i, _)| i)
                .collect(),
        };
        if let Ok(bits) = code.decode(&word) {
            if bits.len() >= 128 {
                let mut x = 0u64;
                let mut y = 0u64;
                for j in 0..64 {
                    x |= u64::from(bits[j]) << j;
                    y |= u64::from(bits[64 + j]) << j;
                }
                *votes.entry((x, y)).or_insert(0) += 1;
            }
        }
    }
    if let Some((&seed, _)) = votes.iter().max_by_key(|(_, &c)| c) {
        return seed;
    }
    // All repetitions destroyed: deterministic garbage fallback.
    let mut acc = 0xdead_beef_0bad_cafe_u64;
    for (i, b) in received.iter().enumerate() {
        if b.unwrap_or(false) {
            acc ^= splitmix64(&mut { (i as u64) ^ acc });
            acc = acc.rotate_left(9);
        }
    }
    let mut s = acc;
    (splitmix64(&mut s), splitmix64(&mut s))
}

/// Bound on symbols any single chunk places on any single link.
fn max_link_syms(proto: &ChunkedProtocol, graph: &Graph) -> usize {
    let mut best = 0usize;
    for c in 0..=proto.real_chunks() {
        let mut counts: BTreeMap<EdgeId, usize> = BTreeMap::new();
        for slot in proto.layout(c).rounds.iter().flatten() {
            let e = graph.edge_between(slot.link.from, slot.link.to).unwrap();
            *counts.entry(e).or_insert(0) += 1;
        }
        best = best.max(counts.values().copied().max().unwrap_or(0));
    }
    best
}

/// The per-step slice of run state the live view carries beyond the
/// party array: which iteration/chunk round is executing (for the §6.1
/// oracle), the rewind wave's active-set size (rewind rounds only), and
/// the run-owned adversary memory slot.
#[derive(Clone, Copy)]
struct StepCtx<'a> {
    iteration: u64,
    chunk_round: Option<usize>,
    rewind_active: Option<usize>,
    memory: &'a Cell<u64>,
}

impl<'a> StepCtx<'a> {
    /// A non-chunk, non-rewind round of iteration `iteration`.
    fn plain(iteration: u64, memory: &'a Cell<u64>) -> Self {
        StepCtx {
            iteration,
            chunk_round: None,
            rewind_active: None,
            memory,
        }
    }

    /// Chunk-simulation round `jr` of iteration `iteration`.
    fn chunk(iteration: u64, jr: usize, memory: &'a Cell<u64>) -> Self {
        StepCtx {
            iteration,
            chunk_round: Some(jr),
            rewind_active: None,
            memory,
        }
    }

    /// A rewind-wave round with `active` parties still able to send.
    fn rewind(active: usize, memory: &'a Cell<u64>) -> Self {
        StepCtx {
            iteration: 0,
            chunk_round: None,
            rewind_active: Some(active),
            memory,
        }
    }
}

/// The live view handed to non-oblivious adversaries: global state plus
/// the §6.1 seed-aware collision oracle and, when the scheme's
/// [`AdversaryClass`] grants it, the phase-aware surface (phase position,
/// meeting-point/flag/rewind state, cross-iteration memory).
struct OracleView<'a, 'w> {
    sim: &'a Simulation<'w>,
    parties: &'a [SimParty],
    lanes: &'a [LinkLane],
    sources: &'a Sources,
    ctx: StepCtx<'a>,
}

impl OracleView<'_, '_> {
    /// Whether the phase-aware surface is granted.
    fn phase_visible(&self) -> bool {
        self.sim.cfg.adversary_class == AdversaryClass::PhaseAware
    }

    /// One endpoint's [`MpSideView`] (the lane of its outgoing link).
    fn mp_side(&self, lid: LinkId) -> MpSideView {
        let lane = &self.lanes[lid];
        MpSideView {
            k: lane.mp.k,
            e: lane.mp.e,
            in_meeting_points: lane.mp.status == LinkStatus::MeetingPoints,
            mpc1: lane.mp_out.mpc1,
            mpc2: lane.mp_out.mpc2,
            chunks: lane.t.chunks(),
        }
    }
}

impl AdaptiveView for OracleView<'_, '_> {
    fn diverged(&self, edge: EdgeId) -> bool {
        !self.lanes[2 * edge].t.same_as(&self.lanes[2 * edge + 1].t)
    }

    fn transcript_chunks(&self, edge: EdgeId) -> usize {
        self.lanes[2 * edge].t.chunks()
    }

    fn collision_corruption(&self, edge: EdgeId, sends: &RoundFrame) -> Option<Corruption> {
        // Seed visibility: Algorithm C's CRS is hidden from the adversary.
        if let RandomnessMode::Crs {
            adversary_knows_seeds: false,
            ..
        } = &self.sim.cfg.randomness
        {
            return None;
        }
        let jr = self.ctx.chunk_round?;
        if self.ctx.iteration + 1 >= self.sim.iterations as u64 {
            return None;
        }
        let (u, v) = self.sim.statics.graph.endpoints(edge);
        let (pu, pv) = (&self.parties[u], &self.parties[v]);
        let (lu, lv) = (&self.lanes[2 * edge], &self.lanes[2 * edge + 1]);
        let niu = self.sim.statics.graph.link_src_nbr(2 * edge);
        let niv = self.sim.statics.graph.link_dst_nbr(2 * edge);
        // Both endpoints must be cleanly simulating the same chunk with
        // synchronized meeting-point counters for the prediction to hold.
        if !pu.sim_active
            || !pv.sim_active
            || pu.excluded.contains(niu)
            || pv.excluded.contains(niv)
            || pu.sim_chunk != pv.sim_chunk
            || lu.mp.k != lv.mp.k
            || !lu.t.same_as(&lv.t)
        {
            return None;
        }
        let c = pu.sim_chunk;
        let tau = self.sim.cfg.hash_bits;
        // Candidate corruptions: this round's sends on this edge, padding
        // slots only (their content never feeds Π, so the damage is
        // exactly a 2-bit transcript delta).
        let layout = self.sim.statics.proto.layout(c);
        // Chunks shorter than the phase's reserved round count (e.g. the
        // dummy heartbeat) have no slots in the trailing rounds.
        let round_slots = layout.rounds.get(jr)?;
        for slot in round_slots {
            let on_edge = (slot.link.from == u && slot.link.to == v)
                || (slot.link.from == v && slot.link.to == u);
            if !on_edge || slot.kind == SlotKind::Payload {
                continue;
            }
            let Some(honest) = sends.get(slot.lid) else {
                continue;
            };
            let receiver = &self.parties[slot.link.to];
            let rni = self.sim.statics.graph.link_dst_nbr(slot.lid);
            let idx = self
                .sim
                .statics
                .proto
                .party_plan(receiver.sim_chunk, slot.link.to)
                .pos_in_idx(rni, jr);
            let t_recv = &self.lanes[slot.lid ^ 1].t;
            let bit_pos = t_recv.bits().len() + 32 + 2 * idx;
            let honest_sym = Sym::from_bit(honest);
            for output in [Some(!honest), None] {
                let observed = match output {
                    Some(b) => Sym::from_bit(b),
                    None => Sym::Star,
                };
                let delta = sym_delta(honest_sym, observed);
                if self.delta_collides(edge, delta, bit_pos, tau) {
                    return Some(Corruption {
                        link: slot.link,
                        output,
                    });
                }
            }
        }
        None
    }

    fn phase_of(&self, round: u64) -> Option<PhasePos> {
        self.phase_visible()
            .then(|| self.sim.geometry.locate(round))
    }

    fn mp_view(&self, edge: EdgeId) -> Option<EdgeMpView> {
        if !self.phase_visible() {
            return None;
        }
        Some(EdgeMpView {
            lo: self.mp_side(2 * edge),
            hi: self.mp_side(2 * edge + 1),
        })
    }

    fn flag_view(&self, node: NodeId) -> Option<FlagView> {
        if !self.phase_visible() {
            return None;
        }
        let p = &self.parties[node];
        Some(FlagView {
            status: p.status,
            aggregate: p.fp_agg,
            net_correct: p.net_correct,
        })
    }

    fn rewind_active(&self) -> Option<usize> {
        if !self.phase_visible() {
            return None;
        }
        self.ctx.rewind_active
    }

    fn memory(&self) -> u64 {
        if !self.phase_visible() {
            return 0;
        }
        self.ctx.memory.get()
    }

    fn set_memory(&self, value: u64) {
        if self.phase_visible() {
            self.ctx.memory.set(value);
        }
    }
}

impl OracleView<'_, '_> {
    /// Does a transcript difference of `delta` (2 bits at `bit_pos`) hash
    /// to zero under the *next* meeting-points full-transcript hash?
    ///
    /// Two-level structure: the 2-bit wire delta XORs a predictable
    /// `SKETCH_BITS`-wide delta into the receiver's persistent sketch
    /// (GF(2)-linearity + the known, iteration-independent sketch seed);
    /// both endpoints commit the same final length, so the outer hashes
    /// collide iff the fresh outer hash of `Δsketch ∥ 0` is zero.
    fn delta_collides(&self, edge: EdgeId, delta: u64, bit_pos: usize, tau: u32) -> bool {
        if delta == 0 {
            return false;
        }
        let src = &self.sources.by_link[2 * edge];
        let (col0, col1) =
            sketch_column_pair(bit_pos, SKETCH_BITS, &mut *src.stream(sketch_label(edge)));
        let mut dsketch = 0u64;
        if delta & 1 != 0 {
            dsketch ^= col0;
        }
        if delta & 2 != 0 {
            dsketch ^= col1;
        }
        let outer_label = SeedLabel {
            iteration: self.ctx.iteration + 1,
            channel: edge as u64,
            slot: SLOT_OUTER,
        };
        transcript_hash(dsketch, 0, tau, &mut *src.stream(outer_label)) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::attacks::{BurstLink, IidNoise, NoNoise, SingleError};
    use protocol::workloads::{Gossip, LinePipeline, TokenRing};

    #[test]
    fn noiseless_simulation_succeeds() {
        let w = TokenRing::new(4, 3, 7);
        let cfg = SchemeConfig::algorithm_a(w.graph(), 42);
        let sim = Simulation::new(&w, cfg, 1);
        let out = sim.run(Box::new(NoNoise), RunOptions::default());
        assert!(out.transcripts_ok, "transcripts diverged: {out:?}");
        assert!(out.outputs_ok, "outputs wrong");
        assert!(out.success);
        assert_eq!(out.stats.corruptions, 0);
    }

    #[test]
    fn noiseless_simulation_gossip_line() {
        let w = Gossip::new(netgraph::topology::line(4), 6, 3);
        let cfg = SchemeConfig::algorithm_a(w.graph(), 9);
        let sim = Simulation::new(&w, cfg, 2);
        let out = sim.run(Box::new(NoNoise), RunOptions::default());
        assert!(out.success, "{out:?}");
    }

    #[test]
    fn single_error_is_repaired() {
        let w = LinePipeline::new(4, 3, 5);
        let cfg = SchemeConfig::algorithm_a(w.graph(), 11);
        let sim = Simulation::new(&w, cfg, 3);
        // One corruption early in the first simulation phase payload.
        let geo = sim.geometry();
        let round = geo.phase_start(0, netsim::PhaseKind::Simulation) + 3;
        let atk = SingleError::new(w.graph(), DirectedLink { from: 0, to: 1 }, round);
        let out = sim.run(Box::new(atk), RunOptions::default());
        assert!(out.success, "single error not recovered: {out:?}");
        assert_eq!(out.stats.corruptions, 1);
    }

    #[test]
    fn burst_is_repaired() {
        let w = Gossip::new(netgraph::topology::ring(4), 6, 1);
        let cfg = SchemeConfig::algorithm_a(w.graph(), 5);
        let sim = Simulation::new(&w, cfg, 4);
        let geo = sim.geometry();
        let start = geo.phase_start(1, netsim::PhaseKind::Simulation);
        let atk = BurstLink::new(w.graph(), DirectedLink { from: 1, to: 2 }, start, 8);
        let out = sim.run(Box::new(atk), RunOptions::default());
        assert!(out.success, "burst not recovered: {out:?}");
        assert!(out.stats.corruptions >= 4);
    }

    #[test]
    fn light_random_noise_is_repaired() {
        let w = Gossip::new(netgraph::topology::ring(5), 8, 2);
        let cfg = SchemeConfig::algorithm_a(w.graph(), 6);
        let sim = Simulation::new(&w, cfg, 5);
        let mut ok = 0;
        for seed in 0..5 {
            let atk = IidNoise::new(w.graph(), 0.001, seed);
            let out = sim.run(Box::new(atk), RunOptions::default());
            ok += usize::from(out.success);
        }
        assert!(ok >= 4, "only {ok}/5 succeeded under light noise");
    }

    #[test]
    fn exchanged_randomness_noiseless() {
        let w = TokenRing::new(4, 3, 8);
        let cfg = SchemeConfig::algorithm_b(w.graph(), 4);
        let sim = Simulation::new(&w, cfg, 6);
        let out = sim.run(Box::new(NoNoise), RunOptions::default());
        assert!(out.success, "{out:?}");
    }

    #[test]
    fn scratch_reuse_is_outcome_identical() {
        let w = TokenRing::new(4, 3, 7);
        let cfg = SchemeConfig::algorithm_a(w.graph(), 42);
        let sim = Simulation::new(&w, cfg, 1);
        let mut scratch = RunScratch::new();
        for seed in 0..3 {
            let fresh = sim.run(
                Box::new(IidNoise::new(w.graph(), 0.001, seed)),
                RunOptions::default(),
            );
            let reused = sim.run_with_scratch(
                Box::new(IidNoise::new(w.graph(), 0.001, seed)),
                RunOptions::default(),
                &mut scratch,
            );
            assert_eq!(fresh.success, reused.success);
            assert_eq!(fresh.stats, reused.stats);
            assert_eq!(fresh.g_star, reused.g_star);
            assert_eq!(fresh.b_star, reused.b_star);
        }
    }

    #[test]
    fn trace_is_monotone_when_noiseless() {
        let w = TokenRing::new(4, 2, 9);
        let cfg = SchemeConfig::algorithm_a(w.graph(), 3);
        let sim = Simulation::new(&w, cfg, 7);
        let out = sim.run(
            Box::new(NoNoise),
            RunOptions {
                record_trace: true,
                ..Default::default()
            },
        );
        assert!(out.success);
        let samples = &out.instrumentation.samples;
        assert_eq!(samples.len(), sim.iterations());
        for w2 in samples.windows(2) {
            assert!(w2[1].g_star >= w2[0].g_star, "G* regressed");
            assert_eq!(w2[1].b_star, 0, "B* nonzero without noise");
        }
        // One chunk per iteration.
        assert_eq!(samples[0].g_star, 1);
    }
}
