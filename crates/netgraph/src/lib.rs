//! Network topology substrate for the MPIC reproduction.
//!
//! The paper operates over an arbitrary connected simple graph G = (V, E)
//! where nodes are parties and edges are bidirectional communication links
//! (§2.1). This crate provides:
//!
//! * [`Graph`] — an immutable simple graph with stable node/edge ids,
//! * standard topology builders ([`topology`]) matching the paper's
//!   discussion (line, star, clique, ring, grid, random, binary tree),
//! * [`SpanningTree`] — the BFS spanning tree with levels used by the
//!   flag-passing phase (Algorithm 3 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod spanning;
pub mod topology;

pub use graph::{DirectedLink, EdgeId, Graph, GraphError, LinkId, NodeId};
pub use spanning::SpanningTree;
