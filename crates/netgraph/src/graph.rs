//! Immutable simple graphs with stable node and edge identifiers.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Identifier of a node (party). Nodes are numbered `0..n`.
pub type NodeId = usize;

/// Identifier of an undirected edge (link). Edges are numbered `0..m` in
/// insertion order.
pub type EdgeId = usize;

/// Dense identifier of a directed link in `0..2m`: `2·edge_id + dir` with
/// `dir = 0` iff `from < to` (edge-major, low-endpoint-first — the order
/// of [`Graph::directed_links`]). The index of choice for flat per-link
/// arrays such as `netsim`'s `RoundFrame`.
pub type LinkId = usize;

/// One direction of an undirected link: the ordered pair `(from, to)`.
///
/// The synchronous channel model allows one symbol per round per direction
/// (§2.1), so most per-round bookkeeping is keyed by `DirectedLink`.
///
/// # Examples
///
/// ```
/// use netgraph::DirectedLink;
/// let d = DirectedLink { from: 0, to: 1 };
/// assert_eq!(d.reversed(), DirectedLink { from: 1, to: 0 });
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DirectedLink {
    /// Sending endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
}

impl DirectedLink {
    /// The opposite direction of the same link.
    pub fn reversed(self) -> DirectedLink {
        DirectedLink {
            from: self.to,
            to: self.from,
        }
    }
}

impl fmt::Display for DirectedLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// An immutable connected simple graph.
///
/// Construction validates simplicity (no self-loops, no duplicate edges);
/// most consumers also require connectivity, checked by
/// [`Graph::is_connected`] and asserted by the topology builders.
///
/// # Examples
///
/// ```
/// use netgraph::Graph;
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.is_connected());
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    /// `adj[v]` = sorted neighbor list of `v`.
    adj: Vec<Vec<NodeId>>,
    /// `edge_of[v]` = (neighbor, edge id) pairs parallel to `adj[v]`.
    edge_ids: Vec<Vec<EdgeId>>,
    /// `links[id]` = the directed link with dense index `id` (2m entries,
    /// edge-major order), precomputed at construction.
    links: Vec<DirectedLink>,
    /// `link_nbr[id]` = for directed link `id = (a → b)`: the index of `b`
    /// in `adj[a]` and the index of `a` in `adj[b]`, precomputed so flat
    /// per-neighbor party state can be addressed straight from a link id.
    link_nbr: Vec<(usize, usize)>,
}

/// Error returned by [`Graph::from_edges`] for non-simple inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge `(v, v)` was supplied.
    SelfLoop(NodeId),
    /// The same undirected edge appeared twice.
    DuplicateEdge(NodeId, NodeId),
    /// An endpoint was `>= n`.
    NodeOutOfRange(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::NodeOutOfRange(v) => write!(f, "node {v} out of range"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Builds a graph on `n` nodes from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the input contains a self-loop, a duplicate
    /// edge (in either orientation), or an endpoint `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
        let mut seen = BTreeSet::new();
        let mut norm = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange(u));
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange(v));
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(GraphError::DuplicateEdge(u, v));
            }
            norm.push(key);
        }
        let mut adj = vec![Vec::new(); n];
        let mut edge_ids = vec![Vec::new(); n];
        for (id, &(u, v)) in norm.iter().enumerate() {
            adj[u].push(v);
            adj[v].push(u);
            edge_ids[u].push(id);
            edge_ids[v].push(id);
        }
        // Sort neighbor lists (keeping edge ids parallel) for determinism.
        for v in 0..n {
            let mut pairs: Vec<(NodeId, EdgeId)> = adj[v]
                .iter()
                .copied()
                .zip(edge_ids[v].iter().copied())
                .collect();
            pairs.sort_unstable();
            adj[v] = pairs.iter().map(|p| p.0).collect();
            edge_ids[v] = pairs.iter().map(|p| p.1).collect();
        }
        let links: Vec<DirectedLink> = norm
            .iter()
            .flat_map(|&(u, v)| {
                [
                    DirectedLink { from: u, to: v },
                    DirectedLink { from: v, to: u },
                ]
            })
            .collect();
        let link_nbr = links
            .iter()
            .map(|l| {
                let s = adj[l.from].binary_search(&l.to).expect("adjacency");
                let d = adj[l.to].binary_search(&l.from).expect("adjacency");
                (s, d)
            })
            .collect();
        Ok(Graph {
            n,
            edges: norm,
            adj,
            edge_ids,
            links,
            link_nbr,
        })
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected links `m`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The endpoints `(u, v)` (with `u < v`) of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// Sorted neighbor list of `v`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Edge id of the link `{u, v}`, if present.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let i = self.adj[u].binary_search(&v).ok()?;
        Some(self.edge_ids[u][i])
    }

    /// Iterates over all undirected edges as `(edge id, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges.iter().enumerate().map(|(i, &(u, v))| (i, u, v))
    }

    /// Iterates over all `2m` directed links in [`LinkId`] order
    /// (edge id major, low-endpoint-first direction first).
    pub fn directed_links(&self) -> impl Iterator<Item = DirectedLink> + '_ {
        self.links.iter().copied()
    }

    /// Number of directed links `2m`.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Dense index of a directed link, or `None` if the link is not an
    /// edge of the graph.
    ///
    /// # Examples
    ///
    /// ```
    /// use netgraph::{DirectedLink, Graph};
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    /// let l = DirectedLink { from: 2, to: 1 };
    /// assert_eq!(g.link_id(l), Some(3));
    /// assert_eq!(g.link(3), l);
    /// assert_eq!(g.link_id(DirectedLink { from: 0, to: 2 }), None);
    /// ```
    pub fn link_id(&self, link: DirectedLink) -> Option<LinkId> {
        let i = self.adj.get(link.from)?.binary_search(&link.to).ok()?;
        Some(2 * self.edge_ids[link.from][i] + usize::from(link.from > link.to))
    }

    /// The directed link with dense index `id` (inverse of
    /// [`Graph::link_id`]).
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    pub fn link(&self, id: LinkId) -> DirectedLink {
        self.links[id]
    }

    /// All `2m` directed links as a slice, in [`LinkId`] order.
    pub fn links(&self) -> &[DirectedLink] {
        &self.links
    }

    /// Index of `v` in `u`'s sorted neighbor list, or `None` if `{u, v}`
    /// is not an edge. The dense per-party analogue of [`Graph::link_id`]:
    /// flat neighbor-indexed state (`Vec` per party instead of a
    /// `BTreeMap<NodeId, _>`) is addressed through it.
    pub fn nbr_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.adj.get(u)?.binary_search(&v).ok()
    }

    /// For directed link `id = (a → b)`: the index of `b` in `a`'s
    /// neighbor list (precomputed; no search).
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    pub fn link_src_nbr(&self, id: LinkId) -> usize {
        self.link_nbr[id].0
    }

    /// For directed link `id = (a → b)`: the index of `a` in `b`'s
    /// neighbor list (precomputed; no search).
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    pub fn link_dst_nbr(&self, id: LinkId) -> usize {
        self.link_nbr[id].1
    }

    /// BFS distances from `src` (`usize::MAX` for unreachable nodes).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            for &w in &self.adj[v] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }

    /// True if every node is reachable from node 0 (or the graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// Graph diameter (max over nodes of max BFS distance).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or empty.
    pub fn diameter(&self) -> usize {
        assert!(self.n > 0 && self.is_connected());
        (0..self.n)
            .map(|v| *self.bfs_distances(v).iter().max().unwrap())
            .max()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        assert!(matches!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        ));
    }

    #[test]
    fn rejects_duplicate_in_either_orientation() {
        assert!(matches!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge(1, 0))
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange(5))
        ));
    }

    #[test]
    fn neighbors_sorted_and_degrees() {
        let g = Graph::from_edges(4, &[(2, 0), (0, 3), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edge_between_and_link_id_roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        for link in g.directed_links().collect::<Vec<_>>() {
            let idx = g.link_id(link).unwrap();
            assert_eq!(g.link(idx), link);
        }
        assert_eq!(g.edge_between(0, 2), None);
        assert_eq!(g.edge_between(1, 0), Some(0));
    }

    #[test]
    fn link_ids_are_dense_and_ordered() {
        let g = Graph::from_edges(5, &[(2, 0), (0, 3), (3, 4), (0, 1)]).unwrap();
        assert_eq!(g.link_count(), 8);
        assert_eq!(g.links().len(), 8);
        for (id, link) in g.directed_links().enumerate() {
            assert_eq!(g.link(id), link);
            assert_eq!(g.link_id(link), Some(id));
        }
        // Non-edges and out-of-range endpoints map to None.
        assert_eq!(g.link_id(DirectedLink { from: 1, to: 2 }), None);
        assert_eq!(g.link_id(DirectedLink { from: 9, to: 0 }), None);
        assert_eq!(g.link_id(DirectedLink { from: 0, to: 9 }), None);
    }

    #[test]
    fn nbr_index_matches_sorted_adjacency() {
        let g = Graph::from_edges(5, &[(2, 0), (0, 3), (3, 4), (0, 1)]).unwrap();
        for u in 0..5 {
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                assert_eq!(g.nbr_index(u, v), Some(i));
            }
        }
        assert_eq!(g.nbr_index(1, 2), None);
        assert_eq!(g.nbr_index(9, 0), None);
    }

    #[test]
    fn link_nbr_slots_agree_with_nbr_index() {
        let g = Graph::from_edges(5, &[(2, 0), (0, 3), (3, 4), (0, 1)]).unwrap();
        for (id, link) in g.directed_links().enumerate() {
            assert_eq!(g.link_src_nbr(id), g.nbr_index(link.from, link.to).unwrap());
            assert_eq!(g.link_dst_nbr(id), g.nbr_index(link.to, link.from).unwrap());
        }
    }

    #[test]
    fn link_id_reversed_toggles_low_bit() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        for link in g.directed_links().collect::<Vec<_>>() {
            let id = g.link_id(link).unwrap();
            let rev = g.link_id(link.reversed()).unwrap();
            assert_eq!(id ^ 1, rev);
            assert_eq!(id / 2, g.edge_between(link.from, link.to).unwrap());
        }
    }

    #[test]
    fn bfs_and_diameter_on_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.diameter(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
    }
}
