//! BFS spanning trees with levels, as used by the flag-passing phase.
//!
//! The paper's Algorithm 3 fixes a root ρ known to all parties, takes the
//! BFS tree T from ρ, and defines the *level* `ℓ(ρ) = 1`,
//! `ℓ(v) = ℓ(parent(v)) + 1`. We mirror that convention exactly so the
//! round arithmetic of the flag-passing phase matches the paper.

use crate::graph::{Graph, NodeId};

/// A rooted BFS spanning tree of a connected [`Graph`].
///
/// # Examples
///
/// ```
/// use netgraph::{Graph, SpanningTree};
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]).unwrap();
/// let t = SpanningTree::bfs(&g, 0);
/// assert_eq!(t.root(), 0);
/// assert_eq!(t.level(0), 1);
/// assert_eq!(t.level(2), 3);
/// assert_eq!(t.depth(), 3);
/// assert_eq!(t.children(1), &[2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    /// 1-based level: root has level 1 (paper's convention).
    level: Vec<usize>,
    depth: usize,
}

impl SpanningTree {
    /// Builds the BFS spanning tree of `g` rooted at `root`.
    ///
    /// Ties are broken by ascending node id (the neighbor lists are sorted),
    /// so the tree is deterministic — a requirement, since every party must
    /// locally derive the *same* tree.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or `root` is out of range.
    pub fn bfs(g: &Graph, root: NodeId) -> SpanningTree {
        let n = g.node_count();
        assert!(root < n, "root out of range");
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut level = vec![0usize; n];
        let mut order = std::collections::VecDeque::new();
        level[root] = 1;
        order.push_back(root);
        let mut visited = vec![false; n];
        visited[root] = true;
        while let Some(v) = order.pop_front() {
            for &w in g.neighbors(v) {
                if !visited[w] {
                    visited[w] = true;
                    parent[w] = Some(v);
                    children[v].push(w);
                    level[w] = level[v] + 1;
                    order.push_back(w);
                }
            }
        }
        assert!(visited.iter().all(|&b| b), "graph is disconnected");
        let depth = level.iter().copied().max().unwrap_or(1);
        SpanningTree {
            root,
            parent,
            children,
            level,
            depth,
        }
    }

    /// The root ρ.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v` in the tree (`None` for the root).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// Children of `v`, in ascending id order.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// Level of `v`; the root has level 1 (paper convention).
    pub fn level(&self, v: NodeId) -> usize {
        self.level[v]
    }

    /// Depth `d(T)` = maximum level.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// True if `v` is a leaf.
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn line_tree_levels() {
        let g = topology::line(5);
        let t = SpanningTree::bfs(&g, 0);
        for v in 0..5 {
            assert_eq!(t.level(v), v + 1);
        }
        assert_eq!(t.depth(), 5);
        assert!(t.is_leaf(4));
        assert!(!t.is_leaf(0));
    }

    #[test]
    fn star_tree_depth_two() {
        let g = topology::star(6);
        let t = SpanningTree::bfs(&g, 0);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.children(0).len(), 5);
    }

    #[test]
    fn parent_child_consistency() {
        let g = topology::random_connected(12, 20, 7);
        let t = SpanningTree::bfs(&g, 3);
        for v in 0..12 {
            if let Some(p) = t.parent(v) {
                assert!(t.children(p).contains(&v));
                assert_eq!(t.level(v), t.level(p) + 1);
                assert!(
                    g.edge_between(v, p).is_some(),
                    "tree edge must be graph edge"
                );
            } else {
                assert_eq!(v, 3);
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = topology::clique(8);
        let a = SpanningTree::bfs(&g, 0);
        let b = SpanningTree::bfs(&g, 0);
        for v in 0..8 {
            assert_eq!(a.parent(v), b.parent(v));
        }
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn panics_on_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let _ = SpanningTree::bfs(&g, 0);
    }
}
