//! Standard topology builders.
//!
//! Every builder returns a *connected simple* graph; the families here are
//! the ones the paper and its related work discuss: the line (the running
//! counterexample of §1.2), the star \[JKL15\], the clique \[ABE+16\],
//! cycles and constant-degree graphs \[GK17\], grids, trees, and random
//! graphs for "arbitrary topology".

use crate::graph::{Graph, NodeId};

/// Path graph `0 - 1 - … - (n-1)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn line(n: usize) -> Graph {
    assert!(n >= 2, "line needs at least 2 nodes");
    let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges).expect("line is simple")
}

/// Cycle graph on `n` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges).expect("ring is simple")
}

/// Star with center 0 and `n - 1` leaves.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges).expect("star is simple")
}

/// Complete graph on `n` nodes.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn clique(n: usize) -> Graph {
    assert!(n >= 2, "clique needs at least 2 nodes");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("clique is simple")
}

/// `rows × cols` grid.
///
/// # Panics
///
/// Panics if either dimension is zero or the grid has fewer than 2 nodes.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("grid is simple")
}

/// Complete binary tree with `n` nodes (heap numbering).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n >= 2);
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push(((v - 1) / 2, v));
    }
    Graph::from_edges(n, &edges).expect("binary tree is simple")
}

/// Minimal xorshift64* PRNG, local to this crate so topology generation has
/// no external dependencies and is stable across toolchains.
#[derive(Clone, Debug)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Connected random graph G(n, M): a uniform random spanning tree skeleton
/// (random-parent construction) plus random extra edges until `m` edges
/// total. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `m < n - 1` or `m > n(n-1)/2` or `n < 2`.
pub fn random_connected(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    assert!(m >= n - 1, "need at least n-1 edges for connectivity");
    assert!(m <= n * (n - 1) / 2, "too many edges for a simple graph");
    let mut rng = XorShift::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m);
    let mut present = std::collections::BTreeSet::new();
    // Random spanning tree: attach node v to a uniformly random prior node.
    for v in 1..n {
        let u = rng.below(v);
        edges.push((u, v));
        present.insert((u, v));
    }
    while edges.len() < m {
        let u = rng.below(n);
        let v = rng.below(n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            edges.push(key);
        }
    }
    Graph::from_edges(n, &edges).expect("random graph is simple by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_counts() {
        let g = line(7);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_counts() {
        let g = ring(7);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.diameter(), 3);
    }

    #[test]
    fn star_counts() {
        let g = star(9);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.degree(0), 8);
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn clique_counts() {
        let g = clique(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.diameter(), 1);
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), 2 + 3);
    }

    #[test]
    fn binary_tree_counts() {
        let g = binary_tree(15);
        assert_eq!(g.edge_count(), 14);
        assert!(g.is_connected());
    }

    #[test]
    fn random_connected_properties() {
        for seed in 0..10 {
            let g = random_connected(20, 35, seed);
            assert_eq!(g.node_count(), 20);
            assert_eq!(g.edge_count(), 35);
            assert!(g.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn random_connected_deterministic() {
        let a = random_connected(15, 25, 42);
        let b = random_connected(15, 25, 42);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn random_tree_edge_case() {
        let g = random_connected(10, 9, 3);
        assert_eq!(g.edge_count(), 9);
        assert!(g.is_connected());
    }
}
