//! Test-only crate: the real content lives in `tests/` (the five
//! cross-crate suites plus the examples smoke suite). The library target
//! exists so `cargo` has a package to hang the suites off.

#![forbid(unsafe_code)]
