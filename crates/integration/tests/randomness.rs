//! Cross-crate randomness plumbing: the §5 seed exchange, δ-biased
//! expansion, and the equivalence between CRS and exchanged modes.

use mpic::{RandomnessMode, RunOptions, SchemeConfig, SeedExpansion, Simulation};
use netsim::attacks::{NoNoise, PhaseTargeted};
use netsim::PhaseKind;
use protocol::workloads::TokenRing;
use protocol::Workload;
use rscode::{BinaryCode, BinaryWord};
use smallbias::{hash_bits, AghpGenerator, BitString, CrsSource, SeedLabel, SeedSource};

#[test]
fn aghp_expansion_runs_and_matches_prg_semantics() {
    // Both expansions must produce *working* schemes (they differ only in
    // the statistical quality of the seed stream).
    let w = TokenRing::new(4, 3, 5);
    for expansion in [SeedExpansion::Prg, SeedExpansion::Aghp] {
        let mut cfg = SchemeConfig::algorithm_b(w.graph(), 4);
        if let RandomnessMode::Exchanged { expansion: e, .. } = &mut cfg.randomness {
            *e = expansion;
        }
        let sim = Simulation::new(&w, cfg, 11);
        let out = sim.run(Box::new(NoNoise), RunOptions::default());
        assert!(out.success, "{expansion:?} failed noiselessly");
    }
}

#[test]
fn exchange_survives_moderate_setup_noise() {
    // The RS(30,10)-coded, repeated exchange decodes through scattered
    // setup-phase corruption.
    let w = TokenRing::new(4, 3, 7);
    let cfg = SchemeConfig::algorithm_b(w.graph(), 4);
    let sim = Simulation::new(&w, cfg, 13);
    let atk = PhaseTargeted::new(w.graph(), sim.geometry(), PhaseKind::Setup, 0.03, 17);
    let out = sim.run(Box::new(atk), RunOptions::default());
    assert!(
        out.success,
        "3% setup noise should be decoded through: {out:?}"
    );
    assert!(out.stats.corruptions > 0, "the attack did fire");
}

#[test]
fn crs_and_exchanged_agree_on_protocol_semantics() {
    // With no noise, the *protocol outcome* (not the wire bits) is the
    // same whichever randomness mode backs the hashes.
    let w = TokenRing::new(5, 3, 9);
    let a = {
        let cfg = SchemeConfig::algorithm_a(w.graph(), 19);
        Simulation::new(&w, cfg, 15).run(Box::new(NoNoise), RunOptions::default())
    };
    let b = {
        let mut cfg = SchemeConfig::algorithm_b(w.graph(), 4);
        cfg.k_param = w.graph().edge_count();
        cfg.hash_bits = 8;
        Simulation::new(&w, cfg, 15).run(Box::new(NoNoise), RunOptions::default())
    };
    assert!(a.success && b.success);
    assert_eq!(a.g_star, b.g_star, "same simulated progress");
    // B pays for the exchange: strictly more communication.
    assert!(b.stats.cc > a.stats.cc);
}

#[test]
fn binary_code_handles_the_exchange_pattern() {
    // The exact encode/transmit/decode pattern used by Algorithm 5:
    // 128-bit seed, erasures at deleted rounds, scattered flips.
    let code = BinaryCode::rate_one_third();
    let seed_bits: Vec<bool> = (0..128).map(|i| (i * 7) % 3 == 0).collect();
    let mut word = code.encode(&seed_bits);
    // 8 deletions + 4 flips, spread out.
    let n = word.bits.len();
    for k in 0..8 {
        let p = (k * 97) % n;
        word.erasures.push(p);
    }
    for k in 0..4 {
        let p = (k * 61 + 13) % n;
        word.bits[p] ^= true;
    }
    let decoded = code.decode(&word).expect("decodes within radius");
    assert_eq!(&decoded[..128], &seed_bits[..]);
}

#[test]
fn corrupted_exchange_degrades_to_one_dead_link_not_a_crash() {
    // Destroy the setup completely on every link: the simulation must
    // still terminate and account honestly (it will likely fail — that is
    // the expected, correctly-reported outcome for an over-budget attack).
    let w = TokenRing::new(4, 2, 21);
    let cfg = SchemeConfig::algorithm_b(w.graph(), 3);
    let sim = Simulation::new(&w, cfg, 23);
    let atk = PhaseTargeted::new(w.graph(), sim.geometry(), PhaseKind::Setup, 0.9, 29);
    let out = sim.run(Box::new(atk), RunOptions::default());
    assert!(
        out.stats.corruptions > 100,
        "attack was supposed to be huge"
    );
    assert_eq!(out.success, out.transcripts_ok && out.outputs_ok);
}

#[test]
fn crs_streams_are_link_and_iteration_separated() {
    // Two different links or iterations never share seed material — a
    // cross-contamination here would correlate hash collisions across the
    // network and break the §4.4 independence argument.
    let crs = CrsSource::new(0x5eed);
    let x: BitString = (0..100).map(|i| i % 2 == 0).collect();
    let mut outs = std::collections::BTreeSet::new();
    for iteration in 0..4u64 {
        for channel in 0..4u64 {
            let h = hash_bits(
                &x,
                32,
                &mut *crs.stream(SeedLabel {
                    iteration,
                    channel,
                    slot: 1,
                }),
            );
            outs.insert(h);
        }
    }
    assert_eq!(outs.len(), 16, "label collision in CRS streams");
}

#[test]
fn aghp_string_is_shared_given_shared_seed() {
    // The two endpoints expand the same 128-bit seed to the same stream —
    // the property the exchange exists to establish.
    let mut a = AghpGenerator::from_seed(0x1234, 0x5678);
    let mut b = AghpGenerator::from_seed(0x1234, 0x5678);
    for i in (0..4096).step_by(64) {
        assert_eq!(a.word_at(i), b.word_at(i));
    }
}

#[test]
fn repetition_count_scales_exchange_cost() {
    let w = TokenRing::new(4, 2, 31);
    let mk = |reps| {
        let mut cfg = SchemeConfig::algorithm_b(w.graph(), 4);
        if let RandomnessMode::Exchanged {
            code_repetitions, ..
        } = &mut cfg.randomness
        {
            *code_repetitions = reps;
        }
        Simulation::new(&w, cfg, 33).geometry().setup
    };
    assert_eq!(mk(2), 2 * mk(1));
    assert_eq!(mk(4), 4 * mk(1));
}

#[test]
fn binary_word_default_is_empty() {
    let wdef = BinaryWord::default();
    assert!(wdef.bits.is_empty() && wdef.erasures.is_empty());
}
