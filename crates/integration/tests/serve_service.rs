//! Service behavior under real simulation load: graceful shutdown with
//! in-flight requests, cancellation before/after dispatch, backpressure
//! on a full queue, and counter accounting. (The deterministic
//! gate-job versions of these live in the serve crate's unit tests;
//! here the jobs are genuine [`SimRequest`] simulations.)

use bench::{
    run_trial, sim_service, AttackSpec, FaultSpec, Scheme, SimRequest, TopoSpec, WorkloadSpec,
};
use serve::{Backpressure, Outcome, Priority, ServiceConfig, SubmitError};
use std::time::Duration;

/// A fast request (sub-millisecond even in debug builds).
fn small(seed: u64) -> SimRequest {
    SimRequest {
        workload: WorkloadSpec::TokenRing { n: 4, laps: 2 },
        scheme: Scheme::A,
        attack: AttackSpec::None,
        fault: FaultSpec::None,
        seed,
    }
}

/// A request long enough (tens of milliseconds) that operations issued
/// microseconds after its dispatch land while it is still executing.
fn long(seed: u64) -> SimRequest {
    SimRequest {
        workload: WorkloadSpec::Gossip {
            topo: TopoSpec::Ring(16),
            rounds: 4,
        },
        scheme: Scheme::A,
        attack: AttackSpec::None,
        fault: FaultSpec::None,
        seed,
    }
}

/// Graceful shutdown serves everything already accepted: every ticket
/// resolves `Done` with the right row, nothing is dropped.
#[test]
fn shutdown_completes_in_flight_requests() {
    let svc = sim_service(ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = (0..10)
        .map(|i| svc.submit(small(i), Priority::Normal).unwrap())
        .collect();
    // Shut down while most of those are still queued or executing.
    let stats = svc.shutdown();
    assert_eq!(stats.served, 10);
    assert_eq!(stats.cancelled, 0);
    assert_eq!(stats.queue_depth, 0);
    for (i, t) in tickets.into_iter().enumerate() {
        let resp = t.wait().expect("graceful shutdown must deliver replies");
        let row = resp.outcome.done().expect("drained, not cancelled");
        let req = small(i as u64);
        assert_eq!(
            row,
            run_trial(req.workload, req.scheme, req.attack, req.seed)
        );
    }
}

/// Cancelling a still-queued request skips its execution entirely.
#[test]
fn cancel_before_dispatch() {
    let svc = sim_service(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    });
    let blocker = svc.submit(long(1), Priority::Normal).unwrap();
    // Wait until the single worker has picked the blocker up, then queue
    // victims behind it; they cannot be dispatched until it finishes,
    // and the cancellations below land microseconds later.
    while svc.stats().queue_depth > 0 {
        std::thread::yield_now();
    }
    let victims: Vec<_> = (0..3)
        .map(|i| svc.submit(small(10 + i), Priority::Normal).unwrap())
        .collect();
    for v in &victims {
        v.cancel();
    }
    for v in victims {
        let resp = v.wait().unwrap();
        assert_eq!(resp.outcome, Outcome::Cancelled);
        assert_eq!(resp.exec_ns, 0, "cancelled request must not execute");
    }
    assert!(blocker.wait().unwrap().outcome.done().is_some());
    let stats = svc.shutdown();
    assert_eq!(stats.cancelled, 3);
    assert_eq!(stats.served, 1);
}

/// Cancelling after dispatch is best-effort: the simulation completes
/// and the reply is the full result.
#[test]
fn cancel_after_dispatch_returns_done() {
    let svc = sim_service(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    });
    let req = long(2);
    let want = run_trial(req.workload, req.scheme, req.attack.clone(), req.seed);
    let t = svc.submit(req, Priority::Normal).unwrap();
    while svc.stats().queue_depth > 0 {
        std::thread::yield_now();
    }
    t.cancel(); // already executing
    let resp = t.wait().unwrap();
    assert_eq!(resp.outcome.done().expect("dispatched before cancel"), want);
    let stats = svc.shutdown();
    assert_eq!(stats.cancelled, 0);
    assert_eq!(stats.served, 1);
}

/// A full queue under `Reject` refuses with a retry-after hint and
/// counts the rejection; the accepted requests still complete.
#[test]
fn backpressure_rejects_when_full() {
    let retry = Duration::from_millis(3);
    let svc = sim_service(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        backpressure: Backpressure::Reject { retry_after: retry },
        ..ServiceConfig::default()
    });
    let blocker = svc.submit(long(3), Priority::Normal).unwrap();
    while svc.stats().queue_depth > 0 {
        std::thread::yield_now();
    }
    let queued = svc.submit(small(30), Priority::Normal).unwrap();
    let refused = svc.submit(small(31), Priority::Normal);
    assert_eq!(
        refused.unwrap_err(),
        SubmitError::Overloaded { retry_after: retry }
    );
    // The high lane has separate capacity, so urgent work still lands.
    let urgent = svc.submit(small(32), Priority::High).unwrap();
    for t in [blocker, queued, urgent] {
        assert!(t.wait().unwrap().outcome.done().is_some());
    }
    let stats = svc.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.served, 3);
    // Rejections count as submitted so the lifecycle equation balances.
    assert_eq!(
        stats.submitted,
        stats.served + stats.cancelled + stats.rejected + stats.timed_out
    );
}

/// Counter accounting: submitted = served + cancelled, rejected requests
/// never enter the queue, and the high-water mark sees the backlog.
#[test]
fn counters_add_up() {
    let svc = sim_service(ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = (0..20)
        .map(|i| svc.submit(small(i), Priority::Normal).unwrap())
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = svc.shutdown();
    assert_eq!(stats.submitted, 20);
    assert_eq!(stats.submitted, stats.served + stats.cancelled);
    assert_eq!(stats.rejected, 0);
    assert!(stats.queue_depth_highwater >= 1);
    assert_eq!(stats.queue_depth, 0);
    // 20 identical-structure requests: one compile, the rest hit.
    assert!(stats.cache_hits >= stats.cache_misses);
}
