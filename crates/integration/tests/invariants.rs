//! Property-based integration tests: under *arbitrary* adversarial noise
//! (any rate, any placement) the simulation must uphold its structural
//! invariants — it may fail to simulate Π, but it must fail safe.

use mpic::{
    AdversaryClass, DegradeReason, FaultPlan, Parallelism, RunOptions, SchemeConfig, Simulation,
    Verdict,
};
use netsim::attacks::{
    CrossIterationHunter, FlagFlipper, IidNoise, MeetingPointSplitter, RewindSuppressor,
    ScriptedAdversary,
};
use netsim::Adversary;
use proptest::prelude::*;
use protocol::workloads::{Gossip, TokenRing};
use protocol::Workload;

fn check_invariants(out: &mpic::SimOutcome, budget: u64) {
    // Accounting sanity.
    assert!(out.stats.corruptions <= budget);
    assert!(out.stats.cc > 0, "metadata alone is nonzero");
    assert!(out.blowup.is_finite() && out.blowup > 0.0);
    // Agreement floor/ceiling ordering.
    assert!(
        out.g_star <= out.g_star + out.b_star,
        "B* is nonnegative by construction"
    );
    // Success definition is internally consistent.
    assert_eq!(out.success, out.transcripts_ok && out.outputs_ok);
    // Degradation semantics: every run ends with an explicit verdict —
    // `DecodedCorrect` exactly when success, otherwise a `Degraded`
    // reason mirrored into the instrumentation counter. Never silent.
    assert_eq!(out.success, out.verdict.is_correct());
    assert_eq!(out.instrumentation.degraded_reason, out.verdict.code());
    let faulted = out.instrumentation.links_downed > 0 || out.instrumentation.crash_rounds > 0;
    match out.verdict {
        Verdict::DecodedCorrect => {}
        Verdict::Degraded { reason } => {
            let want = if faulted {
                DegradeReason::FaultChurn
            } else {
                DegradeReason::NoiseOverwhelmed
            };
            assert_eq!(reason, want, "degradation blamed the wrong cause");
        }
    }
    // Trace invariants.
    let mut prev_cc = 0;
    for s in &out.instrumentation.samples {
        assert!(s.g_star <= s.h_star, "G* > H*");
        assert_eq!(s.b_star, s.h_star - s.g_star);
        assert!(s.cc >= prev_cc, "communication must be monotone");
        prev_cc = s.cc;
        assert!(s.sum_g >= s.g_star, "sum over edges ≥ min edge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any i.i.d. noise rate — from benign to overwhelming — upholds the
    /// structural invariants on Algorithm A.
    #[test]
    fn invariants_hold_under_any_noise_rate(
        prob in 0.0f64..0.05,
        seed in 0u64..1000,
    ) {
        let w = Gossip::new(netgraph::topology::ring(4), 5, seed);
        let cfg = SchemeConfig::algorithm_a(w.graph(), seed ^ 0xF00);
        let sim = Simulation::new(&w, cfg, seed);
        let atk = IidNoise::new(w.graph(), prob, seed);
        let budget = 10_000;
        let out = sim.run(Box::new(atk), RunOptions {
            noise_budget: budget,
            record_trace: true,
            expose_view: true,
        });
        check_invariants(&out, budget);
    }

    /// Same for Algorithm B, whose randomness exchange is also under fire.
    #[test]
    fn invariants_hold_for_algorithm_b(
        prob in 0.0f64..0.03,
        seed in 0u64..1000,
    ) {
        let w = TokenRing::new(4, 2, seed);
        let cfg = SchemeConfig::algorithm_b(w.graph(), 3);
        let sim = Simulation::new(&w, cfg, seed);
        let atk = IidNoise::new(w.graph(), prob, seed);
        let budget = 50_000;
        let out = sim.run(Box::new(atk), RunOptions {
            noise_budget: budget,
            record_trace: true,
            expose_view: true,
        });
        check_invariants(&out, budget);
    }

    /// Zero noise is always a success, for every seed and workload shape.
    #[test]
    fn zero_noise_always_succeeds(
        n in 3usize..7,
        laps in 1usize..4,
        seed in 0u64..500,
    ) {
        let w = TokenRing::new(n, laps, seed);
        let cfg = SchemeConfig::algorithm_a(w.graph(), seed);
        let sim = Simulation::new(&w, cfg, seed);
        let out = sim.run(Box::new(netsim::attacks::NoNoise), RunOptions::default());
        prop_assert!(out.success);
        prop_assert_eq!(out.instrumentation.hash_collisions, 0);
    }
}

/// Heavy noise must degrade *gracefully*: the run completes, reports
/// failure honestly, and never reports a false success.
#[test]
fn overwhelming_noise_fails_honestly() {
    let w = Gossip::new(netgraph::topology::ring(4), 5, 3);
    let reference_outputs: Vec<Vec<u8>> = {
        let proto = protocol::ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        protocol::reference::run_reference(&w, &proto).outputs
    };
    let mut false_claims = 0;
    for seed in 0..6 {
        let cfg = SchemeConfig::algorithm_a(w.graph(), seed);
        let sim = Simulation::new(&w, cfg, seed);
        let atk = IidNoise::new(w.graph(), 0.08, seed);
        let out = sim.run(Box::new(atk), RunOptions::default());
        if out.success {
            // success is a *verified* claim: cross-check one more time.
            assert_eq!(reference_outputs.len(), w.graph().node_count(), "sanity");
        } else {
            false_claims += 0; // failure is the expected, honest outcome
        }
    }
    let _ = false_claims;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary speaking orders (random link subsets per round) compile,
    /// chunk, simulate and verify noiselessly under every scheme.
    #[test]
    fn synthetic_protocols_simulate_correctly(
        seed in 0u64..10_000,
        rounds in 5usize..30,
        extra_edges in 0usize..4,
    ) {
        let g = netgraph::topology::random_connected(5, 4 + extra_edges, seed);
        let w = protocol::workloads::Synthetic::new(g, rounds, seed);
        let cfg = SchemeConfig::algorithm_a(w.graph(), seed);
        let sim = Simulation::new(&w, cfg, seed);
        let out = sim.run(Box::new(netsim::attacks::NoNoise), RunOptions::default());
        prop_assert!(out.success, "synthetic seed {seed} failed");
    }

    /// Arbitrary **budget-respecting corruption scripts** (the
    /// `ScriptedAdversary` fuzz family): whatever the script does, the
    /// structural invariants hold and the run is never *silently* wrong —
    /// a claimed success is a verified bit-for-bit match against the
    /// noiseless reference (`success ≡ transcripts_ok ∧ outputs_ok`,
    /// checked inside `check_invariants`).
    #[test]
    fn scripted_fuzz_never_silently_wrong(
        seed in 0u64..100_000,
        len in 0usize..80,
    ) {
        let w = Gossip::new(netgraph::topology::ring(4), 5, seed);
        let cfg = SchemeConfig::algorithm_a(w.graph(), seed ^ 0xFA2);
        let sim = Simulation::new(&w, cfg, seed);
        let geo = sim.geometry();
        let rounds = geo.setup + sim.iterations() as u64 * geo.iteration_rounds();
        let atk = ScriptedAdversary::random(w.graph(), rounds, len, seed);
        // The random script respects the budget by construction…
        let budget = len as u64;
        prop_assert!(atk.script().len() as u64 <= budget);
        let out = sim.run(Box::new(atk), RunOptions {
            noise_budget: budget,
            record_trace: true,
            expose_view: true,
        });
        check_invariants(&out, budget);
        // …so the engine never had to drop anything.
        prop_assert_eq!(out.stats.dropped_corruptions, 0);
    }

    /// The "never silently wrong beyond budget" property runs against
    /// **every adaptive attack family** too: phase-aware strategies with
    /// arbitrary per-phase allowances, under arbitrary global budgets,
    /// uphold the same invariants.
    #[test]
    fn adaptive_families_uphold_invariants(
        seed in 0u64..10_000,
        family in 0usize..4,
        budget in 0u64..60,
    ) {
        let w = Gossip::new(netgraph::topology::ring(4), 5, seed);
        let g = w.graph().clone();
        let cfg = SchemeConfig::algorithm_a(&g, seed ^ 0xADA);
        let sim = Simulation::new(&w, cfg.clone(), seed);
        let adv: Box<dyn Adversary> = match family {
            0 => Box::new(MeetingPointSplitter::new(&g, cfg.hash_bits, 1 + seed % 3)),
            1 => Box::new(FlagFlipper::new(&g, 1 + seed % 2)),
            2 => Box::new(RewindSuppressor::new(&g, 2 + seed % 4)),
            _ => Box::new(CrossIterationHunter::new(g.edge_count(), 1, 4 + seed % 8)),
        };
        let out = sim.run(adv, RunOptions {
            noise_budget: budget,
            record_trace: true,
            expose_view: true,
        });
        check_invariants(&out, budget);
    }

    /// Injected faults (random churn schedules) across every adversary
    /// class and `Parallelism` mode: the run may degrade, but the verdict
    /// is always explicit — success ⇔ `DecodedCorrect`, a failed faulted
    /// run blames `FaultChurn`, and a failed fault-free run blames noise
    /// (all checked inside `check_invariants`).
    #[test]
    fn faulted_runs_never_silently_wrong(
        seed in 0u64..10_000,
        link_rate in 0.0f64..0.6,
        crash_rate in 0.0f64..0.4,
        class in 0usize..3,
        par in 0usize..3,
    ) {
        let w = Gossip::new(netgraph::topology::ring(4), 4, seed);
        let g = w.graph().clone();
        let mut cfg = SchemeConfig::algorithm_a(&g, seed ^ 0xFA17);
        cfg.adversary_class = [
            AdversaryClass::Oblivious,
            AdversaryClass::SeedAware,
            AdversaryClass::PhaseAware,
        ][class];
        cfg.parallelism = [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Auto,
        ][par];
        let mut sim = Simulation::new(&w, cfg, seed);
        let geo = sim.geometry();
        let horizon = geo.setup + sim.iterations() as u64 * geo.iteration_rounds();
        sim.set_fault_plan(FaultPlan::churn(
            g.edge_count(),
            g.node_count(),
            link_rate,
            crash_rate,
            2,
            horizon,
            seed,
        ));
        let atk = IidNoise::new(&g, 0.002, seed);
        let budget = 64;
        let out = sim.run(Box::new(atk), RunOptions {
            noise_budget: budget,
            record_trace: true,
            expose_view: true,
        });
        check_invariants(&out, budget);
    }

    /// Genome operators never leave the script universe: whatever the
    /// parents (random scripts at any length, even out-of-bounds before
    /// repair), mutation and crossover outputs are budget-respecting,
    /// strictly sorted by `(round, lid)` with no duplicate slots,
    /// in-bounds in round/link/error, and deterministic in their seed —
    /// so every candidate the adversary search breeds is a valid
    /// engine-ready script without further checking.
    #[test]
    fn genome_operators_preserve_budget_and_order(
        seed in 0u64..100_000,
        len_a in 0usize..48,
        len_b in 0usize..48,
        budget in 1u64..24,
        max_round in 1u64..300,
    ) {
        use netsim::attacks::{
            crossover_scripts, mutate_script, repair_script, ScriptBounds, ScriptStep,
        };
        let g = netgraph::topology::ring(4);
        let links = g.links().len();
        let bounds = ScriptBounds { max_round, links, budget };
        fn well_formed(s: &[ScriptStep], bounds: ScriptBounds, links: usize) -> Result<(), TestCaseError> {
            prop_assert!(s.len() as u64 <= bounds.budget, "over budget: {}", s.len());
            for w in s.windows(2) {
                prop_assert!(
                    (w[0].round, w[0].lid) < (w[1].round, w[1].lid),
                    "unsorted or duplicate slot: {w:?}"
                );
            }
            for st in s {
                prop_assert!(st.round < bounds.max_round, "round {} out of range", st.round);
                prop_assert!(st.lid < links, "lid {} out of range", st.lid);
                prop_assert!(st.e == 1 || st.e == 2, "error pattern {} not in {{1, 2}}", st.e);
            }
            Ok(())
        }
        let a = repair_script(
            ScriptedAdversary::random(&g, max_round, len_a, seed).script().to_vec(),
            bounds,
        );
        let b = repair_script(
            ScriptedAdversary::random(&g, max_round, len_b, seed ^ 0xB00B5).script().to_vec(),
            bounds,
        );
        well_formed(&a, bounds, links)?;
        well_formed(&b, bounds, links)?;
        let m = mutate_script(&a, bounds, seed);
        well_formed(&m, bounds, links)?;
        prop_assert_eq!(&m, &mutate_script(&a, bounds, seed), "mutation not deterministic");
        let c = crossover_scripts(&a, &b, bounds, seed);
        well_formed(&c, bounds, links)?;
        prop_assert_eq!(&c, &crossover_scripts(&a, &b, bounds, seed), "crossover not deterministic");
        // Repair is idempotent: a repaired script survives repair intact.
        prop_assert_eq!(&m, &repair_script(m.clone(), bounds));
    }

    /// Synthetic protocols also repair a single random-phase corruption.
    #[test]
    fn synthetic_protocols_repair_one_error(
        seed in 0u64..5_000,
        round_offset in 1u64..200,
    ) {
        let g = netgraph::topology::ring(4);
        let w = protocol::workloads::Synthetic::new(g, 15, seed);
        let cfg = SchemeConfig::algorithm_a(w.graph(), seed);
        let sim = Simulation::new(&w, cfg, seed);
        let atk = netsim::attacks::SingleError::new(
            w.graph(),
            netgraph::DirectedLink { from: 0, to: 1 },
            round_offset,
        );
        let out = sim.run(Box::new(atk), RunOptions::default());
        prop_assert!(out.success, "single error at round {round_offset} not repaired");
    }
}
