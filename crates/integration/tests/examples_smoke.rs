//! Smoke coverage for the four `examples/`: each example exposes its body
//! as `pub fn run()`, which we compile into this suite via `#[path]` and
//! execute directly. Examples therefore cannot silently rot — an API
//! drift breaks compilation here, a runtime regression fails the test —
//! without shelling out to `cargo run --example` from inside the test
//! run.

#[path = "../../../examples/quickstart.rs"]
#[allow(dead_code)]
mod quickstart;

#[path = "../../../examples/adversary_duel.rs"]
#[allow(dead_code)]
mod adversary_duel;

#[path = "../../../examples/crs_free.rs"]
#[allow(dead_code)]
mod crs_free;

#[path = "../../../examples/line_pipeline_noise.rs"]
#[allow(dead_code)]
mod line_pipeline_noise;

#[test]
fn quickstart_example_runs() {
    quickstart::run();
}

#[test]
fn adversary_duel_example_runs() {
    adversary_duel::run();
}

#[test]
fn crs_free_example_runs() {
    crs_free::run();
}

#[test]
fn line_pipeline_noise_example_runs() {
    line_pipeline_noise::run();
}
