//! Intra-trial parallelism byte-equivalence: `Parallelism::Threads(n)`
//! must produce **byte-identical** `SimOutcome`s to `Parallelism::Serial`
//! for every scheme × adversary × `WireMode` × `HashingMode` combination.
//!
//! The parallel path shards the meeting-points hash preparation and the
//! per-chunk transcript commits across worker threads by contiguous
//! `LinkId` range; because every lane owns its state and its seed streams
//! are addressed (not consumed in sequence), which thread runs a lane
//! must be unobservable. These tests are the cross-check: engine stats,
//! success verdict, agreement floor/ceiling, and the full instrumentation
//! counter set all compared bit for bit, under the same five adaptive
//! attack families as the `adaptive_equivalence` suite (including the
//! phase-aware ones).
//!
//! The suite doubles as CI's `parallel-equivalence` step, which runs it
//! under `SIM_THREADS=2` and `SIM_THREADS=$(nproc)`.

use mpic::{
    AdversaryClass, HashingMode, Parallelism, RunOptions, SchemeConfig, SimOutcome, Simulation,
    WireMode,
};
use netgraph::Graph;
use netsim::attacks::{
    BurstLink, CrossIterationHunter, FlagFlipper, IidNoise, MeetingPointSplitter, NoNoise, Pair,
    RewindSuppressor, ScriptedAdversary,
};
use netsim::{Adversary, PhaseKind};
use proptest::prelude::*;
use protocol::workloads::{Gossip, TokenRing};
use protocol::Workload;

fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome, ctx: &str) {
    assert_eq!(a.stats, b.stats, "{ctx}: NetStats diverged");
    assert_eq!(a.success, b.success, "{ctx}");
    assert_eq!(a.transcripts_ok, b.transcripts_ok, "{ctx}");
    assert_eq!(a.outputs_ok, b.outputs_ok, "{ctx}");
    assert_eq!(a.payload_cc, b.payload_cc, "{ctx}");
    assert_eq!(a.padded_cc, b.padded_cc, "{ctx}");
    assert_eq!(a.blowup.to_bits(), b.blowup.to_bits(), "{ctx}");
    assert_eq!(a.iterations, b.iterations, "{ctx}");
    assert_eq!(a.g_star, b.g_star, "{ctx}");
    assert_eq!(a.b_star, b.b_star, "{ctx}");
    let (ia, ib) = (&a.instrumentation, &b.instrumentation);
    assert_eq!(ia.hash_collisions, ib.hash_collisions, "{ctx}");
    assert_eq!(ia.bad_rollbacks, ib.bad_rollbacks, "{ctx}");
    assert_eq!(ia.mp_resets, ib.mp_resets, "{ctx}");
    assert_eq!(ia.mp_truncations, ib.mp_truncations, "{ctx}");
    assert_eq!(ia.stalled_iterations, ib.stalled_iterations, "{ctx}");
    assert_eq!(ia.rewind_truncations, ib.rewind_truncations, "{ctx}");
    assert_eq!(ia.rewind_wave_depth, ib.rewind_wave_depth, "{ctx}");
    assert_eq!(ia.links_downed, ib.links_downed, "{ctx}");
    assert_eq!(ia.crash_rounds, ib.crash_rounds, "{ctx}");
    assert_eq!(ia.masked_symbols, ib.masked_symbols, "{ctx}");
    assert_eq!(ia.resync_rewinds, ib.resync_rewinds, "{ctx}");
    assert_eq!(ia.degraded_reason, ib.degraded_reason, "{ctx}");
    assert_eq!(a.verdict, b.verdict, "{ctx}: verdict diverged");
}

/// The parallelism settings every combination is checked across. The
/// thread counts deliberately straddle the lane count of the small test
/// topologies (more workers than lanes, odd counts, and whatever
/// `SIM_THREADS`/the machine resolves `Auto` to).
fn parallelism_axis() -> [Parallelism; 4] {
    [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(5),
        Parallelism::Auto,
    ]
}

/// Same five attack families as `adaptive_equivalence`.
fn build_attack(
    family: usize,
    g: &Graph,
    sim: &Simulation,
    tau: u32,
    seed: u64,
) -> Box<dyn Adversary> {
    let geo = sim.geometry();
    match family {
        0 => Box::new(MeetingPointSplitter::new(g, tau, 1 + seed % 3)),
        1 => Box::new(FlagFlipper::new(g, 1 + seed % 2)),
        2 => {
            let start = geo.phase_start(1 + seed % 2, PhaseKind::Simulation);
            let link = g.links()[seed as usize % g.link_count()];
            Box::new(Pair(
                Box::new(BurstLink::new(g, link, start, 4 + seed % 6)),
                Box::new(RewindSuppressor::new(g, 2 + seed % 4)),
            ))
        }
        3 => Box::new(CrossIterationHunter::new(
            g.edge_count(),
            1 + seed % 2,
            4 + seed % 8,
        )),
        _ => {
            let rounds = geo.setup + sim.iterations() as u64 * geo.iteration_rounds();
            Box::new(ScriptedAdversary::random(
                g,
                rounds,
                (seed % 40) as usize,
                seed,
            ))
        }
    }
}

/// Runs one (workload, cfg, attack family, seed) tuple under the full
/// wire × hashing × parallelism cube and asserts byte-identical outcomes.
fn assert_cube_identical<W: Workload>(w: &W, base: SchemeConfig, family: usize, seed: u64) {
    let g = w.graph().clone();
    let budget = 8 + seed % 40;
    let mut outs: Vec<(SimOutcome, String)> = Vec::new();
    for wire in [WireMode::Batched, WireMode::Reference] {
        for hashing in [HashingMode::Incremental, HashingMode::Reference] {
            for par in parallelism_axis() {
                let mut cfg = base.clone();
                cfg.wire = wire;
                cfg.hashing = hashing;
                cfg.parallelism = par;
                let sim = Simulation::new(w, cfg, seed);
                let adv = build_attack(family, &g, &sim, base.hash_bits, seed);
                let out = sim.run(
                    adv,
                    RunOptions {
                        noise_budget: budget,
                        ..Default::default()
                    },
                );
                outs.push((
                    out,
                    format!("family {family} seed {seed} {wire:?}/{hashing:?}/{par:?}"),
                ));
            }
        }
    }
    for (o, ctx) in &outs[1..] {
        assert_outcomes_identical(&outs[0].0, o, ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random members of every adaptive family over the full
    /// wire × hashing × parallelism cube, CRS scheme on a gossip ring.
    #[test]
    fn parallel_cube_identical_alg_a(seed in 0u64..10_000) {
        let w = Gossip::new(netgraph::topology::ring(5), 5, 17);
        let base = SchemeConfig::algorithm_a(w.graph(), 23);
        for family in 0..5 {
            assert_cube_identical(&w, base.clone(), family, seed);
        }
    }

    /// Algorithm B's randomness-exchange prologue plus the cube: the
    /// exchanged seeds must land in the same lane streams regardless of
    /// which thread prepared the lane.
    #[test]
    fn parallel_cube_identical_alg_b(seed in 0u64..10_000, family in 0usize..5) {
        let w = TokenRing::new(4, 3, 31);
        let base = SchemeConfig::algorithm_b(w.graph(), 6);
        assert_cube_identical(&w, base, family, seed);
    }

    /// Satellite regression, promoted from the PR-5 pin to a property:
    /// chunks *shorter* than the phase's reserved round count (the dummy
    /// heartbeat shape past the protocol's real chunks) must neither read
    /// out of bounds in the seed-aware collision oracle nor perturb
    /// byte-identity, across τ, adversary class, and every
    /// [`Parallelism`] mode. The hunter family interrogates the oracle on
    /// every chunk round, so each case drives `layout.rounds.get(jr)`
    /// through the short-chunk window; extra iterations guarantee the
    /// run actually reaches heartbeat chunks.
    #[test]
    fn short_chunk_oracle_identical_across_parallelism(
        seed in 0u64..10_000,
        tau in 2u32..10,
        class in 0usize..2,
    ) {
        let w = TokenRing::new(3, 1, 5);
        let mut base = SchemeConfig::algorithm_a(w.graph(), 31);
        base.hash_bits = tau;
        base.adversary_class = if class == 0 {
            AdversaryClass::SeedAware
        } else {
            AdversaryClass::PhaseAware
        };
        let g = w.graph().clone();
        let mut outs: Vec<(SimOutcome, String)> = Vec::new();
        for par in parallelism_axis() {
            let mut cfg = base.clone();
            cfg.parallelism = par;
            let sim = Simulation::new(&w, cfg, seed);
            let adv = Box::new(CrossIterationHunter::new(
                g.edge_count(),
                1 + seed % 2,
                2 + seed % 6,
            ));
            let out = sim.run(
                adv,
                RunOptions {
                    noise_budget: 16,
                    ..Default::default()
                },
            );
            outs.push((out, format!("tau {tau} class {class} seed {seed} {par:?}")));
        }
        for (o, ctx) in &outs[1..] {
            assert_outcomes_identical(&outs[0].0, o, ctx);
        }
    }
}

/// Deterministic pin: a parallel run under real noise matches serial on a
/// topology large enough that the lane vector actually shards (ring(24):
/// 48 lanes across up to 8 workers).
#[test]
fn sharded_ring_identical_under_noise() {
    let w = Gossip::new(netgraph::topology::ring(24), 3, 11);
    let base = SchemeConfig::algorithm_a(w.graph(), 77);
    for seed in 0..2u64 {
        let mut outs: Vec<(SimOutcome, String)> = Vec::new();
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(4),
            Parallelism::Threads(8),
        ] {
            let mut cfg = base.clone();
            cfg.parallelism = par;
            let sim = Simulation::new(&w, cfg, seed);
            let adv = Box::new(IidNoise::new(w.graph(), 0.001, seed));
            outs.push((
                sim.run(adv, RunOptions::default()),
                format!("seed {seed} {par:?}"),
            ));
        }
        for (o, ctx) in &outs[1..] {
            assert_outcomes_identical(&outs[0].0, o, ctx);
        }
    }
}

/// Searched-script pin: the adversary search's recorded seeds *and* its
/// evolved champions replay to byte-identical `TrialResult` rows whether
/// the trial runs serially or with intra-trial worker threads — so the
/// fitness the search maximizes cannot depend on `SIM_THREADS` or on the
/// service's worker count.
#[test]
fn searched_scripts_identical_across_parallelism() {
    use bench::{
        derive_trial_seed, record_seed, run_search, run_trial, run_trial_serviced, targets,
        AttackSpec, FaultSpec, SearchConfig,
    };
    use mpic::{ArtifactCache, RunScratch};

    let cfg = SearchConfig {
        master_seed: 77,
        generations: 1,
        population: 3,
        triage_keep: 2,
        survivors: 1,
        eval_seeds: 1,
        workers: 0,
    };
    let reports = run_search(&cfg);
    let cache = ArtifactCache::new();
    for (ti, (t, r)) in targets().iter().zip(&reports).enumerate() {
        let anchor = derive_trial_seed(cfg.master_seed, ti);
        let recorded = record_seed(t, anchor);
        for (label, steps) in [("seed", &recorded.script), ("champion", &r.best_script)] {
            let attack = AttackSpec::Scripted {
                steps: steps.clone(),
            };
            let serial = run_trial(t.workload, t.scheme, attack.clone(), anchor);
            for threads in [2, 5] {
                let (threaded, _) = run_trial_serviced(
                    t.workload,
                    t.scheme,
                    attack.clone(),
                    FaultSpec::None,
                    anchor,
                    &mut RunScratch::new(),
                    Parallelism::Threads(threads),
                    &cache,
                );
                assert_eq!(
                    serial, threaded,
                    "{}/{label}: scripted row diverged under Threads({threads})",
                    r.name
                );
            }
        }
    }
}

/// `Parallelism::Auto` resolves from `SIM_THREADS` when set and never
/// below one thread; `Threads(0)` saturates to one.
#[test]
fn parallelism_resolution_rules() {
    assert_eq!(Parallelism::Serial.resolve(), 1);
    assert_eq!(Parallelism::Threads(0).resolve(), 1);
    assert_eq!(Parallelism::Threads(6).resolve(), 6);
    assert!(Parallelism::Auto.resolve() >= 1);
    // A noiseless sanity run under Auto (whatever it resolves to here)
    // still matches Serial.
    let w = TokenRing::new(4, 2, 7);
    let base = SchemeConfig::algorithm_a(w.graph(), 3);
    let mut cfg_serial = base.clone();
    cfg_serial.parallelism = Parallelism::Serial;
    let mut cfg_auto = base;
    cfg_auto.parallelism = Parallelism::Auto;
    let a = Simulation::new(&w, cfg_serial, 1).run(Box::new(NoNoise), RunOptions::default());
    let b = Simulation::new(&w, cfg_auto, 1).run(Box::new(NoNoise), RunOptions::default());
    assert_outcomes_identical(&a, &b, "auto vs serial");
}
