//! Fault-injection byte-equivalence: a fault schedule masks receptions as
//! a pure function of the absolute round, so a faulted run's outcome —
//! verdict, fault counters, engine stats, everything — must be
//! **byte-identical** across `WireMode` × `HashingMode` × [`Parallelism`],
//! the same cube `parallel_equivalence` pins for the fault-free engine.
//! The serve layer is held to the same bar: a faulted [`SimRequest`]
//! answered by the worker-pool service equals the direct
//! [`run_trial_faulted`] row, whatever worker ran it.

use bench::{
    run_trial_faulted, sim_service, AttackSpec, FaultSpec, Scheme, SimRequest, TopoSpec,
    TrialResult, WorkloadSpec,
};
use mpic::{
    BurstOutage, FaultEvent, FaultPlan, HashingMode, Parallelism, RunOptions, SchemeConfig,
    SimOutcome, Simulation, WireMode,
};
use netgraph::Graph;
use netsim::attacks::{IidNoise, MeetingPointSplitter, NoNoise};
use netsim::Adversary;
use proptest::prelude::*;
use protocol::workloads::Gossip;
use protocol::Workload;
use serve::{Priority, ServiceConfig};

/// Full-outcome comparison, including the fault counters and verdict
/// (the superset of `parallel_equivalence`'s check).
fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome, ctx: &str) {
    assert_eq!(a.stats, b.stats, "{ctx}: NetStats diverged");
    assert_eq!(a.success, b.success, "{ctx}");
    assert_eq!(a.transcripts_ok, b.transcripts_ok, "{ctx}");
    assert_eq!(a.outputs_ok, b.outputs_ok, "{ctx}");
    assert_eq!(a.payload_cc, b.payload_cc, "{ctx}");
    assert_eq!(a.padded_cc, b.padded_cc, "{ctx}");
    assert_eq!(a.blowup.to_bits(), b.blowup.to_bits(), "{ctx}");
    assert_eq!(a.iterations, b.iterations, "{ctx}");
    assert_eq!(a.g_star, b.g_star, "{ctx}");
    assert_eq!(a.b_star, b.b_star, "{ctx}");
    assert_eq!(a.verdict, b.verdict, "{ctx}: verdict diverged");
    let (ia, ib) = (&a.instrumentation, &b.instrumentation);
    assert_eq!(ia.hash_collisions, ib.hash_collisions, "{ctx}");
    assert_eq!(ia.bad_rollbacks, ib.bad_rollbacks, "{ctx}");
    assert_eq!(ia.mp_resets, ib.mp_resets, "{ctx}");
    assert_eq!(ia.mp_truncations, ib.mp_truncations, "{ctx}");
    assert_eq!(ia.stalled_iterations, ib.stalled_iterations, "{ctx}");
    assert_eq!(ia.rewind_truncations, ib.rewind_truncations, "{ctx}");
    assert_eq!(ia.rewind_wave_depth, ib.rewind_wave_depth, "{ctx}");
    assert_eq!(ia.links_downed, ib.links_downed, "{ctx}");
    assert_eq!(ia.crash_rounds, ib.crash_rounds, "{ctx}");
    assert_eq!(ia.masked_symbols, ib.masked_symbols, "{ctx}");
    assert_eq!(ia.resync_rewinds, ib.resync_rewinds, "{ctx}");
    assert_eq!(ia.degraded_reason, ib.degraded_reason, "{ctx}");
}

/// Three fault shapes: seeded churn, a burst outage window, and a
/// hand-written crash-with-recovery script.
fn build_fault_plan(kind: usize, g: &Graph, horizon: u64, seed: u64) -> FaultPlan {
    match kind {
        0 => FaultPlan::churn(
            g.edge_count(),
            g.node_count(),
            0.4,
            0.25,
            2 + seed % 4,
            horizon,
            seed,
        ),
        1 => FaultPlan {
            bursts: vec![BurstOutage {
                start: horizon / 4,
                rounds: 2 + seed % 5,
                fraction: 0.5,
            }],
            seed,
            ..FaultPlan::default()
        },
        _ => FaultPlan {
            events: vec![
                FaultEvent::PartyCrash {
                    round: horizon / 5,
                    party: (seed as usize) % g.node_count(),
                },
                FaultEvent::PartyRecover {
                    round: horizon / 3,
                    party: (seed as usize) % g.node_count(),
                },
                FaultEvent::LinkDown {
                    round: horizon / 2,
                    edge: (seed as usize) % g.edge_count(),
                },
                FaultEvent::LinkUp {
                    round: horizon / 2 + 3,
                    edge: (seed as usize) % g.edge_count(),
                },
            ],
            ..FaultPlan::default()
        },
    }
}

fn parallelism_axis() -> [Parallelism; 4] {
    [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(5),
        Parallelism::Auto,
    ]
}

/// Runs one (fault kind, adversary, seed) tuple under the full
/// wire × hashing × parallelism cube and asserts byte-identical outcomes
/// plus explicit-verdict consistency.
fn assert_fault_cube_identical(kind: usize, adversarial: bool, seed: u64) {
    let w = Gossip::new(netgraph::topology::ring(5), 4, seed);
    let g = w.graph().clone();
    let base = SchemeConfig::algorithm_a(&g, seed ^ 0xFA_017);
    let mut outs: Vec<(SimOutcome, String)> = Vec::new();
    for wire in [WireMode::Batched, WireMode::Reference] {
        for hashing in [HashingMode::Incremental, HashingMode::Reference] {
            for par in parallelism_axis() {
                let mut cfg = base.clone();
                cfg.wire = wire;
                cfg.hashing = hashing;
                cfg.parallelism = par;
                let mut sim = Simulation::new(&w, cfg, seed);
                let geo = sim.geometry();
                let horizon = geo.setup + sim.iterations() as u64 * geo.iteration_rounds();
                sim.set_fault_plan(build_fault_plan(kind, &g, horizon, seed));
                let adv: Box<dyn Adversary> = if adversarial {
                    Box::new(MeetingPointSplitter::new(&g, base.hash_bits, 1 + seed % 3))
                } else {
                    Box::new(IidNoise::new(&g, 0.002, seed))
                };
                let out = sim.run(
                    adv,
                    RunOptions {
                        noise_budget: 24,
                        ..Default::default()
                    },
                );
                outs.push((
                    out,
                    format!(
                        "fault {kind} adv {adversarial} seed {seed} {wire:?}/{hashing:?}/{par:?}"
                    ),
                ));
            }
        }
    }
    for (o, ctx) in &outs {
        // Explicit degradation: never silently wrong, in any cube cell.
        assert_eq!(o.success, o.verdict.is_correct(), "{ctx}");
        assert_eq!(o.instrumentation.degraded_reason, o.verdict.code(), "{ctx}");
    }
    for (o, ctx) in &outs[1..] {
        assert_outcomes_identical(&outs[0].0, o, ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Every fault shape under i.i.d. noise, over the full cube.
    #[test]
    fn fault_cube_identical_under_noise(seed in 0u64..10_000, kind in 0usize..3) {
        assert_fault_cube_identical(kind, false, seed);
    }

    /// Every fault shape under an adaptive meeting-point attack, over the
    /// full cube: faults mask adversarial insertions too, and that
    /// masking must be mode-invariant.
    #[test]
    fn fault_cube_identical_under_attack(seed in 0u64..10_000, kind in 0usize..3) {
        assert_fault_cube_identical(kind, true, seed);
    }
}

/// Deterministic pin: a crash mid-run with a fault-free tail still decodes
/// (the resync rule — rewind waves pull the rejoined party back) and the
/// verdict is identical across the cube. No noise, so any failure here
/// would have to blame `FaultChurn`.
#[test]
fn crash_and_recover_resyncs_across_cube() {
    let w = Gossip::new(netgraph::topology::ring(5), 4, 7);
    let g = w.graph().clone();
    let base = SchemeConfig::algorithm_a(&g, 7);
    let mut outs: Vec<(SimOutcome, String)> = Vec::new();
    for par in parallelism_axis() {
        for wire in [WireMode::Batched, WireMode::Reference] {
            let mut cfg = base.clone();
            cfg.wire = wire;
            cfg.parallelism = par;
            let mut sim = Simulation::new(&w, cfg, 7);
            let geo = sim.geometry();
            sim.set_fault_plan(FaultPlan {
                events: vec![
                    FaultEvent::PartyCrash {
                        round: geo.setup + 2,
                        party: 2,
                    },
                    FaultEvent::PartyRecover {
                        round: geo.setup + 2 + geo.iteration_rounds(),
                        party: 2,
                    },
                ],
                ..FaultPlan::default()
            });
            let out = sim.run(Box::new(NoNoise), RunOptions::default());
            assert!(
                out.instrumentation.crash_rounds > 0,
                "{par:?}/{wire:?}: the crash window must be inside the run"
            );
            assert!(
                out.success,
                "{par:?}/{wire:?}: a bounded crash with a clean tail must resync (got {:?})",
                out.verdict
            );
            outs.push((out, format!("{par:?}/{wire:?}")));
        }
    }
    for (o, ctx) in &outs[1..] {
        assert_outcomes_identical(&outs[0].0, o, ctx);
    }
}

/// The serve layer is fault-transparent: a faulted request through the
/// service (any worker, cold or warm cache, either service parallelism)
/// is byte-identical to the direct `run_trial_faulted` row.
#[test]
fn faulted_requests_identical_through_service() {
    let faults = [
        FaultSpec::Churn {
            link_rate: 0.3,
            crash_rate: 0.2,
            outage_frac: 0.05,
        },
        FaultSpec::Burst {
            start_frac: 0.25,
            len_frac: 0.1,
            fraction: 0.5,
        },
        FaultSpec::None,
    ];
    for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
        let svc = sim_service(ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            parallelism,
            ..ServiceConfig::default()
        });
        for pass in 0..2 {
            let mut expected: Vec<(SimRequest, TrialResult)> = Vec::new();
            let mut tickets = Vec::new();
            for (i, fault) in faults.into_iter().enumerate() {
                let req = SimRequest {
                    workload: WorkloadSpec::Gossip {
                        topo: TopoSpec::Ring(4),
                        rounds: 4,
                    },
                    scheme: Scheme::A,
                    attack: AttackSpec::Iid { fraction: 0.002 },
                    fault,
                    seed: 100 + i as u64,
                };
                expected.push((
                    req.clone(),
                    run_trial_faulted(
                        req.workload,
                        req.scheme,
                        req.attack.clone(),
                        req.fault,
                        req.seed,
                    ),
                ));
                tickets.push(svc.submit(req, Priority::Normal).unwrap());
            }
            for ((req, want), t) in expected.into_iter().zip(tickets) {
                let got = t.wait().unwrap().outcome.done().expect("reply lost");
                assert_eq!(
                    got, want,
                    "pass {pass}, {parallelism:?}: service diverged on {req:?}"
                );
            }
        }
        svc.shutdown();
    }
}
