//! Pins the committed `expected/` quick-tier fixtures that back
//! `repro diff` (and CI's `repro-quick` job): the files must stay
//! parseable through the serde_json shim, cover all six sweeps, agree
//! with themselves under the diff machinery, and the machinery must
//! still flag an injected outcome drift against them.

use bench::report::{diff_dirs, diff_rows, is_volatile_key, load_rows};
use serde_json::Value;
use std::path::{Path, PathBuf};

fn expected_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../expected")
}

const SWEEPS: [&str; 6] = [
    "noise",
    "scaling",
    "leaderboard",
    "serve",
    "churn",
    "search",
];

#[test]
fn committed_fixtures_cover_all_sweeps_and_parse() {
    for sweep in SWEEPS {
        let path = expected_dir().join(format!("{sweep}.jsonl"));
        let rows = load_rows(&path).unwrap_or_else(|e| panic!("{sweep}.jsonl unreadable: {e}"));
        assert!(!rows.is_empty(), "{sweep}.jsonl is empty");
        for row in &rows {
            assert!(
                matches!(row, Value::Object(_)),
                "{sweep}.jsonl holds a non-object row"
            );
        }
    }
}

#[test]
fn fixtures_diff_clean_against_themselves() {
    // Tight tolerance on purpose: identical files must pass even when
    // every timing key is compared nearly exactly.
    let report = diff_dirs(&expected_dir(), &expected_dir(), 1.0 + 1e-9).expect("diffable");
    assert_eq!(report.files, SWEEPS.len());
    assert!(report.rows >= SWEEPS.len(), "suspiciously few rows");
    assert!(
        report.drifts.is_empty(),
        "self-diff drifted: {:?}",
        report.drifts
    );
    assert!(report.extra.is_empty());
}

#[test]
fn injected_outcome_drift_is_detected() {
    let path = expected_dir().join("leaderboard.jsonl");
    let rows = load_rows(&path).expect("fixture readable");
    let mut mutated = rows.clone();
    let Value::Object(entries) = &mut mutated[0] else {
        panic!("leaderboard rows are objects")
    };
    let corr = entries
        .iter_mut()
        .find(|(k, _)| k == "corruptions")
        .expect("leaderboard rows carry corruptions");
    corr.1 = Value::Number(serde::Number::U64(9999));
    let drifts = diff_rows("leaderboard", &rows, &mutated, 1000.0);
    assert_eq!(drifts.len(), 1, "exactly the injected drift: {drifts:?}");
    assert!(drifts[0].contains("corruptions"), "{}", drifts[0]);

    // Same mutation on a volatile (timing) key must NOT drift while the
    // value stays inside tolerance.
    let scaling = load_rows(&expected_dir().join("scaling.jsonl")).expect("readable");
    let mut faster = scaling.clone();
    let Value::Object(entries) = &mut faster[0] else {
        panic!("scaling rows are objects")
    };
    let serial = entries
        .iter_mut()
        .find(|(k, _)| k == "serial_ns")
        .expect("scaling rows carry serial_ns");
    let Value::Number(serde::Number::U64(ns)) = serial.1 else {
        panic!("serial_ns is a u64")
    };
    serial.1 = Value::Number(serde::Number::U64(ns * 3));
    assert!(
        diff_rows("scaling", &scaling, &faster, 1000.0).is_empty(),
        "3x timing shift must sit inside the 1000x tolerance"
    );
}

#[test]
fn volatile_classification_matches_fixture_schema() {
    // Every key the fixtures actually use must land in the intended
    // bucket, so a rename doesn't silently flip exact <-> tolerant.
    let volatile = [
        "serial_ns",
        "threads_ns",
        "speedup",
        "throughput_rps",
        "e2e_p50_us",
        "e2e_p99_us",
        "queue_p99_us",
        "exec_p50_us",
        "offered_rps",
    ];
    let outcome = [
        "scheme",
        "multiplier",
        "fraction",
        "success",
        "blowup",
        "corruptions",
        "collisions",
        "mp_truncations",
        "threads",
        "served",
        "failed",
        "identical",
        // churn sweep: fault schedules are round-deterministic, so every
        // fault/verdict counter is outcome-exact.
        "decoded",
        "degraded_fault",
        "degraded_noise",
        "links_downed",
        "crash_rounds",
        "resync_rewinds",
        "cc",
        "rounds",
        // search sweep: the evolved scripts are deterministic in the
        // master seed, so every column — including the script itself —
        // is outcome-exact.
        "attack",
        "metric",
        "hand_metric",
        "hand_corruptions",
        "best_metric",
        "best_steps",
        "best_fitness",
        "evaluated",
        "matched",
        "best_script",
    ];
    for k in volatile {
        assert!(is_volatile_key(k), "{k} should be tolerance-checked");
    }
    for k in outcome {
        assert!(!is_volatile_key(k), "{k} should be outcome-exact");
    }
}
