//! Frame/map equivalence: the dense `RoundFrame` wire and the legacy
//! `BTreeMap` wire are interchangeable representations.
//!
//! Three layers of evidence:
//! * property tests that `RoundFrame ↔ Wire` round-trips are lossless on
//!   arbitrary topologies and send patterns;
//! * the engine delivers identically through `step` (map path) and
//!   `step_into` (frame path) under identical adversaries;
//! * a full simulation (TokenRing, Gossip under `IidNoise`) produces
//!   byte-identical `SimOutcome` stats whether the adversary sees the
//!   frames directly or through a per-round wire round-trip.

use mpic::{RunOptions, SchemeConfig, Simulation};
use netgraph::{topology, Graph};
use netsim::attacks::IidNoise;
use netsim::{AdaptiveView, Adversary, Corruption, Network, RoundFrame, Wire};
use proptest::prelude::*;
use protocol::workloads::{Gossip, TokenRing};
use protocol::Workload;
use smallbias::Xoshiro256;

fn pick_topology(which: usize, seed: u64) -> Graph {
    match which % 5 {
        0 => topology::ring(5),
        1 => topology::line(6),
        2 => topology::clique(5),
        3 => topology::grid(2, 3),
        _ => topology::random_connected(7, 11, seed),
    }
}

/// A random send pattern: each directed link is silent, 0, or 1.
fn random_wire(g: &Graph, rng: &mut Xoshiro256) -> Wire {
    let mut w = Wire::new();
    for link in g.directed_links() {
        match rng.next_u64() % 3 {
            0 => {}
            1 => {
                w.insert(link, false);
            }
            _ => {
                w.insert(link, true);
            }
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wire → frame → wire is the identity, and the frame agrees with the
    /// map link by link.
    #[test]
    fn wire_frame_roundtrip_is_lossless(which in 0usize..5, seed in 0u64..10_000) {
        let g = pick_topology(which, seed);
        let mut rng = Xoshiro256::seeded(seed ^ 0xF0A3);
        let wire = random_wire(&g, &mut rng);
        let frame = RoundFrame::from_wire(&g, &wire);
        prop_assert_eq!(frame.count_set(), wire.len());
        prop_assert_eq!(frame.to_wire(&g), wire.clone());
        // Link-by-link agreement, including silent links.
        for link in g.directed_links() {
            let id = g.link_id(link).unwrap();
            prop_assert_eq!(frame.get(id), wire.get(&link).copied());
        }
        // Frame → wire → frame is the identity too.
        let back = RoundFrame::from_wire(&g, &frame.to_wire(&g));
        prop_assert_eq!(back, frame);
    }

    /// `iter_set` enumerates exactly the map's entries, in LinkId order.
    #[test]
    fn iter_set_matches_map(which in 0usize..5, seed in 0u64..10_000) {
        let g = pick_topology(which, seed);
        let mut rng = Xoshiro256::seeded(seed ^ 0x17E2);
        let wire = random_wire(&g, &mut rng);
        let frame = RoundFrame::from_wire(&g, &wire);
        let mut prev = None;
        let mut seen = 0usize;
        for (id, bit) in frame.iter_set() {
            prop_assert!(prev < Some(id), "iter_set out of order");
            prev = Some(id);
            prop_assert_eq!(wire.get(&g.link(id)).copied(), Some(bit));
            seen += 1;
        }
        prop_assert_eq!(seen, wire.len());
    }

    /// The engine's legacy map path and frame path deliver identically
    /// under identical adversaries, round after round.
    #[test]
    fn step_and_step_into_agree(which in 0usize..5, seed in 0u64..10_000) {
        let g = pick_topology(which, seed);
        let mut map_net = Network::new(g.clone(), Box::new(IidNoise::new(&g, 0.05, seed)), 40);
        let mut frame_net = Network::new(g.clone(), Box::new(IidNoise::new(&g, 0.05, seed)), 40);
        let mut rng = Xoshiro256::seeded(seed ^ 0x5EED);
        let mut tx = RoundFrame::for_graph(&g);
        let mut rx = RoundFrame::for_graph(&g);
        for _ in 0..30 {
            let wire = random_wire(&g, &mut rng);
            let got_map = map_net.step(&wire, None);
            tx.copy_from(&RoundFrame::from_wire(&g, &wire));
            frame_net.step_into(&tx, None, &mut rx);
            prop_assert_eq!(&got_map, &rx.to_wire(&g));
        }
        prop_assert_eq!(map_net.stats(), frame_net.stats());
        prop_assert_eq!(map_net.remaining_budget(), frame_net.remaining_budget());
    }
}

/// An adversary wrapper that round-trips every round's sends through the
/// legacy map form before consulting the inner adversary — any
/// representation mismatch shows up as a per-round panic or as diverging
/// outcomes.
struct WireRoundTrip<A> {
    inner: A,
    graph: Graph,
}

impl<A: Adversary> Adversary for WireRoundTrip<A> {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        remaining_budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let wire = sends.to_wire(&self.graph);
        let back = RoundFrame::from_wire(&self.graph, &wire);
        assert_eq!(&back, sends, "wire round-trip lost information");
        self.inner.corrupt(round, &back, remaining_budget, view)
    }

    fn is_oblivious(&self) -> bool {
        self.inner.is_oblivious()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

fn assert_outcomes_identical(a: &mpic::SimOutcome, b: &mpic::SimOutcome) {
    assert_eq!(a.stats, b.stats, "NetStats diverged between paths");
    assert_eq!(a.success, b.success);
    assert_eq!(a.transcripts_ok, b.transcripts_ok);
    assert_eq!(a.outputs_ok, b.outputs_ok);
    assert_eq!(a.payload_cc, b.payload_cc);
    assert_eq!(a.padded_cc, b.padded_cc);
    assert_eq!(a.blowup.to_bits(), b.blowup.to_bits());
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.g_star, b.g_star);
    assert_eq!(a.b_star, b.b_star);
    assert_eq!(
        a.instrumentation.hash_collisions,
        b.instrumentation.hash_collisions
    );
}

/// Full simulation equivalence: a TokenRing run under `IidNoise` is
/// byte-identical whether every round passes through the map form or not.
#[test]
fn full_token_ring_sim_identical_through_both_paths() {
    let w = TokenRing::new(4, 3, 31);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 5);
    let sim = Simulation::new(&w, cfg, 8);
    for seed in 0..3 {
        let direct = sim.run(
            Box::new(IidNoise::new(w.graph(), 0.002, seed)),
            RunOptions::default(),
        );
        let roundtrip = sim.run(
            Box::new(WireRoundTrip {
                inner: IidNoise::new(w.graph(), 0.002, seed),
                graph: w.graph().clone(),
            }),
            RunOptions::default(),
        );
        assert_outcomes_identical(&direct, &roundtrip);
    }
}

/// Same for Gossip on a ring (fully-utilized rounds: the densest frames).
#[test]
fn full_gossip_sim_identical_through_both_paths() {
    let w = Gossip::new(topology::ring(5), 6, 13);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 9);
    let sim = Simulation::new(&w, cfg, 21);
    for seed in 0..3 {
        let direct = sim.run(
            Box::new(IidNoise::new(w.graph(), 0.001, seed)),
            RunOptions::default(),
        );
        let roundtrip = sim.run(
            Box::new(WireRoundTrip {
                inner: IidNoise::new(w.graph(), 0.001, seed),
                graph: w.graph().clone(),
            }),
            RunOptions::default(),
        );
        assert_outcomes_identical(&direct, &roundtrip);
        assert!(
            direct.success,
            "light noise should be repaired (seed {seed})"
        );
    }
}
