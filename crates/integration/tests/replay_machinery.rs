//! Tests aimed squarely at the replay/snapshot machinery: the part of the
//! implementation with no direct analogue in the paper's pseudocode (the
//! paper says "simulate chunk |T|+1 based on the partial transcripts"; we
//! realize that with chunk-boundary state snapshots + deterministic
//! replay). Forged rewinds force heavy snapshot churn; the final result
//! must still be bit-exact.

use mpic::{RunOptions, SchemeConfig, Simulation};
use netgraph::DirectedLink;
use netsim::attacks::{NoNoise, PhaseTargeted, SingleError};
use netsim::PhaseKind;
use protocol::workloads::{PointerChase, SumTree, Synthetic};
use protocol::Workload;

/// Pointer chasing has maximal cross-chunk state dependence: every chunk's
/// content is a function of all earlier chunks. Heavy rewind churn must
/// still reproduce it exactly.
#[test]
fn replay_exactness_under_rewind_churn() {
    let w = PointerChase::new(4, 3, 3, 41);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 43);
    let sim = Simulation::new(&w, cfg, 11);
    let atk = PhaseTargeted::new(w.graph(), sim.geometry(), PhaseKind::Rewind, 0.008, 3);
    let out = sim.run(Box::new(atk), RunOptions::default());
    assert!(out.success, "forged-rewind churn broke replay: {out:?}");
}

/// Stateful aggregation (SumTree) across repeated rollback/replay cycles.
#[test]
fn replay_exactness_for_stateful_aggregation() {
    let w = SumTree::new(netgraph::topology::grid(2, 3), 4, 3, 47);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 53);
    let sim = Simulation::new(&w, cfg, 13);
    // Periodic single errors across the run.
    for burst_iter in [0u64, 2, 5] {
        let round = sim
            .geometry()
            .phase_start(burst_iter, PhaseKind::Simulation)
            + 3;
        let atk = SingleError::new(w.graph(), DirectedLink { from: 0, to: 1 }, round);
        let out = sim.run(Box::new(atk), RunOptions::default());
        assert!(
            out.success,
            "error at iteration {burst_iter} not replayed correctly"
        );
    }
}

/// The same compiled simulation object can be run many times (run takes
/// &self); runs must be independent.
#[test]
fn simulation_is_reusable() {
    let w = Synthetic::new(netgraph::topology::ring(4), 12, 59);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 61);
    let sim = Simulation::new(&w, cfg, 17);
    let a = sim.run(Box::new(NoNoise), RunOptions::default());
    let b = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(a.success && b.success);
    assert_eq!(a.stats.cc, b.stats.cc);
}

/// The ⊥ round is attackable in both directions: forging a ⊥ (insertion)
/// and deleting one. Both are single corruptions and must be repaired.
#[test]
fn bot_round_forgery_and_deletion_are_repaired() {
    let w = SumTree::new(netgraph::topology::line(4), 3, 2, 67);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 71);
    let sim = Simulation::new(&w, cfg, 19);
    // The ⊥ round is the first round of each simulation phase. Insert a
    // symbol there (forging non-participation of a participating party).
    for iter in [0u64, 1, 3] {
        let round = sim.geometry().phase_start(iter, PhaseKind::Simulation);
        let atk = SingleError::new(w.graph(), DirectedLink { from: 1, to: 2 }, round);
        let out = sim.run(Box::new(atk), RunOptions::default());
        assert!(
            out.success,
            "⊥-round corruption at iteration {iter} not repaired"
        );
    }
}

/// Ablation switches actually change behavior (guards the F4 experiment).
#[test]
fn ablation_flags_have_effect() {
    let w = protocol::workloads::LinePipeline::new(6, 3, 73);
    let mk = |no_fp: bool, no_rw: bool| {
        let mut cfg = SchemeConfig::algorithm_a(w.graph(), 79);
        cfg.disable_flag_passing = no_fp;
        cfg.disable_rewind = no_rw;
        let sim = Simulation::new(&w, cfg, 23);
        let round = sim.geometry().phase_start(0, PhaseKind::Simulation) + 2;
        let atk = SingleError::new(w.graph(), DirectedLink { from: 0, to: 1 }, round);
        sim.run(
            Box::new(atk),
            RunOptions {
                record_trace: true,
                ..Default::default()
            },
        )
    };
    let full = mk(false, false);
    let no_rw = mk(false, true);
    assert!(full.success, "full scheme repairs the single error");
    assert!(
        !no_rw.success,
        "without the rewind phase the length gap deadlocks"
    );
    // Noiselessly, the ablations are inert: nothing to coordinate.
    let mut cfg = SchemeConfig::algorithm_a(w.graph(), 79);
    cfg.disable_flag_passing = true;
    cfg.disable_rewind = true;
    let sim = Simulation::new(&w, cfg, 23);
    let clean = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(clean.success);
}

/// G* at completion covers all real chunks plus any simulated dummies; the
/// dummy padding never contaminates outputs.
#[test]
fn dummy_chunks_do_not_affect_outputs() {
    let w = SumTree::new(netgraph::topology::star(4), 3, 1, 83);
    let mut cfg = SchemeConfig::algorithm_a(w.graph(), 89);
    // Exaggerate the padding: far more iterations than real chunks.
    cfg.iteration_factor = 8.0;
    cfg.extra_iterations = 20;
    let sim = Simulation::new(&w, cfg, 29);
    let out = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(out.success);
    assert!(
        out.g_star > sim.proto().real_chunks() + 10,
        "dummy chunks should have been simulated too (G* = {})",
        out.g_star
    );
}
