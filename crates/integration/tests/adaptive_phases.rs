//! Phase-aware adaptive adversaries vs their oblivious counterparts.
//!
//! Each of the four PR-5 attacks conditions on the live phase surface
//! (`AdaptiveView::phase_of` + meeting-point/flag/rewind state + the
//! cross-iteration memory slot) and must *strictly outperform* its
//! closest oblivious counterpart on at least one instrumented metric at
//! equal (or smaller) corruption spend. At the same time the paper's
//! resilience bound stays an executable invariant: with a bounded noise
//! budget every run still decodes correctly — the attacks hurt
//! *progress*, not *correctness*.
//!
//! The suite also pins the `AdversaryClass` knob (withholding phase
//! visibility starves all four attacks) and the multi-level rewind wave
//! on sparse synthetic speaking orders (ROADMAP "New workloads").

use mpic::{AdversaryClass, RunOptions, SchemeConfig, SimOutcome, Simulation};
use netgraph::DirectedLink;
use netsim::attacks::{
    BurstLink, CrossIterationHunter, FlagFlipper, IidNoise, MeetingPointSplitter, NoNoise, Pair,
    PhaseTargeted, RewindSuppressor, SeedAwareCollision,
};
use netsim::{Adversary, PhaseKind};
use protocol::workloads::{Gossip, Synthetic};
use protocol::Workload;

fn gossip_ring5() -> Gossip {
    Gossip::new(netgraph::topology::ring(5), 6, 17)
}

fn run(sim: &Simulation, adv: Box<dyn Adversary>, budget: u64) -> SimOutcome {
    sim.run(
        adv,
        RunOptions {
            noise_budget: budget,
            ..Default::default()
        },
    )
}

/// The meeting-points splitter manufactures undetected divergence
/// (asymmetric mpc2 rollbacks) and forces strictly more meeting-point
/// truncations and hash-masked divergence events than the oblivious
/// meeting-points spray at the same budget — while the run still decodes.
#[test]
fn meeting_point_splitter_beats_oblivious_spray() {
    let w = gossip_ring5();
    let g = w.graph().clone();
    let cfg = SchemeConfig::algorithm_a(&g, 23);
    let sim = Simulation::new(&w, cfg.clone(), 1);
    let budget = 40;

    let split = run(
        &sim,
        Box::new(MeetingPointSplitter::new(&g, cfg.hash_bits, 2)),
        budget,
    );
    let spray = run(
        &sim,
        Box::new(PhaseTargeted::new(
            &g,
            sim.geometry(),
            PhaseKind::MeetingPoints,
            0.02,
            7,
        )),
        budget,
    );

    // Same spend…
    assert_eq!(split.stats.corruptions, budget);
    assert_eq!(spray.stats.corruptions, budget);
    // …strictly more manufactured divergence: every split lands as a
    // rollback the hash comparison of that iteration could not see.
    assert!(
        split.instrumentation.hash_collisions > spray.instrumentation.hash_collisions,
        "splitter should mask divergence: {} vs {}",
        split.instrumentation.hash_collisions,
        spray.instrumentation.hash_collisions
    );
    assert!(
        split.instrumentation.mp_truncations > spray.instrumentation.mp_truncations,
        "splitter should force more rollbacks: {} vs {}",
        split.instrumentation.mp_truncations,
        spray.instrumentation.mp_truncations
    );
    // The manufactured length gaps drive the rewind wave; the spray's
    // scattered hits do not.
    assert!(split.instrumentation.rewind_truncations > spray.instrumentation.rewind_truncations);
    // Resilience invariant: bounded budget ⇒ both decode correctly.
    assert!(split.success, "splitter broke decoding: {split:?}");
    assert!(spray.success);
}

/// One live *continue→stop* flip per iteration stalls the whole network
/// for that iteration; the oblivious flag-phase spray wastes most hits on
/// silent slots. Strictly more stalled iterations at equal spend.
#[test]
fn flag_flipper_beats_oblivious_spray() {
    let w = gossip_ring5();
    let g = w.graph().clone();
    let cfg = SchemeConfig::algorithm_a(&g, 23);
    let sim = Simulation::new(&w, cfg, 1);
    let budget = 6;

    let flip = run(&sim, Box::new(FlagFlipper::new(&g, 1)), budget);
    let spray = run(
        &sim,
        Box::new(PhaseTargeted::new(
            &g,
            sim.geometry(),
            PhaseKind::FlagPassing,
            0.05,
            7,
        )),
        budget,
    );

    assert_eq!(flip.stats.corruptions, budget);
    assert_eq!(spray.stats.corruptions, budget);
    // Every flipper corruption buys a full stalled iteration.
    assert_eq!(flip.instrumentation.stalled_iterations, budget);
    assert!(
        flip.instrumentation.stalled_iterations > spray.instrumentation.stalled_iterations,
        "flipper should stall more: {} vs {}",
        flip.instrumentation.stalled_iterations,
        spray.instrumentation.stalled_iterations
    );
    assert!(flip.success, "flipper broke decoding: {flip:?}");
    assert!(spray.success);
}

/// The rewind suppressor deletes requests exactly on the rounds where the
/// wave front advances (active set shrinking, tracked through the memory
/// slot): strictly fewer rewinds complete than with no suppression at
/// all, and the unhealed gaps surface as extra meeting-point rollbacks.
/// The oblivious rewind spray does the opposite — its insertions *forge*
/// requests and add truncations.
#[test]
fn rewind_suppressor_stalls_the_wave() {
    let w = gossip_ring5();
    let g = w.graph().clone();
    let cfg = SchemeConfig::algorithm_a(&g, 23);
    let sim = Simulation::new(&w, cfg, 1);
    let geo = sim.geometry();
    // A burst inside iteration 1's chunk creates the length gaps the
    // rewind wave then has to close.
    let start = geo.phase_start(1, PhaseKind::Simulation);
    let burst = || -> Box<dyn Adversary> {
        Box::new(BurstLink::new(
            &g,
            DirectedLink { from: 1, to: 2 },
            start,
            8,
        ))
    };

    let alone = run(&sim, burst(), 11);
    let suppressed = run(
        &sim,
        Box::new(Pair(burst(), Box::new(RewindSuppressor::new(&g, 4)))),
        11,
    );
    let sprayed = run(
        &sim,
        Box::new(Pair(
            burst(),
            Box::new(PhaseTargeted::new(&g, geo, PhaseKind::Rewind, 0.02, 7)),
        )),
        11,
    );

    // The suppressor actually fired beyond the burst's own corruptions.
    assert!(suppressed.stats.corruptions > alone.stats.corruptions);
    // Suppression: fewer rewinds complete than with the burst alone, and
    // far fewer than under the oblivious spray (whose insertions forge
    // extra rewinds instead of stalling them).
    assert!(
        suppressed.instrumentation.rewind_truncations < alone.instrumentation.rewind_truncations,
        "suppressor should stall the wave: {} vs {} unsuppressed",
        suppressed.instrumentation.rewind_truncations,
        alone.instrumentation.rewind_truncations
    );
    assert!(
        suppressed.instrumentation.rewind_truncations < sprayed.instrumentation.rewind_truncations
    );
    // The suppressed gaps are repaired the expensive way — by
    // meeting-point rollbacks in later iterations (detection latency).
    assert!(
        suppressed.instrumentation.mp_truncations > alone.instrumentation.mp_truncations,
        "suppressed gaps should fall back to MP repair: {} vs {}",
        suppressed.instrumentation.mp_truncations,
        alone.instrumentation.mp_truncations
    );
    // Resilience invariant.
    assert!(alone.success);
    assert!(
        suppressed.success,
        "suppressor broke decoding: {suppressed:?}"
    );
}

/// The cross-iteration hunter banks oracle credits in the memory slot
/// and lands bursts of predicted collisions: orders of magnitude more
/// hash-masked corruptions than oblivious noise at comparable spend, and
/// at least as many as the fixed-allowance §6.1 hunter.
#[test]
fn cross_iteration_hunter_beats_oblivious_noise() {
    let w = Gossip::new(netgraph::topology::clique(6), 6, 51);
    let g = w.graph().clone();
    let mut weak = SchemeConfig::algorithm_a(&g, 61);
    weak.hash_bits = 4;
    let sim = Simulation::new(&w, weak, 6);

    let hunter = sim.run(
        Box::new(CrossIterationHunter::new(g.edge_count(), 1, 8)),
        RunOptions::default(),
    );
    let oblivious = sim.run(Box::new(IidNoise::new(&g, 0.001, 3)), RunOptions::default());
    let fixed = sim.run(
        Box::new(SeedAwareCollision::new(sim.geometry(), g.edge_count(), 1)),
        RunOptions::default(),
    );

    assert!(
        hunter.instrumentation.hash_collisions > 4 * oblivious.instrumentation.hash_collisions,
        "hunter should mass-produce collisions: {} vs {}",
        hunter.instrumentation.hash_collisions,
        oblivious.instrumentation.hash_collisions
    );
    // Amortization pays: banked credits land at least as many collisions
    // as the per-iteration-capped hunter.
    assert!(
        hunter.instrumentation.hash_collisions >= fixed.instrumentation.hash_collisions,
        "amortized {} < fixed {}",
        hunter.instrumentation.hash_collisions,
        fixed.instrumentation.hash_collisions
    );
    // τ = 4 falls (the §6.1 separation), reported honestly.
    assert!(!hunter.success);
}

/// The resilience bound as an executable invariant: with a bounded noise
/// budget, every one of the four attacks — and the hunter even against
/// the weak τ it defeats unbounded — still decodes correctly once the
/// budget runs dry.
#[test]
fn all_adaptive_attacks_decode_within_budget() {
    let w = gossip_ring5();
    let g = w.graph().clone();
    let cfg = SchemeConfig::algorithm_a(&g, 23);
    let sim = Simulation::new(&w, cfg.clone(), 1);
    let geo = sim.geometry();
    let start = geo.phase_start(1, PhaseKind::Simulation);

    let attacks: Vec<(&str, Box<dyn Adversary>, u64)> = vec![
        (
            "splitter",
            Box::new(MeetingPointSplitter::new(&g, cfg.hash_bits, 2)),
            40,
        ),
        ("flipper", Box::new(FlagFlipper::new(&g, 1)), 8),
        (
            "suppressor",
            Box::new(Pair(
                Box::new(BurstLink::new(
                    &g,
                    DirectedLink { from: 1, to: 2 },
                    start,
                    8,
                )),
                Box::new(RewindSuppressor::new(&g, 4)),
            )),
            11,
        ),
        (
            "hunter",
            Box::new(CrossIterationHunter::new(g.edge_count(), 1, 8)),
            8,
        ),
    ];
    for (name, adv, budget) in attacks {
        let out = run(&sim, adv, budget);
        assert!(out.stats.corruptions <= budget);
        assert!(
            out.success,
            "{name} with budget {budget} broke decoding: {out:?}"
        );
    }

    // The hunter against its prey (τ = 4), budget-bounded: the masked
    // corruptions are detected by later fresh hashes and repaired.
    let wc = Gossip::new(netgraph::topology::clique(6), 6, 51);
    let gc = wc.graph().clone();
    let mut weak = SchemeConfig::algorithm_a(&gc, 61);
    weak.hash_bits = 4;
    let simc = Simulation::new(&wc, weak, 6);
    let out = run(
        &simc,
        Box::new(CrossIterationHunter::new(gc.edge_count(), 1, 8)),
        8,
    );
    assert!(out.success, "budget-bounded hunter broke decoding: {out:?}");

    // And against τ = Θ(log m) the oracle starves outright.
    let mut strong = SchemeConfig::algorithm_a(&gc, 61);
    strong.hash_bits = (3.0 * (gc.edge_count() as f64).log2()).ceil() as u32;
    let sims = Simulation::new(&wc, strong, 6);
    let out = sims.run(
        Box::new(CrossIterationHunter::new(gc.edge_count(), 1, 8)),
        RunOptions::default(),
    );
    assert!(out.success);
    assert_eq!(
        out.stats.corruptions, 0,
        "strong τ should starve the oracle"
    );
}

/// The `AdversaryClass` knob: withholding phase visibility
/// (`SeedAware`) starves all four phase-aware attacks, and `Oblivious`
/// silences even the seed-aware oracle.
#[test]
fn adversary_class_withholds_phase_visibility() {
    let w = gossip_ring5();
    let g = w.graph().clone();
    let geo_probe = Simulation::new(&w, SchemeConfig::algorithm_a(&g, 23), 1).geometry();
    let start = geo_probe.phase_start(1, PhaseKind::Simulation);

    let mut held = SchemeConfig::algorithm_a(&g, 23);
    held.adversary_class = AdversaryClass::SeedAware;
    let sim = Simulation::new(&w, held, 1);
    let attacks: Vec<Box<dyn Adversary>> = vec![
        Box::new(MeetingPointSplitter::new(&g, 8, 2)),
        Box::new(FlagFlipper::new(&g, 1)),
        Box::new(RewindSuppressor::new(&g, 4)),
        Box::new(CrossIterationHunter::new(g.edge_count(), 1, 8)),
    ];
    for adv in attacks {
        let name = adv.name();
        let out = run(&sim, adv, 1000);
        assert_eq!(
            out.stats.corruptions, 0,
            "{name} should starve without phase visibility"
        );
        assert!(out.success);
    }
    // The §6.1 oracle is still available at SeedAware…
    let wc = Gossip::new(netgraph::topology::clique(6), 6, 51);
    let gc = wc.graph().clone();
    let mut weak = SchemeConfig::algorithm_a(&gc, 61);
    weak.hash_bits = 4;
    weak.adversary_class = AdversaryClass::SeedAware;
    let simc = Simulation::new(&wc, weak.clone(), 6);
    let out = simc.run(
        Box::new(SeedAwareCollision::new(simc.geometry(), gc.edge_count(), 1)),
        RunOptions::default(),
    );
    assert!(out.stats.corruptions > 0, "oracle should survive SeedAware");
    // …and gone at Oblivious.
    weak.adversary_class = AdversaryClass::Oblivious;
    let simc = Simulation::new(&wc, weak, 6);
    let out = simc.run(
        Box::new(SeedAwareCollision::new(simc.geometry(), gc.edge_count(), 1)),
        RunOptions::default(),
    );
    assert_eq!(out.stats.corruptions, 0);
    assert!(out.success);
    // A burst doesn't need the view at all: Oblivious leaves it intact.
    let mut cfg = SchemeConfig::algorithm_a(&g, 23);
    cfg.adversary_class = AdversaryClass::Oblivious;
    let sim = Simulation::new(&w, cfg, 1);
    let out = run(
        &sim,
        Box::new(BurstLink::new(
            &g,
            DirectedLink { from: 1, to: 2 },
            start,
            8,
        )),
        1000,
    );
    assert_eq!(out.stats.corruptions, 8);
    assert!(out.success);
}

/// Sparse, irregular speaking orders (one link per round, skewed) under
/// rewind-phase forgeries provably trigger a **multi-level** rewind wave:
/// truncations happen in ≥ 2 distinct rounds of one rewind phase
/// (`rewind_wave_depth`), across every generator seed — and the run still
/// decodes. (ROADMAP "New workloads" down payment.)
#[test]
fn sparse_synthetic_triggers_multi_level_rewind() {
    for seed in 0..6u64 {
        let w = Synthetic::sparse(netgraph::topology::ring(4), 30, seed);
        let cfg = SchemeConfig::algorithm_a(w.graph(), 5);
        let sim = Simulation::new(&w, cfg, seed);
        let atk = PhaseTargeted::new(w.graph(), sim.geometry(), PhaseKind::Rewind, 0.04, seed);
        let out = run(&sim, Box::new(atk), 12);
        assert!(
            out.instrumentation.rewind_wave_depth >= 2,
            "seed {seed}: wave depth {} — no multi-level rewind",
            out.instrumentation.rewind_wave_depth
        );
        assert!(out.instrumentation.rewind_truncations >= 4, "seed {seed}");
        assert!(out.success, "seed {seed}: {out:?}");
    }
    // The noiseless control on the same workloads never rewinds — the
    // wave above is attack-induced, not an artifact of sparsity itself.
    let w = Synthetic::sparse(netgraph::topology::ring(4), 30, 0);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 5);
    let sim = Simulation::new(&w, cfg, 0);
    let out = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(out.success);
    assert_eq!(out.instrumentation.rewind_truncations, 0);
    assert_eq!(out.instrumentation.rewind_wave_depth, 0);
}
