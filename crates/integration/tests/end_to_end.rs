//! End-to-end matrix: every scheme × several workloads × several
//! topologies, noiseless and lightly noisy, must reproduce the noiseless
//! computation exactly.

use mpic::{RunOptions, SchemeConfig, Simulation};
use netsim::attacks::{IidNoise, NoNoise};
use protocol::workloads::{Gossip, LinePipeline, PointerChase, SumTree, TokenRing};
use protocol::Workload;

fn schemes_for(graph: &netgraph::Graph) -> Vec<(&'static str, SchemeConfig)> {
    vec![
        ("A", SchemeConfig::algorithm_a(graph, 0xA11CE)),
        ("B", SchemeConfig::algorithm_b(graph, 8)),
        ("C", SchemeConfig::algorithm_c(graph, 0xB0B)),
    ]
}

fn assert_noiseless_success(w: &dyn Workload, label: &str) {
    for (name, cfg) in schemes_for(w.graph()) {
        let sim = Simulation::new(w, cfg, 42);
        let out = sim.run(Box::new(NoNoise), RunOptions::default());
        assert!(
            out.success,
            "{label}/{name}: noiseless run failed (transcripts_ok={}, outputs_ok={})",
            out.transcripts_ok, out.outputs_ok
        );
        assert_eq!(out.stats.corruptions, 0);
        assert_eq!(out.instrumentation.hash_collisions, 0);
    }
}

#[test]
fn noiseless_token_ring() {
    assert_noiseless_success(&TokenRing::new(5, 4, 1), "token_ring");
}

#[test]
fn noiseless_line_pipeline() {
    assert_noiseless_success(&LinePipeline::new(5, 2, 2), "line_pipeline");
}

#[test]
fn noiseless_sum_tree_grid() {
    assert_noiseless_success(
        &SumTree::new(netgraph::topology::grid(2, 3), 3, 2, 3),
        "sum_tree",
    );
}

#[test]
fn noiseless_gossip_clique() {
    assert_noiseless_success(&Gossip::new(netgraph::topology::clique(5), 6, 4), "gossip");
}

#[test]
fn noiseless_pointer_chase() {
    assert_noiseless_success(&PointerChase::new(4, 3, 2, 5), "pointer_chase");
}

#[test]
fn noiseless_gossip_random_graph() {
    assert_noiseless_success(
        &Gossip::new(netgraph::topology::random_connected(8, 13, 7), 5, 6),
        "gossip_random",
    );
}

#[test]
fn noiseless_star_and_binary_tree() {
    assert_noiseless_success(
        &SumTree::new(netgraph::topology::star(6), 4, 2, 8),
        "sum_star",
    );
    assert_noiseless_success(
        &SumTree::new(netgraph::topology::binary_tree(7), 2, 2, 9),
        "sum_btree",
    );
}

/// Large-topology smoke: the dense `RoundFrame` wire makes n = 64 rings
/// cheap enough for the tier-1 suite even in debug builds (the old
/// `BTreeMap` wire capped the suites near n ≈ 16). Gated to
/// release-speed settings: few gossip rounds, Algorithm A only.
#[test]
fn noiseless_gossip_ring64() {
    let w = Gossip::new(netgraph::topology::ring(64), 2, 21);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 0x64);
    let sim = Simulation::new(&w, cfg, 64);
    let out = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(out.success, "ring(64) noiseless run failed: {out:?}");
    assert_eq!(out.stats.corruptions, 0);
    assert!(out.g_star >= sim.proto().real_chunks());
}

/// Large-topology smoke: a 128-party line (m = 127, 254 directed links —
/// four presence words per frame), noiseless, end to end.
#[test]
fn noiseless_gossip_line128() {
    let w = Gossip::new(netgraph::topology::line(128), 2, 22);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 0x128);
    let sim = Simulation::new(&w, cfg, 128);
    let out = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(out.success, "line(128) noiseless run failed: {out:?}");
    assert_eq!(out.stats.corruptions, 0);
    assert!(out.g_star >= sim.proto().real_chunks());
    assert_eq!(out.b_star, 0);
}

/// Large-topology smoke: a 256-party ring (m = 256, 512 directed links).
/// The word-batched wire rounds, cached chunk plans and copy-on-write
/// snapshots (PR 4) make this cheap enough for the tier-1 suite even in
/// debug builds; kept time-boxed like the ring(64)/line(128) smokes via
/// few gossip rounds and Algorithm A only.
#[test]
fn noiseless_gossip_ring256() {
    let w = Gossip::new(netgraph::topology::ring(256), 2, 23);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 0x256);
    let sim = Simulation::new(&w, cfg, 256);
    let out = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(out.success, "ring(256) noiseless run failed: {out:?}");
    assert_eq!(out.stats.corruptions, 0);
    assert!(out.g_star >= sim.proto().real_chunks());
    assert_eq!(out.b_star, 0);
}

/// Large-topology smoke: a 16×16 grid (n = 256, m = 480 — a shallow BFS
/// tree, the opposite flag-passing regime from the ring's line tree).
#[test]
fn noiseless_gossip_grid16x16() {
    let w = Gossip::new(netgraph::topology::grid(16, 16), 2, 24);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 0x1616);
    let sim = Simulation::new(&w, cfg, 257);
    let out = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(out.success, "grid(16x16) noiseless run failed: {out:?}");
    assert_eq!(out.stats.corruptions, 0);
    assert!(out.g_star >= sim.proto().real_chunks());
    assert_eq!(out.b_star, 0);
}

/// Large-topology smoke: a 1024-party ring (m = 1024, 2048 directed
/// links — 32 presence words per frame), the next rung above the PR 4
/// targets. Word-batched wire rounds keep the whole run ≈ 0.5 s in debug
/// builds, inside the tier-1 time box (budget ≤ 2 s; if this ever
/// regresses past that, demote to `#[ignore]` and lean on the release-
/// mode `experiments -- large` CI smoke instead).
#[test]
fn noiseless_gossip_ring1024() {
    let w = Gossip::new(netgraph::topology::ring(1024), 2, 25);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 0x1024);
    let sim = Simulation::new(&w, cfg, 1024);
    let out = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(out.success, "ring(1024) noiseless run failed: {out:?}");
    assert_eq!(out.stats.corruptions, 0);
    assert!(out.g_star >= sim.proto().real_chunks());
    assert_eq!(out.b_star, 0);
}

/// Light oblivious noise (≈0.005/m) must be repaired in the vast majority
/// of trials for every scheme.
#[test]
fn light_noise_matrix() {
    let w = Gossip::new(netgraph::topology::ring(5), 8, 11);
    let g = w.graph().clone();
    let m = g.edge_count() as f64;
    for (name, cfg) in schemes_for(&g) {
        let mut ok = 0;
        let trials = 8;
        for t in 0..trials {
            let sim = Simulation::new(&w, cfg.clone(), 100 + t);
            let geo = sim.geometry();
            let rounds = geo.setup + sim.iterations() as u64 * geo.iteration_rounds();
            let slots = rounds * 2 * g.edge_count() as u64;
            let prob = (0.005 / m) * sim.predicted_cc() as f64 / slots as f64;
            let atk = IidNoise::new(&g, prob, 500 + t);
            let out = sim.run(Box::new(atk), RunOptions::default());
            ok += usize::from(out.success);
        }
        assert!(
            ok >= trials as usize - 1,
            "{name}: only {ok}/{trials} repaired"
        );
    }
}

/// The transcripts that succeed must equal the reference *bit for bit*
/// on every link, both endpoints — not merely produce the right outputs.
#[test]
fn success_implies_reference_transcripts() {
    let w = TokenRing::new(4, 3, 13);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 3);
    let sim = Simulation::new(&w, cfg, 9);
    let out = sim.run(Box::new(NoNoise), RunOptions::default());
    assert!(out.success && out.transcripts_ok && out.outputs_ok);
    assert!(out.g_star >= sim.proto().real_chunks());
    assert_eq!(out.b_star, 0);
}

/// Deterministic: identical seeds produce identical outcomes.
#[test]
fn runs_are_reproducible() {
    let w = Gossip::new(netgraph::topology::line(4), 6, 3);
    let cfg = SchemeConfig::algorithm_b(w.graph(), 4);
    let run = |seed| {
        let sim = Simulation::new(&w, cfg.clone(), seed);
        let g = w.graph().clone();
        let atk = IidNoise::new(&g, 0.001, seed);
        let out = sim.run(Box::new(atk), RunOptions::default());
        (out.success, out.stats.cc, out.stats.corruptions, out.g_star)
    };
    assert_eq!(run(7), run(7));
    // Different trial seeds may differ in CC (same protocol, different
    // exchanged seeds — communication of the main part is seed-dependent
    // only through repairs, so only check it does not crash).
    let _ = run(8);
}

/// Communication blow-up is bounded by a constant independent of protocol
/// length: doubling CC(Π) roughly doubles CC(sim).
#[test]
fn blowup_independent_of_protocol_length() {
    let mk = |rounds| Gossip::new(netgraph::topology::ring(4), rounds, 5);
    let short = mk(6);
    let long = mk(24);
    let out_s = {
        let sim = Simulation::new(&short, SchemeConfig::algorithm_a(short.graph(), 1), 1);
        sim.run(Box::new(NoNoise), RunOptions::default())
    };
    let out_l = {
        let sim = Simulation::new(&long, SchemeConfig::algorithm_a(long.graph(), 1), 1);
        sim.run(Box::new(NoNoise), RunOptions::default())
    };
    assert!(out_s.success && out_l.success);
    let ratio = out_l.blowup / out_s.blowup;
    assert!(
        (0.4..2.5).contains(&ratio),
        "blow-up drifted with protocol length: {} vs {}",
        out_s.blowup,
        out_l.blowup
    );
}
