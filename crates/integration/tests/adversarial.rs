//! Adversarial integration tests: targeted attacks against every phase of
//! the scheme, plus the §6.1 separation between hash lengths.

use mpic::{RunOptions, SchemeConfig, Simulation};
use netgraph::DirectedLink;
use netsim::attacks::{BurstLink, PhaseTargeted, SeedAwareCollision, SingleError};
use netsim::PhaseKind;
use protocol::workloads::{Gossip, LinePipeline};
use protocol::Workload;

fn gossip_ring(n: usize) -> Gossip {
    Gossip::new(netgraph::topology::ring(n), 6, 17)
}

#[test]
fn single_error_every_phase_is_survivable() {
    let w = gossip_ring(4);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 23);
    let sim = Simulation::new(&w, cfg, 1);
    let geo = sim.geometry();
    for phase in [
        PhaseKind::MeetingPoints,
        PhaseKind::FlagPassing,
        PhaseKind::Simulation,
        PhaseKind::Rewind,
    ] {
        let round = geo.phase_start(1, phase);
        let atk = SingleError::new(w.graph(), DirectedLink { from: 0, to: 1 }, round);
        let out = sim.run(Box::new(atk), RunOptions::default());
        assert!(out.success, "single {phase:?} error not repaired");
    }
}

#[test]
fn flag_passing_attack_only_idles_the_network() {
    // Corrupting flags can waste iterations but must not corrupt results.
    let w = gossip_ring(5);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 29);
    let sim = Simulation::new(&w, cfg, 2);
    let atk = PhaseTargeted::new(w.graph(), sim.geometry(), PhaseKind::FlagPassing, 0.02, 7);
    let out = sim.run(Box::new(atk), RunOptions::default());
    assert!(out.success, "flag corruption broke correctness: {out:?}");
}

#[test]
fn rewind_forgery_is_survivable() {
    // Injected rewind requests roll back healthy links; the simulation
    // must re-simulate and still finish.
    let w = gossip_ring(5);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 31);
    let sim = Simulation::new(&w, cfg, 3);
    let atk = PhaseTargeted::new(w.graph(), sim.geometry(), PhaseKind::Rewind, 0.01, 9);
    let out = sim.run(Box::new(atk), RunOptions::default());
    assert!(out.success, "forged rewinds broke the run: {out:?}");
}

#[test]
fn meeting_points_attack_is_survivable() {
    let w = gossip_ring(5);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 37);
    let sim = Simulation::new(&w, cfg, 4);
    let atk = PhaseTargeted::new(
        w.graph(),
        sim.geometry(),
        PhaseKind::MeetingPoints,
        0.005,
        11,
    );
    let out = sim.run(Box::new(atk), RunOptions::default());
    assert!(out.success, "MP corruption broke the run: {out:?}");
}

#[test]
fn long_burst_mid_protocol_is_repaired() {
    let w = gossip_ring(5);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 41);
    let sim = Simulation::new(&w, cfg, 5);
    let start = sim.geometry().phase_start(2, PhaseKind::Simulation);
    let atk = BurstLink::new(w.graph(), DirectedLink { from: 2, to: 3 }, start, 20);
    let out = sim.run(Box::new(atk), RunOptions::default());
    assert!(out.success, "20-round burst not repaired: {out:?}");
    assert!(out.stats.corruptions >= 10);
}

/// The §6.1 separation, as a regression test: with τ = 4 the seed-aware
/// hunter defeats the scheme on a clique; with τ = 3 log₂ m it does not.
#[test]
fn seed_aware_separation() {
    let w = Gossip::new(netgraph::topology::clique(6), 6, 51);
    let g = w.graph().clone();
    let m = g.edge_count();

    let mut weak = SchemeConfig::algorithm_a(&g, 61);
    weak.hash_bits = 4;
    let sim = Simulation::new(&w, weak, 6);
    let atk = SeedAwareCollision::new(sim.geometry(), m, 1);
    let out_weak = sim.run(Box::new(atk), RunOptions::default());

    let mut strong = SchemeConfig::algorithm_a(&g, 61);
    strong.hash_bits = (3.0 * (m as f64).log2()).ceil() as u32;
    let sim = Simulation::new(&w, strong, 6);
    let atk = SeedAwareCollision::new(sim.geometry(), m, 1);
    let out_strong = sim.run(Box::new(atk), RunOptions::default());

    assert!(
        !out_weak.success,
        "τ=4 should fall to the seed-aware attack"
    );
    assert!(
        out_weak.instrumentation.hash_collisions > 3,
        "the attack should force collisions, got {}",
        out_weak.instrumentation.hash_collisions
    );
    assert!(out_strong.success, "τ=Θ(log m) should resist");
    assert!(out_strong.instrumentation.hash_collisions <= 1);
}

/// Algorithm C blunts the same attack by hiding the CRS: the oracle is
/// disabled and the hunter finds nothing.
#[test]
fn hidden_crs_starves_the_oracle() {
    let w = Gossip::new(netgraph::topology::clique(5), 6, 53);
    let g = w.graph().clone();
    let cfg = SchemeConfig::algorithm_c(&g, 67);
    let sim = Simulation::new(&w, cfg, 7);
    let atk = SeedAwareCollision::new(sim.geometry(), g.edge_count(), 1);
    let out = sim.run(Box::new(atk), RunOptions::default());
    assert!(out.success);
    assert_eq!(out.stats.corruptions, 0, "oracle should never fire");
}

/// Oblivious adversaries must behave identically whether or not the live
/// view is exposed (they are forbidden from reading it).
#[test]
fn oblivious_attacks_ignore_the_view() {
    let w = gossip_ring(4);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 71);
    let run = |expose_view| {
        let sim = Simulation::new(&w, cfg.clone(), 8);
        let atk = netsim::attacks::IidNoise::new(w.graph(), 0.002, 3);
        sim.run(
            Box::new(atk),
            RunOptions {
                expose_view,
                ..Default::default()
            },
        )
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a.success, b.success);
    assert_eq!(a.stats.cc, b.stats.cc);
    assert_eq!(a.stats.corruptions, b.stats.corruptions);
}

/// Budget enforcement: the engine refuses corruptions beyond the cap, and
/// the adversary cannot exceed its ε-fraction this way.
#[test]
fn noise_budget_is_a_hard_cap() {
    let w = gossip_ring(4);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 73);
    let sim = Simulation::new(&w, cfg, 9);
    let atk = BurstLink::new(w.graph(), DirectedLink { from: 0, to: 1 }, 0, u64::MAX);
    let out = sim.run(
        Box::new(atk),
        RunOptions {
            noise_budget: 5,
            ..Default::default()
        },
    );
    assert_eq!(out.stats.corruptions, 5);
    assert!(out.stats.dropped_corruptions > 0);
    assert!(out.success, "5 corruptions must be repairable");
}

/// A corruption on the very last chunk (the classic end-game attack that
/// dummy-chunk padding defends against) is still corrected.
#[test]
fn late_error_is_repaired() {
    let w = LinePipeline::new(4, 2, 19);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 79);
    let sim = Simulation::new(&w, cfg, 10);
    let real = sim.proto().real_chunks() as u64;
    // Hit the simulation phase of the iteration simulating the last chunk.
    let start = sim.geometry().phase_start(real - 1, PhaseKind::Simulation);
    let atk = SingleError::new(w.graph(), DirectedLink { from: 2, to: 3 }, start + 2);
    let out = sim.run(Box::new(atk), RunOptions::default());
    assert!(out.success, "late error not repaired: {out:?}");
}
