//! Batched-wire equivalence: the word-level `FrameBatch` path and the
//! bit-serial `RoundFrame` path are interchangeable.
//!
//! Three layers of evidence:
//! * property tests that `FrameBatch ↔ RoundFrame` round-trips are
//!   lossless on arbitrary topologies, batch widths and send patterns;
//! * the engine delivers identically through `step_rounds_into` (one
//!   call) and N× `step_into` (sequential) under identical adversaries —
//!   both for batch-aware adversaries (the fast path) and for adversaries
//!   that only implement the per-round interface (the fallback path);
//! * full simulations are **byte-identical** between
//!   `WireMode::Batched` and `WireMode::Reference` across schemes
//!   (A/B/C), workloads, and adversaries — including noise aimed directly
//!   at the batched meeting-points rounds and the §6.1 seed-aware
//!   adaptive hunter.

use mpic::{RunOptions, SchemeConfig, Simulation, WireMode};
use netgraph::{topology, Graph};
use netsim::attacks::{BurstLink, IidNoise, PhaseTargeted, SeedAwareCollision};
use netsim::{AdaptiveView, Adversary, Corruption, FrameBatch, Network, PhaseKind, RoundFrame};
use proptest::prelude::*;
use protocol::workloads::{Gossip, TokenRing};
use protocol::Workload;
use smallbias::Xoshiro256;

fn pick_topology(which: usize, seed: u64) -> Graph {
    match which % 5 {
        0 => topology::ring(5),
        1 => topology::line(6),
        2 => topology::clique(5),
        3 => topology::grid(2, 3),
        _ => topology::random_connected(7, 11, seed),
    }
}

/// A batch of `rounds` random frames: each (link, round) slot is silent,
/// 0, or 1.
fn random_frames(g: &Graph, rounds: usize, rng: &mut Xoshiro256) -> Vec<RoundFrame> {
    (0..rounds)
        .map(|_| {
            let mut f = RoundFrame::for_graph(g);
            for id in 0..g.link_count() {
                match rng.next_u64() % 3 {
                    0 => {}
                    1 => f.set(id, false),
                    _ => f.set(id, true),
                }
            }
            f
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Frames → batch (set_round) → frames (round_into) is the identity,
    /// and per-slot `get` agrees with the source frames.
    #[test]
    fn batch_roundframe_roundtrip(which in 0usize..5, rounds in 1usize..80, seed in 0u64..10_000) {
        let g = pick_topology(which, seed);
        let mut rng = Xoshiro256::seeded(seed ^ 0xBA7C);
        let frames = random_frames(&g, rounds, &mut rng);
        let mut batch = FrameBatch::for_graph(&g, rounds);
        for (r, f) in frames.iter().enumerate() {
            batch.set_round(r, f);
        }
        prop_assert_eq!(
            batch.count_set(),
            frames.iter().map(RoundFrame::count_set).sum::<usize>()
        );
        let mut back = RoundFrame::for_graph(&g);
        for (r, f) in frames.iter().enumerate() {
            batch.round_into(r, &mut back);
            prop_assert_eq!(&back, f, "round {}", r);
            for id in 0..g.link_count() {
                prop_assert_eq!(batch.get(id, r), f.get(id));
            }
        }
    }

    /// Lane writes (`set_bits`) agree with per-round bit addressing and
    /// with `get_bits` read-back.
    #[test]
    fn batch_lane_write_matches_bit_view(rounds in 1usize..100, seed in 0u64..10_000) {
        let links = 5usize;
        let mut rng = Xoshiro256::seeded(seed ^ 0x1A9E);
        let mut batch = FrameBatch::new(links, rounds);
        let wpl = rounds.div_ceil(64);
        for id in 0..links {
            let nbits = (rng.next_u64() as usize) % (rounds + 1);
            let words: Vec<u64> = (0..wpl).map(|_| rng.next_u64()).collect();
            batch.set_bits(id, &words, nbits);
            for r in 0..rounds {
                let want = if r < nbits {
                    Some(words[r / 64] >> (r % 64) & 1 == 1)
                } else {
                    None
                };
                prop_assert_eq!(batch.get(id, r), want, "link {} round {}", id, r);
            }
            let mut v = vec![0u64; wpl];
            let mut p = vec![0u64; wpl];
            batch.get_bits(id, &mut v, &mut p, nbits);
            for r in 0..nbits {
                prop_assert_eq!(p[r / 64] >> (r % 64) & 1, 1);
                prop_assert_eq!(
                    v[r / 64] >> (r % 64) & 1 == 1,
                    words[r / 64] >> (r % 64) & 1 == 1
                );
            }
        }
    }

    /// One batched engine call equals N sequential calls — batch-aware
    /// adversary (IidNoise), including stats and budget draw-down.
    #[test]
    fn step_rounds_into_matches_sequential_fast_path(
        which in 0usize..5,
        rounds in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let g = pick_topology(which, seed);
        assert_batch_equals_sequential(
            &g,
            rounds,
            seed,
            Box::new(IidNoise::new(&g, 0.08, seed)),
            Box::new(IidNoise::new(&g, 0.08, seed)),
        )?;
    }

    /// Same equivalence through the engine's per-round fallback (an
    /// adversary that only implements the bit-serial interface).
    #[test]
    fn step_rounds_into_matches_sequential_fallback(
        which in 0usize..5,
        rounds in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let g = pick_topology(which, seed);
        assert_batch_equals_sequential(
            &g,
            rounds,
            seed,
            Box::new(SerialOnly(IidNoise::new(&g, 0.08, seed))),
            Box::new(SerialOnly(IidNoise::new(&g, 0.08, seed))),
        )?;
    }
}

/// Wraps an adversary, hiding its batch implementation so the engine must
/// take the per-round fallback.
struct SerialOnly<A>(A);

impl<A: Adversary> Adversary for SerialOnly<A> {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        remaining_budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        self.0.corrupt(round, sends, remaining_budget, view)
    }

    fn is_oblivious(&self) -> bool {
        self.0.is_oblivious()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// Drives the same random send batch through a sequentially-stepped
/// network and a batch-stepped network (tight budget, so draw-down and
/// drop accounting are exercised) and asserts identical receptions and
/// stats. Repeats for two consecutive batches so mid-stream adversary
/// state carries over correctly.
fn assert_batch_equals_sequential(
    g: &Graph,
    rounds: usize,
    seed: u64,
    adv_seq: Box<dyn Adversary>,
    adv_batch: Box<dyn Adversary>,
) -> Result<(), TestCaseError> {
    let budget = 10;
    let mut seq_net = Network::new(g.clone(), adv_seq, budget);
    let mut batch_net = Network::new(g.clone(), adv_batch, budget);
    let mut rng = Xoshiro256::seeded(seed ^ 0x57E9);
    for pass in 0..2 {
        let frames = random_frames(g, rounds, &mut rng);
        let mut tx_batch = FrameBatch::for_graph(g, rounds);
        for (r, f) in frames.iter().enumerate() {
            tx_batch.set_round(r, f);
        }
        let mut rx_batch = FrameBatch::for_graph(g, rounds);
        batch_net.step_rounds_into(&tx_batch, None, &mut rx_batch);
        let mut rx = RoundFrame::for_graph(g);
        let mut got = RoundFrame::for_graph(g);
        for (r, f) in frames.iter().enumerate() {
            seq_net.step_into(f, None, &mut rx);
            rx_batch.round_into(r, &mut got);
            prop_assert_eq!(&got, &rx, "pass {} round {}", pass, r);
        }
        prop_assert_eq!(seq_net.stats(), batch_net.stats(), "pass {}", pass);
        prop_assert_eq!(seq_net.remaining_budget(), batch_net.remaining_budget());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Full-run equivalence: WireMode::Batched vs WireMode::Reference.
// ---------------------------------------------------------------------

fn assert_outcomes_identical(a: &mpic::SimOutcome, b: &mpic::SimOutcome) {
    assert_eq!(a.stats, b.stats, "NetStats diverged between wire modes");
    assert_eq!(a.success, b.success);
    assert_eq!(a.transcripts_ok, b.transcripts_ok);
    assert_eq!(a.outputs_ok, b.outputs_ok);
    assert_eq!(a.payload_cc, b.payload_cc);
    assert_eq!(a.padded_cc, b.padded_cc);
    assert_eq!(a.blowup.to_bits(), b.blowup.to_bits());
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.g_star, b.g_star);
    assert_eq!(a.b_star, b.b_star);
    assert_eq!(
        a.instrumentation.hash_collisions,
        b.instrumentation.hash_collisions
    );
}

/// Runs the same (workload, config, adversary-builder) under both wire
/// modes and asserts byte-identical outcomes.
fn assert_modes_identical<W: Workload>(
    w: &W,
    cfg: SchemeConfig,
    trial_seed: u64,
    mk_adversary: impl Fn(&Simulation) -> Box<dyn Adversary>,
) -> mpic::SimOutcome {
    let mut reference_cfg = cfg.clone();
    reference_cfg.wire = WireMode::Reference;
    let mut batched_cfg = cfg;
    batched_cfg.wire = WireMode::Batched;
    let sim_ref = Simulation::new(w, reference_cfg, trial_seed);
    let sim_bat = Simulation::new(w, batched_cfg, trial_seed);
    let out_ref = sim_ref.run(mk_adversary(&sim_ref), RunOptions::default());
    let out_bat = sim_bat.run(mk_adversary(&sim_bat), RunOptions::default());
    assert_outcomes_identical(&out_ref, &out_bat);
    out_bat
}

/// Algorithm A (CRS) under i.i.d. noise: the batched meeting-points
/// rounds absorb corruptions identically.
#[test]
fn full_sim_identical_alg_a_iid() {
    let w = TokenRing::new(4, 3, 31);
    let g = w.graph().clone();
    for seed in 0..3 {
        assert_modes_identical(&w, SchemeConfig::algorithm_a(&g, 5), 8 + seed, |_| {
            Box::new(IidNoise::new(&g, 0.002, seed))
        });
    }
}

/// Algorithm B: the randomness-exchange prologue itself goes through the
/// batched step (and its seeds must decode identically under noise).
#[test]
fn full_sim_identical_alg_b_exchange_under_noise() {
    let w = Gossip::new(topology::ring(5), 5, 13);
    let g = w.graph().clone();
    for seed in 0..3 {
        assert_modes_identical(&w, SchemeConfig::algorithm_b(&g, 6), 21 + seed, |_| {
            Box::new(IidNoise::new(&g, 0.003, seed))
        });
    }
}

/// Noise aimed squarely at the batched phase: PhaseTargeted on the
/// meeting-points rounds.
#[test]
fn full_sim_identical_noise_inside_batched_phase() {
    let w = Gossip::new(topology::grid(2, 3), 4, 7);
    let g = w.graph().clone();
    for seed in 0..2 {
        assert_modes_identical(&w, SchemeConfig::algorithm_a(&g, 9), 40 + seed, |sim| {
            Box::new(PhaseTargeted::new(
                &g,
                sim.geometry(),
                PhaseKind::MeetingPoints,
                0.02,
                seed,
            ))
        });
    }
}

/// A burst crossing phase boundaries (rewind → meeting points) hits the
/// same wire bits in both modes.
#[test]
fn full_sim_identical_burst_across_phases() {
    let w = TokenRing::new(5, 2, 17);
    let g = w.graph().clone();
    let link = netgraph::DirectedLink { from: 1, to: 2 };
    assert_modes_identical(&w, SchemeConfig::algorithm_a(&g, 3), 55, |sim| {
        let geo = sim.geometry();
        // Start mid-rewind of iteration 0, run into iteration 1's
        // meeting points.
        let start = geo.phase_start(0, PhaseKind::Rewind) + 2;
        Box::new(BurstLink::new(&g, link, start, geo.rewind + 10))
    });
}

/// The §6.1 seed-aware adaptive hunter (not batch-aware: exercises the
/// engine's per-round fallback inside the batched phases, and the live
/// oracle during simulation rounds).
#[test]
fn full_sim_identical_seed_aware_adaptive() {
    let w = Gossip::new(topology::ring(4), 5, 3);
    let g = w.graph().clone();
    let out = assert_modes_identical(&w, SchemeConfig::algorithm_a(&g, 7), 77, |sim| {
        Box::new(SeedAwareCollision::new(sim.geometry(), g.edge_count(), 1))
    });
    // The hunter must actually have landed something for this test to
    // mean anything (alg A's constant τ is its prey).
    assert!(out.stats.corruptions > 0, "hunter never fired");
}

/// Hashing modes × wire modes: all four combinations agree (the two
/// reference/production axes are independent).
#[test]
fn full_sim_identical_all_mode_combinations() {
    let w = TokenRing::new(4, 2, 9);
    let g = w.graph().clone();
    let mut outs = Vec::new();
    for wire in [WireMode::Batched, WireMode::Reference] {
        for hashing in [mpic::HashingMode::Incremental, mpic::HashingMode::Reference] {
            let mut cfg = SchemeConfig::algorithm_a(&g, 11);
            cfg.wire = wire;
            cfg.hashing = hashing;
            let sim = Simulation::new(&w, cfg, 33);
            outs.push(sim.run(Box::new(IidNoise::new(&g, 0.002, 4)), RunOptions::default()));
        }
    }
    for o in &outs[1..] {
        assert_outcomes_identical(&outs[0], o);
    }
}

/// The F4 ablations (no flag passing / no rewind) also agree — the
/// disabled-rewind phase is itself batched.
#[test]
fn full_sim_identical_ablations() {
    let w = Gossip::new(topology::line(4), 4, 5);
    let g = w.graph().clone();
    for (dfp, drw) in [(true, false), (false, true), (true, true)] {
        let mut cfg = SchemeConfig::algorithm_a(&g, 13);
        cfg.disable_flag_passing = dfp;
        cfg.disable_rewind = drw;
        for seed in 0..2 {
            assert_modes_identical(&w, cfg.clone(), 60 + seed, |_| {
                Box::new(IidNoise::new(&g, 0.004, seed))
            });
        }
    }
}
