//! Adaptive-adversary byte-equivalence: random adaptive strategies (and
//! random scripted noise) produce **byte-identical** `SimOutcome`s across
//! `WireMode::{Batched,Reference}` × `HashingMode::{Incremental,Reference}`.
//!
//! The four PR-5 phase-aware attacks and the `ScriptedAdversary` fuzz
//! family are each a member of the matrix: per proptest case, the same
//! (workload, scheme, attack, seed) tuple runs under all four mode
//! combinations and every observable — engine stats, success verdict,
//! agreement floor/ceiling, and the full instrumentation counter set —
//! must agree bit for bit. This is the adaptive-pressure counterpart of
//! the honest-pipeline `wire_batch` and `incremental_hashing` suites: the
//! fast paths may not change behavior even when the adversary conditions
//! on live state.

use mpic::{HashingMode, RunOptions, SchemeConfig, SimOutcome, Simulation, WireMode};
use netgraph::Graph;
use netsim::attacks::{
    BurstLink, CrossIterationHunter, FlagFlipper, MeetingPointSplitter, Pair, RewindSuppressor,
    ScriptedAdversary,
};
use netsim::{Adversary, PhaseKind};
use proptest::prelude::*;
use protocol::workloads::{Gossip, TokenRing};
use protocol::Workload;

fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome, ctx: &str) {
    assert_eq!(a.stats, b.stats, "{ctx}: NetStats diverged");
    assert_eq!(a.success, b.success, "{ctx}");
    assert_eq!(a.transcripts_ok, b.transcripts_ok, "{ctx}");
    assert_eq!(a.outputs_ok, b.outputs_ok, "{ctx}");
    assert_eq!(a.payload_cc, b.payload_cc, "{ctx}");
    assert_eq!(a.padded_cc, b.padded_cc, "{ctx}");
    assert_eq!(a.blowup.to_bits(), b.blowup.to_bits(), "{ctx}");
    assert_eq!(a.iterations, b.iterations, "{ctx}");
    assert_eq!(a.g_star, b.g_star, "{ctx}");
    assert_eq!(a.b_star, b.b_star, "{ctx}");
    let (ia, ib) = (&a.instrumentation, &b.instrumentation);
    assert_eq!(ia.hash_collisions, ib.hash_collisions, "{ctx}");
    assert_eq!(ia.bad_rollbacks, ib.bad_rollbacks, "{ctx}");
    assert_eq!(ia.mp_resets, ib.mp_resets, "{ctx}");
    assert_eq!(ia.mp_truncations, ib.mp_truncations, "{ctx}");
    assert_eq!(ia.stalled_iterations, ib.stalled_iterations, "{ctx}");
    assert_eq!(ia.rewind_truncations, ib.rewind_truncations, "{ctx}");
    assert_eq!(ia.rewind_wave_depth, ib.rewind_wave_depth, "{ctx}");
}

/// The five attack families of the matrix. `seed` varies the member;
/// `tau` is the scheme's hash length (the splitter aims at hash fields).
fn build_attack(
    family: usize,
    g: &Graph,
    sim: &Simulation,
    tau: u32,
    seed: u64,
) -> Box<dyn Adversary> {
    let geo = sim.geometry();
    match family {
        0 => Box::new(MeetingPointSplitter::new(g, tau, 1 + seed % 3)),
        1 => Box::new(FlagFlipper::new(g, 1 + seed % 2)),
        2 => {
            // The suppressor needs a wave to stall: pair with a burst.
            let start = geo.phase_start(1 + seed % 2, PhaseKind::Simulation);
            let link = g.links()[seed as usize % g.link_count()];
            Box::new(Pair(
                Box::new(BurstLink::new(g, link, start, 4 + seed % 6)),
                Box::new(RewindSuppressor::new(g, 2 + seed % 4)),
            ))
        }
        3 => Box::new(CrossIterationHunter::new(
            g.edge_count(),
            1 + seed % 2,
            4 + seed % 8,
        )),
        _ => {
            let rounds = geo.setup + sim.iterations() as u64 * geo.iteration_rounds();
            Box::new(ScriptedAdversary::random(
                g,
                rounds,
                (seed % 40) as usize,
                seed,
            ))
        }
    }
}

/// Runs one (workload, cfg, attack family, seed) tuple under all four
/// wire × hashing combinations and asserts byte-identical outcomes.
fn assert_matrix_identical<W: Workload>(w: &W, base: SchemeConfig, family: usize, seed: u64) {
    let g = w.graph().clone();
    let budget = 8 + seed % 40;
    let mut outs: Vec<(SimOutcome, String)> = Vec::new();
    for wire in [WireMode::Batched, WireMode::Reference] {
        for hashing in [HashingMode::Incremental, HashingMode::Reference] {
            let mut cfg = base.clone();
            cfg.wire = wire;
            cfg.hashing = hashing;
            let sim = Simulation::new(w, cfg, seed);
            let adv = build_attack(family, &g, &sim, base.hash_bits, seed);
            let out = sim.run(
                adv,
                RunOptions {
                    noise_budget: budget,
                    ..Default::default()
                },
            );
            outs.push((
                out,
                format!("family {family} seed {seed} {wire:?}/{hashing:?}"),
            ));
        }
    }
    for (o, ctx) in &outs[1..] {
        assert_outcomes_identical(&outs[0].0, o, ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random members of every adaptive family (and random corruption
    /// scripts) are byte-identical across the 2×2 mode matrix, on a CRS
    /// scheme over a gossip ring.
    #[test]
    fn adaptive_matrix_identical_alg_a(seed in 0u64..10_000) {
        let w = Gossip::new(netgraph::topology::ring(5), 5, 17);
        let base = SchemeConfig::algorithm_a(w.graph(), 23);
        for family in 0..5 {
            assert_matrix_identical(&w, base.clone(), family, seed);
        }
    }

    /// Same under Algorithm B, whose randomness-exchange prologue also
    /// runs through the batched path while the adversary watches.
    #[test]
    fn adaptive_matrix_identical_alg_b(seed in 0u64..10_000, family in 0usize..5) {
        let w = TokenRing::new(4, 3, 31);
        let base = SchemeConfig::algorithm_b(w.graph(), 6);
        assert_matrix_identical(&w, base, family, seed);
    }

    /// Random budget-respecting corruption scripts alone (the fuzz
    /// family), denser than the matrix draw, across a second topology.
    #[test]
    fn scripted_noise_matrix_identical(seed in 0u64..10_000, len in 0usize..60) {
        let w = Gossip::new(netgraph::topology::grid(2, 3), 4, 7);
        let base = SchemeConfig::algorithm_a(w.graph(), 9);
        let g = w.graph().clone();
        let mut outs: Vec<SimOutcome> = Vec::new();
        for wire in [WireMode::Batched, WireMode::Reference] {
            for hashing in [HashingMode::Incremental, HashingMode::Reference] {
                let mut cfg = base.clone();
                cfg.wire = wire;
                cfg.hashing = hashing;
                let sim = Simulation::new(&w, cfg, seed);
                let geo = sim.geometry();
                let rounds = geo.setup + sim.iterations() as u64 * geo.iteration_rounds();
                let adv = ScriptedAdversary::random(&g, rounds, len, seed);
                outs.push(sim.run(Box::new(adv), RunOptions::default()));
            }
        }
        for o in &outs[1..] {
            assert_outcomes_identical(&outs[0], o, &format!("script seed {seed} len {len}"));
        }
    }
}

/// Deterministic pin: one known-nontrivial member of each family lands
/// corruptions (so the proptest above is not vacuously comparing idle
/// adversaries).
#[test]
fn every_family_actually_fires() {
    let w = Gossip::new(netgraph::topology::ring(5), 5, 17);
    let base = SchemeConfig::algorithm_a(w.graph(), 23);
    let g = w.graph().clone();
    for family in 0..5 {
        // Seeds chosen so each family has a live member (family 3, the
        // hunter, needs a seed whose oracle hunt succeeds).
        let seed = 1;
        let sim = Simulation::new(&w, base.clone(), seed);
        let adv = build_attack(family, &g, &sim, base.hash_bits, seed);
        let out = sim.run(
            adv,
            RunOptions {
                noise_budget: 30,
                ..Default::default()
            },
        );
        assert!(
            out.stats.corruptions > 0,
            "family {family} never fired — equivalence would be vacuous"
        );
    }
}
