//! Service determinism: a [`SimRequest`] answered by the worker-pool
//! service must be **byte-identical** to a direct [`run_trial`] with the
//! same `(specs, seed)` — whatever worker ran it, whether the artifact
//! cache was cold or warm, and whatever intra-trial [`Parallelism`] the
//! service grants. This is the acceptance gate of the serve subsystem:
//! caching and pooling are pure wall-clock optimizations.

use bench::{
    derive_trial_seed, run_many, run_trial, sim_service, AttackSpec, FaultSpec, Scheme, SimRequest,
    TopoSpec, TrialResult, WorkloadSpec,
};
use mpic::Parallelism;
use netsim::PhaseKind;
use serve::{Priority, ServiceConfig, Ticket};

fn schemes() -> Vec<Scheme> {
    vec![Scheme::A, Scheme::B, Scheme::C]
}

fn attacks() -> Vec<AttackSpec> {
    vec![
        AttackSpec::None,
        AttackSpec::Iid { fraction: 0.002 },
        AttackSpec::SeedAware { per_iteration: 1 },
        AttackSpec::Phase {
            phase: PhaseKind::MeetingPoints,
            prob: 0.01,
        },
    ]
}

fn workload() -> WorkloadSpec {
    WorkloadSpec::Gossip {
        topo: TopoSpec::Ring(4),
        rounds: 4,
    }
}

/// The full matrix, twice through one service (cold pass then warm pass):
/// every response equals the direct run, and the second pass hits cache.
#[test]
fn matrix_byte_identity_cold_and_warm() {
    for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
        let svc = sim_service(ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            parallelism,
            ..ServiceConfig::default()
        });
        for pass in 0..2 {
            let mut expected: Vec<(SimRequest, TrialResult)> = Vec::new();
            let mut tickets: Vec<Ticket<TrialResult>> = Vec::new();
            for (i, scheme) in schemes().into_iter().enumerate() {
                for (j, attack) in attacks().into_iter().enumerate() {
                    let req = SimRequest {
                        workload: workload(),
                        scheme,
                        attack,
                        fault: FaultSpec::None,
                        seed: 31 * (i as u64 + 1) + j as u64,
                    };
                    let want = run_trial(req.workload, scheme, req.attack.clone(), req.seed);
                    expected.push((req.clone(), want));
                    tickets.push(svc.submit(req, Priority::Normal).unwrap());
                }
            }
            for ((req, want), ticket) in expected.into_iter().zip(tickets) {
                let resp = ticket.wait().expect("reply lost");
                let got = resp.outcome.done().expect("not cancelled");
                assert_eq!(
                    got, want,
                    "pass {pass}, {parallelism:?}: service diverged on {req:?}"
                );
                if pass == 1 {
                    assert!(
                        resp.cache_hit,
                        "pass 1 should be cache-warm for {req:?} ({parallelism:?})"
                    );
                }
            }
        }
        let stats = svc.shutdown();
        // Ring(4) gossip is structurally fixed, so the cache holds one
        // entry per *distinct* chunking among 5m (the hint, = Algorithm
        // A's) and each scheme's 5·k_param. Compute rather than hardcode:
        // for small m the B/C chunkings can coincide with A's.
        let g = TopoSpec::Ring(4).build(1);
        let mut chunkings = std::collections::BTreeSet::from([5 * g.edge_count()]);
        for scheme in schemes() {
            chunkings.insert(scheme.config(&g, 1, 0).chunk_bits());
        }
        assert_eq!(
            stats.cache_entries,
            chunkings.len() as u64,
            "unexpected cache population"
        );
        // Misses can exceed the entry count when two workers race to
        // compile the same entry (one compilation is adopted, both count
        // as misses) — but every entry missed at least once, and the
        // warm pass guarantees hits.
        assert!(stats.cache_misses >= chunkings.len() as u64);
        assert!(stats.cache_hits > 0);
    }
}

/// Baseline schemes ride the same cache path.
#[test]
fn baselines_byte_identity() {
    let svc = sim_service(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServiceConfig::default()
    });
    for scheme in [Scheme::NoCoding, Scheme::Repetition(3)] {
        for attack in [AttackSpec::None, AttackSpec::Iid { fraction: 0.001 }] {
            let req = SimRequest {
                workload: WorkloadSpec::TokenRing { n: 4, laps: 2 },
                scheme,
                attack: attack.clone(),
                fault: FaultSpec::None,
                seed: 99,
            };
            let want = run_trial(req.workload, scheme, attack.clone(), req.seed);
            let got = svc
                .submit(req, Priority::Normal)
                .unwrap()
                .wait()
                .unwrap()
                .outcome
                .done()
                .unwrap();
            assert_eq!(got, want, "baseline {scheme:?}/{attack:?} diverged");
        }
    }
    svc.shutdown();
}

/// A `run_many` population replayed through the service row by row: the
/// public seed derivation plus the service reproduces the exact rows
/// (this is what `bencher --compare-raw` asserts at load).
#[test]
fn run_many_population_through_service() {
    let workload = WorkloadSpec::TokenRing { n: 4, laps: 2 };
    let scheme = Scheme::A;
    let attack = AttackSpec::Iid { fraction: 0.002 };
    let trials = 12;
    let (_, raw_rows) = run_many(workload, scheme, attack.clone(), trials, 2024);

    let svc = sim_service(ServiceConfig {
        workers: 3,
        queue_capacity: trials,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = (0..trials)
        .map(|i| {
            svc.submit(
                SimRequest {
                    workload,
                    scheme,
                    attack: attack.clone(),
                    fault: FaultSpec::None,
                    seed: derive_trial_seed(2024, i),
                },
                Priority::Normal,
            )
            .unwrap()
        })
        .collect();
    let service_rows: Vec<TrialResult> = tickets
        .into_iter()
        .map(|t| t.wait().unwrap().outcome.done().unwrap())
        .collect();
    assert_eq!(service_rows, raw_rows);
    svc.shutdown();
}

/// Random topologies fingerprint per-seed: structurally distinct trials
/// must not collide in the cache (each gets its own entries and still
/// matches the direct run).
#[test]
fn random_topology_per_seed_entries() {
    let svc = sim_service(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServiceConfig::default()
    });
    let workload = WorkloadSpec::Gossip {
        topo: TopoSpec::Random(6, 8),
        rounds: 3,
    };
    for seed in [1u64, 2, 3] {
        let req = SimRequest {
            workload,
            scheme: Scheme::A,
            attack: AttackSpec::None,
            fault: FaultSpec::None,
            seed,
        };
        let want = run_trial(req.workload, req.scheme, req.attack.clone(), seed);
        let got = svc
            .submit(req, Priority::Normal)
            .unwrap()
            .wait()
            .unwrap()
            .outcome
            .done()
            .unwrap();
        assert_eq!(got, want, "random topology seed {seed} diverged");
    }
    let stats = svc.shutdown();
    // Distinct seeds build distinct graphs → distinct fingerprints. (If
    // two seeds happened to build identical structures, caching them
    // together would still be correct; 3 entries just pins that these
    // three differ.)
    assert_eq!(stats.cache_entries, 3);
}
