//! Incremental-hashing equivalence: the cached [`PrefixHasher`] fold, the
//! recompute-from-scratch [`sketch_prefix`] reference, and the classic
//! [`hash_prefix`] of Definition 2.2 must all agree wherever their domains
//! overlap — and a full coding-scheme run must be byte-identical whichever
//! backend drives it.
//!
//! Three layers of evidence:
//! * property tests that a `PrefixHasher` extended one transcript symbol
//!   at a time equals the reference at *every* prefix length, across τ
//!   values and seed slots, through truncation/regrowth churn;
//! * the ≤64-bit anchor: the sketch's word-interleaved seed layout
//!   coincides with `hash_prefix`'s stretch-major layout for single-word
//!   inputs, tying the sketch to the paper's hash;
//! * full scheme runs (CRS and exchanged randomness, noiseless and under
//!   noise) produce byte-identical `SimOutcome`s under
//!   `HashingMode::Incremental` and `HashingMode::Reference`.

use std::sync::Arc;

use mpic::{HashingMode, RunOptions, SchemeConfig, Simulation};
use netsim::attacks::{IidNoise, NoNoise, SingleError};
use proptest::prelude::*;
use protocol::workloads::{Gossip, TokenRing};
use protocol::Workload;
use smallbias::{
    hash_prefix, sketch_prefix, BitString, CrsSource, PrefixHasher, SeedLabel, SeedSource,
};

fn label(slot: u32) -> SeedLabel {
    SeedLabel {
        iteration: 0,
        channel: 5,
        slot,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Extending one 2-bit transcript symbol at a time matches the
    /// reference at every symbol boundary, for every τ and seed slot.
    #[test]
    fn hasher_matches_reference_at_every_prefix(
        syms in proptest::collection::vec(0u64..4, 1..120),
        tau in 1u32..65,
        slot in 0u32..4,
        master in 0u64..1000,
    ) {
        let src: Arc<dyn SeedSource> = Arc::new(CrsSource::new(master));
        let mut h = PrefixHasher::new(Arc::clone(&src), label(slot), tau);
        let mut bits = BitString::new();
        for &s in &syms {
            h.push_bits(s, 2);
            bits.push_bits(s, 2);
            prop_assert_eq!(
                h.digest(),
                sketch_prefix(&bits, bits.len(), tau, &mut *src.stream(label(slot)))
            );
        }
    }

    /// Same through checkpoint/truncate/regrow churn (the rewind +
    /// meeting-points rollback pattern).
    #[test]
    fn hasher_survives_truncation_churn(
        chunks in proptest::collection::vec(proptest::collection::vec(0u64..4, 1..6), 2..20),
        cut in 0usize..10,
        tau in 1u32..65,
        master in 0u64..1000,
    ) {
        let src: Arc<dyn SeedSource> = Arc::new(CrsSource::new(master));
        let mut h = PrefixHasher::new(Arc::clone(&src), label(2), tau);
        let mut boundaries = vec![0usize];
        let mut bits = BitString::new();
        let push = |h: &mut PrefixHasher, bits: &mut BitString, chunk: &[u64], id: u64| {
            h.push_bits(id, 32);
            bits.push_bits(id, 32);
            for &s in chunk {
                h.push_bits(s, 2);
                bits.push_bits(s, 2);
            }
            h.mark();
        };
        for (i, chunk) in chunks.iter().enumerate() {
            push(&mut h, &mut bits, chunk, i as u64);
            boundaries.push(bits.len());
        }
        // Truncate to an arbitrary chunk boundary and regrow differently.
        let keep = cut % chunks.len();
        h.truncate_to_mark(keep);
        bits.truncate(boundaries[keep]);
        push(&mut h, &mut bits, &[3, 0, 1], keep as u64);
        prop_assert_eq!(
            h.digest(),
            sketch_prefix(&bits, bits.len(), tau, &mut *src.stream(label(2)))
        );
        // Checkpointed prefixes still answer correctly after the churn.
        for k in 0..keep {
            let (d, len) = h.digest_at(k);
            prop_assert_eq!(len, boundaries[k + 1]);
            prop_assert_eq!(d, sketch_prefix(&bits, len, tau, &mut *src.stream(label(2))));
        }
    }

    /// The ≤64-bit anchor: for single-word inputs the sketch layout and
    /// `hash_prefix`'s stretch-major layout coincide, so the incremental
    /// fold reproduces the paper's inner-product hash exactly.
    #[test]
    fn hasher_matches_hash_prefix_on_single_word_inputs(
        n_bits in 1usize..65,
        tau in 1u32..65,
        slot in 0u32..4,
        master in 0u64..1000,
    ) {
        let src: Arc<dyn SeedSource> = Arc::new(CrsSource::new(master ^ 0xABCD));
        let bits: BitString = (0..n_bits).map(|i| (master >> (i % 64)) & 1 == 1).collect();
        let mut h = PrefixHasher::new(Arc::clone(&src), label(slot), tau);
        for i in 0..n_bits {
            h.push_bit(bits.bit(i));
        }
        prop_assert_eq!(
            h.digest(),
            hash_prefix(&bits, n_bits, tau, &mut *src.stream(label(slot)))
        );
    }
}

fn assert_outcomes_identical(a: &mpic::SimOutcome, b: &mpic::SimOutcome) {
    // `SimOutcome` derives Debug over every field (including the full
    // instrumentation trace), so equal debug renderings = byte-identical
    // outcomes.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

fn run_both_ways(
    w: &dyn Workload,
    mut cfg: SchemeConfig,
    trial_seed: u64,
    attack: impl Fn() -> Box<dyn netsim::Adversary>,
) {
    cfg.hashing = HashingMode::Incremental;
    let inc = Simulation::new(w, cfg.clone(), trial_seed).run(
        attack(),
        RunOptions {
            record_trace: true,
            ..Default::default()
        },
    );
    cfg.hashing = HashingMode::Reference;
    let reference = Simulation::new(w, cfg, trial_seed).run(
        attack(),
        RunOptions {
            record_trace: true,
            ..Default::default()
        },
    );
    assert_outcomes_identical(&inc, &reference);
}

/// Full scheme, CRS randomness, noiseless: byte-identical outcomes.
#[test]
fn full_run_identical_noiseless() {
    let w = TokenRing::new(4, 3, 11);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 7);
    run_both_ways(&w, cfg, 3, || Box::new(NoNoise));
}

/// Under i.i.d. noise the meeting points, rollbacks and rewinds all fire —
/// the truncation path of the incremental fold must track exactly.
#[test]
fn full_run_identical_under_noise() {
    let w = Gossip::new(netgraph::topology::ring(5), 6, 13);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 9);
    for seed in 0..3 {
        run_both_ways(&w, cfg.clone(), 100 + seed, || {
            Box::new(IidNoise::new(w.graph(), 0.002, seed))
        });
    }
}

/// A targeted single error exercises one clean divergence + repair cycle.
#[test]
fn full_run_identical_after_single_error() {
    let w = TokenRing::new(4, 3, 17);
    let cfg = SchemeConfig::algorithm_a(w.graph(), 5);
    let sim = Simulation::new(&w, cfg.clone(), 2);
    let round = sim.geometry().phase_start(1, netsim::PhaseKind::Simulation) + 2;
    run_both_ways(&w, cfg, 2, || {
        Box::new(SingleError::new(
            w.graph(),
            netgraph::DirectedLink { from: 0, to: 1 },
            round,
        ))
    });
}

/// Exchanged randomness (Algorithm B): the sketch seeds come from the
/// decoded 128-bit exchange, and both backends must read them identically.
#[test]
fn full_run_identical_exchanged_randomness() {
    let w = TokenRing::new(4, 2, 19);
    let cfg = SchemeConfig::algorithm_b(w.graph(), 3);
    run_both_ways(&w, cfg, 4, || Box::new(NoNoise));
}

/// The δ-biased AGHP expansion drives the same equivalence (regions are
/// carved per label; the sketch reads its region once vs. per query).
#[test]
fn full_run_identical_aghp_expansion() {
    let w = TokenRing::new(4, 2, 23);
    let mut cfg = SchemeConfig::algorithm_b(w.graph(), 3);
    if let mpic::RandomnessMode::Exchanged { expansion, .. } = &mut cfg.randomness {
        *expansion = mpic::SeedExpansion::Aghp;
    }
    run_both_ways(&w, cfg, 5, || Box::new(NoNoise));
}
