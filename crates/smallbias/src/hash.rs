//! The inner-product hash function of Definition 2.2, plus the packed
//! [`BitString`] buffer it operates on.
//!
//! `h(x, s)` is the concatenation of τ inner products between the input
//! bits `x` and τ disjoint stretches of the seed `s` (one stretch of
//! `|x|` bits per output bit). Seeds are consumed lazily from a
//! [`crate::SeedBits`] stream, so neither party ever materializes the
//! Θ(τ·|x|)-bit seed.
//!
//! Two properties the coding scheme relies on (Lemma 2.3):
//! * for a uniform seed and any fixed `x ≠ y`, `Pr[h(x) = h(y)] = 2^{-τ}`;
//! * the hash is GF(2)-linear in its input for a fixed seed.
//!
//! Note the paper's footnote 11: `h(x)` and `h(x ∘ 0)` agree on the first
//! output bit, so inputs must embed their own length/position information —
//! our transcripts embed chunk indices for exactly this reason.

use crate::seed::SeedBits;

/// A growable, packed bit string (little-endian within each 64-bit word).
///
/// Bits beyond `len` are guaranteed zero, so word-level operations need no
/// masking.
///
/// # Examples
///
/// ```
/// use smallbias::BitString;
/// let mut b = BitString::new();
/// b.push_bit(true);
/// b.push_bits(0b101, 3);
/// assert_eq!(b.len(), 4);
/// assert_eq!(b.bit(0), true);
/// assert_eq!(b.bit(2), false);
/// assert_eq!(b.bit(3), true);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl BitString {
    /// An empty bit string.
    pub fn new() -> Self {
        BitString::default()
    }

    /// An empty bit string with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitString {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        let w = self.len / 64;
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends the low `count` bits of `value`, lowest bit first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn push_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64);
        for j in 0..count {
            self.push_bit((value >> j) & 1 == 1);
        }
    }

    /// Appends all bits of `other`.
    pub fn extend_from(&mut self, other: &BitString) {
        for i in 0..other.len {
            self.push_bit(other.bit(i));
        }
    }

    /// The `i`-th bit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// The packed words (unused high bits are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Shortens the string to `len` bits (no-op if already shorter).
    /// Bits beyond the new length are zeroed so word-level invariants hold.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.words.truncate(len.div_ceil(64));
        if len % 64 != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << (len % 64)) - 1;
        }
        self.len = len;
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut b = BitString::new();
        for bit in iter {
            b.push_bit(bit);
        }
        b
    }
}

/// Inner-product hash of `input` with `tau` output bits, consuming
/// `tau · ⌈|input|/64⌉` words from the seed stream.
///
/// Returns the output packed into the low `tau` bits of a `u64`.
/// Hashing the empty string returns 0 (and consumes no seed), matching the
/// convention that `h(ε) = 0^τ`.
///
/// # Panics
///
/// Panics if `tau > 64` or `tau == 0`.
pub fn hash_bits(input: &BitString, tau: u32, seed: &mut dyn SeedBits) -> u64 {
    hash_prefix(input, input.len(), tau, seed)
}

/// Inner-product hash of the first `prefix_len` bits of `input`.
///
/// Equivalent to hashing the truncated string, without materializing it;
/// this is what the meeting-points mechanism uses for its `T[..mpc]`
/// prefix hashes.
///
/// # Panics
///
/// Panics if `tau` is not in `1..=64` or `prefix_len > input.len()`.
pub fn hash_prefix(input: &BitString, prefix_len: usize, tau: u32, seed: &mut dyn SeedBits) -> u64 {
    assert!((1..=64).contains(&tau), "tau must be in 1..=64");
    assert!(prefix_len <= input.len(), "prefix longer than input");
    if prefix_len == 0 {
        return 0;
    }
    let full_words = prefix_len / 64;
    let tail_bits = prefix_len % 64;
    let tail_mask = if tail_bits == 0 {
        0
    } else {
        (1u64 << tail_bits) - 1
    };
    let words = input.words();
    let mut out = 0u64;
    for t in 0..tau {
        let mut acc = 0u32;
        for &w in &words[..full_words] {
            acc ^= (w & seed.next_word()).count_ones() & 1;
        }
        if tail_bits != 0 {
            acc ^= (words[full_words] & tail_mask & seed.next_word()).count_ones() & 1;
        }
        out |= u64::from(acc & 1) << t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::{CrsSource, SeedLabel, SeedSource};

    fn label(slot: u32) -> SeedLabel {
        SeedLabel {
            iteration: 3,
            channel: 1,
            slot,
        }
    }

    fn bits(v: &[bool]) -> BitString {
        v.iter().copied().collect()
    }

    #[test]
    fn bitstring_roundtrip() {
        let mut b = BitString::new();
        let pattern: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        for &bit in &pattern {
            b.push_bit(bit);
        }
        assert_eq!(b.len(), 130);
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(b.bit(i), bit, "bit {i}");
        }
        // High bits of the last word must be zero.
        assert_eq!(b.words()[2] >> 2, 0);
    }

    #[test]
    fn push_bits_order() {
        let mut b = BitString::new();
        b.push_bits(0b1101, 4);
        assert_eq!(
            (b.bit(0), b.bit(1), b.bit(2), b.bit(3)),
            (true, false, true, true)
        );
    }

    #[test]
    fn hash_deterministic_for_same_seed() {
        let src = CrsSource::new(99);
        let x = bits(&[true, false, true, true, false]);
        let a = hash_bits(&x, 16, &mut *src.stream(label(0)));
        let b = hash_bits(&x, 16, &mut *src.stream(label(0)));
        assert_eq!(a, b);
    }

    #[test]
    fn hash_differs_across_slots() {
        let src = CrsSource::new(99);
        let x = bits(&[true, false, true]);
        let a = hash_bits(&x, 32, &mut *src.stream(label(0)));
        let b = hash_bits(&x, 32, &mut *src.stream(label(1)));
        assert_ne!(a, b);
    }

    #[test]
    fn hash_is_linear_in_input() {
        // h(x ⊕ y) = h(x) ⊕ h(y) for equal-length inputs and equal seed.
        let src = CrsSource::new(5);
        let x = bits(&[true, false, true, true, false, false, true]);
        let y = bits(&[false, false, true, false, true, false, true]);
        let xy: BitString = (0..7).map(|i| x.bit(i) ^ y.bit(i)).collect();
        let hx = hash_bits(&x, 24, &mut *src.stream(label(2)));
        let hy = hash_bits(&y, 24, &mut *src.stream(label(2)));
        let hxy = hash_bits(&xy, 24, &mut *src.stream(label(2)));
        assert_eq!(hx ^ hy, hxy);
    }

    #[test]
    fn empty_hashes_to_zero() {
        let src = CrsSource::new(1);
        assert_eq!(
            hash_bits(&BitString::new(), 8, &mut *src.stream(label(0))),
            0
        );
    }

    #[test]
    fn collision_rate_matches_two_to_minus_tau() {
        // Distinct inputs, fresh uniform seed per trial: collision
        // probability should be ≈ 2^-4 for tau = 4.
        let x = bits(&[true, false, true, false, true, true]);
        let y = bits(&[true, true, false, false, true, true]);
        let mut collisions = 0;
        let trials = 4_000;
        for t in 0..trials {
            let src = CrsSource::new(t);
            let hx = hash_bits(&x, 4, &mut *src.stream(label(0)));
            let hy = hash_bits(&y, 4, &mut *src.stream(label(0)));
            collisions += usize::from(hx == hy);
        }
        let rate = collisions as f64 / trials as f64;
        assert!(
            (rate - 1.0 / 16.0).abs() < 0.02,
            "collision rate {rate} far from 1/16"
        );
    }

    #[test]
    fn prefix_hash_equals_truncated_hash() {
        let src = CrsSource::new(31);
        let full: BitString = (0..200).map(|i| i % 5 < 2).collect();
        for plen in [0usize, 1, 63, 64, 65, 128, 199, 200] {
            let mut truncated = full.clone();
            truncated.truncate(plen);
            let a = hash_prefix(&full, plen, 12, &mut *src.stream(label(0)));
            let b = hash_bits(&truncated, 12, &mut *src.stream(label(0)));
            assert_eq!(a, b, "prefix {plen}");
        }
    }

    #[test]
    fn truncate_zeroes_high_bits() {
        let mut b: BitString = (0..100).map(|_| true).collect();
        b.truncate(65);
        assert_eq!(b.len(), 65);
        assert_eq!(b.words().len(), 2);
        assert_eq!(b.words()[1], 1);
        b.truncate(64);
        assert_eq!(b.words().len(), 1);
        b.truncate(200); // no-op
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn output_confined_to_tau_bits() {
        let src = CrsSource::new(7);
        let x = bits(&[true; 100]);
        for tau in [1u32, 3, 7, 33, 64] {
            let h = hash_bits(&x, tau, &mut *src.stream(label(tau)));
            if tau < 64 {
                assert_eq!(h >> tau, 0, "tau={tau}");
            }
        }
    }
}
