//! The inner-product hash function of Definition 2.2, plus the packed
//! [`BitString`] buffer it operates on.
//!
//! `h(x, s)` is the concatenation of τ inner products between the input
//! bits `x` and τ disjoint stretches of the seed `s` (one stretch of
//! `|x|` bits per output bit). Seeds are consumed lazily from a
//! [`crate::SeedBits`] stream, so neither party ever materializes the
//! Θ(τ·|x|)-bit seed.
//!
//! Two properties the coding scheme relies on (Lemma 2.3):
//! * for a uniform seed and any fixed `x ≠ y`, `Pr[h(x) = h(y)] = 2^{-τ}`;
//! * the hash is GF(2)-linear in its input for a fixed seed.
//!
//! Note the paper's footnote 11: `h(x)` and `h(x ∘ 0)` agree on the first
//! output bit, so inputs must embed their own length/position information —
//! our transcripts embed chunk indices for exactly this reason.

use crate::seed::SeedBits;

/// A growable, packed bit string (little-endian within each 64-bit word).
///
/// Bits beyond `len` are guaranteed zero, so word-level operations need no
/// masking.
///
/// # Examples
///
/// ```
/// use smallbias::BitString;
/// let mut b = BitString::new();
/// b.push_bit(true);
/// b.push_bits(0b101, 3);
/// assert_eq!(b.len(), 4);
/// assert_eq!(b.bit(0), true);
/// assert_eq!(b.bit(2), false);
/// assert_eq!(b.bit(3), true);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl BitString {
    /// An empty bit string.
    pub fn new() -> Self {
        BitString::default()
    }

    /// An empty bit string with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitString {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        let w = self.len / 64;
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends the low `count` bits of `value`, lowest bit first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn push_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64);
        for j in 0..count {
            self.push_bit((value >> j) & 1 == 1);
        }
    }

    /// Appends all bits of `other`.
    pub fn extend_from(&mut self, other: &BitString) {
        for i in 0..other.len {
            self.push_bit(other.bit(i));
        }
    }

    /// The `i`-th bit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// The packed words (unused high bits are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Shortens the string to `len` bits (no-op if already shorter).
    /// Bits beyond the new length are zeroed so word-level invariants hold.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.words.truncate(len.div_ceil(64));
        if len % 64 != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << (len % 64)) - 1;
        }
        self.len = len;
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut b = BitString::new();
        for bit in iter {
            b.push_bit(bit);
        }
        b
    }
}

/// Inner-product hash of `input` with `tau` output bits, consuming
/// `tau · ⌈|input|/64⌉` words from the seed stream.
///
/// Returns the output packed into the low `tau` bits of a `u64`.
/// Hashing the empty string returns 0 (and consumes no seed), matching the
/// convention that `h(ε) = 0^τ`.
///
/// # Panics
///
/// Panics if `tau > 64` or `tau == 0`.
pub fn hash_bits(input: &BitString, tau: u32, seed: &mut dyn SeedBits) -> u64 {
    hash_prefix(input, input.len(), tau, seed)
}

/// Inner-product hash of the first `prefix_len` bits of `input`.
///
/// Equivalent to hashing the truncated string, without materializing it;
/// this is what the meeting-points mechanism uses for its `T[..mpc]`
/// prefix hashes.
///
/// The fold exploits GF(2)-linearity of parity: instead of one popcount
/// per word we XOR-accumulate `word & seed_word` and take a single parity
/// at the end of each stretch, with seed words pulled in batches through
/// [`SeedBits::fill_words`]. Seed consumption and outputs are identical
/// to the word-at-a-time formulation.
///
/// # Panics
///
/// Panics if `tau` is not in `1..=64` or `prefix_len > input.len()`.
pub fn hash_prefix(input: &BitString, prefix_len: usize, tau: u32, seed: &mut dyn SeedBits) -> u64 {
    assert!((1..=64).contains(&tau), "tau must be in 1..=64");
    assert!(prefix_len <= input.len(), "prefix longer than input");
    if prefix_len == 0 {
        return 0;
    }
    let full_words = prefix_len / 64;
    let tail_bits = prefix_len % 64;
    let tail_mask = if tail_bits == 0 {
        0
    } else {
        (1u64 << tail_bits) - 1
    };
    let words = input.words();
    let mut buf = [0u64; SEED_BATCH];
    let mut out = 0u64;
    for t in 0..tau {
        let mut acc = 0u64;
        let mut j = 0usize;
        while j < full_words {
            let take = (full_words - j).min(SEED_BATCH);
            seed.fill_words(&mut buf[..take]);
            for (w, s) in words[j..j + take].iter().zip(&buf[..take]) {
                acc ^= w & s;
            }
            j += take;
        }
        if tail_bits != 0 {
            acc ^= words[full_words] & tail_mask & seed.next_word();
        }
        out |= u64::from(acc.count_ones() & 1) << t;
    }
    out
}

/// Seed words pulled per [`SeedBits::fill_words`] batch on the hash hot
/// paths (512 B of stack).
const SEED_BATCH: usize = 64;

/// Inner-product hash of a short input given directly as packed words —
/// the no-allocation form of [`hash_prefix`] for inputs that never live in
/// a [`BitString`] (iteration counters, sketch digests).
///
/// Produces exactly `hash_prefix` of the equivalent bit string: bits
/// beyond `len_bits` in the last word must be zero.
///
/// # Panics
///
/// Panics if `tau` is not in `1..=64` or `len_bits > 64 · words.len()`.
pub fn hash_words(words: &[u64], len_bits: usize, tau: u32, seed: &mut dyn SeedBits) -> u64 {
    assert!((1..=64).contains(&tau), "tau must be in 1..=64");
    assert!(len_bits <= 64 * words.len(), "len_bits beyond input");
    if len_bits == 0 {
        return 0;
    }
    let full_words = len_bits / 64;
    let tail_bits = len_bits % 64;
    let mut buf = [0u64; SEED_BATCH];
    let used = full_words + usize::from(tail_bits != 0);
    debug_assert!(used <= SEED_BATCH, "hash_words is for short inputs");
    let mut out = 0u64;
    for t in 0..tau {
        seed.fill_words(&mut buf[..used]);
        let mut acc = 0u64;
        for (w, s) in words[..used].iter().zip(&buf[..used]) {
            acc ^= w & s;
        }
        out |= u64::from(acc.count_ones() & 1) << t;
    }
    out
}

/// Reference implementation of the incremental transcript sketch: an
/// inner-product hash with a **word-interleaved** seed layout.
///
/// Where [`hash_prefix`] lays the seed out stretch-major (stretch `t`
/// occupies `⌈P/64⌉` consecutive words, so the word serving `(t, j)` moves
/// whenever the prefix length `P` does), the sketch interleaves: input
/// word `j` is folded against seed words `τ·j .. τ·j + τ`, one per output
/// bit. The seed word serving a given `(t, j)` is therefore independent of
/// the input length — exactly the property that lets [`PrefixHasher`]
/// extend a cached fold as the input grows instead of rehashing `O(P)`
/// bits per evaluation.
///
/// For inputs of at most 64 bits the two layouts coincide, so
/// `sketch_prefix(x, p, τ, s) == hash_prefix(x, p, τ, s)` whenever
/// `p ≤ 64` — the anchor tying the sketch back to Definition 2.2.
///
/// Like `hash_prefix` this is GF(2)-linear in the input for a fixed seed,
/// and distinct inputs collide with probability `2^{-τ}` over a uniform
/// seed.
///
/// # Panics
///
/// Panics if `tau` is not in `1..=64` or `prefix_len > input.len()`.
pub fn sketch_prefix(
    input: &BitString,
    prefix_len: usize,
    tau: u32,
    seed: &mut dyn SeedBits,
) -> u64 {
    assert!((1..=64).contains(&tau), "tau must be in 1..=64");
    assert!(prefix_len <= input.len(), "prefix longer than input");
    let tau = tau as usize;
    let full_words = prefix_len / 64;
    let tail_bits = prefix_len % 64;
    let words = input.words();
    let mut buf = [0u64; 64];
    let mut acc = 0u64;
    for &w in &words[..full_words] {
        seed.fill_words(&mut buf[..tau]);
        acc ^= fold_word(w, &buf[..tau]);
    }
    if tail_bits != 0 {
        seed.fill_words(&mut buf[..tau]);
        let tail = words[full_words] & ((1u64 << tail_bits) - 1);
        acc ^= fold_word(tail, &buf[..tau]);
    }
    acc
}

/// Folds one input word against its `τ` interleaved seed words: bit `t` of
/// the result is `parity(word & seeds[t])`.
#[inline]
fn fold_word(word: u64, seeds: &[u64]) -> u64 {
    let mut acc = 0u64;
    for (t, &s) in seeds.iter().enumerate() {
        acc |= u64::from((word & s).count_ones() & 1) << t;
    }
    acc
}

/// The seed "column" at one input bit position: bit `t` of the result is
/// the seed bit that position contributes to sketch output bit `t` (bit
/// `pos % 64` of interleaved seed word `τ·(pos/64) + t`).
///
/// By GF(2)-linearity, flipping input bit `pos` XORs exactly this column
/// into the sketch — the quantity the §6.1 seed-aware oracle needs to
/// predict the damage of a corruption. `seed` must be a fresh stream for
/// the label; the scan consumes `τ·(pos/64 + 1)` words.
pub fn sketch_column(pos: usize, tau: u32, seed: &mut dyn SeedBits) -> u64 {
    sketch_column_pair(pos, tau, seed).0
}

/// The seed columns at input bit positions `pos` and `pos + 1`, from one
/// sequential scan of the stream (the §6.1 oracle's candidate corruptions
/// are 2-bit symbol deltas at adjacent positions, so it needs both).
pub fn sketch_column_pair(pos: usize, tau: u32, seed: &mut dyn SeedBits) -> (u64, u64) {
    assert!((1..=64).contains(&tau), "tau must be in 1..=64");
    let tau = tau as usize;
    let mut buf = [0u64; 64];
    for _ in 0..pos / 64 {
        seed.fill_words(&mut buf[..tau]);
    }
    seed.fill_words(&mut buf[..tau]);
    let off = pos % 64;
    let mut first = 0u64;
    let mut second = 0u64;
    for (t, &s) in buf[..tau].iter().enumerate() {
        first |= ((s >> off) & 1) << t;
        if off < 63 {
            second |= ((s >> (off + 1)) & 1) << t;
        }
    }
    if off == 63 {
        // `pos + 1` starts the next input word: one more batch.
        seed.fill_words(&mut buf[..tau]);
        for (t, &s) in buf[..tau].iter().enumerate() {
            second |= (s & 1) << t;
        }
    }
    (first, second)
}

/// Incremental prefix hasher over the word-interleaved sketch layout of
/// [`sketch_prefix`].
///
/// Feed it the same bits as the reference and it produces the same digest
/// at every prefix length — but appending `Δ` bits costs `O(Δ·τ/64)`
/// amortized instead of `O(P·τ/64)` per evaluation, turning the coding
/// scheme's per-iteration transcript hashing from `O(T²)` over a run into
/// `O(T)`.
///
/// Seed words are pulled lazily from the source and cached, so the stream
/// is read exactly once per run however many digests are taken. `mark()`
/// records a checkpoint (the transcript layer marks every chunk
/// boundary); `digest_at` evaluates any checkpointed prefix in `O(τ)` and
/// `truncate_to_mark` rewinds the fold in `O(1)` — matching the rollback
/// pattern of the meeting-points mechanism.
///
/// # Examples
///
/// ```
/// use smallbias::{sketch_prefix, BitString, CrsSource, PrefixHasher, SeedLabel, SeedSource};
/// use std::sync::Arc;
/// let src: Arc<dyn SeedSource> = Arc::new(CrsSource::new(7));
/// let label = SeedLabel { iteration: 0, channel: 0, slot: 2 };
/// let mut h = PrefixHasher::new(Arc::clone(&src), label, 64);
/// let bits: BitString = (0..100).map(|i| i % 3 == 0).collect();
/// for i in 0..bits.len() {
///     h.push_bit(bits.bit(i));
/// }
/// assert_eq!(h.digest(), sketch_prefix(&bits, 100, 64, &mut *src.stream(label)));
/// ```
pub struct PrefixHasher {
    src: std::sync::Arc<dyn crate::seed::SeedSource>,
    label: crate::seed::SeedLabel,
    tau: u32,
    /// Open seed stream, positioned after `seed.len()` words. `None`
    /// after a clone; reopened (and fast-forwarded) on the next pull.
    stream: Option<Box<dyn SeedBits>>,
    /// Cached seed words in interleaved order (`τ` per input word).
    seed: Vec<u64>,
    /// Fold over completed input words.
    acc: u64,
    /// Bits of the in-progress input word (high bits zero).
    partial: u64,
    /// Total bits pushed.
    len: usize,
    marks: Vec<Mark>,
}

#[derive(Clone, Copy, Debug)]
struct Mark {
    len: usize,
    acc: u64,
    partial: u64,
}

impl PrefixHasher {
    /// A fresh hasher with `tau` output bits drawing seed words from
    /// `src` under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not in `1..=64`.
    pub fn new(
        src: std::sync::Arc<dyn crate::seed::SeedSource>,
        label: crate::seed::SeedLabel,
        tau: u32,
    ) -> Self {
        assert!((1..=64).contains(&tau), "tau must be in 1..=64");
        PrefixHasher {
            src,
            label,
            tau,
            stream: None,
            seed: Vec::new(),
            acc: 0,
            partial: 0,
            len: 0,
            marks: Vec::new(),
        }
    }

    /// Output width τ.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Bits pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one input bit.
    pub fn push_bit(&mut self, bit: bool) {
        if bit {
            self.partial |= 1 << (self.len % 64);
        }
        self.len += 1;
        if self.len % 64 == 0 {
            let j = self.len / 64 - 1;
            let word = std::mem::take(&mut self.partial);
            let tau = self.tau as usize;
            self.ensure_seed((j + 1) * tau);
            self.acc ^= fold_word(word, &self.seed[j * tau..(j + 1) * tau]);
        }
    }

    /// Appends the low `count` bits of `value`, lowest bit first
    /// (mirroring [`BitString::push_bits`]).
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn push_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64);
        for j in 0..count {
            self.push_bit((value >> j) & 1 == 1);
        }
    }

    /// Digest of everything pushed so far (equals [`sketch_prefix`] of the
    /// same bits under the same label).
    pub fn digest(&mut self) -> u64 {
        self.digest_of(self.len, self.acc, self.partial)
    }

    /// Records a checkpoint at the current length and returns its index.
    pub fn mark(&mut self) -> usize {
        self.marks.push(Mark {
            len: self.len,
            acc: self.acc,
            partial: self.partial,
        });
        self.marks.len() - 1
    }

    /// Number of recorded checkpoints.
    pub fn marks(&self) -> usize {
        self.marks.len()
    }

    /// Digest and bit length at checkpoint `idx` (`O(τ)`).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.marks()`.
    pub fn digest_at(&mut self, idx: usize) -> (u64, usize) {
        let m = self.marks[idx];
        (self.digest_of(m.len, m.acc, m.partial), m.len)
    }

    /// Rewinds the hasher to the state at checkpoint `count - 1` (or to
    /// empty for `count == 0`), keeping the first `count` checkpoints.
    /// No-op if fewer than `count` checkpoints exist.
    pub fn truncate_to_mark(&mut self, count: usize) {
        if count > self.marks.len() {
            return;
        }
        let m = if count == 0 {
            Mark {
                len: 0,
                acc: 0,
                partial: 0,
            }
        } else {
            self.marks[count - 1]
        };
        self.marks.truncate(count);
        self.len = m.len;
        self.acc = m.acc;
        self.partial = m.partial;
    }

    fn digest_of(&mut self, len: usize, acc: u64, partial: u64) -> u64 {
        if len % 64 == 0 {
            return acc;
        }
        let j = len / 64;
        let tau = self.tau as usize;
        self.ensure_seed((j + 1) * tau);
        acc ^ fold_word(partial, &self.seed[j * tau..(j + 1) * tau])
    }

    fn ensure_seed(&mut self, words: usize) {
        if self.seed.len() >= words {
            return;
        }
        let stream = self.stream.get_or_insert_with(|| {
            // Reopened after a clone: fast-forward past the cached words.
            let mut s = self.src.stream(self.label);
            for _ in 0..self.seed.len() {
                s.next_word();
            }
            s
        });
        let old = self.seed.len();
        self.seed.resize(words, 0);
        stream.fill_words(&mut self.seed[old..]);
    }
}

impl Clone for PrefixHasher {
    fn clone(&self) -> Self {
        PrefixHasher {
            src: std::sync::Arc::clone(&self.src),
            label: self.label,
            tau: self.tau,
            stream: None,
            seed: self.seed.clone(),
            acc: self.acc,
            partial: self.partial,
            len: self.len,
            marks: self.marks.clone(),
        }
    }
}

impl std::fmt::Debug for PrefixHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixHasher")
            .field("tau", &self.tau)
            .field("len", &self.len)
            .field("marks", &self.marks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::{CrsSource, SeedLabel, SeedSource};

    fn label(slot: u32) -> SeedLabel {
        SeedLabel {
            iteration: 3,
            channel: 1,
            slot,
        }
    }

    fn bits(v: &[bool]) -> BitString {
        v.iter().copied().collect()
    }

    #[test]
    fn bitstring_roundtrip() {
        let mut b = BitString::new();
        let pattern: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        for &bit in &pattern {
            b.push_bit(bit);
        }
        assert_eq!(b.len(), 130);
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(b.bit(i), bit, "bit {i}");
        }
        // High bits of the last word must be zero.
        assert_eq!(b.words()[2] >> 2, 0);
    }

    #[test]
    fn push_bits_order() {
        let mut b = BitString::new();
        b.push_bits(0b1101, 4);
        assert_eq!(
            (b.bit(0), b.bit(1), b.bit(2), b.bit(3)),
            (true, false, true, true)
        );
    }

    #[test]
    fn hash_deterministic_for_same_seed() {
        let src = CrsSource::new(99);
        let x = bits(&[true, false, true, true, false]);
        let a = hash_bits(&x, 16, &mut *src.stream(label(0)));
        let b = hash_bits(&x, 16, &mut *src.stream(label(0)));
        assert_eq!(a, b);
    }

    #[test]
    fn hash_differs_across_slots() {
        let src = CrsSource::new(99);
        let x = bits(&[true, false, true]);
        let a = hash_bits(&x, 32, &mut *src.stream(label(0)));
        let b = hash_bits(&x, 32, &mut *src.stream(label(1)));
        assert_ne!(a, b);
    }

    #[test]
    fn hash_is_linear_in_input() {
        // h(x ⊕ y) = h(x) ⊕ h(y) for equal-length inputs and equal seed.
        let src = CrsSource::new(5);
        let x = bits(&[true, false, true, true, false, false, true]);
        let y = bits(&[false, false, true, false, true, false, true]);
        let xy: BitString = (0..7).map(|i| x.bit(i) ^ y.bit(i)).collect();
        let hx = hash_bits(&x, 24, &mut *src.stream(label(2)));
        let hy = hash_bits(&y, 24, &mut *src.stream(label(2)));
        let hxy = hash_bits(&xy, 24, &mut *src.stream(label(2)));
        assert_eq!(hx ^ hy, hxy);
    }

    #[test]
    fn empty_hashes_to_zero() {
        let src = CrsSource::new(1);
        assert_eq!(
            hash_bits(&BitString::new(), 8, &mut *src.stream(label(0))),
            0
        );
    }

    #[test]
    fn collision_rate_matches_two_to_minus_tau() {
        // Distinct inputs, fresh uniform seed per trial: collision
        // probability should be ≈ 2^-4 for tau = 4.
        let x = bits(&[true, false, true, false, true, true]);
        let y = bits(&[true, true, false, false, true, true]);
        let mut collisions = 0;
        let trials = 4_000;
        for t in 0..trials {
            let src = CrsSource::new(t);
            let hx = hash_bits(&x, 4, &mut *src.stream(label(0)));
            let hy = hash_bits(&y, 4, &mut *src.stream(label(0)));
            collisions += usize::from(hx == hy);
        }
        let rate = collisions as f64 / trials as f64;
        assert!(
            (rate - 1.0 / 16.0).abs() < 0.02,
            "collision rate {rate} far from 1/16"
        );
    }

    #[test]
    fn prefix_hash_equals_truncated_hash() {
        let src = CrsSource::new(31);
        let full: BitString = (0..200).map(|i| i % 5 < 2).collect();
        for plen in [0usize, 1, 63, 64, 65, 128, 199, 200] {
            let mut truncated = full.clone();
            truncated.truncate(plen);
            let a = hash_prefix(&full, plen, 12, &mut *src.stream(label(0)));
            let b = hash_bits(&truncated, 12, &mut *src.stream(label(0)));
            assert_eq!(a, b, "prefix {plen}");
        }
    }

    #[test]
    fn truncate_zeroes_high_bits() {
        let mut b: BitString = (0..100).map(|_| true).collect();
        b.truncate(65);
        assert_eq!(b.len(), 65);
        assert_eq!(b.words().len(), 2);
        assert_eq!(b.words()[1], 1);
        b.truncate(64);
        assert_eq!(b.words().len(), 1);
        b.truncate(200); // no-op
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn hash_words_matches_hash_prefix() {
        let src = CrsSource::new(55);
        for (words, len) in [
            (vec![0xdead_beef_u64], 37usize),
            (vec![0x0123_4567_89ab_cdef], 64),
            (vec![u64::MAX, 0xffff_ffff], 96),
            (vec![0, 0], 0),
        ] {
            let mut bits = BitString::new();
            for (j, &w) in words.iter().enumerate() {
                let take = (len.saturating_sub(64 * j)).min(64);
                bits.push_bits(w, take as u32);
            }
            for tau in [1u32, 8, 64] {
                let a = hash_words(&words, len, tau, &mut *src.stream(label(tau)));
                let b = hash_prefix(&bits, len, tau, &mut *src.stream(label(tau)));
                assert_eq!(a, b, "len {len} tau {tau}");
            }
        }
    }

    #[test]
    fn sketch_matches_hash_prefix_on_short_inputs() {
        // For inputs ≤ 64 bits the stretch-major and interleaved layouts
        // coincide — the anchor tying the sketch to Definition 2.2.
        let src = CrsSource::new(77);
        let full: BitString = (0..64).map(|i| i % 7 < 3).collect();
        for plen in [1usize, 13, 63, 64] {
            for tau in [1u32, 5, 16, 64] {
                let a = sketch_prefix(&full, plen, tau, &mut *src.stream(label(tau)));
                let b = hash_prefix(&full, plen, tau, &mut *src.stream(label(tau)));
                assert_eq!(a, b, "plen {plen} tau {tau}");
            }
        }
    }

    #[test]
    fn prefix_hasher_matches_reference_at_every_prefix() {
        let src: std::sync::Arc<dyn SeedSource> = std::sync::Arc::new(CrsSource::new(91));
        let bits: BitString = (0..300).map(|i| i % 5 < 2).collect();
        for tau in [1u32, 7, 64] {
            let l = label(tau);
            let mut h = PrefixHasher::new(std::sync::Arc::clone(&src), l, tau);
            for i in 0..=bits.len() {
                assert_eq!(
                    h.digest(),
                    sketch_prefix(&bits, i, tau, &mut *src.stream(l)),
                    "prefix {i} tau {tau}"
                );
                if i < bits.len() {
                    h.push_bit(bits.bit(i));
                }
            }
        }
    }

    #[test]
    fn prefix_hasher_marks_and_truncation() {
        let src: std::sync::Arc<dyn SeedSource> = std::sync::Arc::new(CrsSource::new(17));
        let l = label(0);
        let bits: BitString = (0..190).map(|i| i % 3 != 0).collect();
        let mut h = PrefixHasher::new(std::sync::Arc::clone(&src), l, 64);
        let mut boundaries = Vec::new();
        for i in 0..bits.len() {
            h.push_bit(bits.bit(i));
            if (i + 1) % 38 == 0 {
                h.mark();
                boundaries.push(i + 1);
            }
        }
        for (k, &b) in boundaries.iter().enumerate() {
            let (d, len) = h.digest_at(k);
            assert_eq!(len, b);
            assert_eq!(
                d,
                sketch_prefix(&bits, b, 64, &mut *src.stream(l)),
                "mark {k}"
            );
        }
        // Rewind to the second mark, then re-push different bits.
        h.truncate_to_mark(2);
        assert_eq!(h.len(), 76);
        assert_eq!(h.marks(), 2);
        let mut alt = BitString::new();
        for i in 0..76 {
            alt.push_bit(bits.bit(i));
        }
        for i in 0..30 {
            let bit = i % 2 == 0;
            h.push_bit(bit);
            alt.push_bit(bit);
        }
        assert_eq!(
            h.digest(),
            sketch_prefix(&alt, 106, 64, &mut *src.stream(l))
        );
        // Rewind to empty.
        h.truncate_to_mark(0);
        assert_eq!(h.digest(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn prefix_hasher_clone_reopens_stream() {
        let src: std::sync::Arc<dyn SeedSource> = std::sync::Arc::new(CrsSource::new(29));
        let l = label(3);
        let mut h = PrefixHasher::new(std::sync::Arc::clone(&src), l, 32);
        for i in 0..100 {
            h.push_bit(i % 4 == 1);
        }
        let mut c = h.clone();
        for i in 100..170 {
            h.push_bit(i % 4 == 1);
            c.push_bit(i % 4 == 1);
        }
        assert_eq!(h.digest(), c.digest());
    }

    #[test]
    fn sketch_column_predicts_single_bit_flips() {
        let src = CrsSource::new(41);
        let l = label(9);
        let bits: BitString = (0..150).map(|i| i % 11 < 4).collect();
        for pos in [0usize, 5, 63, 64, 127, 149] {
            let flipped: BitString = (0..150).map(|i| bits.bit(i) ^ (i == pos)).collect();
            let a = sketch_prefix(&bits, 150, 64, &mut *src.stream(l));
            let b = sketch_prefix(&flipped, 150, 64, &mut *src.stream(l));
            let col = sketch_column(pos, 64, &mut *src.stream(l));
            assert_eq!(a ^ b, col, "pos {pos}");
        }
    }

    #[test]
    fn sketch_column_pair_matches_single_columns() {
        // Including pos % 64 == 63, where the pair spans two input words.
        let src = CrsSource::new(43);
        let l = label(9);
        for tau in [1u32, 8, 64] {
            for pos in [0usize, 30, 62, 63, 64, 127] {
                let (c0, c1) = sketch_column_pair(pos, tau, &mut *src.stream(l));
                assert_eq!(
                    c0,
                    sketch_column(pos, tau, &mut *src.stream(l)),
                    "pos {pos}"
                );
                assert_eq!(
                    c1,
                    sketch_column(pos + 1, tau, &mut *src.stream(l)),
                    "pos {}",
                    pos + 1
                );
            }
        }
    }

    #[test]
    fn output_confined_to_tau_bits() {
        let src = CrsSource::new(7);
        let x = bits(&[true; 100]);
        for tau in [1u32, 3, 7, 33, 64] {
            let h = hash_bits(&x, tau, &mut *src.stream(label(tau)));
            if tau < 64 {
                assert_eq!(h >> tau, 0, "tau={tau}");
            }
        }
    }
}
