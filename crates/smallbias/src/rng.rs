//! Deterministic PRG used for the CRS and for all reproducible trial
//! randomness: splitmix64 seeding + xoshiro256** generation.
//!
//! We implement these from scratch so that streams are bit-identical across
//! toolchains and crate versions — parties derive *shared* randomness purely
//! from `(master seed, label)` and must agree on every bit.

/// One step of the splitmix64 sequence; also a good 64-bit mixer.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** PRG.
///
/// # Examples
///
/// ```
/// use smallbias::Xoshiro256;
/// let mut a = Xoshiro256::seeded(7);
/// let mut b = Xoshiro256::seeded(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator by running splitmix64 on `seed`.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Fills `out` with the next `out.len()` values of the stream —
    /// identical to repeated [`Xoshiro256::next_u64`], but the generator
    /// state lives in registers for the whole batch.
    pub fn fill(&mut self, out: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for w in out {
            *w = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Rejection sampling to kill modulo bias.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A single fair random bit.
    pub fn bit(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Xoshiro256::seeded(123);
        let mut b = Xoshiro256::seeded(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = Xoshiro256::seeded(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_range_and_roughly_uniform() {
        let mut r = Xoshiro256::seeded(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn bits_are_balanced() {
        let mut r = Xoshiro256::seeded(77);
        let ones = (0..10_000).filter(|_| r.bit()).count();
        assert!((4_600..5_400).contains(&ones), "ones={ones}");
    }
}
