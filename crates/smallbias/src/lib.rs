//! Hashing and shared-randomness substrate: the inner-product hash
//! (Definition 2.2 of the paper), δ-biased strings à la Naor–Naor /
//! Alon–Goldreich–Håstad–Peralta (Lemma 2.5), and deterministic seed
//! sources.
//!
//! The coding schemes consume *seed bits* for every hash they compute. A
//! uniform-CRS deployment draws those bits from a shared PRG stream keyed
//! by `(iteration, link, slot)`; the CRS-free deployment (paper §5) draws
//! them from a long δ-biased string expanded from a short exchanged seed.
//! Both are exposed behind the [`SeedSource`] trait so the coding scheme is
//! agnostic to which one it runs over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aghp;
mod hash;
mod rng;
mod seed;

pub use aghp::AghpGenerator;
pub use hash::{
    hash_bits, hash_prefix, hash_words, sketch_column, sketch_column_pair, sketch_prefix,
    BitString, PrefixHasher,
};
pub use rng::{splitmix64, Xoshiro256};
pub use seed::{CrsSource, DeltaBiasedSource, SeedBits, SeedLabel, SeedSource};
