//! Criterion benches for whole-scheme execution: end-to-end simulations
//! per table/figure workload (T1/F3 wall-clock column), plus the cost of
//! single phases via small/large instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpic::baseline::{run_no_coding, run_repetition};
use mpic::{RunOptions, SchemeConfig, Simulation};
use netsim::attacks::{IidNoise, NoNoise};
use protocol::workloads::Gossip;
use protocol::{ChunkedProtocol, Workload};

/// T1 wall-clock: one full noiseless simulation per scheme (the
/// "efficient" column of Table 1 made concrete).
fn bench_t1_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_end_to_end");
    g.sample_size(10);
    let w = Gossip::new(netgraph::topology::ring(5), 6, 3);
    let graph = w.graph().clone();
    for (name, cfg) in [
        ("alg_a", SchemeConfig::algorithm_a(&graph, 7)),
        ("alg_b", SchemeConfig::algorithm_b(&graph, 6)),
        ("alg_c", SchemeConfig::algorithm_c(&graph, 7)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let sim = Simulation::new(&w, cfg.clone(), 1);
                sim.run(Box::new(NoNoise), RunOptions::default())
            })
        });
    }
    let proto = ChunkedProtocol::new(&w, 5 * graph.edge_count());
    g.bench_function("no_coding", |b| {
        b.iter(|| run_no_coding(&w, &proto, Box::new(NoNoise), 0))
    });
    g.bench_function("repeat5", |b| {
        b.iter(|| run_repetition(&w, &proto, Box::new(NoNoise), 0, 5))
    });
    g.finish();
}

/// F3 wall-clock scaling: simulation cost vs network size.
fn bench_f3_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("f3_scaling");
    g.sample_size(10);
    for n in [4usize, 6, 8] {
        let w = Gossip::new(netgraph::topology::ring(n), 6, 3);
        let graph = w.graph().clone();
        g.bench_with_input(BenchmarkId::new("ring", n), &w, |b, w| {
            let cfg = SchemeConfig::algorithm_a(&graph, 7);
            b.iter(|| {
                let sim = Simulation::new(w, cfg.clone(), 1);
                sim.run(Box::new(NoNoise), RunOptions::default())
            })
        });
    }
    g.finish();
}

/// Repair cost: noisy vs noiseless runs (the price of the rewind-if-error
/// machinery when it actually fires).
fn bench_noisy_repair(c: &mut Criterion) {
    let mut g = c.benchmark_group("noisy_repair");
    g.sample_size(10);
    let w = Gossip::new(netgraph::topology::ring(5), 6, 3);
    let graph = w.graph().clone();
    let cfg = SchemeConfig::algorithm_a(&graph, 7);
    g.bench_function("noiseless", |b| {
        b.iter(|| {
            let sim = Simulation::new(&w, cfg.clone(), 1);
            sim.run(Box::new(NoNoise), RunOptions::default())
        })
    });
    g.bench_function("with_noise", |b| {
        b.iter(|| {
            let sim = Simulation::new(&w, cfg.clone(), 1);
            let atk = IidNoise::new(&graph, 0.0005, 9);
            sim.run(Box::new(atk), RunOptions::default())
        })
    });
    g.finish();
}

/// Compile-time cost: chunking + reference run (Simulation::new).
fn bench_compile(c: &mut Criterion) {
    let w = Gossip::new(netgraph::topology::clique(6), 8, 3);
    let graph = w.graph().clone();
    c.bench_function("compile_simulation", |b| {
        let cfg = SchemeConfig::algorithm_a(&graph, 7);
        b.iter(|| Simulation::new(&w, cfg.clone(), 1))
    });
}

criterion_group!(
    benches,
    bench_t1_schemes,
    bench_f3_scaling,
    bench_noisy_repair,
    bench_compile
);
criterion_main!(benches);
