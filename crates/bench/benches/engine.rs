//! Engine-dominated benches: the per-round cost of the network step on
//! topologies of increasing size, with every directed link speaking
//! (fully-utilized rounds, the gossip worst case) — silent and under
//! i.i.d. noise. These isolate the wire representation from the
//! hashing/coding work of the full schemes.
//!
//! Uses the `RoundFrame` hot path (`step_into` with caller-owned
//! buffers), the way the coding-scheme runner drives the engine; the
//! `wire_batch` group additionally pits the word-level `FrameBatch` path
//! (`step_rounds_into`, one call for a 32-round meeting-points-style
//! exchange) against 32 bit-serial rounds on the large topologies, and
//! `sim_large` tracks full end-to-end scheme runs at n ≥ 128.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpic::{RunOptions, RunScratch, SchemeConfig, Simulation};
use netgraph::{topology, Graph};
use netsim::attacks::{IidNoise, NoNoise};
use netsim::{FrameBatch, Network, RoundFrame};
use protocol::workloads::Gossip;
use protocol::Workload;

fn topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("ring16", topology::ring(16)),
        ("ring64", topology::ring(64)),
        ("line128", topology::line(128)),
        ("clique16", topology::clique(16)),
    ]
}

fn full_sends(graph: &Graph) -> RoundFrame {
    let mut sends = RoundFrame::for_graph(graph);
    for id in 0..graph.link_count() {
        sends.set(id, id % 2 == 0);
    }
    sends
}

/// One silent round with full sends: pure engine + representation cost.
fn bench_step_silent(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_round");
    for (label, graph) in topologies() {
        let sends = full_sends(&graph);
        let mut rx = RoundFrame::for_graph(&graph);
        let mut net = Network::new(graph.clone(), Box::new(NoNoise), 0);
        g.throughput(Throughput::Elements(2 * graph.edge_count() as u64));
        g.bench_with_input(BenchmarkId::new("silent", label), &sends, |b, sends| {
            b.iter(|| net.step_into(sends, None, &mut rx))
        });
    }
    g.finish();
}

/// One noisy round with full sends: adds the adversary consultation and
/// corruption application path.
fn bench_step_noisy(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_round");
    for (label, graph) in topologies() {
        let sends = full_sends(&graph);
        let mut rx = RoundFrame::for_graph(&graph);
        let atk = IidNoise::new(&graph, 0.01, 7);
        let mut net = Network::new(graph.clone(), Box::new(atk), u64::MAX);
        g.throughput(Throughput::Elements(2 * graph.edge_count() as u64));
        g.bench_with_input(BenchmarkId::new("iid_noise", label), &sends, |b, sends| {
            b.iter(|| net.step_into(sends, None, &mut rx))
        });
    }
    g.finish();
}

fn large_topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("ring256", topology::ring(256)),
        ("grid16x16", topology::grid(16, 16)),
    ]
}

/// A 32-round fully-utilized exchange (the shape of a τ = 8
/// meeting-points phase) through the word-level batch path: marshal every
/// link's 32-bit lane, one `step_rounds_into`.
fn bench_wire_batch(c: &mut Criterion) {
    const ROUNDS: usize = 32;
    let mut g = c.benchmark_group("wire_batch");
    for (label, graph) in large_topologies() {
        let mut tx = FrameBatch::for_graph(&graph, ROUNDS);
        let mut rx = FrameBatch::for_graph(&graph, ROUNDS);
        let mut net = Network::new(graph.clone(), Box::new(NoNoise), 0);
        g.throughput(Throughput::Elements((ROUNDS * graph.link_count()) as u64));
        g.bench_with_input(BenchmarkId::new("batched", label), &graph, |b, graph| {
            b.iter(|| {
                for id in 0..graph.link_count() {
                    tx.set_bits(id, &[0x5EED_F00D ^ id as u64], ROUNDS);
                }
                net.step_rounds_into(&tx, None, &mut rx);
            })
        });
    }
    // The bit-serial reference: same 32 rounds, per-round fill + step.
    for (label, graph) in large_topologies() {
        let mut tx = RoundFrame::for_graph(&graph);
        let mut rx = RoundFrame::for_graph(&graph);
        let mut net = Network::new(graph.clone(), Box::new(NoNoise), 0);
        g.throughput(Throughput::Elements((ROUNDS * graph.link_count()) as u64));
        g.bench_with_input(BenchmarkId::new("reference", label), &graph, |b, graph| {
            b.iter(|| {
                for o in 0..ROUNDS {
                    tx.clear_all();
                    for id in 0..graph.link_count() {
                        tx.set(id, (0x5EED_F00D ^ id as u64) >> o & 1 == 1);
                    }
                    net.step_into(&tx, None, &mut rx);
                }
            })
        });
    }
    g.finish();
}

/// Full end-to-end Algorithm A runs on the large topologies the ROADMAP
/// targets (noiseless gossip; the `t1_end_to_end` shape at n ≥ 128).
fn bench_sim_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_large");
    g.sample_size(10);
    let workloads = [
        ("ring128", Gossip::new(topology::ring(128), 2, 22)),
        ("ring256", Gossip::new(topology::ring(256), 2, 23)),
        ("grid16x16", Gossip::new(topology::grid(16, 16), 2, 24)),
    ];
    for (label, w) in &workloads {
        let cfg = SchemeConfig::algorithm_a(w.graph(), 7);
        let sim = Simulation::new(w, cfg, 1);
        let mut scratch = RunScratch::new();
        g.bench_function(BenchmarkId::new("alg_a", *label), |b| {
            b.iter(|| sim.run_with_scratch(Box::new(NoNoise), RunOptions::default(), &mut scratch))
        });
    }
    g.finish();
}

/// Intra-trial parallelism on the ISSUE's large targets: the same
/// end-to-end Algorithm A run at `Serial` vs `Threads(4)`, on topologies
/// big enough (2048–8192 lanes) that the meeting-points hash preparation
/// and transcript commits dominate. The serial/threads4 id pair is the
/// speedup ratio `BENCH_par.json` records; on a single-core runner the
/// two converge (threads4 pays a small scheduling tax), on multi-core
/// hardware threads4 drops with the core count.
fn bench_sim_par(c: &mut Criterion) {
    use mpic::Parallelism;
    let mut g = c.benchmark_group("sim_par");
    g.sample_size(10);
    let workloads = [
        ("ring1024", Gossip::new(topology::ring(1024), 2, 41)),
        ("ring4096", Gossip::new(topology::ring(4096), 2, 41)),
        ("grid64x64", Gossip::new(topology::grid(64, 64), 2, 41)),
    ];
    for (label, w) in &workloads {
        for (mode, par) in [
            ("serial", Parallelism::Serial),
            ("threads4", Parallelism::Threads(4)),
        ] {
            let mut cfg = SchemeConfig::algorithm_a(w.graph(), 7);
            cfg.parallelism = par;
            let sim = Simulation::new(w, cfg, 1);
            let mut scratch = RunScratch::new();
            g.bench_function(BenchmarkId::new(mode, *label), |b| {
                b.iter(|| {
                    sim.run_with_scratch(Box::new(NoNoise), RunOptions::default(), &mut scratch)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_step_silent,
    bench_step_noisy,
    bench_wire_batch,
    bench_sim_large,
    bench_sim_par
);
criterion_main!(benches);
