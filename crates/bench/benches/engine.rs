//! Engine-dominated benches: the per-round cost of the network step on
//! topologies of increasing size, with every directed link speaking
//! (fully-utilized rounds, the gossip worst case) — silent and under
//! i.i.d. noise. These isolate the wire representation from the
//! hashing/coding work of the full schemes.
//!
//! Uses the `RoundFrame` hot path (`step_into` with caller-owned
//! buffers), the way the coding-scheme runner drives the engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netgraph::{topology, Graph};
use netsim::attacks::{IidNoise, NoNoise};
use netsim::{Network, RoundFrame};

fn topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("ring16", topology::ring(16)),
        ("ring64", topology::ring(64)),
        ("line128", topology::line(128)),
        ("clique16", topology::clique(16)),
    ]
}

fn full_sends(graph: &Graph) -> RoundFrame {
    let mut sends = RoundFrame::for_graph(graph);
    for id in 0..graph.link_count() {
        sends.set(id, id % 2 == 0);
    }
    sends
}

/// One silent round with full sends: pure engine + representation cost.
fn bench_step_silent(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_round");
    for (label, graph) in topologies() {
        let sends = full_sends(&graph);
        let mut rx = RoundFrame::for_graph(&graph);
        let mut net = Network::new(graph.clone(), Box::new(NoNoise), 0);
        g.throughput(Throughput::Elements(2 * graph.edge_count() as u64));
        g.bench_with_input(BenchmarkId::new("silent", label), &sends, |b, sends| {
            b.iter(|| net.step_into(sends, None, &mut rx))
        });
    }
    g.finish();
}

/// One noisy round with full sends: adds the adversary consultation and
/// corruption application path.
fn bench_step_noisy(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_round");
    for (label, graph) in topologies() {
        let sends = full_sends(&graph);
        let mut rx = RoundFrame::for_graph(&graph);
        let atk = IidNoise::new(&graph, 0.01, 7);
        let mut net = Network::new(graph.clone(), Box::new(atk), u64::MAX);
        g.throughput(Throughput::Elements(2 * graph.edge_count() as u64));
        g.bench_with_input(BenchmarkId::new("iid_noise", label), &sends, |b, sends| {
            b.iter(|| net.step_into(sends, None, &mut rx))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_step_silent, bench_step_noisy);
criterion_main!(benches);
