//! Criterion benches for the cryptographic/coding primitives: the inner
//! product hash (the per-iteration hot path), the AGHP δ-biased generator,
//! GF(2^64) multiplication, and the Reed–Solomon codec used by the
//! randomness exchange.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gf2::Gf64;
use rscode::ReedSolomon;
use smallbias::{
    hash_bits, sketch_prefix, AghpGenerator, BitString, CrsSource, PrefixHasher, SeedLabel,
    SeedSource,
};

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("inner_product_hash");
    let crs = CrsSource::new(7);
    for bits in [1_000usize, 8_000, 64_000] {
        let input: BitString = (0..bits).map(|i| i % 3 == 0).collect();
        g.throughput(Throughput::Elements(bits as u64));
        g.bench_with_input(BenchmarkId::new("tau8", bits), &input, |b, input| {
            b.iter(|| {
                hash_bits(
                    input,
                    8,
                    &mut *crs.stream(SeedLabel {
                        iteration: 0,
                        channel: 0,
                        slot: 1,
                    }),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("tau16", bits), &input, |b, input| {
            b.iter(|| {
                hash_bits(
                    input,
                    16,
                    &mut *crs.stream(SeedLabel {
                        iteration: 0,
                        channel: 0,
                        slot: 1,
                    }),
                )
            })
        });
    }
    g.finish();
}

/// The incremental-hashing hot path: per protocol iteration, append one
/// 38-bit chunk (32-bit id + 3 symbols) to the transcript sketch and take
/// three digests (full + two meeting points) — `O(Δ + τ)` work however
/// long the transcript already is. The reference pair rehashes the full
/// prefix from scratch each iteration instead (`O(|T|·τ)`), which is what
/// the coding scheme paid per link per iteration before the sketch.
fn bench_prefix_hasher(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_hasher");
    let src: Arc<dyn SeedSource> = Arc::new(CrsSource::new(7));
    let label = SeedLabel {
        iteration: 0,
        channel: 0,
        slot: 2,
    };
    for chunks in [64usize, 1024] {
        g.throughput(Throughput::Elements(chunks as u64));
        g.bench_with_input(
            BenchmarkId::new("extend_digest", chunks),
            &chunks,
            |b, &chunks| {
                b.iter(|| {
                    let mut h = PrefixHasher::new(Arc::clone(&src), label, 64);
                    let mut acc = 0u64;
                    for i in 0..chunks {
                        h.push_bits(i as u64, 32);
                        h.push_bits(0b10_01_00, 6);
                        h.mark();
                        acc ^= h.digest();
                        if i >= 2 {
                            acc ^= h.digest_at(i - 1).0 ^ h.digest_at(i - 2).0;
                        }
                    }
                    acc
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("reference_rehash", chunks),
            &chunks,
            |b, &chunks| {
                let mut bits = BitString::new();
                for i in 0..chunks {
                    bits.push_bits(i as u64, 32);
                    bits.push_bits(0b10_01_00, 6);
                }
                b.iter(|| {
                    let mut acc = 0u64;
                    for i in 1..=chunks {
                        acc ^= sketch_prefix(&bits, 38 * i, 64, &mut *src.stream(label));
                    }
                    acc
                })
            },
        );
    }
    g.finish();
}

fn bench_aghp(c: &mut Criterion) {
    let mut g = c.benchmark_group("aghp_delta_biased");
    g.bench_function("sequential_word", |b| {
        let mut gen = AghpGenerator::from_seed(0xfeed, 0xbeef);
        let mut pos = 0u64;
        b.iter(|| {
            let w = gen.word_at(pos);
            pos += 64;
            w
        })
    });
    g.bench_function("random_access_word", |b| {
        let mut gen = AghpGenerator::from_seed(0xfeed, 0xbeef);
        let mut pos = 1u64;
        b.iter(|| {
            pos = pos.wrapping_mul(6364136223846793005).wrapping_add(1) % (1 << 30);
            gen.word_at(pos)
        })
    });
    g.finish();
}

fn bench_gf64(c: &mut Criterion) {
    c.bench_function("gf64_mul", |b| {
        let mut x = Gf64::new(0x9e37_79b9_7f4a_7c15);
        let y = Gf64::new(0xc2b2_ae3d_27d4_eb4f);
        b.iter(|| {
            x *= y;
            x
        })
    });
    c.bench_function("gf64_pow", |b| {
        let x = Gf64::new(0x0123_4567_89ab_cdef);
        b.iter(|| x.pow(0xdead_beef))
    });
}

fn bench_rs(c: &mut Criterion) {
    let mut g = c.benchmark_group("reed_solomon");
    let rs = ReedSolomon::new(30, 10).unwrap();
    let msg: Vec<u8> = (0..10).map(|i| i as u8 * 7 + 1).collect();
    let clean = rs.encode(&msg).unwrap();
    g.bench_function("encode_30_10", |b| b.iter(|| rs.encode(&msg).unwrap()));
    g.bench_function("decode_clean", |b| {
        b.iter(|| rs.decode(&clean, &[]).unwrap())
    });
    let mut noisy = clean.clone();
    for p in [0usize, 7, 13, 19, 25] {
        noisy[p] ^= 0x5a;
    }
    g.bench_function("decode_5_errors", |b| {
        b.iter(|| rs.decode(&noisy, &[]).unwrap())
    });
    let mut erased = clean.clone();
    let erasures: Vec<usize> = (0..18).map(|k| k + 3).collect();
    for &p in &erasures {
        erased[p] = 0;
    }
    g.bench_function("decode_18_erasures", |b| {
        b.iter(|| rs.decode(&erased, &erasures).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_prefix_hasher,
    bench_aghp,
    bench_gf64,
    bench_rs
);
criterion_main!(benches);
