//! The concrete simulation job served by the `serve` crate's
//! [`SimService`]: a plain-data [`SimRequest`] (spec + seed) whose
//! execution is [`crate::run_trial_serviced`] against the worker's pooled
//! [`mpic::RunScratch`] and the service-wide [`mpic::ArtifactCache`].
//!
//! Determinism contract: a request's [`TrialResult`] is byte-identical to
//! a direct [`crate::run_trial`] with the same `(specs, seed)`, whichever
//! worker runs it and whatever the cache holds — the `serve_identity`
//! integration suite pins this across the scheme × adversary ×
//! parallelism matrix.

use crate::harness::{run_trial_serviced, TrialResult};
use crate::spec::{AttackSpec, FaultSpec, Scheme, WorkloadSpec};
use serde::Serialize;
use serve::{Job, JobCtx, ServiceConfig, SimService};

/// One self-contained simulation request: everything a worker needs to
/// rebuild and run the trial deterministically.
///
/// Not `Copy`: the attack spec may carry a corruption script.
#[derive(Clone, Debug, Serialize)]
pub struct SimRequest {
    /// The noiseless protocol Π to compile and simulate.
    pub workload: WorkloadSpec,
    /// Coding scheme (or baseline) to run Π under.
    pub scheme: Scheme,
    /// Adversary specification.
    pub attack: AttackSpec,
    /// Fault schedule injected alongside the attack
    /// ([`FaultSpec::None`] for a static network).
    pub fault: FaultSpec,
    /// Trial seed; use [`crate::derive_trial_seed`] to replicate a
    /// `run_many` population.
    pub seed: u64,
}

impl Job for SimRequest {
    type Out = TrialResult;

    fn run(&self, ctx: &mut JobCtx<'_>) -> TrialResult {
        let (row, hit) = run_trial_serviced(
            self.workload,
            self.scheme,
            self.attack.clone(),
            self.fault,
            self.seed,
            ctx.scratch,
            ctx.parallelism,
            ctx.cache,
        );
        ctx.cache_hit = hit;
        row
    }
}

/// Starts a [`SimService`] serving [`SimRequest`]s.
pub fn sim_service(cfg: ServiceConfig) -> SimService<SimRequest> {
    SimService::start(cfg)
}
