//! Evolutionary adversary search over [`ScriptedAdversary`] genomes.
//!
//! [`ScriptedAdversary`]: netsim::attacks::ScriptedAdversary
//!
//! The outer loop the paper's lower-bound discussion gestures at but
//! never runs: instead of hand-deriving worst-case adversaries, *search*
//! for them. A candidate is a corruption script (the §2.1 additive noise
//! tensor, materialized as sorted `(round, link, e)` steps); its fitness
//! is the instrumented damage it inflicts per corruption-budget unit
//! (see [`mpic::Instrumentation::damage_per_budget`]).
//!
//! Search shape, per target:
//!
//! 1. **Seed** — the target's hand-built attack (the PR 5 leaderboard
//!    instantiation) runs once under a
//!    [`ScriptRecorder`](netsim::attacks::ScriptRecorder), transcribing
//!    exactly the corruptions the engine applied. The transcript replays
//!    byte-identically through [`AttackSpec::Scripted`] at the same
//!    trial seed, so generation 0 starts at parity with the hand-built
//!    attack on its own metric — the search can only go up from there.
//! 2. **Vary** — populations grow by seeded mutation
//!    ([`mutate_script`]: round/link/error jitter, drops, insertions)
//!    and splice crossover ([`crossover_scripts`]), both funneled
//!    through [`repair_script`] so every candidate is budget-respecting
//!    and sorted by construction.
//! 3. **Evaluate, tiered** — every candidate gets one cheap triage trial
//!    on the anchor seed; only the triage front-runners get the full
//!    multi-seed scoring. All trials fan out through a [`sim_service`]
//!    worker pool, and every row is byte-identical to a direct
//!    [`run_trial`](crate::harness::run_trial), so results do not depend
//!    on worker count or `SIM_THREADS`.
//! 4. **Select** — survivors (by mean fitness, deterministic
//!    tie-breaks) parent the next generation; elites carry over
//!    unchanged.
//!
//! Everything derives from one master seed: recording, operator seeds,
//! and evaluation seeds. Two runs with the same [`SearchConfig`] produce
//! identical [`TargetReport`]s on any machine.

use crate::harness::{derive_trial_seed, run_trial_recording, RecordedTrial, TrialResult};
use crate::service::{sim_service, SimRequest};
use crate::spec::{AttackSpec, FaultSpec, Scheme, TopoSpec, WorkloadSpec};
use netgraph::DirectedLink;
use netsim::attacks::{
    crossover_scripts, mutate_script, repair_script, BurstLink, CrossIterationHunter, FlagFlipper,
    MeetingPointSplitter, Pair, RewindSuppressor, ScriptBounds, ScriptStep,
};
use netsim::PhaseKind;
use serde::Serialize;
use serve::{Backpressure, Priority, ServiceConfig};
use smallbias::splitmix64;

/// Which instrumented counter a target's hand-built attack maximizes —
/// the metric the searched script must match or beat.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SearchMetric {
    /// Meeting-points `k, E` resets ([`TrialResult::mp_resets`]).
    MpResets,
    /// Stalled iterations ([`TrialResult::stalled_iterations`]).
    StalledIterations,
    /// Deepest rewind cascade ([`TrialResult::rewind_wave_depth`]).
    RewindWaveDepth,
    /// Full-hash collisions ([`TrialResult::hash_collisions`]).
    HashCollisions,
}

impl SearchMetric {
    /// Reads the metric out of a trial row.
    pub fn of(self, row: &TrialResult) -> u64 {
        match self {
            SearchMetric::MpResets => row.mp_resets,
            SearchMetric::StalledIterations => row.stalled_iterations,
            SearchMetric::RewindWaveDepth => row.rewind_wave_depth,
            SearchMetric::HashCollisions => row.hash_collisions,
        }
    }

    /// Stable label for tables and JSON rows.
    pub fn label(self) -> &'static str {
        match self {
            SearchMetric::MpResets => "mp_resets",
            SearchMetric::StalledIterations => "stalled_iterations",
            SearchMetric::RewindWaveDepth => "rewind_wave_depth",
            SearchMetric::HashCollisions => "hash_collisions",
        }
    }
}

/// One search target: a hand-built attack, the simulation it runs
/// against, and the metric it is scored on.
#[derive(Clone, Copy, Debug)]
pub struct SearchTarget {
    /// Leaderboard name of the hand-built seed attack.
    pub name: &'static str,
    /// The counter this attack maximizes.
    pub metric: SearchMetric,
    /// Workload under attack.
    pub workload: WorkloadSpec,
    /// Coding scheme under attack.
    pub scheme: Scheme,
    /// Engine budget of the recording run (`u64::MAX` = self-bounding).
    pub record_budget: u64,
}

/// The four PR 5 leaderboard attacks as search targets, each scored on
/// the instrumented metric it was designed to maximize.
pub fn targets() -> Vec<SearchTarget> {
    let ring = WorkloadSpec::Gossip {
        topo: TopoSpec::Ring(5),
        rounds: 6,
    };
    let clique = WorkloadSpec::Gossip {
        topo: TopoSpec::Clique(6),
        rounds: 6,
    };
    vec![
        SearchTarget {
            name: "mp_splitter",
            metric: SearchMetric::MpResets,
            workload: ring,
            scheme: Scheme::A,
            record_budget: 40,
        },
        SearchTarget {
            name: "flag_flipper",
            metric: SearchMetric::StalledIterations,
            workload: ring,
            scheme: Scheme::A,
            record_budget: 6,
        },
        SearchTarget {
            name: "burst+rw_suppressor",
            metric: SearchMetric::RewindWaveDepth,
            workload: ring,
            scheme: Scheme::A,
            record_budget: 11,
        },
        SearchTarget {
            name: "hunter_tau4",
            metric: SearchMetric::HashCollisions,
            workload: clique,
            scheme: Scheme::AWithHash(4),
            record_budget: u64::MAX,
        },
    ]
}

/// Records a target's hand-built attack at `trial_seed`, returning the
/// outcome row plus the applied-corruption script that seeds the search.
pub fn record_seed(target: &SearchTarget, trial_seed: u64) -> RecordedTrial {
    let name = target.name;
    run_trial_recording(
        target.workload,
        target.scheme,
        target.record_budget,
        trial_seed,
        move |g, geo, cfg| match name {
            "mp_splitter" => Box::new(MeetingPointSplitter::new(g, cfg.hash_bits, 2)),
            "flag_flipper" => Box::new(FlagFlipper::new(g, 1)),
            "burst+rw_suppressor" => {
                let start = geo.phase_start(1, PhaseKind::Simulation);
                Box::new(Pair(
                    Box::new(BurstLink::new(g, DirectedLink { from: 1, to: 2 }, start, 8)),
                    Box::new(RewindSuppressor::new(g, 4)),
                ))
            }
            "hunter_tau4" => Box::new(CrossIterationHunter::new(g.edge_count(), 1, 8)),
            other => panic!("unknown search target {other}"),
        },
    )
}

/// Knobs of one search run. Everything downstream — recording, operator
/// draws, evaluation seeds — derives from `master_seed`, so equal
/// configs give equal reports.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SearchConfig {
    /// The one seed everything derives from.
    pub master_seed: u64,
    /// Generations per target (generation 0 is the recorded seed plus
    /// its first mutants).
    pub generations: usize,
    /// Candidates per generation.
    pub population: usize,
    /// Triage front-runners promoted to full multi-seed scoring.
    pub triage_keep: usize,
    /// Full-scored candidates surviving as next-generation parents.
    pub survivors: usize,
    /// Trial seeds per full scoring (the anchor seed plus derived ones).
    pub eval_seeds: usize,
    /// Service worker threads (0 = available parallelism). A wall-clock
    /// knob only; results are identical for every value.
    pub workers: usize,
}

impl SearchConfig {
    /// CI-sized search: small but real (mutation + crossover + both
    /// evaluation tiers all exercised).
    pub fn quick(master_seed: u64) -> Self {
        SearchConfig {
            master_seed,
            generations: 2,
            population: 6,
            triage_keep: 3,
            survivors: 2,
            eval_seeds: 2,
            workers: 0,
        }
    }

    /// Deeper overnight-style search.
    pub fn full(master_seed: u64) -> Self {
        SearchConfig {
            master_seed,
            generations: 4,
            population: 12,
            triage_keep: 5,
            survivors: 3,
            eval_seeds: 3,
            workers: 0,
        }
    }
}

/// The per-target verdict of one search run. All fields are outcomes
/// (deterministic in the config), so reports diff exactly across
/// machines and thread counts.
#[derive(Clone, Debug, Serialize)]
pub struct TargetReport {
    /// Target name (leaderboard attack).
    pub name: String,
    /// Metric label the target is scored on.
    pub metric: String,
    /// The hand-built attack's metric on the anchor seed.
    pub hand_metric: u64,
    /// Corruptions the hand-built attack landed (= seed script length).
    pub hand_corruptions: u64,
    /// Best searched script's metric on the anchor seed.
    pub best_metric: u64,
    /// Best searched script's length (its budget).
    pub best_steps: usize,
    /// Best mean fitness (metric per budget unit over the full-scoring
    /// seeds) observed in the final survivor set.
    pub best_fitness: f64,
    /// Candidates evaluated across all generations and tiers.
    pub evaluated: usize,
    /// Did the search match or beat the hand-built attack on its own
    /// metric at no larger budget? (Guaranteed by seeding; a `false`
    /// here is a determinism regression.)
    pub matched: bool,
    /// The champion script itself.
    pub best_script: Vec<ScriptStep>,
}

/// Operator/evaluation seed for `(target, generation, slot)` draws.
fn op_seed(master: u64, target: usize, generation: usize, slot: usize) -> u64 {
    let mut s = master
        ^ (target as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (generation as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (slot as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    splitmix64(&mut s)
}

/// Runs the full search: every target, `cfg.generations` generations
/// each, all trials fanned through one [`sim_service`] pool.
pub fn run_search(cfg: &SearchConfig) -> Vec<TargetReport> {
    let svc = sim_service(ServiceConfig {
        workers: cfg.workers,
        queue_capacity: (cfg.population * cfg.eval_seeds).max(32),
        backpressure: Backpressure::Block,
        ..ServiceConfig::default()
    });
    let reports = targets()
        .iter()
        .enumerate()
        .map(|(ti, t)| search_target(cfg, ti, t, &svc))
        .collect();
    svc.shutdown();
    reports
}

/// Evaluates each candidate script on each seed through the service.
/// Rows come back in `candidates × seeds` submission order, so the
/// caller's indexing is deterministic regardless of worker scheduling.
fn eval_scripts(
    svc: &serve::SimService<SimRequest>,
    t: &SearchTarget,
    candidates: &[Vec<ScriptStep>],
    seeds: &[u64],
) -> Vec<Vec<TrialResult>> {
    let tickets: Vec<_> = candidates
        .iter()
        .flat_map(|steps| {
            seeds.iter().map(|&seed| {
                let req = SimRequest {
                    workload: t.workload,
                    scheme: t.scheme,
                    attack: AttackSpec::Scripted {
                        steps: steps.clone(),
                    },
                    fault: FaultSpec::None,
                    seed,
                };
                svc.submit(req, Priority::Normal)
                    .expect("blocking submit cannot fail while the service runs")
            })
        })
        .collect();
    let rows: Vec<TrialResult> = tickets
        .into_iter()
        .map(|ticket| {
            ticket
                .wait()
                .expect("reply lost")
                .outcome
                .done()
                .expect("search trials are never cancelled")
        })
        .collect();
    rows.chunks(seeds.len()).map(|c| c.to_vec()).collect()
}

/// Mean target-metric per budget unit over a candidate's scored rows.
fn fitness(metric: SearchMetric, steps: usize, rows: &[TrialResult]) -> f64 {
    let total: u64 = rows.iter().map(|r| metric.of(r)).sum();
    total as f64 / (rows.len().max(1) as f64 * steps.max(1) as f64)
}

/// Searches one target. The anchor trial seed doubles as the recording
/// seed, so generation 0 provably contains a candidate at metric parity
/// with the hand-built attack.
fn search_target(
    cfg: &SearchConfig,
    ti: usize,
    t: &SearchTarget,
    svc: &serve::SimService<SimRequest>,
) -> TargetReport {
    let anchor = derive_trial_seed(cfg.master_seed, ti);
    let recorded = record_seed(t, anchor);
    let hand_metric = t.metric.of(&recorded.row);
    let seed_script = recorded.script.clone();
    // The genome budget: the hand-built attack's engine budget, or —
    // for self-bounding attacks — exactly what it spent.
    let budget = if t.record_budget == u64::MAX {
        (seed_script.len() as u64).max(1)
    } else {
        t.record_budget
    };
    let bounds = ScriptBounds {
        max_round: recorded.predicted_rounds,
        links: recorded.links,
        budget,
    };
    let mut eval_seed_list = vec![anchor];
    for k in 1..cfg.eval_seeds.max(1) {
        eval_seed_list.push(derive_trial_seed(
            cfg.master_seed ^ 0x5EED_0F5E_A5C4_0001,
            ti * 64 + k,
        ));
    }

    let mut parents: Vec<Vec<ScriptStep>> = vec![repair_script(seed_script.clone(), bounds)];
    let mut evaluated = 0usize;
    // Champion: best anchor-seed metric seen anywhere (ties → shorter
    // script, then earlier discovery). Seeded with the recording itself.
    let mut champion = (hand_metric, seed_script.clone());
    let mut best_fitness = f64::MIN;

    for generation in 0..cfg.generations {
        // Build the population: elites first, then seeded mutants and
        // splice crossovers of the parent set.
        let mut population: Vec<Vec<ScriptStep>> = Vec::with_capacity(cfg.population);
        population.extend(parents.iter().take(cfg.population).cloned());
        let mut slot = 0usize;
        while population.len() < cfg.population {
            let s = op_seed(cfg.master_seed, ti, generation, slot);
            slot += 1;
            let a = &parents[(s >> 8) as usize % parents.len()];
            let child = if s % 3 == 2 && parents.len() >= 2 {
                let b = &parents[((s >> 16) as usize) % parents.len()];
                crossover_scripts(a, b, bounds, s)
            } else {
                mutate_script(a, bounds, s)
            };
            population.push(child);
        }

        // Tier 1 — triage: one anchor-seed trial per candidate.
        let triage = eval_scripts(svc, t, &population, &[anchor]);
        evaluated += population.len();
        let mut ranked: Vec<usize> = (0..population.len()).collect();
        let anchor_metric =
            |i: usize| t.metric.of(&triage[i][0]) as f64 / population[i].len().max(1) as f64;
        ranked.sort_by(|&a, &b| {
            anchor_metric(b)
                .partial_cmp(&anchor_metric(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &i in &ranked {
            let m = t.metric.of(&triage[i][0]);
            if m > champion.0 || (m == champion.0 && population[i].len() < champion.1.len()) {
                champion = (m, population[i].clone());
            }
        }

        // Tier 2 — full scoring for the triage front-runners.
        let finalists: Vec<Vec<ScriptStep>> = ranked
            .iter()
            .take(cfg.triage_keep.max(1))
            .map(|&i| population[i].clone())
            .collect();
        let scored = eval_scripts(svc, t, &finalists, &eval_seed_list);
        evaluated += finalists.len();
        let mut order: Vec<usize> = (0..finalists.len()).collect();
        let fit = |i: usize| fitness(t.metric, finalists[i].len(), &scored[i]);
        order.sort_by(|&a, &b| {
            fit(b)
                .partial_cmp(&fit(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        best_fitness = best_fitness.max(fit(order[0]));
        parents = order
            .iter()
            .take(cfg.survivors.max(1))
            .map(|&i| finalists[i].clone())
            .collect();
    }

    TargetReport {
        name: t.name.to_string(),
        metric: t.metric.label().to_string(),
        hand_metric,
        hand_corruptions: recorded.row.corruptions,
        best_metric: champion.0,
        best_steps: champion.1.len(),
        best_fitness,
        evaluated,
        matched: champion.0 >= hand_metric && champion.1.len() as u64 <= budget.max(1),
        best_script: champion.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_trial;

    /// The recorder transcript replays to the hand-built attack's exact
    /// damage on every target — the parity guarantee the search's
    /// acceptance criterion stands on.
    #[test]
    fn recorded_seeds_replay_at_metric_parity() {
        for (ti, t) in targets().iter().enumerate() {
            let anchor = derive_trial_seed(99, ti);
            let recorded = record_seed(t, anchor);
            let replay = run_trial(
                t.workload,
                t.scheme,
                AttackSpec::Scripted {
                    steps: recorded.script.clone(),
                },
                anchor,
            );
            assert_eq!(
                t.metric.of(&replay),
                t.metric.of(&recorded.row),
                "{}: replay diverged from recording",
                t.name
            );
            assert_eq!(
                replay.corruptions, recorded.row.corruptions,
                "{}: replay landed a different corruption count",
                t.name
            );
        }
    }

    /// Same config → byte-identical reports, and every target matches or
    /// beats its hand-built seed.
    #[test]
    fn quick_search_is_deterministic_and_matches_seeds() {
        let cfg = SearchConfig {
            generations: 1,
            population: 3,
            triage_keep: 2,
            survivors: 1,
            eval_seeds: 1,
            ..SearchConfig::quick(7)
        };
        let a = run_search(&cfg);
        let b = run_search(&cfg);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "search is not deterministic in its master seed"
        );
        for r in &a {
            assert!(r.matched, "{} fell below its hand-built seed", r.name);
        }
    }
}
