//! Bench-regression gate: compares a fresh `CRITERION_SHIM_JSON` run
//! against a committed `BENCH_*.json` baseline and fails (exit 1) if any
//! shared benchmark id regressed by more than the threshold.
//!
//! Usage:
//!
//! ```text
//! benchcmp <baseline.json> <fresh.json> [--threshold 1.5]
//! ```
//!
//! Both inputs are the criterion shim's JSON-lines format (one object per
//! benchmark with `id` and `mean_ns`). Ids present in only one file are
//! reported but never fail the gate, so adding or retiring benchmarks does
//! not require regenerating the baseline in the same change.
//!
//! Noise robustness: a shared id counts as regressed only if **both** its
//! `mean_ns` and its `min_ns` exceed the threshold (when `min_ns` is
//! present). A genuine slowdown shifts the whole distribution including
//! the minimum; scheduler noise on shared CI runners inflates the mean
//! and the tail but rarely the min-of-batch-means, so requiring both
//! filters most spurious failures without masking real regressions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One benchmark row of the criterion shim's JSON-lines output. Extra
/// fields in a line (`max_ns`, `stddev_ns`, `batches`, `iters`) are
/// ignored; `min_ns` is optional so older baselines still parse.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Row {
    id: String,
    mean_ns: f64,
    min_ns: Option<f64>,
}

/// Parses the shim's JSON-lines output via the serde shim's
/// deserializer (swap the shim for the real `serde`/`serde_json` and
/// this function is unchanged).
fn parse(path: &str) -> Result<BTreeMap<String, Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row: Row = serde_json::from_str(line).map_err(|e| format!("{path}:{}: {e}", ln + 1))?;
        // Last write wins: appended re-runs supersede earlier rows.
        out.insert(row.id.clone(), row);
    }
    Ok(out)
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 1.5f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 1.0 => threshold = t,
                _ => {
                    eprintln!("--threshold needs a number > 1.0");
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(a.clone());
        }
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        eprintln!("usage: benchcmp <baseline.json> <fresh.json> [--threshold 1.5]");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (parse(baseline_path), parse(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchcmp: {e}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<42} {:>12} {:>12} {:>8}  status (threshold {threshold}x)",
        "id", "baseline", "fresh", "ratio"
    );
    for (id, base) in &baseline {
        let Some(new) = fresh.get(id) else {
            println!(
                "{id:<42} {:>12} {:>12} {:>8}  missing in fresh run",
                human(base.mean_ns),
                "-",
                "-"
            );
            continue;
        };
        compared += 1;
        let ratio = new.mean_ns / base.mean_ns.max(f64::MIN_POSITIVE);
        let min_ratio = match (base.min_ns, new.min_ns) {
            (Some(b), Some(n)) if b > 0.0 => Some(n / b),
            _ => None,
        };
        let min_regressed = min_ratio.map_or(true, |r| r > threshold);
        let status = if ratio > threshold && min_regressed {
            regressions += 1;
            "REGRESSED"
        } else if ratio > threshold {
            "noisy (mean regressed, min did not)"
        } else if ratio < 1.0 / threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{id:<42} {:>12} {:>12} {ratio:>7.2}x  {status}",
            human(base.mean_ns),
            human(new.mean_ns)
        );
    }
    for id in fresh.keys() {
        if !baseline.contains_key(id) {
            println!(
                "{id:<42} {:>12} {:>12} {:>8}  new (no baseline)",
                "-",
                human(fresh[id].mean_ns),
                "-"
            );
        }
    }
    println!("\ncompared {compared} shared ids; {regressions} regressed beyond {threshold}x");
    if compared == 0 {
        eprintln!("benchcmp: no shared benchmark ids — wrong files?");
        return ExitCode::from(2);
    }
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Derive-level round trip through the serde shim: a serialized row
    /// parses back field-for-field, including a criterion-shim line with
    /// extra fields and one without `min_ns`.
    #[test]
    fn row_round_trips_through_shim() {
        let row = Row {
            id: "sim_large/ring_4096".into(),
            mean_ns: 1.25e9,
            min_ns: Some(1.1e9),
        };
        let text = serde_json::to_string(&row).unwrap();
        let back: Row = serde_json::from_str(&text).unwrap();
        assert_eq!(back.id, row.id);
        assert_eq!(back.mean_ns.to_bits(), row.mean_ns.to_bits());
        assert_eq!(back.min_ns, row.min_ns);

        let line = r#"{"id":"x","mean_ns":10.0,"min_ns":9.0,"max_ns":12.0,"stddev_ns":0.5,"batches":20,"iters":40}"#;
        let r: Row = serde_json::from_str(line).unwrap();
        assert_eq!(r.id, "x");
        assert_eq!(r.min_ns, Some(9.0));

        let old = r#"{"id":"y","mean_ns":3.5}"#;
        let r: Row = serde_json::from_str(old).unwrap();
        assert_eq!(r.min_ns, None);

        assert!(serde_json::from_str::<Row>(r#"{"mean_ns":3.5}"#).is_err());
    }
}
