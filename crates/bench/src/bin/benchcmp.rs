//! Bench-regression gate: compares a fresh `CRITERION_SHIM_JSON` run
//! against a committed `BENCH_*.json` baseline and fails (exit 1) if any
//! shared benchmark id regressed by more than the threshold.
//!
//! Usage:
//!
//! ```text
//! benchcmp <baseline.json> <fresh.json> [--threshold 1.5]
//! ```
//!
//! Both inputs are the criterion shim's JSON-lines format (one object per
//! benchmark with `id` and `mean_ns`). Ids present in only one file are
//! reported but never fail the gate, so adding or retiring benchmarks does
//! not require regenerating the baseline in the same change.
//!
//! Noise robustness: a shared id counts as regressed only if **both** its
//! `mean_ns` and its `min_ns` exceed the threshold (when `min_ns` is
//! present). A genuine slowdown shifts the whole distribution including
//! the minimum; scheduler noise on shared CI runners inflates the mean
//! and the tail but rarely the min-of-batch-means, so requiring both
//! filters most spurious failures without masking real regressions.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed benchmark row.
#[derive(Clone, Copy, Debug)]
struct Row {
    mean_ns: f64,
    min_ns: Option<f64>,
}

/// Parses the shim's JSON-lines output. The format is machine-written by
/// `shims/criterion` (flat objects, string `id`, numeric fields), so a
/// small field scanner suffices — the workspace's serde shim has no
/// deserializer to lean on.
fn parse(path: &str) -> Result<BTreeMap<String, Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = field_str(line, "id")
            .ok_or_else(|| format!("{path}:{}: missing \"id\" field", ln + 1))?;
        let mean_ns = field_num(line, "mean_ns")
            .ok_or_else(|| format!("{path}:{}: missing \"mean_ns\" field", ln + 1))?;
        let min_ns = field_num(line, "min_ns");
        // Last write wins: appended re-runs supersede earlier rows.
        out.insert(id, Row { mean_ns, min_ns });
    }
    Ok(out)
}

/// Extracts a string field `"key":"value"` from a flat JSON object line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts a numeric field `"key":123.4` from a flat JSON object line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 1.5f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 1.0 => threshold = t,
                _ => {
                    eprintln!("--threshold needs a number > 1.0");
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(a.clone());
        }
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        eprintln!("usage: benchcmp <baseline.json> <fresh.json> [--threshold 1.5]");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (parse(baseline_path), parse(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchcmp: {e}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<42} {:>12} {:>12} {:>8}  status (threshold {threshold}x)",
        "id", "baseline", "fresh", "ratio"
    );
    for (id, base) in &baseline {
        let Some(new) = fresh.get(id) else {
            println!(
                "{id:<42} {:>12} {:>12} {:>8}  missing in fresh run",
                human(base.mean_ns),
                "-",
                "-"
            );
            continue;
        };
        compared += 1;
        let ratio = new.mean_ns / base.mean_ns.max(f64::MIN_POSITIVE);
        let min_ratio = match (base.min_ns, new.min_ns) {
            (Some(b), Some(n)) if b > 0.0 => Some(n / b),
            _ => None,
        };
        let min_regressed = min_ratio.map_or(true, |r| r > threshold);
        let status = if ratio > threshold && min_regressed {
            regressions += 1;
            "REGRESSED"
        } else if ratio > threshold {
            "noisy (mean regressed, min did not)"
        } else if ratio < 1.0 / threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{id:<42} {:>12} {:>12} {ratio:>7.2}x  {status}",
            human(base.mean_ns),
            human(new.mean_ns)
        );
    }
    for id in fresh.keys() {
        if !baseline.contains_key(id) {
            println!(
                "{id:<42} {:>12} {:>12} {:>8}  new (no baseline)",
                "-",
                human(fresh[id].mean_ns),
                "-"
            );
        }
    }
    println!("\ncompared {compared} shared ids; {regressions} regressed beyond {threshold}x");
    if compared == 0 {
        eprintln!("benchcmp: no shared benchmark ids — wrong files?");
        return ExitCode::from(2);
    }
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
