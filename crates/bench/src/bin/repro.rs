//! Tiered reproduction driver: one command that regenerates the repo's
//! figure-style results as a **versioned artifact** (the ruler artifact's
//! `kick-tires`/`lite`/`full` tiering, with the ingest→process→render
//! pipeline documented in EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p bench --bin repro -- run --quick        # CI-sized, < 60 s
//! cargo run --release -p bench --bin repro -- run --lite        # minutes
//! cargo run --release -p bench --bin repro -- run --full        # hours
//! cargo run --release -p bench --bin repro -- diff              # fresh --quick vs expected/
//! cargo run --release -p bench --bin repro -- accept            # bless fresh run into expected/
//! ```
//!
//! `run` executes six sweeps — noise-rate vs. decode success, topology
//! scaling serial vs. threads, the adversary leaderboard (the four PR 5
//! phase-aware attacks vs. their oblivious counterparts), serve
//! latency/throughput, fault churn (injected link/party faults vs.
//! explicit decode-or-degrade verdicts), and the adversary search
//! (evolved corruption scripts vs. the hand-built seeds) — and writes
//! `out/<tier>-<git-sha>/` containing
//! `manifest.json` (tier, seed, `SIM_THREADS`, core count, shim
//! versions), one `<sweep>.jsonl` per sweep, and a rendered `report.md`.
//!
//! `diff` compares the newest `out/quick-*` run against the committed
//! expectations under `expected/` and exits nonzero on drift: **outcome**
//! values (success rates, corruption counts, blow-ups — deterministic in
//! the seeds) must match exactly, **timing** values only within
//! `--tolerance` (default 1000×, i.e. effectively a sanity check across
//! hardware classes). CI's `repro-quick` job runs `run --quick` followed
//! by `diff` as a cheap end-to-end honesty check beyond the bench gate.
//!
//! Flags: `run [--quick|--lite|--full] [--seed S] [--out DIR]`,
//! `diff/accept [--fresh DIR] [--expected DIR] [--tolerance X]`.

use bench::report::{diff_dirs, Manifest, RunWriter, Table};
use bench::{
    derive_trial_seed, run_many, run_trial, sim_service, AttackSpec, FaultSpec, Scheme, SimRequest,
    TopoSpec, WorkloadSpec,
};
use mpic::{Parallelism, RunOptions, RunScratch, SchemeConfig, Simulation};
use netsim::PhaseKind;
use serde_json::{json, Value};
use serve::{LatencyHistogram, Priority, ServiceConfig, Ticket};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// Knobs of one tier. Outcome rows depend only on the seeds, so the same
/// tier reproduces the same outcomes on any machine; the tiers differ in
/// how much statistical and scaling depth they buy with wall clock.
struct Tier {
    name: &'static str,
    noise_trials: usize,
    noise_multipliers: &'static [f64],
    scaling_topos: &'static [TopoSpec],
    scaling_threads: &'static [usize],
    serve_requests: usize,
    serve_rate: f64,
    full_leaderboard: bool,
    churn_trials: usize,
    full_search: bool,
}

/// CI-sized: everything in well under a minute on one core.
const QUICK: Tier = Tier {
    name: "quick",
    noise_trials: 4,
    noise_multipliers: &[0.0, 0.02, 0.1, 0.5],
    scaling_topos: &[
        TopoSpec::Ring(64),
        TopoSpec::Ring(256),
        TopoSpec::Grid(16, 16),
    ],
    scaling_threads: &[2],
    serve_requests: 80,
    serve_rate: 400.0,
    full_leaderboard: false,
    churn_trials: 6,
    full_search: false,
};

/// Minutes-sized: real sweep resolution, mid-size topologies.
const LITE: Tier = Tier {
    name: "lite",
    noise_trials: 24,
    noise_multipliers: &[0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5],
    scaling_topos: &[
        TopoSpec::Ring(256),
        TopoSpec::Ring(1024),
        TopoSpec::Grid(32, 32),
    ],
    scaling_threads: &[2, 4],
    serve_requests: 2000,
    serve_rate: 500.0,
    full_leaderboard: true,
    churn_trials: 24,
    full_search: true,
};

/// Hours-sized: publication-strength trial counts and the largest
/// topologies the ROADMAP names.
const FULL: Tier = Tier {
    name: "full",
    noise_trials: 96,
    noise_multipliers: &[0.0, 0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.2, 0.35, 0.5],
    scaling_topos: &[
        TopoSpec::Ring(1024),
        TopoSpec::Ring(4096),
        TopoSpec::Grid(64, 64),
    ],
    scaling_threads: &[2, 4, 8],
    serve_requests: 20_000,
    serve_rate: 800.0,
    full_leaderboard: true,
    churn_trials: 96,
    full_search: true,
};

struct Args {
    mode: String,
    tier: &'static Tier,
    seed: u64,
    out_root: String,
    fresh: Option<String>,
    expected: String,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut a = Args {
        mode: "run".into(),
        tier: &QUICK,
        seed: 2024,
        out_root: "out".into(),
        fresh: None,
        expected: "expected".into(),
        tolerance: 1000.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value after {}", argv[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "run" | "diff" | "accept" => a.mode = argv[i].clone(),
            "--quick" => a.tier = &QUICK,
            "--lite" => a.tier = &LITE,
            "--full" => a.tier = &FULL,
            "--seed" => a.seed = value(&mut i).parse().expect("--seed wants a u64"),
            "--out" => a.out_root = value(&mut i),
            "--fresh" => a.fresh = Some(value(&mut i)),
            "--expected" => a.expected = value(&mut i),
            "--tolerance" => {
                a.tolerance = value(&mut i).parse().expect("--tolerance wants a number");
                assert!(a.tolerance > 1.0, "--tolerance must exceed 1.0");
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: repro [run|diff|accept] \
                     [--quick|--lite|--full] [--seed S] [--out DIR] \
                     [--fresh DIR] [--expected DIR] [--tolerance X]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    a
}

fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "nogit".into())
}

/// Versions of the offline shims linked into this driver, baked in at
/// compile time from their manifests.
fn shim_versions() -> Vec<String> {
    fn entry(name: &str, toml: &str) -> String {
        let version = toml
            .lines()
            .find_map(|l| l.strip_prefix("version"))
            .and_then(|l| l.split('"').nth(1))
            .unwrap_or("?");
        format!("{name} {version}")
    }
    vec![
        entry("serde", include_str!("../../../../shims/serde/Cargo.toml")),
        entry(
            "serde_json",
            include_str!("../../../../shims/serde_json/Cargo.toml"),
        ),
        entry(
            "crossbeam",
            include_str!("../../../../shims/crossbeam/Cargo.toml"),
        ),
        entry(
            "parking_lot",
            include_str!("../../../../shims/parking_lot/Cargo.toml"),
        ),
        entry(
            "proptest",
            include_str!("../../../../shims/proptest/Cargo.toml"),
        ),
        entry(
            "criterion",
            include_str!("../../../../shims/criterion/Cargo.toml"),
        ),
    ]
}

/// Sweep 1 — noise-rate vs. decode success for the three schemes, each
/// in its theorem's own noise units (Thm 1.1: ε/m; Thm 1.2: ε/(m log m);
/// App. B: ε/(m log log m)). The `repro` analog of `experiments f1/f2/f8`.
fn noise_sweep(tier: &Tier, seed: u64) -> (Table, Vec<Value>) {
    let topo = TopoSpec::Ring(6);
    let m = topo.build(1).edge_count() as f64;
    let w = WorkloadSpec::Gossip { topo, rounds: 8 };
    let schemes: [(Scheme, f64, &str); 3] = [
        (Scheme::A, m, "1/m"),
        (Scheme::B, m * m.log2(), "1/(m log m)"),
        (Scheme::C, m * m.log2().log2().max(1.0), "1/(m log log m)"),
    ];
    let mut table = Table::new(
        "Noise-rate vs. decode success — ring(6) gossip, per-theorem units",
        &[
            "scheme",
            "units",
            "multiplier",
            "fraction",
            "ok",
            "blowup",
            "achieved_f",
        ],
    );
    let mut rows = Vec::new();
    for (si, (scheme, denom, units)) in schemes.iter().enumerate() {
        for (mi, &c) in tier.noise_multipliers.iter().enumerate() {
            let fraction = c / denom;
            let attack = if c == 0.0 {
                AttackSpec::None
            } else {
                AttackSpec::Iid { fraction }
            };
            let base = seed
                .wrapping_add(1_000 * si as u64)
                .wrapping_add(10 * mi as u64);
            let (s, _) = run_many(w, *scheme, attack, tier.noise_trials, base);
            table.push_row(vec![
                scheme.label(),
                units.to_string(),
                format!("{c:.3}"),
                format!("{fraction:.6}"),
                format!("{:.2}", s.success_rate),
                format!("{:.1}", s.mean_blowup),
                format!("{:.6}", s.mean_noise_fraction),
            ]);
            rows.push(json!({
                "scheme": scheme.label(), "units": units, "multiplier": c,
                "fraction": fraction, "trials": tier.noise_trials,
                "success": s.success_rate, "blowup": s.mean_blowup,
                "achieved_fraction": s.mean_noise_fraction,
                "collisions": s.mean_collisions,
            }));
        }
    }
    (table, rows)
}

/// Sweep 2 — topology scaling, serial vs. `Parallelism::Threads(t)` on
/// the word-batched wire path. Outcomes are asserted byte-identical
/// across thread counts (the `parallel_equivalence` contract); the
/// timing columns record this machine's wall clock and are diffed only
/// within tolerance. Thread counts are pinned per tier (not `nproc`) so
/// the row set is machine-independent.
fn scaling_sweep(tier: &Tier, seed: u64) -> (Table, Vec<Value>) {
    use netsim::attacks::NoNoise;
    let mut table = Table::new(
        "Topology scaling — serial vs. threads (byte-identical outcomes)",
        &[
            "topology", "n", "m", "threads", "serial", "threaded", "speedup", "ok",
        ],
    );
    let mut rows = Vec::new();
    for topo in tier.scaling_topos {
        let g = topo.build(1);
        let w = protocol::workloads::Gossip::new(g.clone(), 2, 41);
        let base = SchemeConfig::algorithm_a(protocol::Workload::graph(&w), seed);
        let mut scratch = RunScratch::new();
        // Warm-up run per configuration: the timed run measures the
        // engine, not the first arena allocation.
        let timed = |par: Parallelism, scratch: &mut RunScratch| {
            let mut cfg = base.clone();
            cfg.parallelism = par;
            let sim = Simulation::new(&w, cfg, 1);
            sim.run_with_scratch(Box::new(NoNoise), RunOptions::default(), scratch);
            let t = Instant::now();
            let out = sim.run_with_scratch(Box::new(NoNoise), RunOptions::default(), scratch);
            (t.elapsed(), out)
        };
        let (serial_t, serial_out) = timed(Parallelism::Serial, &mut scratch);
        for &t in tier.scaling_threads {
            let (par_t, par_out) = timed(Parallelism::Threads(t), &mut scratch);
            assert_eq!(
                serial_out.stats,
                par_out.stats,
                "{}: outcome diverged",
                topo.label()
            );
            assert_eq!(serial_out.success, par_out.success, "{}", topo.label());
            let speedup = serial_t.as_secs_f64() / par_t.as_secs_f64().max(f64::MIN_POSITIVE);
            table.push_row(vec![
                topo.label(),
                g.node_count().to_string(),
                g.edge_count().to_string(),
                t.to_string(),
                format!("{serial_t:.2?}"),
                format!("{par_t:.2?}"),
                format!("{speedup:.2}x"),
                serial_out.success.to_string(),
            ]);
            rows.push(json!({
                "topology": topo.label(), "n": g.node_count(), "m": g.edge_count(),
                "threads": t, "success": serial_out.success,
                "rounds": serial_out.stats.rounds, "cc": serial_out.stats.cc,
                "serial_ns": serial_t.as_nanos() as u64,
                "threads_ns": par_t.as_nanos() as u64,
                "speedup": speedup, "outcome_identical": true,
            }));
        }
    }
    (table, rows)
}

/// Sweep 3 — the adversary leaderboard: each PR 5 phase-aware attack
/// beside its closest oblivious counterpart at equal corruption budget,
/// scored on the instrumented damage metric it targets. All rows are
/// deterministic in the seed.
fn leaderboard_sweep(tier: &Tier, seed: u64) -> (Table, Vec<Value>) {
    use netsim::attacks::{
        BurstLink, CrossIterationHunter, FlagFlipper, IidNoise, MeetingPointSplitter, Pair,
        PhaseTargeted, RewindSuppressor,
    };
    use netsim::Adversary;

    let w = protocol::workloads::Gossip::new(netgraph::topology::ring(5), 6, 17);
    let g = protocol::Workload::graph(&w).clone();
    let cfg = SchemeConfig::algorithm_a(&g, seed.wrapping_add(23));
    let sim = Simulation::new(&w, cfg.clone(), 1);
    let geo = sim.geometry();
    let start = geo.phase_start(1, PhaseKind::Simulation);
    let burst = |g: &netgraph::Graph| -> Box<dyn Adversary> {
        Box::new(BurstLink::new(
            g,
            netgraph::DirectedLink { from: 1, to: 2 },
            start,
            8,
        ))
    };
    let mut entries: Vec<(&str, &str, Box<dyn Adversary>, u64)> = vec![
        (
            "mp_splitter",
            "adaptive",
            Box::new(MeetingPointSplitter::new(&g, cfg.hash_bits, 2)),
            40,
        ),
        (
            "phase_mp",
            "oblivious",
            Box::new(PhaseTargeted::new(
                &g,
                geo,
                PhaseKind::MeetingPoints,
                0.02,
                7,
            )),
            40,
        ),
        (
            "flag_flipper",
            "adaptive",
            Box::new(FlagFlipper::new(&g, 1)),
            6,
        ),
        (
            "phase_fp",
            "oblivious",
            Box::new(PhaseTargeted::new(&g, geo, PhaseKind::FlagPassing, 0.05, 7)),
            6,
        ),
        (
            "burst+rw_suppressor",
            "adaptive",
            Box::new(Pair(burst(&g), Box::new(RewindSuppressor::new(&g, 4)))),
            11,
        ),
        (
            "burst+phase_rw",
            "oblivious",
            Box::new(Pair(
                burst(&g),
                Box::new(PhaseTargeted::new(&g, geo, PhaseKind::Rewind, 0.02, 7)),
            )),
            11,
        ),
        ("burst_alone", "oblivious", burst(&g), 11),
    ];

    let mut table = Table::new(
        "Adversary leaderboard — phase-aware attacks vs. oblivious counterparts",
        &[
            "attack", "family", "budget", "corr", "coll", "mp_trunc", "stalled", "rw_trunc", "ok",
        ],
    );
    let mut rows = Vec::new();
    let push = |label: &str,
                family: &str,
                out: &mpic::SimOutcome,
                budget: u64,
                table: &mut Table,
                rows: &mut Vec<Value>| {
        let b = if budget == u64::MAX {
            "inf".into()
        } else {
            budget.to_string()
        };
        table.push_row(vec![
            label.to_string(),
            family.to_string(),
            b,
            out.stats.corruptions.to_string(),
            out.instrumentation.hash_collisions.to_string(),
            out.instrumentation.mp_truncations.to_string(),
            out.instrumentation.stalled_iterations.to_string(),
            out.instrumentation.rewind_truncations.to_string(),
            out.success.to_string(),
        ]);
        rows.push(json!({
            "attack": label, "family": family,
            "budget": if budget == u64::MAX { 0u64 } else { budget },
            "corruptions": out.stats.corruptions,
            "collisions": out.instrumentation.hash_collisions,
            "mp_truncations": out.instrumentation.mp_truncations,
            "stalled_iterations": out.instrumentation.stalled_iterations,
            "rewind_truncations": out.instrumentation.rewind_truncations,
            "success": out.success,
        }));
    };
    for (label, family, adv, budget) in entries.drain(..) {
        let out = sim.run(
            adv,
            RunOptions {
                noise_budget: budget,
                record_trace: false,
                expose_view: true,
            },
        );
        push(label, family, &out, budget, &mut table, &mut rows);
    }

    // The §6.1 cross-iteration hunter against its prey (τ = 4) and, on
    // the deeper tiers, against τ = Θ(log m).
    let wc = protocol::workloads::Gossip::new(netgraph::topology::clique(6), 6, 51);
    let gc = protocol::Workload::graph(&wc).clone();
    let mut weak = SchemeConfig::algorithm_a(&gc, seed.wrapping_add(61));
    weak.hash_bits = 4;
    let simc = Simulation::new(&wc, weak, 6);
    let out = simc.run(
        Box::new(CrossIterationHunter::new(gc.edge_count(), 1, 8)),
        RunOptions::default(),
    );
    push(
        "hunter_tau4",
        "adaptive",
        &out,
        u64::MAX,
        &mut table,
        &mut rows,
    );
    let out = simc.run(
        Box::new(IidNoise::new(&gc, 0.001, 3)),
        RunOptions::default(),
    );
    push(
        "iid_tau4",
        "oblivious",
        &out,
        u64::MAX,
        &mut table,
        &mut rows,
    );
    if tier.full_leaderboard {
        let mut strong = SchemeConfig::algorithm_a(&gc, seed.wrapping_add(61));
        strong.hash_bits = (3.0 * (gc.edge_count() as f64).log2()).ceil() as u32;
        let sims = Simulation::new(&wc, strong, 6);
        let out = sims.run(
            Box::new(CrossIterationHunter::new(gc.edge_count(), 1, 8)),
            RunOptions::default(),
        );
        push(
            "hunter_tau_strong",
            "adaptive",
            &out,
            u64::MAX,
            &mut table,
            &mut rows,
        );
    }
    (table, rows)
}

/// Sweep 4 — serve latency/throughput: the PR 7 open-loop load pattern
/// (arrivals at `t_i = i/rate`, so queueing shows up as latency) against
/// `SimService`, plus a closed-loop identity spot-check of served rows
/// against direct `run_trial`. Served/failed counts are outcomes; the
/// latency and throughput columns are this machine's wall clock.
fn serve_sweep(tier: &Tier, seed: u64) -> (Table, Vec<Value>) {
    let ring = WorkloadSpec::Gossip {
        topo: TopoSpec::Ring(4),
        rounds: 5,
    };
    let token = WorkloadSpec::TokenRing { n: 4, laps: 2 };
    let rotation: [(WorkloadSpec, Scheme, AttackSpec); 5] = [
        (ring, Scheme::A, AttackSpec::None),
        (token, Scheme::A, AttackSpec::Iid { fraction: 0.002 }),
        (ring, Scheme::B, AttackSpec::None),
        (token, Scheme::C, AttackSpec::None),
        (ring, Scheme::NoCoding, AttackSpec::None),
    ];
    let request = |i: usize| -> (SimRequest, Priority) {
        let (workload, scheme, ref attack) = rotation[i % rotation.len()];
        let attack = attack.clone();
        let pri = if i % 8 == 7 {
            Priority::High
        } else {
            Priority::Normal
        };
        (
            SimRequest {
                workload,
                scheme,
                attack,
                fault: FaultSpec::None,
                seed: derive_trial_seed(seed, i),
            },
            pri,
        )
    };

    let svc = sim_service(ServiceConfig {
        queue_capacity: tier.serve_requests.max(16),
        ..ServiceConfig::default()
    });
    let client = svc.client();
    let n = tier.serve_requests;
    let (tx, rx) = crossbeam::channel::bounded::<(Instant, Ticket<bench::TrialResult>)>(n.max(1));
    let collector = std::thread::spawn(move || {
        let mut e2e = LatencyHistogram::default();
        let mut queue = LatencyHistogram::default();
        let mut exec = LatencyHistogram::default();
        let mut served = 0u64;
        let mut failed = 0u64;
        while let Ok((submitted, ticket)) = rx.recv() {
            match ticket.wait() {
                Ok(resp) => {
                    e2e.record(submitted.elapsed().as_nanos() as u64);
                    queue.record(resp.queue_ns);
                    exec.record(resp.exec_ns);
                    match resp.outcome {
                        serve::Outcome::Done(_) => served += 1,
                        serve::Outcome::Cancelled
                        | serve::Outcome::Failed { .. }
                        | serve::Outcome::TimedOut => failed += 1,
                    }
                }
                Err(_) => failed += 1,
            }
        }
        (e2e, queue, exec, served, failed)
    });
    let start = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / tier.serve_rate.max(1e-3));
    for i in 0..n {
        let due = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let (req, pri) = request(i);
        let ticket = client
            .submit(req, pri)
            .expect("Block backpressure: submit cannot fail while the service runs");
        tx.send((Instant::now(), ticket)).expect("collector gone");
    }
    drop(tx);
    let (e2e, queue, exec, served, failed) = collector.join().expect("collector panicked");
    let elapsed = start.elapsed();
    let throughput = served as f64 / elapsed.as_secs_f64().max(1e-9);

    // Identity spot-check: the first 12 population seeds, served closed
    // loop, must be byte-identical to direct `run_trial` rows.
    let checks = 12.min(n);
    for i in 0..checks {
        let (req, pri) = request(i);
        let row = svc
            .submit(req.clone(), pri)
            .expect("service accepting")
            .wait()
            .expect("reply lost")
            .outcome
            .done()
            .expect("no cancellations here");
        let direct = run_trial(req.workload, req.scheme, req.attack.clone(), req.seed);
        assert_eq!(row, direct, "service diverged from run_trial on {req:?}");
    }
    svc.shutdown();
    assert_eq!(served as usize, n, "open-loop run lost requests");
    assert_eq!(failed, 0, "open-loop run had failed requests");

    let us = |ns: u64| ns as f64 / 1e3;
    let mut table = Table::new(
        "Serve — open-loop load through SimService (mixed workloads)",
        &[
            "requests",
            "rate",
            "served",
            "failed",
            "rps",
            "e2e_p50",
            "e2e_p99",
            "queue_p99",
            "exec_p50",
        ],
    );
    table.push_row(vec![
        n.to_string(),
        format!("{:.0}/s", tier.serve_rate),
        served.to_string(),
        failed.to_string(),
        format!("{throughput:.0}"),
        format!("{:.0}us", us(e2e.quantile(0.5))),
        format!("{:.0}us", us(e2e.quantile(0.99))),
        format!("{:.0}us", us(queue.quantile(0.99))),
        format!("{:.0}us", us(exec.quantile(0.5))),
    ]);
    let rows = vec![
        json!({
            "row": "load", "mix": "mixed", "requests": n, "served": served,
            "failed": failed, "offered_rps": tier.serve_rate,
            "throughput_rps": throughput,
            "e2e_p50_us": us(e2e.quantile(0.5)), "e2e_p90_us": us(e2e.quantile(0.9)),
            "e2e_p99_us": us(e2e.quantile(0.99)), "e2e_max_us": us(e2e.max()),
            "queue_p99_us": us(queue.quantile(0.99)),
            "exec_p50_us": us(exec.quantile(0.5)), "exec_p99_us": us(exec.quantile(0.99)),
        }),
        json!({"row": "identity", "requests": checks, "identical": true}),
    ];
    (table, rows)
}

/// Sweep 5 — fault churn: injected link/party fault schedules against
/// Algorithms A and B, pinning the **explicit degradation semantics**
/// (every trial decodes correctly or reports `Degraded` with a reason —
/// never silently wrong) and the fault/resync counters. All keys are
/// outcome-exact: the schedules, seeds and counters are deterministic,
/// so there is nothing timing-shaped to tolerate.
fn churn_sweep(tier: &Tier, seed: u64) -> (Table, Vec<Value>) {
    use bench::run_many_faulted;
    let faults: [(&str, FaultSpec); 4] = [
        ("none", FaultSpec::None),
        (
            "churn-lo",
            FaultSpec::Churn {
                link_rate: 0.15,
                crash_rate: 0.0,
                outage_frac: 0.04,
            },
        ),
        (
            "churn-hi",
            FaultSpec::Churn {
                link_rate: 0.5,
                crash_rate: 0.25,
                outage_frac: 0.08,
            },
        ),
        (
            "outage",
            FaultSpec::Burst {
                start_frac: 0.3,
                len_frac: 0.1,
                fraction: 0.5,
            },
        ),
    ];
    let w = WorkloadSpec::Gossip {
        topo: TopoSpec::Ring(5),
        rounds: 6,
    };
    let mut table = Table::new(
        "Fault churn — decode-or-degrade under injected link/party faults",
        &[
            "fault",
            "scheme",
            "decoded",
            "deg:fault",
            "deg:noise",
            "links_down",
            "crash_rounds",
            "resyncs",
        ],
    );
    let mut rows = Vec::new();
    for (fi, (label, fault)) in faults.iter().enumerate() {
        for (si, scheme) in [Scheme::A, Scheme::B].into_iter().enumerate() {
            let attack = AttackSpec::Iid { fraction: 0.001 };
            let base = seed
                .wrapping_add(7_000 * fi as u64)
                .wrapping_add(70 * si as u64);
            let (_, trial_rows) =
                run_many_faulted(w, scheme, attack, *fault, tier.churn_trials, base);
            let decoded = trial_rows.iter().filter(|r| r.degraded == 0).count();
            let deg_fault = trial_rows.iter().filter(|r| r.degraded == 2).count();
            let deg_noise = trial_rows.iter().filter(|r| r.degraded == 1).count();
            // Never silently wrong: the verdict buckets partition the
            // population and success ⇔ decoded, in every tier.
            assert_eq!(decoded + deg_fault + deg_noise, trial_rows.len());
            assert_eq!(decoded, trial_rows.iter().filter(|r| r.success).count());
            let links_down: u64 = trial_rows.iter().map(|r| r.links_downed).sum();
            let crash_rounds: u64 = trial_rows.iter().map(|r| r.crash_rounds).sum();
            let resyncs: u64 = trial_rows.iter().map(|r| r.resync_rewinds).sum();
            let corruptions: u64 = trial_rows.iter().map(|r| r.corruptions).sum();
            let cc: u64 = trial_rows.iter().map(|r| r.cc).sum();
            let rounds: u64 = trial_rows.iter().map(|r| r.rounds).sum();
            table.push_row(vec![
                label.to_string(),
                scheme.label(),
                decoded.to_string(),
                deg_fault.to_string(),
                deg_noise.to_string(),
                links_down.to_string(),
                crash_rounds.to_string(),
                resyncs.to_string(),
            ]);
            rows.push(json!({
                "fault": label, "scheme": scheme.label(),
                "trials": tier.churn_trials,
                "decoded": decoded,
                "degraded_fault": deg_fault,
                "degraded_noise": deg_noise,
                "links_downed": links_down,
                "crash_rounds": crash_rounds,
                "resync_rewinds": resyncs,
                "corruptions": corruptions,
                "cc": cc,
                "rounds": rounds,
            }));
        }
    }
    (table, rows)
}

/// Sweep 6 — adversary search: the evolutionary outer loop over
/// scripted-attack genomes, seeded from recordings of the leaderboard's
/// hand-built attacks and scored on instrumented damage per budget unit.
/// Every key is an outcome: the search derives entirely from the seed
/// and fans out through the service, whose rows are byte-identical for
/// every worker count and `SIM_THREADS` — so rows diff exactly.
fn search_sweep(tier: &Tier, seed: u64) -> (Table, Vec<Value>) {
    let cfg = if tier.full_search {
        bench::SearchConfig::full(seed)
    } else {
        bench::SearchConfig::quick(seed)
    };
    let reports = bench::run_search(&cfg);
    let mut table = Table::new(
        "Adversary search — evolved scripts vs. hand-built seed attacks",
        &[
            "attack",
            "metric",
            "hand",
            "best",
            "hand_corr",
            "best_steps",
            "evaluated",
            "matched",
        ],
    );
    let mut rows = Vec::new();
    for r in &reports {
        // The gen-0 seeding makes this structurally true; a failure here
        // means recording/replay parity broke, not that search got
        // unlucky.
        assert!(
            r.matched,
            "search fell below the hand-built {} on {}",
            r.name, r.metric
        );
        table.push_row(vec![
            r.name.clone(),
            r.metric.clone(),
            r.hand_metric.to_string(),
            r.best_metric.to_string(),
            r.hand_corruptions.to_string(),
            r.best_steps.to_string(),
            r.evaluated.to_string(),
            r.matched.to_string(),
        ]);
        rows.push(json!({
            "attack": r.name, "metric": r.metric,
            "hand_metric": r.hand_metric,
            "hand_corruptions": r.hand_corruptions,
            "best_metric": r.best_metric,
            "best_steps": r.best_steps,
            "best_fitness": r.best_fitness,
            "evaluated": r.evaluated,
            "matched": r.matched,
            "best_script": serde_json::to_value(&r.best_script).expect("script serializes"),
        }));
    }
    (table, rows)
}

fn run_tier(args: &Args) -> std::io::Result<()> {
    let tier = args.tier;
    let sha = git_short_sha();
    let t0 = Instant::now();
    println!("repro: tier={} sha={} seed={}", tier.name, sha, args.seed);
    let mut writer = RunWriter::create(Path::new(&args.out_root), tier.name, &sha)?;
    type Sweep = fn(&Tier, u64) -> (Table, Vec<Value>);
    let sweeps: [(&str, Sweep); 6] = [
        ("noise", noise_sweep),
        ("scaling", scaling_sweep),
        ("leaderboard", leaderboard_sweep),
        ("serve", serve_sweep),
        ("churn", churn_sweep),
        ("search", search_sweep),
    ];
    for (id, sweep) in sweeps {
        let t = Instant::now();
        let (table, rows) = sweep(tier, args.seed);
        println!("\n{}", table.to_markdown());
        println!("[{id}: {} row(s) in {:.1?}]", rows.len(), t.elapsed());
        writer.add_sweep(id, table, &rows)?;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let manifest = Manifest {
        tier: tier.name.into(),
        git_sha: sha,
        seed: args.seed,
        sim_threads: mpic::sim_threads_env().map(|t| t as u64),
        nproc: std::thread::available_parallelism()
            .map(|p| p.get() as u64)
            .unwrap_or(1),
        unix_time: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        wall_s,
        workspace_version: env!("CARGO_PKG_VERSION").into(),
        shims: shim_versions(),
        sweeps: writer.sweeps().to_vec(),
    };
    let dir = writer.finish(&manifest)?;
    println!("\nartifacts in {} ({wall_s:.1}s)", dir.display());
    if tier.name == "quick" && wall_s > 60.0 {
        eprintln!("warning: --quick took {wall_s:.0}s, over the 60 s CI budget");
    }
    Ok(())
}

/// The newest `quick-*` run directory under the out root (expectations
/// are quick-tier artifacts, so `diff`/`accept` default to it).
fn latest_quick_run(root: &str) -> PathBuf {
    let mut candidates: Vec<PathBuf> = std::fs::read_dir(root)
        .unwrap_or_else(|e| {
            eprintln!("no run directory {root}: {e}; run `repro run --quick` first");
            std::process::exit(2);
        })
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("quick-"))
        })
        .collect();
    candidates.sort_by_key(|p| {
        std::fs::metadata(p)
            .and_then(|m| m.modified())
            .unwrap_or(SystemTime::UNIX_EPOCH)
    });
    candidates.pop().unwrap_or_else(|| {
        eprintln!("no quick-* run under {root}; run `repro run --quick` first");
        std::process::exit(2);
    })
}

fn diff_mode(args: &Args) -> i32 {
    let fresh = args
        .fresh
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| latest_quick_run(&args.out_root));
    println!(
        "repro diff: {} vs expectations in {} (tolerance {}x on timing keys)",
        fresh.display(),
        args.expected,
        args.tolerance
    );
    match diff_dirs(Path::new(&args.expected), &fresh, args.tolerance) {
        Ok(report) => {
            for extra in &report.extra {
                println!("  new sweep {extra} (no expectation; informational)");
            }
            if report.drifts.is_empty() {
                println!(
                    "ok: {} file(s), {} row(s), outcome-exact, timings within tolerance",
                    report.files, report.rows
                );
                0
            } else {
                for d in &report.drifts {
                    eprintln!("DRIFT {d}");
                }
                eprintln!(
                    "{} drift(s) across {} file(s); if intentional, re-bless with `repro accept`",
                    report.drifts.len(),
                    report.files
                );
                1
            }
        }
        Err(e) => {
            eprintln!("repro diff: {e}");
            2
        }
    }
}

fn accept_mode(args: &Args) -> i32 {
    let fresh = args
        .fresh
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| latest_quick_run(&args.out_root));
    let expected = Path::new(&args.expected);
    std::fs::create_dir_all(expected).expect("cannot create expectation dir");
    let mut copied = 0usize;
    let mut files: Vec<PathBuf> = std::fs::read_dir(&fresh)
        .expect("cannot read fresh run dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    files.sort();
    for f in files {
        let name = f.file_name().expect("file entry has a name");
        std::fs::copy(&f, expected.join(name)).expect("copy expectation");
        copied += 1;
    }
    println!(
        "blessed {copied} sweep file(s) from {} into {}",
        fresh.display(),
        expected.display()
    );
    if copied == 0 {
        2
    } else {
        0
    }
}

fn main() {
    let args = parse_args();
    match args.mode.as_str() {
        "run" => run_tier(&args).unwrap_or_else(|e| {
            eprintln!("repro run failed: {e}");
            std::process::exit(1);
        }),
        "diff" => std::process::exit(diff_mode(&args)),
        "accept" => std::process::exit(accept_mode(&args)),
        _ => unreachable!("parse_args validates the mode"),
    }
}
