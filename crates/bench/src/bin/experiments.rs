//! Per-figure/table experiment generators — the deep-dive companion to
//! the tiered `repro` pipeline (see EXPERIMENTS.md for the claim →
//! invocation map).
//!
//! Usage: `cargo run --release -p bench --bin experiments -- [t1|f1|...|f9|large|adaptive|parallel|serve|churn|adversary-search|all] [--quick]`
//!
//! Each experiment prints a table to stdout and appends JSON rows to
//! `results/<id>.jsonl` (gitignored scratch, one file per subcommand).

use bench::{run_many, AttackSpec, Scheme, TopoSpec, WorkloadSpec};
use mpic::{RunOptions, SchemeConfig, Simulation};
use netsim::PhaseKind;
use serde_json::json;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    std::fs::create_dir_all("results").ok();
    let t0 = std::time::Instant::now();
    match which {
        "t1" => t1(quick),
        "f1" => f1(quick),
        "f2" => f2(quick),
        "f3" => f3(quick),
        "f4" => f4(quick),
        "f5" => f5(quick),
        "f6" => f6(),
        "f7" => f7(quick),
        "f8" => f8(quick),
        "f9" => f9(quick),
        "large" => large(quick),
        "adaptive" => adaptive(quick),
        "parallel" => parallel(quick),
        "serve" => serve_exp(quick),
        "churn" => churn(quick),
        "adversary-search" => adversary_search(quick),
        "all" => {
            t1(quick);
            f1(quick);
            f2(quick);
            f3(quick);
            f4(quick);
            f5(quick);
            f6();
            f7(quick);
            f8(quick);
            f9(quick);
            large(quick);
            adaptive(quick);
            parallel(quick);
            serve_exp(quick);
            churn(quick);
            adversary_search(quick);
        }
        other => {
            eprintln!(
                "unknown experiment {other}; use t1|f1..f9|large|adaptive|parallel|serve|churn|adversary-search|all [--quick]"
            );
            std::process::exit(2);
        }
    }
    eprintln!("[done in {:.1?}]", t0.elapsed());
}

fn emit(id: &str, row: serde_json::Value) {
    let path = format!("results/{id}.jsonl");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{row}");
    }
}

fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// T1 — Table 1 analog: rate and tolerated noise per scheme × topology.
fn t1(quick: bool) {
    header("T1", "Table 1 — scheme comparison: blow-up and resilience");
    let trials = if quick { 6 } else { 40 };
    let topologies = [
        TopoSpec::Line(6),
        TopoSpec::Star(6),
        TopoSpec::Clique(5),
        TopoSpec::Random(7, 11),
    ];
    let schemes = [
        Scheme::A,
        Scheme::B,
        Scheme::C,
        Scheme::NoCoding,
        Scheme::Repetition(5),
    ];
    println!(
        "{:<12} {:<10} {:>9} {:>8} {:>10} {:>9} {:>12}",
        "scheme", "topology", "blowup", "ok@0", "ok@.01/m", "ok@burst", "achieved_f"
    );
    for scheme in schemes {
        for topo in topologies {
            let w = WorkloadSpec::Gossip { topo, rounds: 8 };
            let m = topo.build(1).edge_count() as f64;
            let (clean, _) = run_many(w, scheme, AttackSpec::None, trials.min(6), 100);
            let frac = 0.01 / m;
            let (noisy, _) = run_many(w, scheme, AttackSpec::Iid { fraction: frac }, trials, 200);
            // A 12-round burst on one link inside the first simulated chunk:
            // the schemes detect and replay it; the baselines silently absorb
            // the damage.
            let burst = AttackSpec::Burst {
                link_index: 0,
                at_iteration: 0,
                len: 12,
            };
            let (bursty, _) = run_many(w, scheme, burst, trials.min(8), 250);
            println!(
                "{:<12} {:<10} {:>9.1} {:>8.2} {:>10.2} {:>9.2} {:>12.5}",
                scheme.label(),
                topo.label(),
                clean.mean_blowup,
                clean.success_rate,
                noisy.success_rate,
                bursty.success_rate,
                noisy.mean_noise_fraction,
            );
            emit(
                "t1",
                json!({"scheme": scheme.label(), "topo": topo.label(),
                       "blowup": clean.mean_blowup, "clean_ok": clean.success_rate,
                       "noisy_ok": noisy.success_rate, "burst_ok": bursty.success_rate,
                       "achieved_fraction": noisy.mean_noise_fraction}),
            );
        }
    }
}

/// Sweep helper: success rate vs noise fraction for one scheme.
fn sweep(
    id: &str,
    w: WorkloadSpec,
    scheme: Scheme,
    denom: f64,
    multipliers: &[f64],
    trials: usize,
) {
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>12}",
        "multiplier", "fraction", "ok", "blowup", "achieved_f"
    );
    for &c in multipliers {
        let fraction = c / denom;
        let attack = if c == 0.0 {
            AttackSpec::None
        } else {
            AttackSpec::Iid { fraction }
        };
        let (s, _) = run_many(w, scheme, attack, trials, (c * 1000.0) as u64 + 17);
        println!(
            "{:<12.3} {:>12.6} {:>10.2} {:>10.1} {:>12.6}",
            c, fraction, s.success_rate, s.mean_blowup, s.mean_noise_fraction
        );
        emit(
            id,
            json!({"scheme": scheme.label(), "multiplier": c, "fraction": fraction,
                   "success": s.success_rate, "blowup": s.mean_blowup,
                   "achieved_fraction": s.mean_noise_fraction}),
        );
    }
}

/// F1 — Theorem 1.1: Algorithm A success vs oblivious noise in units of 1/m.
fn f1(quick: bool) {
    header(
        "F1",
        "Thm 1.1 — Algorithm A vs oblivious noise (units of 1/m)",
    );
    let topo = TopoSpec::Ring(6);
    let m = topo.build(1).edge_count() as f64;
    let w = WorkloadSpec::Gossip { topo, rounds: 8 };
    let trials = if quick { 8 } else { 60 };
    sweep(
        "f1",
        w,
        Scheme::A,
        m,
        &[0.0, 0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.5],
        trials,
    );
}

/// F2 — Theorem 1.2: Algorithm B vs noise in units of 1/(m log m).
fn f2(quick: bool) {
    header(
        "F2",
        "Thm 1.2 — Algorithm B vs noise (units of 1/(m log m))",
    );
    let topo = TopoSpec::Ring(6);
    let g = topo.build(1);
    let m = g.edge_count() as f64;
    let denom = m * m.log2();
    let w = WorkloadSpec::Gossip { topo, rounds: 8 };
    let trials = if quick { 8 } else { 60 };
    sweep(
        "f2",
        w,
        Scheme::B,
        denom,
        &[0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5],
        trials,
    );
}

/// F3 — constant rate: blow-up vs network size.
fn f3(quick: bool) {
    header(
        "F3",
        "Constant rate — communication blow-up vs network size",
    );
    let trials = if quick { 4 } else { 24 };
    println!(
        "{:<10} {:>4} {:>4} {:>10} {:>14}",
        "topology", "n", "m", "blowup", "blowup@.01/m"
    );
    let sizes: &[usize] = if quick {
        &[4, 6, 8]
    } else {
        &[4, 6, 8, 10, 12, 16]
    };
    for &n in sizes {
        for topo in [
            TopoSpec::Line(n),
            TopoSpec::Ring(n),
            TopoSpec::Clique(n.min(8)),
        ] {
            let g = topo.build(1);
            let m = g.edge_count() as f64;
            let w = WorkloadSpec::Gossip { topo, rounds: 8 };
            let (clean, _) = run_many(w, Scheme::A, AttackSpec::None, trials.min(4), 300);
            let (noisy, _) = run_many(
                w,
                Scheme::A,
                AttackSpec::Iid { fraction: 0.01 / m },
                trials,
                400,
            );
            println!(
                "{:<10} {:>4} {:>4} {:>10.1} {:>14.1}",
                topo.label(),
                g.node_count(),
                g.edge_count(),
                clean.mean_blowup,
                noisy.mean_blowup
            );
            emit(
                "f3",
                json!({"topo": topo.label(), "n": g.node_count(), "m": g.edge_count(),
                       "blowup_clean": clean.mean_blowup, "blowup_noisy": noisy.mean_blowup,
                       "noisy_success": noisy.success_rate}),
            );
        }
    }
}

/// F4 — §1.2 line example: one early error, with/without coordination.
///
/// Metrics (per variant, from the iteration trace):
/// * `done@` — first iteration at which the whole network has correctly
///   simulated all real chunks (`G* ≥ |Π|`), or "never";
/// * `stalled_cc` — bits spent in iterations (up to completion) where `G*`
///   made no progress: the "wasted communication" of §1.2. Without flag
///   passing, stalled iterations still burn full chunks; without the
///   rewind phase, the ⊥-induced length gaps never close and the run
///   deadlocks (the paper's reason for having the phase at all).
fn f4(quick: bool) {
    header(
        "F4",
        "§1.2 ablation — one early error on the line: repair speed and stalled bits",
    );
    let sizes: &[usize] = if quick {
        &[4, 6, 8]
    } else {
        &[4, 6, 8, 10, 12, 16]
    };
    println!(
        "{:<4} {:<10} {:>6} {:>8} {:>12} {:>9}",
        "n", "variant", "ok", "done@", "stalled_cc", "clean@"
    );
    for &n in sizes {
        for (name, no_fp, no_rw) in [
            ("full", false, false),
            ("no_flag", true, false),
            ("no_rewind", false, true),
            ("neither", true, true),
        ] {
            let w = protocol::workloads::LinePipeline::new(n, 3, 99);
            let mut cfg = SchemeConfig::algorithm_a(protocol::Workload::graph(&w), 5);
            cfg.disable_flag_passing = no_fp;
            cfg.disable_rewind = no_rw;
            let sim = Simulation::new(&w, cfg, 1);
            let real = sim.proto().real_chunks();
            let opts = RunOptions {
                record_trace: true,
                ..Default::default()
            };
            let clean = sim.run(Box::new(netsim::attacks::NoNoise), opts);
            let geo = sim.geometry();
            let round = geo.phase_start(0, PhaseKind::Simulation) + 2;
            let atk = netsim::attacks::SingleError::new(
                protocol::Workload::graph(&w),
                netgraph::DirectedLink { from: 0, to: 1 },
                round,
            );
            let noisy = sim.run(Box::new(atk), opts);
            let (done, stalled) = trace_metrics(&noisy.instrumentation.samples, real);
            let (clean_done, _) = trace_metrics(&clean.instrumentation.samples, real);
            let done_s = done.map_or("never".into(), |d| d.to_string());
            println!(
                "{:<4} {:<10} {:>6} {:>8} {:>12} {:>9}",
                n,
                name,
                noisy.success,
                done_s,
                stalled,
                clean_done.map_or("never".into(), |d| d.to_string()),
            );
            emit(
                "f4",
                json!({"n": n, "variant": name, "success": noisy.success,
                       "done_at": done, "stalled_cc": stalled,
                       "clean_done_at": clean_done,
                       "noisy_cc": noisy.stats.cc, "clean_cc": clean.stats.cc}),
            );
        }
    }
}

/// (first iteration with G* ≥ real, bits spent in non-progressing
/// iterations up to that point — or up to the end if never done).
fn trace_metrics(samples: &[mpic::IterationSample], real: usize) -> (Option<u64>, u64) {
    let mut done = None;
    let mut stalled = 0u64;
    let mut prev_g = 0usize;
    let mut prev_cc = 0u64;
    for s in samples {
        if done.is_none() {
            if s.g_star <= prev_g {
                stalled += s.cc - prev_cc;
            }
            if s.g_star >= real {
                done = Some(s.iteration);
            }
        }
        prev_g = s.g_star;
        prev_cc = s.cc;
    }
    (done, stalled)
}

/// F5 — §6.1: the seed-aware attack vs hash length.
fn f5(quick: bool) {
    header(
        "F5",
        "§6.1 — seed-aware non-oblivious attack vs hash length τ",
    );
    let trials = if quick { 4 } else { 24 };
    let sizes: &[usize] = if quick { &[5, 7] } else { &[5, 6, 7, 8, 9] };
    println!(
        "{:<10} {:>4} {:>14} {:>10} {:>12} {:>12}",
        "topology", "m", "scheme", "ok", "collisions", "corruptions"
    );
    for &n in sizes {
        let topo = TopoSpec::Clique(n);
        let m = topo.build(1).edge_count();
        let w = WorkloadSpec::Gossip { topo, rounds: 6 };
        let tau_b = (3.0 * (m as f64).log2()).ceil() as u32;
        for scheme in [
            Scheme::AWithHash(4),
            Scheme::AWithHash(8),
            Scheme::AWithHash(tau_b),
        ] {
            let (s, rows) = run_many(
                w,
                scheme,
                AttackSpec::SeedAware { per_iteration: 1 },
                trials,
                500,
            );
            let mean_corr: f64 =
                rows.iter().map(|r| r.corruptions as f64).sum::<f64>() / rows.len() as f64;
            println!(
                "{:<10} {:>4} {:>14} {:>10.2} {:>12.1} {:>12.1}",
                topo.label(),
                m,
                scheme.label(),
                s.success_rate,
                s.mean_collisions,
                mean_corr
            );
            emit(
                "f5",
                json!({"topo": topo.label(), "m": m, "scheme": scheme.label(),
                       "success": s.success_rate, "collisions": s.mean_collisions,
                       "corruptions": mean_corr}),
            );
        }
    }
}

/// F6 — potential dynamics around an error burst.
fn f6() {
    header("F6", "Potential dynamics — G*, B*, φ̂ around an error burst");
    let w = protocol::workloads::Gossip::new(netgraph::topology::ring(5), 8, 3);
    let cfg = SchemeConfig::algorithm_a(protocol::Workload::graph(&w), 5);
    let sim = Simulation::new(&w, cfg, 4);
    let geo = sim.geometry();
    let start = geo.phase_start(3, PhaseKind::Simulation);
    let atk = netsim::attacks::BurstLink::new(
        protocol::Workload::graph(&w),
        netgraph::DirectedLink { from: 1, to: 2 },
        start,
        10,
    );
    let out = sim.run(
        Box::new(atk),
        RunOptions {
            record_trace: true,
            ..Default::default()
        },
    );
    println!(
        "{:<6} {:>6} {:>6} {:>6} {:>8} {:>12}",
        "iter", "G*", "H*", "B*", "EHC", "phi_hat"
    );
    for s in &out.instrumentation.samples {
        println!(
            "{:<6} {:>6} {:>6} {:>6} {:>8} {:>12.0}",
            s.iteration, s.g_star, s.h_star, s.b_star, s.ehc, s.potential_proxy
        );
        emit("f6", serde_json::to_value(s).unwrap());
    }
    println!(
        "burst at iteration 3; success = {}, collisions = {}",
        out.success, out.instrumentation.hash_collisions
    );
}

/// F7 — §5: uniform CRS vs exchanged δ-biased randomness.
fn f7(quick: bool) {
    header(
        "F7",
        "§5 — CRS vs exchanged seeds (PRG and AGHP δ-biased expansion)",
    );
    let trials = if quick { 4 } else { 24 };
    let w = protocol::workloads::TokenRing::new(4, 4, 3);
    let g = protocol::Workload::graph(&w).clone();
    let m = g.edge_count() as f64;
    let variants: Vec<(&str, SchemeConfig)> = vec![
        ("crs", SchemeConfig::algorithm_a(&g, 77)),
        ("exch_prg", {
            let mut c = SchemeConfig::algorithm_b(&g, 6);
            c.k_param = g.edge_count(); // isolate the randomness variable
            c.hash_bits = 8;
            c
        }),
        ("exch_aghp", {
            let mut c = SchemeConfig::algorithm_b(&g, 6);
            c.k_param = g.edge_count();
            c.hash_bits = 8;
            if let mpic::RandomnessMode::Exchanged { expansion, .. } = &mut c.randomness {
                *expansion = mpic::SeedExpansion::Aghp;
            }
            c
        }),
    ];
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>12}",
        "variant", "ok", "blowup", "collisions", "achieved_f"
    );
    for (name, cfg) in variants {
        let mut ok = 0usize;
        let mut blow = 0.0;
        let mut coll = 0.0;
        let mut frac = 0.0;
        for t in 0..trials {
            let sim = Simulation::new(&w, cfg.clone(), 1000 + t as u64);
            let geo = sim.geometry();
            let predicted = sim.predicted_cc();
            let rounds = geo.setup + sim.iterations() as u64 * geo.iteration_rounds();
            let attack = AttackSpec::Iid { fraction: 0.01 / m };
            let adv = attack.build(&g, geo, predicted, rounds, 2000 + t as u64);
            let out = sim.run(
                adv,
                RunOptions {
                    noise_budget: (0.02 / m * predicted as f64) as u64,
                    ..Default::default()
                },
            );
            ok += usize::from(out.success);
            blow += out.blowup;
            coll += out.instrumentation.hash_collisions as f64;
            frac += out.stats.noise_fraction();
        }
        let t = trials as f64;
        println!(
            "{:<10} {:>8.2} {:>10.1} {:>12.1} {:>12.6}",
            name,
            ok as f64 / t,
            blow / t,
            coll / t,
            frac / t
        );
        emit(
            "f7",
            json!({"variant": name, "success": ok as f64 / t, "blowup": blow / t,
                   "collisions": coll / t, "achieved_fraction": frac / t}),
        );
    }
    // Exchange-targeted attack: show the cost of killing a seed exchange.
    let mut cfg = SchemeConfig::algorithm_b(&g, 6);
    cfg.k_param = g.edge_count();
    cfg.hash_bits = 8;
    let sim = Simulation::new(&w, cfg, 9);
    let geo = sim.geometry();
    let adv = AttackSpec::Phase {
        phase: PhaseKind::Setup,
        prob: 0.25,
    }
    .build(&g, geo, sim.predicted_cc(), 0, 5);
    let out = sim.run(adv, RunOptions::default());
    println!(
        "setup-targeted attack: success={} corruptions={} fraction={:.4} (cost of killing the exchange)",
        out.success,
        out.stats.corruptions,
        out.stats.noise_fraction()
    );
    emit(
        "f7",
        json!({"variant": "setup_attack", "success": out.success,
               "corruptions": out.stats.corruptions,
               "achieved_fraction": out.stats.noise_fraction()}),
    );
}

/// F8 — Appendix B: Algorithm C vs noise in units of 1/(m log log m),
/// including the seed-aware attack it is supposed to blunt.
fn f8(quick: bool) {
    header(
        "F8",
        "Appendix B — Algorithm C (hidden CRS, non-oblivious noise)",
    );
    let topo = TopoSpec::Ring(6);
    let g = topo.build(1);
    let m = g.edge_count() as f64;
    let denom = m * m.log2().log2().max(1.0);
    let w = WorkloadSpec::Gossip { topo, rounds: 8 };
    let trials = if quick { 8 } else { 48 };
    sweep(
        "f8",
        w,
        Scheme::C,
        denom,
        &[0.0, 0.01, 0.02, 0.05, 0.1, 0.2],
        trials,
    );
    // The seed-aware oracle is blind without the CRS:
    let (s, _) = run_many(
        w,
        Scheme::C,
        AttackSpec::SeedAware { per_iteration: 1 },
        trials,
        900,
    );
    println!(
        "seed-aware vs hidden CRS: success={:.2} collisions={:.1} (oracle starved)",
        s.success_rate, s.mean_collisions
    );
    emit(
        "f8",
        json!({"scheme": "alg_c", "attack": "seed_aware", "success": s.success_rate,
               "collisions": s.mean_collisions}),
    );
}

/// F9 — round blow-up vs protocol sparsity (the non-fully-utilized cost).
fn f9(quick: bool) {
    header("F9", "Round blow-up vs protocol sparsity");
    let trials = if quick { 3 } else { 12 };
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "workload", "cc(Pi)", "rc(Pi)", "rounds(sim)", "round_blowup"
    );
    for (w, rc) in [
        (WorkloadSpec::TokenRing { n: 6, laps: 5 }, 30u64),
        (
            WorkloadSpec::Gossip {
                topo: TopoSpec::Ring(6),
                rounds: 30,
            },
            30u64,
        ),
    ] {
        let (s, rows) = run_many(w, Scheme::A, AttackSpec::None, trials, 700);
        let payload = rows[0].payload_cc;
        println!(
            "{:<14} {:>10} {:>12} {:>12.0} {:>12.1}",
            w.label(),
            payload,
            rc,
            s.mean_rounds,
            s.mean_rounds / rc as f64
        );
        emit(
            "f9",
            json!({"workload": w.label(), "payload_cc": payload, "rc_pi": rc,
                   "rounds_sim": s.mean_rounds, "round_blowup": s.mean_rounds / rc as f64,
                   "cc_blowup": s.mean_blowup}),
        );
    }
}

/// LARGE — large-topology throughput: noiseless and lightly noisy runs on
/// the ROADMAP's n ≥ 128 targets (ring(256), grid(16×16)), exercising the
/// word-batched wire path end to end at scale.
fn large(quick: bool) {
    header(
        "LARGE",
        "Large topologies — batched wire rounds at n >= 128",
    );
    let trials = if quick { 2 } else { 10 };
    println!(
        "{:<10} {:>4} {:>4} {:>8} {:>10} {:>12}",
        "topology", "n", "m", "ok@0", "blowup", "ok@.002/m"
    );
    let topologies: &[TopoSpec] = if quick {
        &[TopoSpec::Ring(256), TopoSpec::Grid(16, 16)]
    } else {
        &[
            TopoSpec::Ring(128),
            TopoSpec::Ring(256),
            TopoSpec::Grid(16, 16),
            TopoSpec::Line(256),
        ]
    };
    for &topo in topologies {
        let g = topo.build(1);
        let m = g.edge_count() as f64;
        let w = WorkloadSpec::Gossip { topo, rounds: 2 };
        let (clean, _) = run_many(w, Scheme::A, AttackSpec::None, trials, 900);
        let (noisy, _) = run_many(
            w,
            Scheme::A,
            AttackSpec::Iid {
                fraction: 0.002 / m,
            },
            trials,
            950,
        );
        println!(
            "{:<10} {:>4} {:>4} {:>8.2} {:>10.1} {:>12.2}",
            topo.label(),
            g.node_count(),
            g.edge_count(),
            clean.success_rate,
            clean.mean_blowup,
            noisy.success_rate,
        );
        emit(
            "large",
            json!({"topology": topo.label(), "n": g.node_count(), "m": g.edge_count(),
                   "ok_clean": clean.success_rate, "blowup": clean.mean_blowup,
                   "ok_noisy": noisy.success_rate}),
        );
    }
}

/// ADAPTIVE — phase-aware adaptive attacks (PR 5) vs their closest
/// oblivious counterparts, at equal corruption budgets: detection-latency
/// and stall metrics from the instrumentation counters.
fn adaptive(quick: bool) {
    use netsim::attacks::{
        BurstLink, CrossIterationHunter, FlagFlipper, IidNoise, MeetingPointSplitter, Pair,
        PhaseTargeted, RewindSuppressor,
    };
    use netsim::Adversary;

    header(
        "ADAPTIVE",
        "Phase-aware adaptive attacks vs oblivious counterparts (equal budgets)",
    );

    let w = protocol::workloads::Gossip::new(netgraph::topology::ring(5), 6, 17);
    let g = protocol::Workload::graph(&w).clone();
    let cfg = SchemeConfig::algorithm_a(&g, 23);
    let sim = Simulation::new(&w, cfg.clone(), 1);
    let geo = sim.geometry();
    let start = geo.phase_start(1, PhaseKind::Simulation);
    let burst = |g: &netgraph::Graph| -> Box<dyn Adversary> {
        Box::new(BurstLink::new(
            g,
            netgraph::DirectedLink { from: 1, to: 2 },
            start,
            8,
        ))
    };

    println!(
        "{:<24} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9} {:>6}",
        "attack", "budget", "corr", "coll", "mp_trunc", "stalled", "rw_trunc", "ok"
    );
    let rows: Vec<(&str, Box<dyn Adversary>, u64)> = vec![
        (
            "mp_splitter",
            Box::new(MeetingPointSplitter::new(&g, cfg.hash_bits, 2)),
            40,
        ),
        (
            "  vs phase_mp",
            Box::new(PhaseTargeted::new(
                &g,
                geo,
                PhaseKind::MeetingPoints,
                0.02,
                7,
            )),
            40,
        ),
        ("flag_flipper", Box::new(FlagFlipper::new(&g, 1)), 6),
        (
            "  vs phase_fp",
            Box::new(PhaseTargeted::new(&g, geo, PhaseKind::FlagPassing, 0.05, 7)),
            6,
        ),
        (
            "burst+rw_suppressor",
            Box::new(Pair(burst(&g), Box::new(RewindSuppressor::new(&g, 4)))),
            11,
        ),
        (
            "  vs burst+phase_rw",
            Box::new(Pair(
                burst(&g),
                Box::new(PhaseTargeted::new(&g, geo, PhaseKind::Rewind, 0.02, 7)),
            )),
            11,
        ),
        ("  vs burst alone", burst(&g), 11),
    ];
    let show = |label: &str, out: &mpic::SimOutcome, budget: u64| {
        let b = if budget == u64::MAX {
            "inf".into()
        } else {
            budget.to_string()
        };
        println!(
            "{:<24} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9} {:>6}",
            label,
            b,
            out.stats.corruptions,
            out.instrumentation.hash_collisions,
            out.instrumentation.mp_truncations,
            out.instrumentation.stalled_iterations,
            out.instrumentation.rewind_truncations,
            out.success,
        );
        emit(
            "adaptive",
            json!({"attack": label.trim(), "budget": budget,
                   "corruptions": out.stats.corruptions,
                   "collisions": out.instrumentation.hash_collisions,
                   "mp_truncations": out.instrumentation.mp_truncations,
                   "stalled_iterations": out.instrumentation.stalled_iterations,
                   "rewind_truncations": out.instrumentation.rewind_truncations,
                   "success": out.success}),
        );
    };
    for (label, adv, budget) in rows {
        let out = sim.run(
            adv,
            RunOptions {
                noise_budget: budget,
                record_trace: false,
                expose_view: true,
            },
        );
        show(label, &out, budget);
    }

    // The cross-iteration hunter against its §6.1 prey (τ = 4) and
    // against τ = Θ(log m).
    let wc = protocol::workloads::Gossip::new(netgraph::topology::clique(6), 6, 51);
    let gc = protocol::Workload::graph(&wc).clone();
    let mut weak = SchemeConfig::algorithm_a(&gc, 61);
    weak.hash_bits = 4;
    let simc = Simulation::new(&wc, weak, 6);
    let out = simc.run(
        Box::new(CrossIterationHunter::new(gc.edge_count(), 1, 8)),
        RunOptions::default(),
    );
    show("hunter tau4", &out, u64::MAX);
    let out = simc.run(
        Box::new(IidNoise::new(&gc, 0.001, 3)),
        RunOptions::default(),
    );
    show("  vs iid tau4", &out, u64::MAX);
    if !quick {
        let mut strong = SchemeConfig::algorithm_a(&gc, 61);
        strong.hash_bits = (3.0 * (gc.edge_count() as f64).log2()).ceil() as u32;
        let sims = Simulation::new(&wc, strong, 6);
        let out = sims.run(
            Box::new(CrossIterationHunter::new(gc.edge_count(), 1, 8)),
            RunOptions::default(),
        );
        show("hunter tau_strong", &out, u64::MAX);
    }
}

/// PARALLEL — intra-trial parallel speedup: serial vs `Threads(n)`
/// wall-clock on the ISSUE's large targets (ring(1024), ring(4096),
/// grid(64×64); smaller stand-ins under `--quick`), asserting along the
/// way that the threaded outcomes stay byte-identical to serial. Rows
/// land in `results/parallel.jsonl`; the committed `BENCH_par.json`
/// baseline is produced by the criterion-shim benches, this subcommand
/// is the human-readable end-to-end view.
fn parallel(quick: bool) {
    use mpic::{Parallelism, RunScratch};
    use netsim::attacks::NoNoise;

    header(
        "PARALLEL",
        "Intra-trial parallelism — serial vs threaded wall-clock (identical outcomes)",
    );
    let budget = mpic::sim_threads_env().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    });
    let mut counts: Vec<usize> = vec![2, 4, budget];
    counts.sort_unstable();
    counts.dedup();
    counts.retain(|&t| t > 1);
    let topologies: Vec<(&str, netgraph::Graph)> = if quick {
        vec![
            ("ring(512)", netgraph::topology::ring(512)),
            ("grid(16x16)", netgraph::topology::grid(16, 16)),
        ]
    } else {
        vec![
            ("ring(1024)", netgraph::topology::ring(1024)),
            ("ring(4096)", netgraph::topology::ring(4096)),
            ("grid(64x64)", netgraph::topology::grid(64, 64)),
        ]
    };
    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>8}",
        "topology", "threads", "serial", "parallel", "speedup"
    );
    for (label, g) in &topologies {
        let w = protocol::workloads::Gossip::new(g.clone(), 2, 41);
        let base = SchemeConfig::algorithm_a(protocol::Workload::graph(&w), 7);
        let mut scratch = RunScratch::new();
        // One warm-up run per configuration fills the scratch arena, so the
        // timed run below measures the engine, not the first allocation.
        let timed = |par: Parallelism, scratch: &mut RunScratch| {
            let mut cfg = base.clone();
            cfg.parallelism = par;
            let sim = Simulation::new(&w, cfg, 1);
            sim.run_with_scratch(Box::new(NoNoise), RunOptions::default(), scratch);
            let t = std::time::Instant::now();
            let out = sim.run_with_scratch(Box::new(NoNoise), RunOptions::default(), scratch);
            (t.elapsed(), out)
        };
        let (serial_t, serial_out) = timed(Parallelism::Serial, &mut scratch);
        for &t in &counts {
            let (par_t, par_out) = timed(Parallelism::Threads(t), &mut scratch);
            assert_eq!(serial_out.stats, par_out.stats, "{label}: outcome diverged");
            assert_eq!(serial_out.success, par_out.success, "{label}");
            assert_eq!(serial_out.iterations, par_out.iterations, "{label}");
            assert_eq!(serial_out.payload_cc, par_out.payload_cc, "{label}");
            let speedup = serial_t.as_secs_f64() / par_t.as_secs_f64().max(f64::MIN_POSITIVE);
            println!(
                "{label:<12} {t:>7} {:>12.2?} {:>12.2?} {speedup:>7.2}x",
                serial_t, par_t
            );
            emit(
                "parallel",
                json!({"topology": label, "threads": t,
                       "serial_ns": serial_t.as_nanos() as u64,
                       "parallel_ns": par_t.as_nanos() as u64,
                       "speedup": speedup, "success": par_out.success}),
            );
        }
    }
}

/// SERVE — the simulation service end to end: a request batch through
/// `SimService` (priorities, shared artifact cache, per-request
/// queue/exec timings), with every row asserted byte-identical to a
/// direct `run_trial` on the same seed. Rows land in
/// `results/serve.jsonl`; the open-loop load numbers live in
/// `BENCH_serve.json` (see the `bencher` bin).
fn serve_exp(quick: bool) {
    use bench::{derive_trial_seed, run_trial, FaultSpec, SimRequest};
    use serve::{Priority, ServiceConfig};

    header(
        "SERVE",
        "Simulation-as-a-service — batch through SimService, identity vs run_trial",
    );
    let requests = if quick { 24 } else { 120 };
    let svc = bench::sim_service(ServiceConfig {
        queue_capacity: requests,
        ..ServiceConfig::default()
    });
    let specs: Vec<(&str, WorkloadSpec, Scheme, AttackSpec)> = vec![
        (
            "ring4/A/none",
            WorkloadSpec::Gossip {
                topo: TopoSpec::Ring(4),
                rounds: 5,
            },
            Scheme::A,
            AttackSpec::None,
        ),
        (
            "token4/A/iid",
            WorkloadSpec::TokenRing { n: 4, laps: 2 },
            Scheme::A,
            AttackSpec::Iid { fraction: 0.002 },
        ),
        (
            "ring4/B/none",
            WorkloadSpec::Gossip {
                topo: TopoSpec::Ring(4),
                rounds: 5,
            },
            Scheme::B,
            AttackSpec::None,
        ),
    ];
    let t0 = std::time::Instant::now();
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            let (_, workload, scheme, ref attack) = specs[i % specs.len()];
            let attack = attack.clone();
            let pri = if i % 10 == 9 {
                Priority::High
            } else {
                Priority::Normal
            };
            let req = SimRequest {
                workload,
                scheme,
                attack,
                fault: FaultSpec::None,
                seed: derive_trial_seed(777, i),
            };
            (
                req.clone(),
                svc.submit(req, pri).expect("service accepting"),
            )
        })
        .collect();
    let mut queue_ns = 0u64;
    let mut exec_ns = 0u64;
    for (req, t) in tickets {
        let resp = t.wait().expect("reply lost");
        queue_ns += resp.queue_ns;
        exec_ns += resp.exec_ns;
        let row = resp.outcome.done().expect("no cancellations here");
        let direct = run_trial(req.workload, req.scheme, req.attack.clone(), req.seed);
        assert_eq!(row, direct, "service diverged from run_trial on {req:?}");
    }
    let wall = t0.elapsed();
    let stats = svc.shutdown();
    println!(
        "{requests} requests in {wall:.2?}: served {}, cache {} hits / {} misses ({} entries), queue highwater {}",
        stats.served, stats.cache_hits, stats.cache_misses, stats.cache_entries, stats.queue_depth_highwater
    );
    println!(
        "mean queue {:.1}us, mean exec {:.1}us — every row byte-identical to run_trial",
        queue_ns as f64 / requests as f64 / 1e3,
        exec_ns as f64 / requests as f64 / 1e3,
    );
    assert_eq!(stats.served, requests as u64);
    emit(
        "serve",
        json!({"requests": requests,
               "wall_ns": wall.as_nanos() as u64,
               "served": stats.served,
               "cache_hits": stats.cache_hits,
               "cache_misses": stats.cache_misses,
               "queue_depth_highwater": stats.queue_depth_highwater,
               "identity_ok": true}),
    );
}

/// CHURN — robustness under injected wire faults: a grid of fault
/// schedules (link churn, party crashes, burst outages) × schemes, every
/// run ending in an **explicit** verdict. The table reports the decoded
/// fraction, how much of the failure mass is blamed on fault churn, and
/// the fault/resync counters; rows land in `results/churn.jsonl`.
fn churn(quick: bool) {
    use bench::{run_many_faulted, FaultSpec};

    header(
        "CHURN",
        "Fault injection — decode-or-degrade under link/party churn",
    );
    let trials = if quick { 8 } else { 48 };
    let faults: [(&str, FaultSpec); 5] = [
        ("none", FaultSpec::None),
        (
            "churn-lo",
            FaultSpec::Churn {
                link_rate: 0.15,
                crash_rate: 0.0,
                outage_frac: 0.04,
            },
        ),
        (
            "churn-hi",
            FaultSpec::Churn {
                link_rate: 0.5,
                crash_rate: 0.25,
                outage_frac: 0.08,
            },
        ),
        (
            "crash",
            FaultSpec::Churn {
                link_rate: 0.0,
                crash_rate: 0.5,
                outage_frac: 0.1,
            },
        ),
        (
            "outage",
            FaultSpec::Burst {
                start_frac: 0.3,
                len_frac: 0.1,
                fraction: 0.5,
            },
        ),
    ];
    let w = WorkloadSpec::Gossip {
        topo: TopoSpec::Ring(5),
        rounds: 6,
    };
    println!(
        "{:<10} {:<8} {:>8} {:>9} {:>9} {:>11} {:>12} {:>13}",
        "fault",
        "scheme",
        "decoded",
        "deg:fault",
        "deg:noise",
        "links_down",
        "crash_rounds",
        "resync_rewinds"
    );
    for (label, fault) in faults {
        for scheme in [Scheme::A, Scheme::B] {
            let attack = AttackSpec::Iid { fraction: 0.001 };
            let (summary, rows) = run_many_faulted(w, scheme, attack, fault, trials, 4242);
            let decoded = rows.iter().filter(|r| r.degraded == 0).count();
            let deg_fault = rows.iter().filter(|r| r.degraded == 2).count();
            let deg_noise = rows.iter().filter(|r| r.degraded == 1).count();
            // Explicit degradation semantics: the three verdict buckets
            // partition the population, and success ⇔ decoded.
            assert_eq!(decoded + deg_fault + deg_noise, rows.len());
            assert_eq!(decoded, rows.iter().filter(|r| r.success).count());
            let links_down: u64 = rows.iter().map(|r| r.links_downed).sum();
            let crash_rounds: u64 = rows.iter().map(|r| r.crash_rounds).sum();
            let resyncs: u64 = rows.iter().map(|r| r.resync_rewinds).sum();
            println!(
                "{:<10} {:<8} {:>7.0}% {:>9} {:>9} {:>11} {:>12} {:>13}",
                label,
                format!("{scheme:?}"),
                100.0 * decoded as f64 / rows.len() as f64,
                deg_fault,
                deg_noise,
                links_down,
                crash_rounds,
                resyncs,
            );
            emit(
                "churn",
                json!({"fault": label, "scheme": format!("{scheme:?}"),
                       "trials": trials,
                       "decoded": decoded,
                       "degraded_fault": deg_fault,
                       "degraded_noise": deg_noise,
                       "links_downed": links_down,
                       "crash_rounds": crash_rounds,
                       "resync_rewinds": resyncs,
                       "mean_blowup": summary.mean_blowup,
                       "mean_rounds": summary.mean_rounds}),
            );
        }
    }
}

/// Adversary search — evolve corruption scripts against the four
/// hand-built leaderboard attacks and verify each is matched or beaten
/// on its own instrumented metric at equal budget. Exits nonzero on a
/// shortfall, so CI's `adversary-search-smoke` step can gate on it.
fn adversary_search(quick: bool) {
    header(
        "SEARCH",
        "Adversary search — evolved scripts vs. hand-built attacks",
    );
    let cfg = if quick {
        bench::SearchConfig::quick(4242)
    } else {
        bench::SearchConfig::full(4242)
    };
    let reports = bench::run_search(&cfg);
    println!(
        "{:<22} {:<20} {:>6} {:>6} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "attack", "metric", "hand", "best", "h_steps", "b_steps", "fitness", "evaluated", "matched"
    );
    let mut all_matched = true;
    for r in &reports {
        all_matched &= r.matched;
        println!(
            "{:<22} {:<20} {:>6} {:>6} {:>7} {:>7} {:>9.3} {:>9} {:>8}",
            r.name,
            r.metric,
            r.hand_metric,
            r.best_metric,
            r.hand_corruptions,
            r.best_steps,
            r.best_fitness,
            r.evaluated,
            r.matched,
        );
        emit(
            "adversary_search",
            serde_json::to_value(r).expect("report serializes"),
        );
    }
    assert!(
        all_matched,
        "adversary search fell below a hand-built seed attack"
    );
    println!("every hand-built attack matched or beaten at equal budget");
}
