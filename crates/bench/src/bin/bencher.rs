//! Open-loop load driver for the `serve` crate's [`serve::SimService`].
//!
//! Submits [`bench::SimRequest`]s at a configured arrival rate (open loop: the
//! schedule `t_i = i / rate` does not wait for replies, so queueing delay
//! shows up in the measured latency instead of silently throttling the
//! offered load), records end-to-end / queue / execution latency in
//! HDR-style histograms, and prints p50/p90/p99/max plus throughput.
//! Machine-readable rows append to `BENCH_serve.json` (JSONL).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin bencher -- \
//!     [--rate R] [--requests N] [--workers W] [--mix small|schemes|mixed]
//!     [--backpressure block|reject] [--seed S] [--out PATH]
//!     [--compare-raw] [--quick]
//! ```
//!
//! `--quick` runs a small smoke load and **exits nonzero** unless
//! throughput is nonzero and no request failed (rejected, cancelled, or
//! lost) — CI's `serve-smoke` step relies on this self-gating.
//!
//! `--compare-raw` additionally runs the same trial population
//! closed-loop through the service and through `run_many`, asserts the
//! result rows are byte-identical, and reports the wall-clock ratio.
//! Numbers from the single-core CI container are a floor, not a ceiling.

use bench::{
    derive_trial_seed, run_many, sim_service, AttackSpec, FaultSpec, Scheme, SimRequest, TopoSpec,
    TrialResult, WorkloadSpec,
};
use serde_json::json;
use serve::{Backpressure, LatencyHistogram, Priority, ServiceConfig, SubmitError, Ticket};
use std::io::Write as _;
use std::time::{Duration, Instant};

struct Args {
    rate: f64,
    requests: usize,
    workers: usize,
    mix: String,
    reject: bool,
    seed: u64,
    out: String,
    compare_raw: bool,
    quick: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        rate: 200.0,
        requests: 400,
        workers: 0,
        mix: "mixed".into(),
        reject: false,
        seed: 42,
        out: "BENCH_serve.json".into(),
        compare_raw: false,
        quick: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value after {}", argv[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--rate" => a.rate = value(&mut i).parse().expect("--rate wants a number"),
            "--requests" => a.requests = value(&mut i).parse().expect("--requests wants a count"),
            "--workers" => a.workers = value(&mut i).parse().expect("--workers wants a count"),
            "--mix" => a.mix = value(&mut i),
            "--backpressure" => {
                a.reject = match value(&mut i).as_str() {
                    "reject" => true,
                    "block" => false,
                    other => {
                        eprintln!("unknown backpressure {other}; use block|reject");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => a.seed = value(&mut i).parse().expect("--seed wants a u64"),
            "--out" => a.out = value(&mut i),
            "--compare-raw" => a.compare_raw = true,
            "--quick" => a.quick = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if a.quick {
        a.requests = a.requests.min(80);
        a.rate = a.rate.min(400.0);
    }
    a
}

/// The request population of a mix: small workloads so a load test
/// measures the service, not one giant simulation. Every 8th request in
/// `mixed` rides the high-priority lane.
fn mix_requests(mix: &str, n: usize, base_seed: u64) -> Vec<(SimRequest, Priority)> {
    let ring = WorkloadSpec::Gossip {
        topo: TopoSpec::Ring(4),
        rounds: 5,
    };
    let token = WorkloadSpec::TokenRing { n: 4, laps: 2 };
    let rotation: Vec<(WorkloadSpec, Scheme, AttackSpec)> = match mix {
        "small" => vec![(token, Scheme::A, AttackSpec::None)],
        "schemes" => vec![
            (ring, Scheme::A, AttackSpec::None),
            (ring, Scheme::B, AttackSpec::None),
            (ring, Scheme::C, AttackSpec::None),
        ],
        "mixed" => vec![
            (ring, Scheme::A, AttackSpec::None),
            (token, Scheme::A, AttackSpec::Iid { fraction: 0.002 }),
            (ring, Scheme::B, AttackSpec::None),
            (token, Scheme::C, AttackSpec::None),
            (ring, Scheme::NoCoding, AttackSpec::None),
        ],
        other => {
            eprintln!("unknown mix {other}; use small|schemes|mixed");
            std::process::exit(2);
        }
    };
    (0..n)
        .map(|i| {
            let (workload, scheme, ref attack) = rotation[i % rotation.len()];
            let attack = attack.clone();
            let pri = if mix == "mixed" && i % 8 == 7 {
                Priority::High
            } else {
                Priority::Normal
            };
            (
                SimRequest {
                    workload,
                    scheme,
                    attack,
                    fault: FaultSpec::None,
                    seed: derive_trial_seed(base_seed, i),
                },
                pri,
            )
        })
        .collect()
}

#[derive(Default)]
struct LoadReport {
    e2e: LatencyHistogram,
    queue: LatencyHistogram,
    exec: LatencyHistogram,
    served: u64,
    cache_hits: u64,
    rejected: u64,
    cancelled: u64,
    lost: u64,
    elapsed: Duration,
}

impl LoadReport {
    fn failed(&self) -> u64 {
        self.rejected + self.cancelled + self.lost
    }

    fn throughput(&self) -> f64 {
        self.served as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Drives the population open-loop: request `i` is submitted at
/// `start + i/rate`; a collector thread awaits replies so submission
/// never blocks on completed work.
fn drive_open_loop(args: &Args, population: Vec<(SimRequest, Priority)>) -> LoadReport {
    let svc = sim_service(ServiceConfig {
        workers: args.workers,
        queue_capacity: population.len().max(16),
        backpressure: if args.reject {
            Backpressure::Reject {
                retry_after: Duration::from_millis(2),
            }
        } else {
            Backpressure::Block
        },
        ..ServiceConfig::default()
    });
    let client = svc.client();
    let (tickets_tx, tickets_rx) =
        crossbeam::channel::bounded::<(Instant, Ticket<TrialResult>)>(population.len().max(1));

    let mut report = LoadReport::default();
    let start = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / args.rate.max(1e-3));
    let collector = std::thread::spawn(move || {
        let mut r = LoadReport::default();
        while let Ok((submitted, ticket)) = tickets_rx.recv() {
            match ticket.wait() {
                Ok(resp) => {
                    r.e2e.record(submitted.elapsed().as_nanos() as u64);
                    r.queue.record(resp.queue_ns);
                    r.exec.record(resp.exec_ns);
                    match resp.outcome {
                        serve::Outcome::Done(row) => {
                            r.served += 1;
                            r.cache_hits += resp.cache_hit as u64;
                            // A failed simulation under a no-noise mix
                            // would be a correctness bug, but noisy mixes
                            // legitimately produce unsuccessful trials;
                            // either way the *request* succeeded.
                            let _ = row;
                        }
                        serve::Outcome::Cancelled => r.cancelled += 1,
                        // Failed (contained panic) and TimedOut replies
                        // both resolved the ticket; count them with the
                        // lost requests for the load report's purposes.
                        serve::Outcome::Failed { .. } | serve::Outcome::TimedOut => r.lost += 1,
                    }
                }
                Err(_) => r.lost += 1,
            }
        }
        r
    });

    for (i, (req, pri)) in population.into_iter().enumerate() {
        let due = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        match client.submit(req, pri) {
            Ok(t) => tickets_tx
                .send((Instant::now(), t))
                .expect("collector gone"),
            Err(SubmitError::Overloaded { .. }) => report.rejected += 1,
            Err(SubmitError::ShuttingDown) => report.lost += 1,
        }
    }
    drop(tickets_tx);
    let collected = collector.join().expect("collector panicked");
    let stats = svc.shutdown();
    report.e2e = collected.e2e;
    report.queue = collected.queue;
    report.exec = collected.exec;
    report.served = collected.served;
    report.cache_hits = collected.cache_hits;
    report.cancelled = collected.cancelled;
    report.lost += collected.lost;
    report.elapsed = start.elapsed();
    assert_eq!(
        stats.served, report.served,
        "service and collector disagree on served count"
    );
    report
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn print_histogram(name: &str, h: &LatencyHistogram) {
    println!(
        "{:<8} p50 {:>9.1}us  p90 {:>9.1}us  p99 {:>9.1}us  max {:>9.1}us",
        name,
        us(h.quantile(0.5)),
        us(h.quantile(0.9)),
        us(h.quantile(0.99)),
        us(h.max()),
    );
}

/// Closed-loop comparison: the same trial population through the service
/// (saturated submission) and through `run_many`, with byte-identical
/// rows asserted on every repetition. Both sides run three times and the
/// fastest repetition counts — the populations are identical work, so
/// min-of-reps compares the engines rather than the scheduler's mood.
/// Returns (service_secs, raw_secs).
fn compare_raw(args: &Args) -> (f64, f64) {
    let workload = WorkloadSpec::TokenRing { n: 4, laps: 2 };
    let scheme = Scheme::A;
    let attack = AttackSpec::Iid { fraction: 0.002 };
    let trials = if args.quick { 24 } else { 200 };
    let reps = 3;

    let svc = sim_service(ServiceConfig {
        workers: args.workers,
        queue_capacity: trials,
        backpressure: Backpressure::Block,
        ..ServiceConfig::default()
    });
    let mut service_s = f64::INFINITY;
    let mut raw_s = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let tickets: Vec<Ticket<TrialResult>> = (0..trials)
            .map(|i| {
                svc.submit(
                    SimRequest {
                        workload,
                        scheme,
                        attack: attack.clone(),
                        fault: FaultSpec::None,
                        seed: derive_trial_seed(args.seed, i),
                    },
                    Priority::Normal,
                )
                .expect("blocking submit cannot fail while the service runs")
            })
            .collect();
        // Collect newest-first: each reply channel buffers its response,
        // so waiting on the (FIFO-)last ticket first sleeps once for the
        // whole batch instead of context-switching per reply — on a
        // single core that per-reply ping-pong would bill scheduler
        // overhead to the service that run_many never pays.
        let mut service_rows: Vec<TrialResult> = tickets
            .into_iter()
            .rev()
            .map(|t| {
                t.wait()
                    .expect("reply lost")
                    .outcome
                    .done()
                    .expect("no cancellations in compare-raw")
            })
            .collect();
        service_rows.reverse();
        service_s = service_s.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        let (_, raw_rows) = run_many(workload, scheme, attack.clone(), trials, args.seed);
        raw_s = raw_s.min(t1.elapsed().as_secs_f64());

        assert_eq!(
            service_rows, raw_rows,
            "service results diverged from run_many on the same seeds"
        );
    }
    svc.shutdown();
    (service_s, raw_s)
}

fn main() {
    let args = parse_args();
    println!(
        "bencher: mix={} rate={}req/s requests={} workers={} backpressure={}",
        args.mix,
        args.rate,
        args.requests,
        if args.workers == 0 {
            "auto".into()
        } else {
            args.workers.to_string()
        },
        if args.reject { "reject" } else { "block" },
    );

    let population = mix_requests(&args.mix, args.requests, args.seed);
    let report = drive_open_loop(&args, population);

    println!(
        "served {} / {} in {:.2}s  ({:.1} req/s), {} rejected, {} cancelled, {} lost, cache hit rate {:.3}",
        report.served,
        args.requests,
        report.elapsed.as_secs_f64(),
        report.throughput(),
        report.rejected,
        report.cancelled,
        report.lost,
        report.cache_hits as f64 / report.served.max(1) as f64,
    );
    print_histogram("e2e", &report.e2e);
    print_histogram("queue", &report.queue);
    print_histogram("exec", &report.exec);

    let mut rows = vec![json!({
        "id": format!("serve/{}/r{}", args.mix, args.rate as u64),
        "requests": args.requests,
        "served": report.served,
        "rejected": report.rejected,
        "cancelled": report.cancelled,
        "lost": report.lost,
        "throughput_rps": report.throughput(),
        "cache_hit_rate": report.cache_hits as f64 / report.served.max(1) as f64,
        "e2e_p50_us": us(report.e2e.quantile(0.5)),
        "e2e_p90_us": us(report.e2e.quantile(0.9)),
        "e2e_p99_us": us(report.e2e.quantile(0.99)),
        "e2e_max_us": us(report.e2e.max()),
        "queue_p99_us": us(report.queue.quantile(0.99)),
        "exec_p50_us": us(report.exec.quantile(0.5)),
        "exec_p99_us": us(report.exec.quantile(0.99)),
        "workers": args.workers,
        "quick": args.quick,
    })];

    if args.compare_raw {
        let (service_s, raw_s) = compare_raw(&args);
        let ratio = service_s / raw_s.max(1e-9);
        println!(
            "compare-raw: service {:.3}s vs run_many {:.3}s (ratio {:.3}, rows byte-identical)",
            service_s, raw_s, ratio
        );
        rows.push(json!({
            "id": "serve/compare_raw/tokenring_a_iid",
            "service_s": service_s,
            "raw_s": raw_s,
            "ratio": ratio,
            "quick": args.quick,
        }));
    }

    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&args.out)
    {
        for row in &rows {
            let _ = writeln!(f, "{row}");
        }
        println!("appended {} row(s) to {}", rows.len(), args.out);
    } else {
        eprintln!("could not open {} for appending", args.out);
    }

    if args.quick {
        let ok = report.served > 0 && report.failed() == 0;
        if !ok {
            eprintln!(
                "QUICK GATE FAILED: served={} failed={}",
                report.served,
                report.failed()
            );
            std::process::exit(1);
        }
        println!("quick gate ok: nonzero throughput, zero failed requests");
    }
}
