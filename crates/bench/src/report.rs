//! Report rendering, versioned run artifacts, and expectation diffing
//! for the `repro` reproduction pipeline (the `repro` bin is the driver;
//! this module is the machinery it shares with tests).
//!
//! Vocabulary:
//!
//! * A **run** is one invocation of a tier (`quick`/`lite`/`full`). Its
//!   artifacts land in a versioned directory `out/<tier>-<git-sha>/`.
//! * A **sweep** is one experiment family inside a run (noise-rate vs.
//!   decode success, topology scaling, the adversary leaderboard, serve
//!   load). Each sweep contributes one rendered markdown [`Table`] and
//!   one machine-readable `<sweep>.jsonl` file of row objects.
//! * The [`Manifest`] records how the run was produced (tier, seeds,
//!   `SIM_THREADS`, core count, shim versions) so a stranger reading the
//!   artifact knows what hardware and configuration it reflects.
//! * [`diff_dirs`] compares a fresh run against committed expectations:
//!   **outcome** keys (success rates, corruption counts, blow-ups — all
//!   deterministic in the seeds) must match exactly, while **volatile**
//!   keys (wall-clock timings, throughput, cache-hit counts — see
//!   [`is_volatile_key`]) only need to stay within a multiplicative
//!   tolerance, so the honesty check survives hardware changes.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One human-readable table of a run report: a title, a header row, and
/// string cells. Rendered as column-aligned GitHub markdown by
/// [`Table::to_markdown`] (golden-file tested).
#[derive(Clone, Debug)]
pub struct Table {
    /// Section title (markdown `###` heading).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells; each row must have `columns.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the column count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table `{}`: row width mismatch",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders the table as column-aligned GitHub markdown, ending in a
    /// single trailing newline.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let line = |cells: &[String], out: &mut String| {
            out.push('|');
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, " {:<w$} |", cell, w = widths[i]);
            }
            out.push('\n');
        };
        line(&self.columns, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Provenance record of one `repro` run, written as
/// `out/<tier>-<sha>/manifest.json`. Round-trips through the serde shim
/// (`serde_json::to_string` / `from_str`) field-for-field.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Tier that produced the run (`quick`, `lite`, or `full`).
    pub tier: String,
    /// Short git commit hash of the working tree (or `nogit`).
    pub git_sha: String,
    /// Base seed every sweep derives its trial seeds from.
    pub seed: u64,
    /// The `SIM_THREADS` override in effect, if any.
    pub sim_threads: Option<u64>,
    /// The machine's available parallelism when the run started.
    pub nproc: u64,
    /// Seconds since the unix epoch when the run finished.
    pub unix_time: u64,
    /// Total wall-clock seconds of the run (volatile; recorded for the
    /// tier-budget bookkeeping, never diffed exactly).
    pub wall_s: f64,
    /// Workspace crate version the driver was built from.
    pub workspace_version: String,
    /// Offline shim crates linked into the driver, as `name version`
    /// strings (the hermetic stand-ins for the real dependencies).
    pub shims: Vec<String>,
    /// Sweep ids the run emitted, in execution order; each has a
    /// matching `<id>.jsonl` in the run directory.
    pub sweeps: Vec<String>,
}

impl Manifest {
    /// Serializes into `<dir>/manifest.json`.
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        let text = serde_json::to_string(self).expect("manifest serialization is infallible");
        std::fs::write(dir.join("manifest.json"), text + "\n")
    }

    /// Reads a manifest back from `<dir>/manifest.json`.
    pub fn read(dir: &Path) -> Result<Manifest, String> {
        let path = dir.join("manifest.json");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Accumulates one run's artifacts: JSONL sweep files as they complete,
/// rendered tables for `report.md`, and finally the manifest.
pub struct RunWriter {
    dir: PathBuf,
    tables: Vec<Table>,
    sweeps: Vec<String>,
}

impl RunWriter {
    /// Creates (or truncates) the run directory `<root>/<tier>-<sha>/`.
    pub fn create(root: &Path, tier: &str, sha: &str) -> std::io::Result<RunWriter> {
        let dir = root.join(format!("{tier}-{sha}"));
        std::fs::create_dir_all(&dir)?;
        Ok(RunWriter {
            dir,
            tables: Vec::new(),
            sweeps: Vec::new(),
        })
    }

    /// The run directory this writer fills.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes one sweep's rows to `<dir>/<id>.jsonl` (truncating any
    /// previous run's file of the same name) and records the table for
    /// the final `report.md`.
    pub fn add_sweep(&mut self, id: &str, table: Table, rows: &[Value]) -> std::io::Result<()> {
        let mut f = std::fs::File::create(self.dir.join(format!("{id}.jsonl")))?;
        for row in rows {
            writeln!(f, "{row}")?;
        }
        self.sweeps.push(id.to_string());
        self.tables.push(table);
        Ok(())
    }

    /// Sweep ids written so far, in order.
    pub fn sweeps(&self) -> &[String] {
        &self.sweeps
    }

    /// Writes `report.md` (all tables) and `manifest.json`, consuming
    /// the writer. Returns the run directory.
    pub fn finish(self, manifest: &Manifest) -> std::io::Result<PathBuf> {
        let mut md = format!(
            "# repro report — tier `{}` @ `{}`\n\nSeed {}, {} worker core(s){}. \
             Outcome columns are deterministic in the seed; timing columns are\n\
             this machine's wall clock (see EXPERIMENTS.md for the caveats).\n\n",
            manifest.tier,
            manifest.git_sha,
            manifest.seed,
            manifest.nproc,
            match manifest.sim_threads {
                Some(t) => format!(", SIM_THREADS={t}"),
                None => String::new(),
            },
        );
        for t in &self.tables {
            md.push_str(&t.to_markdown());
            md.push('\n');
        }
        std::fs::write(self.dir.join("report.md"), md)?;
        manifest.write(&self.dir)?;
        Ok(self.dir)
    }
}

/// Loads one JSONL file of row objects through the serde shim's parser.
pub fn load_rows(path: &Path) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut rows = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), ln + 1))?;
        rows.push(v);
    }
    Ok(rows)
}

/// Is this row key **volatile** — a wall-clock, throughput, or
/// scheduling-dependent quantity that legitimately differs between
/// machines and runs? Volatile values are compared within a
/// multiplicative tolerance; everything else is an **outcome** key and
/// must match exactly (outcomes are deterministic in the seeds).
pub fn is_volatile_key(key: &str) -> bool {
    // Cache and queue counters depend on worker scheduling (which worker
    // compiles first), not on outcomes — the serve_identity suite pins
    // that the *rows* stay byte-identical regardless.
    const VOLATILE: &[&str] = &[
        "speedup",
        "ratio",
        "cache_hits",
        "cache_misses",
        "cache_entries",
        "queue_depth_highwater",
    ];
    VOLATILE.contains(&key)
        || key.ends_with("_ns")
        || key.ends_with("_us")
        || key.ends_with("_ms")
        || key.ends_with("_s")
        || key.ends_with("_rps")
}

/// Numeric view of a JSON value (integers coerce to `f64`; every number
/// the pipeline emits is well below the 2^53 exactness bound).
fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Number(serde::Number::F64(x)) => Some(*x),
        Value::Number(serde::Number::U64(n)) => Some(*n as f64),
        Value::Number(serde::Number::I64(n)) => Some(*n as f64),
        _ => None,
    }
}

fn object_keys(v: &Value) -> Vec<&str> {
    match v {
        Value::Object(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        _ => Vec::new(),
    }
}

/// Compares one sweep's fresh rows against its expectation. Returns
/// human-readable drift messages (empty = no drift). Row order is part
/// of the contract: sweeps emit rows in a deterministic order.
pub fn diff_rows(id: &str, expected: &[Value], fresh: &[Value], tolerance: f64) -> Vec<String> {
    let mut drifts = Vec::new();
    if expected.len() != fresh.len() {
        drifts.push(format!(
            "{id}: row count changed: expected {}, fresh {}",
            expected.len(),
            fresh.len()
        ));
        return drifts;
    }
    for (i, (e, f)) in expected.iter().zip(fresh).enumerate() {
        for key in object_keys(e) {
            let ev = e.get(key).expect("key from this object");
            let Some(fv) = f.get(key) else {
                drifts.push(format!("{id}[{i}].{key}: missing in fresh run"));
                continue;
            };
            if is_volatile_key(key) {
                match (as_f64(ev), as_f64(fv)) {
                    (Some(ex), Some(fx)) => {
                        if !fx.is_finite() || fx < 0.0 {
                            drifts.push(format!("{id}[{i}].{key}: fresh value {fx} not sane"));
                        } else if ex > 0.0 && (fx > ex * tolerance || fx < ex / tolerance) {
                            drifts.push(format!(
                                "{id}[{i}].{key}: timing drift beyond {tolerance}x: \
                                 expected {ex}, fresh {fx}"
                            ));
                        }
                        // ex <= 0: nothing meaningful to ratio against;
                        // the sanity check above is the whole contract.
                    }
                    _ => drifts.push(format!("{id}[{i}].{key}: volatile key must be numeric")),
                }
            } else {
                let equal = match (as_f64(ev), as_f64(fv)) {
                    (Some(ex), Some(fx)) => ex == fx,
                    _ => ev == fv,
                };
                if !equal {
                    drifts.push(format!(
                        "{id}[{i}].{key}: outcome drift: expected {ev}, fresh {fv}"
                    ));
                }
            }
        }
        for key in object_keys(f) {
            if e.get(key).is_none() {
                drifts.push(format!(
                    "{id}[{i}].{key}: new key absent from expectation (run `repro accept`)"
                ));
            }
        }
    }
    drifts
}

/// Result of diffing a fresh run directory against an expectation
/// directory.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Sweep files compared.
    pub files: usize,
    /// Rows compared across all files.
    pub rows: usize,
    /// Drift messages; empty means the run reproduces the expectations.
    pub drifts: Vec<String>,
    /// Fresh sweep files with no committed expectation (informational,
    /// never a failure — mirrors `benchcmp`'s new-id rule).
    pub extra: Vec<String>,
}

/// Compares every `*.jsonl` under `expected_dir` against the same file
/// in `fresh_dir`. Outcome keys exact, volatile keys within `tolerance`.
pub fn diff_dirs(
    expected_dir: &Path,
    fresh_dir: &Path,
    tolerance: f64,
) -> Result<DiffReport, String> {
    let mut report = DiffReport::default();
    let mut expected_files: Vec<PathBuf> = std::fs::read_dir(expected_dir)
        .map_err(|e| format!("cannot read {}: {e}", expected_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    expected_files.sort();
    if expected_files.is_empty() {
        return Err(format!(
            "no *.jsonl expectations under {}",
            expected_dir.display()
        ));
    }
    for exp_path in expected_files {
        let id = exp_path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("sweep")
            .to_string();
        let fresh_path = fresh_dir.join(format!("{id}.jsonl"));
        if !fresh_path.exists() {
            report.drifts.push(format!(
                "{id}: expected sweep missing from fresh run {}",
                fresh_dir.display()
            ));
            continue;
        }
        let expected = load_rows(&exp_path)?;
        let fresh = load_rows(&fresh_path)?;
        report.files += 1;
        report.rows += expected.len();
        report
            .drifts
            .extend(diff_rows(&id, &expected, &fresh, tolerance));
    }
    if let Ok(dir) = std::fs::read_dir(fresh_dir) {
        for entry in dir.filter_map(Result::ok) {
            let p = entry.path();
            if p.extension().is_some_and(|x| x == "jsonl")
                && !expected_dir
                    .join(p.file_name().expect("file entry has a name"))
                    .exists()
            {
                report
                    .extra
                    .push(p.file_name().unwrap().to_string_lossy().into_owned());
            }
        }
    }
    report.extra.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample_tables() -> (Table, Table) {
        let mut noise = Table::new(
            "Noise sweep — Algorithm A on ring(6)",
            &["multiplier", "fraction", "ok", "blowup"],
        );
        noise.push_row(vec![
            "0.00".into(),
            "0.000000".into(),
            "1.00".into(),
            "150.9".into(),
        ]);
        noise.push_row(vec![
            "0.50".into(),
            "0.041667".into(),
            "0.25".into(),
            "152.3".into(),
        ]);
        let mut lb = Table::new("Leaderboard", &["attack", "metric"]);
        lb.push_row(vec!["mp_splitter".into(), "10".into()]);
        lb.push_row(vec!["flag_flipper".into(), "6".into()]);
        (noise, lb)
    }

    /// Golden-file pin of the markdown renderer: any formatting change
    /// must be intentional (regenerate `testdata/golden_report.md`).
    #[test]
    fn markdown_rendering_matches_golden_file() {
        let (noise, lb) = sample_tables();
        let rendered = format!("{}\n{}", noise.to_markdown(), lb.to_markdown());
        let golden = include_str!("../testdata/golden_report.md");
        assert_eq!(rendered, golden, "markdown drifted from the golden file");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    /// The manifest round-trips through the serde shim field-for-field,
    /// including the `Option` and `Vec` fields.
    #[test]
    fn manifest_round_trips_through_shim() {
        let m = Manifest {
            tier: "quick".into(),
            git_sha: "abc1234".into(),
            seed: 2024,
            sim_threads: Some(2),
            nproc: 8,
            unix_time: 1_754_500_000,
            wall_s: 12.5,
            workspace_version: "0.1.0".into(),
            shims: vec!["serde 1.0.0".into(), "crossbeam 0.8.0".into()],
            sweeps: vec!["noise".into(), "scaling".into()],
        };
        let text = serde_json::to_string(&m).unwrap();
        let back: Manifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);

        let none = Manifest {
            sim_threads: None,
            ..m
        };
        let back: Manifest = serde_json::from_str(&serde_json::to_string(&none).unwrap()).unwrap();
        assert_eq!(back, none);
    }

    #[test]
    fn manifest_write_read_round_trip() {
        let dir = std::env::temp_dir().join(format!("repro-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = Manifest {
            tier: "quick".into(),
            git_sha: "deadbee".into(),
            seed: 7,
            sim_threads: None,
            nproc: 1,
            unix_time: 0,
            wall_s: 0.5,
            workspace_version: "0.1.0".into(),
            shims: vec![],
            sweeps: vec!["noise".into()],
        };
        m.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn volatile_key_classification() {
        for k in [
            "serial_ns",
            "e2e_p99_us",
            "wall_s",
            "throughput_rps",
            "speedup",
            "cache_hits",
        ] {
            assert!(is_volatile_key(k), "{k} should be volatile");
        }
        for k in [
            "success",
            "trials",
            "corruptions",
            "blowup",
            "requests",
            "served",
            "stalled_iterations",
        ] {
            assert!(!is_volatile_key(k), "{k} should be an outcome key");
        }
    }

    /// The diff is exact on outcome keys: an injected outcome drift is
    /// reported, while a (tolerated) timing drift is not.
    #[test]
    fn diff_detects_injected_outcome_drift() {
        let expected = vec![
            json!({"scheme": "alg_a", "success": 1.0, "corruptions": 12u64, "serial_ns": 1000u64}),
            json!({"scheme": "alg_b", "success": 0.75, "corruptions": 30u64, "serial_ns": 2000u64}),
        ];
        // Same outcomes, wildly different timing: no drift.
        let mut fresh = expected.clone();
        if let Value::Object(fields) = &mut fresh[0] {
            fields.iter_mut().find(|(k, _)| k == "serial_ns").unwrap().1 = json!(900_000u64);
        }
        assert!(diff_rows("s", &expected, &fresh, 1e6).is_empty());
        // Timing drift beyond the tolerance is reported.
        let drifts = diff_rows("s", &expected, &fresh, 10.0);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].contains("timing drift"), "{drifts:?}");
        // An injected outcome drift always fails, whatever the tolerance.
        if let Value::Object(fields) = &mut fresh[1] {
            fields.iter_mut().find(|(k, _)| k == "success").unwrap().1 = json!(0.5f64);
        }
        let drifts = diff_rows("s", &expected, &fresh, 1e6);
        assert_eq!(drifts.len(), 1, "{drifts:?}");
        assert!(drifts[0].contains("outcome drift"), "{drifts:?}");
        assert!(drifts[0].contains("s[1].success"), "{drifts:?}");
    }

    #[test]
    fn diff_reports_shape_changes() {
        let expected = vec![json!({"a": 1u64, "b": 2u64})];
        // Row count change.
        assert_eq!(diff_rows("s", &expected, &[], 2.0).len(), 1);
        // Missing and new keys.
        let fresh = vec![json!({"a": 1u64, "c": 3u64})];
        let drifts = diff_rows("s", &expected, &fresh, 2.0);
        assert_eq!(drifts.len(), 2, "{drifts:?}");
        assert!(drifts.iter().any(|d| d.contains("missing in fresh")));
        assert!(drifts.iter().any(|d| d.contains("new key")));
        // Integer/float representations of the same outcome agree.
        let fresh = vec![json!({"a": 1.0f64, "b": 2u64})];
        assert!(diff_rows("s", &expected, &fresh, 2.0).is_empty());
    }
}
