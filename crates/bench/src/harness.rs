//! Monte-Carlo trial runner.

use crate::spec::{AttackSpec, FaultSpec, Scheme, WorkloadSpec};
use mpic::baseline::{run_no_coding, run_repetition};
use mpic::{ArtifactCache, Parallelism, RunOptions, RunScratch, SchemeConfig, Simulation};
use netgraph::Graph;
use netsim::attacks::{ScriptRecorder, ScriptStep};
use netsim::{Adversary, PhaseGeometry};
use parking_lot::Mutex;
use serde::Serialize;
use smallbias::splitmix64;

/// One trial's result row.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TrialResult {
    /// Did the simulation reproduce the noiseless computation?
    pub success: bool,
    /// Total bits sent by honest parties.
    pub cc: u64,
    /// `CC(Π)` of the unpadded protocol.
    pub payload_cc: u64,
    /// Corruptions the adversary landed.
    pub corruptions: u64,
    /// Achieved noise fraction `corruptions / cc`.
    pub noise_fraction: f64,
    /// Communication blow-up `cc / payload_cc`.
    pub blowup: f64,
    /// Full-hash collisions observed (coding schemes only).
    pub hash_collisions: u64,
    /// Rounds consumed.
    pub rounds: u64,
    /// Numeric [`mpic::Verdict`] code (0 = decoded correct, 1 = noise
    /// overwhelmed, 2 = fault churn). For baselines: 0 on success, 1
    /// otherwise.
    pub degraded: u8,
    /// Scheduled link outage transitions applied (coding schemes only).
    pub links_downed: u64,
    /// Party-rounds spent crashed (coding schemes only).
    pub crash_rounds: u64,
    /// Rewind-wave truncations attributable to fault resync.
    pub resync_rewinds: u64,
    /// Meeting-points `k, E` resets (coding schemes only) — the repair
    /// restarts an attack inflicted; a term of the search fitness.
    pub mp_resets: u64,
    /// Iterations stalled by a poisoned flag wave (coding schemes only);
    /// a term of the search fitness.
    pub stalled_iterations: u64,
    /// Deepest rewind cascade observed (coding schemes only); a term of
    /// the search fitness.
    pub rewind_wave_depth: u64,
}

impl TrialResult {
    /// The adversary-search fitness numerator carried by this row:
    /// `mp_resets + stalled_iterations + rewind_wave_depth` (see
    /// [`mpic::Instrumentation::attack_damage`]).
    pub fn attack_damage(&self) -> u64 {
        self.mp_resets + self.stalled_iterations + self.rewind_wave_depth
    }
}

/// Aggregate over trials.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct Summary {
    /// Trials run.
    pub trials: usize,
    /// Fraction of successful trials.
    pub success_rate: f64,
    /// Mean communication blow-up.
    pub mean_blowup: f64,
    /// Mean achieved noise fraction.
    pub mean_noise_fraction: f64,
    /// Mean hash collisions per trial.
    pub mean_collisions: f64,
    /// Mean rounds.
    pub mean_rounds: f64,
}

impl Summary {
    /// Folds trial rows into a summary.
    pub fn from_trials(rows: &[TrialResult]) -> Summary {
        let n = rows.len().max(1) as f64;
        Summary {
            trials: rows.len(),
            success_rate: rows.iter().filter(|r| r.success).count() as f64 / n,
            mean_blowup: rows.iter().map(|r| r.blowup).sum::<f64>() / n,
            mean_noise_fraction: rows.iter().map(|r| r.noise_fraction).sum::<f64>() / n,
            mean_collisions: rows.iter().map(|r| r.hash_collisions as f64).sum::<f64>() / n,
            mean_rounds: rows.iter().map(|r| r.rounds as f64).sum::<f64>() / n,
        }
    }
}

/// Runs one trial: build workload, compile scheme, resolve attack, run.
///
/// The noise budget is `fraction-agnostic`: the adversary is capped at
/// `budget_fraction × predicted CC` corruptions when the attack spec
/// carries a fraction, otherwise left uncapped (pattern attacks bound
/// themselves).
pub fn run_trial(
    workload: WorkloadSpec,
    scheme: Scheme,
    attack: AttackSpec,
    trial_seed: u64,
) -> TrialResult {
    run_trial_with_scratch(workload, scheme, attack, trial_seed, &mut RunScratch::new())
}

/// [`run_trial`] with a fault schedule injected alongside the attack.
pub fn run_trial_faulted(
    workload: WorkloadSpec,
    scheme: Scheme,
    attack: AttackSpec,
    fault: FaultSpec,
    trial_seed: u64,
) -> TrialResult {
    run_trial_faulted_with_scratch(
        workload,
        scheme,
        attack,
        fault,
        trial_seed,
        &mut RunScratch::new(),
    )
}

/// [`run_trial`] reusing a caller-owned [`RunScratch`], so a worker
/// running many trials pays the per-chunk buffers once instead of per
/// trial. Outcomes are identical to `run_trial`.
pub fn run_trial_with_scratch(
    workload: WorkloadSpec,
    scheme: Scheme,
    attack: AttackSpec,
    trial_seed: u64,
    scratch: &mut RunScratch,
) -> TrialResult {
    run_trial_faulted_with_scratch(
        workload,
        scheme,
        attack,
        FaultSpec::None,
        trial_seed,
        scratch,
    )
}

/// [`run_trial_faulted`] reusing a caller-owned [`RunScratch`].
pub fn run_trial_faulted_with_scratch(
    workload: WorkloadSpec,
    scheme: Scheme,
    attack: AttackSpec,
    fault: FaultSpec,
    trial_seed: u64,
    scratch: &mut RunScratch,
) -> TrialResult {
    run_trial_inner(
        workload,
        scheme,
        &attack,
        fault,
        trial_seed,
        scratch,
        Parallelism::Serial,
        None,
    )
    .0
}

/// [`run_trial`] as a service worker runs it: reusing a caller-owned
/// scratch, an intra-trial thread budget, and a shared [`ArtifactCache`]
/// of precompiled structural artifacts. Returns the trial row plus
/// whether **every** artifact lookup hit the cache (schemes B and C look
/// up two entries: the 5m chunk-count hint and their own larger chunking).
///
/// Outcomes are byte-identical to [`run_trial`] with the same seed —
/// cached statics compile deterministically from structure alone, and
/// parallelism is a pure wall-clock knob.
#[allow(clippy::too_many_arguments)]
pub fn run_trial_serviced(
    workload: WorkloadSpec,
    scheme: Scheme,
    attack: AttackSpec,
    fault: FaultSpec,
    trial_seed: u64,
    scratch: &mut RunScratch,
    parallelism: Parallelism,
    cache: &ArtifactCache,
) -> (TrialResult, bool) {
    run_trial_inner(
        workload,
        scheme,
        &attack,
        fault,
        trial_seed,
        scratch,
        parallelism,
        Some(cache),
    )
}

/// Per-trial seed of `run_many(base_seed, …)`'s trial `i` (public so load
/// drivers can replay the exact same trial population through a service).
pub fn derive_trial_seed(base_seed: u64, i: usize) -> u64 {
    trial_seed(base_seed, i)
}

/// The full trial pipeline, with the scheme's intra-trial [`Parallelism`]
/// chosen by the caller and an optional shared [`ArtifactCache`].
/// Byte-identical outcomes across all settings: the parallel hash paths
/// shard deterministically, and cached statics are interchangeable with
/// freshly compiled ones. Returns the row plus the all-lookups-hit flag
/// (always `false` without a cache).
#[allow(clippy::too_many_arguments)]
fn run_trial_inner(
    workload: WorkloadSpec,
    scheme: Scheme,
    attack: &AttackSpec,
    fault: FaultSpec,
    trial_seed: u64,
    scratch: &mut RunScratch,
    parallelism: Parallelism,
    cache: Option<&ArtifactCache>,
) -> (TrialResult, bool) {
    let w = workload.build(trial_seed.wrapping_mul(0x9e37_79b9) | 1);
    // Without a shared cache, compile into a private one — identical
    // artifacts (compilation is deterministic), no reuse.
    let private;
    let (cache, shared) = match cache {
        Some(c) => (c, true),
        None => {
            private = ArtifactCache::new();
            (&private, false)
        }
    };
    match scheme {
        Scheme::NoCoding | Scheme::Repetition(_) => {
            let g = w.graph().clone();
            let (statics, hit) = cache.get_or_compile(&*w, 5 * g.edge_count());
            let proto = &statics.proto;
            // Baselines execute exactly the real chunks.
            let rounds: u64 = (0..proto.real_chunks())
                .map(|c| proto.layout(c).round_count() as u64)
                .sum();
            let rep = if let Scheme::Repetition(r) = scheme {
                r
            } else {
                1
            };
            let cc_predict = (proto.real_chunks() * proto.chunk_bits()) as u64 * rep as u64;
            let geometry = netsim::PhaseGeometry {
                setup: 0,
                meeting_points: 0,
                flag_passing: 0,
                simulation: rounds.max(1) * rep as u64,
                rewind: 1,
            };
            let budget = attack_budget(attack, cc_predict);
            let adversary = attack.build(&g, geometry, cc_predict, rounds * rep as u64, trial_seed);
            let out = match scheme {
                Scheme::NoCoding => run_no_coding(&*w, proto, adversary, budget),
                Scheme::Repetition(r) => run_repetition(&*w, proto, adversary, budget, r),
                _ => unreachable!(),
            };
            // Baselines have no meeting-point/rewind machinery to resync
            // through, so fault schedules are not modeled for them; a
            // failed baseline run reports degraded = 1 (noise).
            let row = TrialResult {
                success: out.success,
                cc: out.stats.cc,
                payload_cc: out.payload_cc,
                corruptions: out.stats.corruptions,
                noise_fraction: out.stats.noise_fraction(),
                blowup: out.blowup,
                hash_collisions: 0,
                rounds: out.stats.rounds,
                degraded: u8::from(!out.success),
                links_downed: 0,
                crash_rounds: 0,
                resync_rewinds: 0,
                mp_resets: 0,
                stalled_iterations: 0,
                rewind_wave_depth: 0,
            };
            (row, shared && hit)
        }
        _ => {
            let g = w.graph().clone();
            // The chunk-count hint protocol (always 5m bits) and the
            // scheme's own statics (5·k_param bits — larger for B/C) are
            // separate cache entries; for Algorithm A they coincide.
            let (hint_statics, hint_hit) = cache.get_or_compile(&*w, 5 * g.edge_count());
            let hint = hint_statics.proto.real_chunks();
            let mut cfg = scheme.config(&g, hint, 0xc0de ^ trial_seed);
            cfg.parallelism = parallelism;
            let (statics, statics_hit) = if cfg.chunk_bits() == 5 * g.edge_count() {
                (hint_statics, hint_hit)
            } else {
                cache.get_or_compile(&*w, cfg.chunk_bits())
            };
            let mut sim = Simulation::with_statics(&*w, cfg, trial_seed, statics);
            let geometry = sim.geometry();
            let predicted_cc = sim.predicted_cc();
            let predicted_rounds =
                geometry.setup + sim.iterations() as u64 * geometry.iteration_rounds();
            // Fault plans scale to the predicted round horizon, which
            // needs the compiled geometry — hence the post-construction
            // setter rather than cfg.faults up front.
            if !matches!(fault, FaultSpec::None) {
                sim.set_fault_plan(fault.build(&g, predicted_rounds, trial_seed));
            }
            let budget = attack_budget(attack, predicted_cc);
            let adversary = attack.build(&g, geometry, predicted_cc, predicted_rounds, trial_seed);
            let opts = RunOptions {
                noise_budget: budget,
                record_trace: false,
                expose_view: true,
            };
            let out = sim.run_with_scratch(adversary, opts, scratch);
            let row = TrialResult {
                success: out.success,
                cc: out.stats.cc,
                payload_cc: out.payload_cc,
                corruptions: out.stats.corruptions,
                noise_fraction: out.stats.noise_fraction(),
                blowup: out.blowup,
                hash_collisions: out.instrumentation.hash_collisions,
                rounds: out.stats.rounds,
                degraded: out.verdict.code(),
                links_downed: out.instrumentation.links_downed,
                crash_rounds: out.instrumentation.crash_rounds,
                resync_rewinds: out.instrumentation.resync_rewinds,
                mp_resets: out.instrumentation.mp_resets,
                stalled_iterations: out.instrumentation.stalled_iterations,
                rewind_wave_depth: out.instrumentation.rewind_wave_depth,
            };
            (row, shared && hint_hit && statics_hit)
        }
    }
}

/// One recorded trial: the outcome row of a hand-built (non-spec)
/// adversary plus the corruption script the engine actually applied and
/// the genome bounds of the run, for seeding the adversary search.
#[derive(Clone, Debug)]
pub struct RecordedTrial {
    /// The trial's outcome row.
    pub row: TrialResult,
    /// Exactly the corruptions the engine applied, as replayable steps;
    /// an [`AttackSpec::Scripted`] over them at the same seed reproduces
    /// `row` byte-for-byte (minus the budget ledger, which tightens to
    /// the script length).
    pub script: Vec<ScriptStep>,
    /// Predicted wire-round horizon of the compiled simulation — the
    /// genome's round bound.
    pub predicted_rounds: u64,
    /// Directed-link count — the genome's link-id bound.
    pub links: usize,
}

/// Runs one coding-scheme trial under a custom, hand-built adversary
/// (one not expressible as an [`AttackSpec`]), transcribing the
/// corruptions the engine applies into a replayable script.
///
/// This is the adversary-search seeding path: the returned script is a
/// [`crate::spec::AttackSpec::Scripted`] genome whose replay at
/// `trial_seed` inflicts the same instrumented damage as the hand-built
/// attack, so generation 0 of the search starts at parity with it.
///
/// Must run serially: the recorder's script sink is not `Send`.
/// Panics on baseline schemes (there is nothing phase-aware to record).
pub fn run_trial_recording<F>(
    workload: WorkloadSpec,
    scheme: Scheme,
    budget: u64,
    trial_seed: u64,
    build: F,
) -> RecordedTrial
where
    F: FnOnce(&Graph, PhaseGeometry, &SchemeConfig) -> Box<dyn Adversary>,
{
    assert!(
        !matches!(scheme, Scheme::NoCoding | Scheme::Repetition(_)),
        "recording needs a coding scheme"
    );
    let w = workload.build(trial_seed.wrapping_mul(0x9e37_79b9) | 1);
    let g = w.graph().clone();
    let cache = ArtifactCache::new();
    let (hint_statics, _) = cache.get_or_compile(&*w, 5 * g.edge_count());
    let hint = hint_statics.proto.real_chunks();
    let cfg = scheme.config(&g, hint, 0xc0de ^ trial_seed);
    let statics = if cfg.chunk_bits() == 5 * g.edge_count() {
        hint_statics
    } else {
        cache.get_or_compile(&*w, cfg.chunk_bits()).0
    };
    let sim = Simulation::with_statics(&*w, cfg.clone(), trial_seed, statics);
    let geometry = sim.geometry();
    let predicted_rounds = geometry.setup + sim.iterations() as u64 * geometry.iteration_rounds();
    let (recorder, sink) = ScriptRecorder::new(&g, build(&g, geometry, &cfg));
    let opts = RunOptions {
        noise_budget: budget,
        record_trace: false,
        expose_view: true,
    };
    let out = sim.run_with_scratch(Box::new(recorder), opts, &mut RunScratch::new());
    let row = TrialResult {
        success: out.success,
        cc: out.stats.cc,
        payload_cc: out.payload_cc,
        corruptions: out.stats.corruptions,
        noise_fraction: out.stats.noise_fraction(),
        blowup: out.blowup,
        hash_collisions: out.instrumentation.hash_collisions,
        rounds: out.stats.rounds,
        degraded: out.verdict.code(),
        links_downed: out.instrumentation.links_downed,
        crash_rounds: out.instrumentation.crash_rounds,
        resync_rewinds: out.instrumentation.resync_rewinds,
        mp_resets: out.instrumentation.mp_resets,
        stalled_iterations: out.instrumentation.stalled_iterations,
        rewind_wave_depth: out.instrumentation.rewind_wave_depth,
    };
    let script = sink.borrow().clone();
    RecordedTrial {
        row,
        script,
        predicted_rounds,
        links: g.links().len(),
    }
}

/// Sanitizes a noise fraction to `[0, 1]`: NaN reads as 0 and
/// out-of-range values clamp. Without this, a negative or NaN fraction
/// survives to the `as u64` cast in [`attack_budget`], which saturates to
/// 0 for negatives but maps any accidental `fraction * cc > u64::MAX`
/// arithmetic (or NaN) to an unintended budget.
fn clamped_fraction(fraction: f64) -> f64 {
    if fraction.is_nan() {
        0.0
    } else {
        fraction.clamp(0.0, 1.0)
    }
}

/// Budget rule: fraction-carrying attacks are capped at their fraction of
/// the predicted communication (with 50% slack for prediction error);
/// pattern attacks bound themselves. The fraction is validated first —
/// see [`clamped_fraction`].
fn attack_budget(attack: &AttackSpec, predicted_cc: u64) -> u64 {
    match attack {
        AttackSpec::Iid { fraction } => {
            debug_assert!(
                !fraction.is_nan() && (0.0..=1.0).contains(fraction),
                "attack fraction {fraction} outside [0, 1]"
            );
            ((clamped_fraction(*fraction) * 1.5) * predicted_cc as f64).ceil() as u64
        }
        // A script's budget is its length: every step that fires costs
        // exactly one corruption, so the engine ledger and the fitness
        // denominator agree by construction.
        AttackSpec::Scripted { steps } => steps.len() as u64,
        _ => u64::MAX,
    }
}

/// Derives trial `i`'s seed from `base_seed` with a splitmix64-style
/// mix, so distinct `(base_seed, i)` pairs land in unrelated streams.
///
/// The old `base_seed + i` rule made adjacent base seeds share almost
/// every per-trial RNG stream: `run_many(s, …)` trial `i+1` and
/// `run_many(s+1, …)` trial `i` were the *same* trial, silently
/// correlating sweeps that were meant to be independent replicas.
fn trial_seed(base_seed: u64, i: usize) -> u64 {
    let mut s = base_seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut s)
}

/// The run's total thread budget: the `SIM_THREADS` environment override
/// when set, otherwise the machine's available parallelism.
fn thread_budget() -> usize {
    mpic::sim_threads_env().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Runs `trials` trials concurrently and aggregates.
///
/// Threading is two-level: the total budget (the `SIM_THREADS` override
/// when set, otherwise the machine's available parallelism) is split
/// between **inter-trial** workers — scoped threads claiming trial
/// indices off a shared cursor, one reusable [`RunScratch`] each — and
/// **intra-trial** parallelism handed to each trial's simulation as
/// [`Parallelism::Threads`], which shards the per-link hash work inside
/// a single run. Many short trials → all budget goes to workers; fewer
/// trials than budget → the leftover threads speed up each trial.
/// Outcomes are byte-identical for every split, so the shape of the
/// budget never changes the statistics.
///
/// Per-trial seeds come from a splitmix64-style mix of
/// `(base_seed, index)`, so different base seeds share no trial streams.
pub fn run_many(
    workload: WorkloadSpec,
    scheme: Scheme,
    attack: AttackSpec,
    trials: usize,
    base_seed: u64,
) -> (Summary, Vec<TrialResult>) {
    run_many_faulted(workload, scheme, attack, FaultSpec::None, trials, base_seed)
}

/// [`run_many`] with a fault schedule injected into every trial (each
/// trial's concrete plan is drawn from its own trial seed, so replicas
/// see independent churn).
pub fn run_many_faulted(
    workload: WorkloadSpec,
    scheme: Scheme,
    attack: AttackSpec,
    fault: FaultSpec,
    trials: usize,
    base_seed: u64,
) -> (Summary, Vec<TrialResult>) {
    let results = Mutex::new(vec![None; trials]);
    let budget = thread_budget();
    let threads = budget.min(trials.max(1));
    let intra = Parallelism::Threads((budget / threads.max(1)).max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    // One artifact cache for the whole run: structural compilation
    // (chunk layouts, spanning tree, flag schedules) happens once per
    // distinct (workload structure, chunking), not once per trial.
    let cache = ArtifactCache::new();
    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                // One scratch per worker: chunk/frame buffers are reused
                // across every trial the worker claims.
                let mut scratch = RunScratch::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= trials {
                        break;
                    }
                    let (r, _) = run_trial_inner(
                        workload,
                        scheme,
                        &attack,
                        fault,
                        trial_seed(base_seed, i),
                        &mut scratch,
                        intra,
                        Some(&cache),
                    );
                    results.lock()[i] = Some(r);
                }
            });
        }
    })
    .expect("trial thread panicked");
    let rows: Vec<TrialResult> = results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("missing trial"))
        .collect();
    (Summary::from_trials(&rows), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopoSpec;

    #[test]
    fn trial_noiseless_succeeds_all_schemes() {
        let w = WorkloadSpec::Gossip {
            topo: TopoSpec::Ring(4),
            rounds: 5,
        };
        for scheme in [
            Scheme::A,
            Scheme::B,
            Scheme::C,
            Scheme::NoCoding,
            Scheme::Repetition(3),
        ] {
            let r = run_trial(w, scheme, AttackSpec::None, 7);
            assert!(r.success, "{scheme:?} failed noiselessly");
            assert_eq!(r.corruptions, 0);
        }
    }

    #[test]
    fn parallel_runs_are_deterministic_per_seed() {
        let w = WorkloadSpec::TokenRing { n: 4, laps: 3 };
        let a = run_trial(w, Scheme::A, AttackSpec::Iid { fraction: 0.002 }, 3);
        let b = run_trial(w, Scheme::A, AttackSpec::Iid { fraction: 0.002 }, 3);
        assert_eq!(a.cc, b.cc);
        assert_eq!(a.success, b.success);
        assert_eq!(a.corruptions, b.corruptions);
    }

    #[test]
    fn run_many_aggregates() {
        let w = WorkloadSpec::TokenRing { n: 4, laps: 2 };
        let (s, rows) = run_many(w, Scheme::A, AttackSpec::None, 4, 10);
        assert_eq!(s.trials, 4);
        assert_eq!(rows.len(), 4);
        assert!((s.success_rate - 1.0).abs() < 1e-12);
    }

    /// Adjacent base seeds must not share per-trial seeds (the old
    /// `base_seed + i` rule made `run_many(s)` and `run_many(s + 1)`
    /// overlap in all but one trial).
    #[test]
    fn adjacent_base_seeds_share_no_trial_streams() {
        let trials = 64usize;
        let a: std::collections::BTreeSet<u64> = (0..trials).map(|i| trial_seed(1000, i)).collect();
        let b: std::collections::BTreeSet<u64> = (0..trials).map(|i| trial_seed(1001, i)).collect();
        assert_eq!(a.len(), trials, "collisions within one base seed");
        assert_eq!(b.len(), trials, "collisions within one base seed");
        assert!(
            a.is_disjoint(&b),
            "base seeds 1000/1001 share trial seeds: {:?}",
            a.intersection(&b).collect::<Vec<_>>()
        );
    }

    #[test]
    fn faulted_trial_is_never_silently_wrong() {
        let w = WorkloadSpec::Gossip {
            topo: TopoSpec::Ring(4),
            rounds: 5,
        };
        let fault = FaultSpec::Churn {
            link_rate: 0.5,
            crash_rate: 0.25,
            outage_frac: 0.02,
        };
        let r = run_trial_faulted(w, Scheme::A, AttackSpec::None, fault, 11);
        // The verdict is explicit either way; success ⇔ degraded == 0.
        assert_eq!(r.success, r.degraded == 0);
        if !r.success {
            assert_eq!(r.degraded, 2, "faulted failures blame churn");
        }
        // Determinism: same spec + seed → identical row.
        assert_eq!(
            r,
            run_trial_faulted(w, Scheme::A, AttackSpec::None, fault, 11)
        );
        // The empty spec matches the unfaulted path exactly.
        assert_eq!(
            run_trial_faulted(w, Scheme::A, AttackSpec::None, FaultSpec::None, 11),
            run_trial(w, Scheme::A, AttackSpec::None, 11),
        );
        // Baselines document-ignore fault schedules.
        let b = run_trial_faulted(w, Scheme::NoCoding, AttackSpec::None, fault, 11);
        assert_eq!((b.links_downed, b.crash_rounds), (0, 0));
    }

    #[test]
    fn attack_budget_clamps_invalid_fractions() {
        let cc = 1_000_000u64;
        let at = |f: f64| attack_budget(&AttackSpec::Iid { fraction: f }, cc);
        // Boundary values map exactly.
        assert_eq!(at(0.0), 0);
        assert_eq!(at(1.0), (1.5 * cc as f64).ceil() as u64);
        assert_eq!(at(0.5), (0.75 * cc as f64).ceil() as u64);
        // Invalid inputs clamp instead of casting to garbage. (The
        // debug_assert flags them in dev builds, so exercise the clamp
        // helper directly.)
        assert_eq!(clamped_fraction(-0.25), 0.0);
        assert_eq!(clamped_fraction(f64::NAN), 0.0);
        assert_eq!(clamped_fraction(7.5), 1.0);
        assert_eq!(clamped_fraction(f64::INFINITY), 1.0);
        assert_eq!(clamped_fraction(f64::NEG_INFINITY), 0.0);
        // Pattern attacks stay uncapped.
        assert_eq!(attack_budget(&AttackSpec::None, cc), u64::MAX);
    }
}
