//! Plain-data specifications for topologies, workloads, schemes,
//! attacks and fault schedules — the vocabulary of the experiment
//! definitions.

use mpic::{BurstOutage, FaultPlan, SchemeConfig};
use netgraph::{topology, DirectedLink, Graph};
use netsim::attacks::{
    BurstLink, IidNoise, NoNoise, PhaseTargeted, ScriptStep, ScriptedAdversary, SeedAwareCollision,
    SingleError,
};
use netsim::{Adversary, PhaseGeometry, PhaseKind};
use protocol::workloads::{Gossip, LinePipeline, PointerChase, SumTree, TokenRing};
use protocol::Workload;
use serde::Serialize;

/// Topology families used by the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TopoSpec {
    /// Path on `n` nodes.
    Line(usize),
    /// Cycle on `n` nodes.
    Ring(usize),
    /// Star with `n − 1` leaves.
    Star(usize),
    /// Complete graph.
    Clique(usize),
    /// `r × c` grid.
    Grid(usize, usize),
    /// Connected random graph G(n, M) (deterministic in the trial seed).
    Random(usize, usize),
}

impl TopoSpec {
    /// Builds the graph (`seed` only matters for [`TopoSpec::Random`]).
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            TopoSpec::Line(n) => topology::line(n),
            TopoSpec::Ring(n) => topology::ring(n),
            TopoSpec::Star(n) => topology::star(n),
            TopoSpec::Clique(n) => topology::clique(n),
            TopoSpec::Grid(r, c) => topology::grid(r, c),
            TopoSpec::Random(n, m) => topology::random_connected(n, m, seed),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match *self {
            TopoSpec::Line(n) => format!("line{n}"),
            TopoSpec::Ring(n) => format!("ring{n}"),
            TopoSpec::Star(n) => format!("star{n}"),
            TopoSpec::Clique(n) => format!("clique{n}"),
            TopoSpec::Grid(r, c) => format!("grid{r}x{c}"),
            TopoSpec::Random(n, m) => format!("rand{n}-{m}"),
        }
    }
}

/// Workload families (the noiseless protocols Π).
#[derive(Clone, Copy, Debug, Serialize)]
pub enum WorkloadSpec {
    /// Token walking a ring.
    TokenRing {
        /// Ring size.
        n: usize,
        /// Full laps.
        laps: usize,
    },
    /// The §1.2 line example.
    LinePipeline {
        /// Line length.
        n: usize,
        /// Epochs.
        epochs: usize,
    },
    /// Tree aggregation over an arbitrary topology.
    SumTree {
        /// Topology.
        topo: TopoSpec,
        /// Bits per value.
        width: u32,
        /// Epochs.
        epochs: usize,
    },
    /// Fully-utilized gossip.
    Gossip {
        /// Topology.
        topo: TopoSpec,
        /// Rounds.
        rounds: usize,
    },
    /// Pointer chasing on a line.
    PointerChase {
        /// Line length.
        n: usize,
        /// Pointer width (bits).
        width: u32,
        /// Double-hops.
        depth: usize,
    },
}

impl WorkloadSpec {
    /// Instantiates the workload with seed-derived inputs.
    pub fn build(&self, seed: u64) -> Box<dyn Workload> {
        match *self {
            WorkloadSpec::TokenRing { n, laps } => Box::new(TokenRing::new(n, laps, seed)),
            WorkloadSpec::LinePipeline { n, epochs } => {
                Box::new(LinePipeline::new(n, epochs, seed))
            }
            WorkloadSpec::SumTree {
                topo,
                width,
                epochs,
            } => Box::new(SumTree::new(topo.build(seed), width, epochs, seed)),
            WorkloadSpec::Gossip { topo, rounds } => {
                Box::new(Gossip::new(topo.build(seed), rounds, seed))
            }
            WorkloadSpec::PointerChase { n, width, depth } => {
                Box::new(PointerChase::new(n, width, depth, seed))
            }
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::TokenRing { .. } => "token_ring",
            WorkloadSpec::LinePipeline { .. } => "line_pipeline",
            WorkloadSpec::SumTree { .. } => "sum_tree",
            WorkloadSpec::Gossip { .. } => "gossip",
            WorkloadSpec::PointerChase { .. } => "pointer_chase",
        }
    }
}

/// Which coding scheme (or baseline) protects the run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum Scheme {
    /// Algorithm A (CRS, oblivious noise, K = m).
    A,
    /// Algorithm B (exchanged randomness, non-oblivious, K = m log m).
    B,
    /// Algorithm C (hidden CRS, non-oblivious, K = m log log m).
    C,
    /// Algorithm A with an explicit hash length (for the F5 sweep).
    AWithHash(u32),
    /// Unprotected execution.
    NoCoding,
    /// Per-bit repetition with odd factor `r`.
    Repetition(usize),
}

impl Scheme {
    /// The scheme's [`SchemeConfig`] (panics for baselines).
    pub fn config(&self, graph: &Graph, chunks_hint: usize, crs_master: u64) -> SchemeConfig {
        match *self {
            Scheme::A => SchemeConfig::algorithm_a(graph, crs_master),
            Scheme::B => SchemeConfig::algorithm_b(graph, chunks_hint),
            Scheme::C => SchemeConfig::algorithm_c(graph, crs_master),
            Scheme::AWithHash(tau) => {
                let mut cfg = SchemeConfig::algorithm_a(graph, crs_master);
                cfg.hash_bits = tau;
                cfg
            }
            Scheme::NoCoding | Scheme::Repetition(_) => {
                panic!("baselines have no scheme config")
            }
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match *self {
            Scheme::A => "alg_a".into(),
            Scheme::B => "alg_b".into(),
            Scheme::C => "alg_c".into(),
            Scheme::AWithHash(t) => format!("alg_a_tau{t}"),
            Scheme::NoCoding => "no_coding".into(),
            Scheme::Repetition(r) => format!("repeat{r}"),
        }
    }
}

/// Attack families, resolved into concrete adversaries once the phase
/// geometry of the compiled simulation is known.
///
/// Not `Copy` (unlike the other spec enums): [`AttackSpec::Scripted`]
/// carries the script it replays.
#[derive(Clone, Debug, Serialize)]
pub enum AttackSpec {
    /// No noise.
    None,
    /// Oblivious i.i.d. additive noise aiming for a total corruption count
    /// of `fraction × predicted CC`.
    Iid {
        /// Target noise fraction (of the communication).
        fraction: f64,
    },
    /// Oblivious burst on one directed link starting at the simulation
    /// phase of `at_iteration`.
    Burst {
        /// Directed-link index (into the canonical sorted order).
        link_index: usize,
        /// Iteration whose simulation phase is hit.
        at_iteration: u64,
        /// Burst length in rounds.
        len: u64,
    },
    /// One corruption early in the first simulation phase on directed
    /// link 0 (the §1.2 single-error experiment).
    SingleEarly,
    /// Oblivious noise confined to one phase kind.
    Phase {
        /// Target phase.
        phase: PhaseKind,
        /// Per-slot corruption probability inside that phase.
        prob: f64,
    },
    /// The §6.1 non-oblivious seed-aware collision hunter.
    SeedAware {
        /// Corruption budget per iteration.
        per_iteration: u64,
    },
    /// A fixed, pre-committed corruption script — the adversary-search
    /// genome, replayed verbatim through [`ScriptedAdversary`]. The
    /// engine budget of a scripted run is the script length (every step
    /// that fires costs exactly one corruption), so fitness per budget
    /// unit is damage / steps.
    Scripted {
        /// The steps (sorted and slot-deduped at construction).
        steps: Vec<ScriptStep>,
    },
}

impl AttackSpec {
    /// Builds the adversary for a simulation with the given geometry.
    ///
    /// `predicted_cc`/`predicted_rounds` size the i.i.d. probability so
    /// the expected corruption count hits the requested fraction of the
    /// communication.
    pub fn build(
        &self,
        graph: &Graph,
        geometry: PhaseGeometry,
        predicted_cc: u64,
        predicted_rounds: u64,
        seed: u64,
    ) -> Box<dyn Adversary> {
        let links: &[DirectedLink] = graph.links();
        match *self {
            AttackSpec::None => Box::new(NoNoise),
            AttackSpec::Iid { fraction } => {
                let slots = (predicted_rounds * links.len() as u64).max(1) as f64;
                let prob = (fraction * predicted_cc as f64 / slots).min(1.0);
                Box::new(IidNoise::new(graph, prob, seed).skip_before(geometry.setup))
            }
            AttackSpec::Burst {
                link_index,
                at_iteration,
                len,
            } => {
                let link = links[link_index % links.len()];
                let start = geometry.phase_start(at_iteration, PhaseKind::Simulation) + 1;
                Box::new(BurstLink::new(graph, link, start, len))
            }
            AttackSpec::SingleEarly => {
                let start = geometry.phase_start(0, PhaseKind::Simulation) + 2;
                Box::new(SingleError::new(graph, links[0], start))
            }
            AttackSpec::Phase { phase, prob } => {
                Box::new(PhaseTargeted::new(graph, geometry, phase, prob, seed))
            }
            AttackSpec::SeedAware { per_iteration } => Box::new(SeedAwareCollision::new(
                geometry,
                graph.edge_count(),
                per_iteration,
            )),
            AttackSpec::Scripted { ref steps } => {
                Box::new(ScriptedAdversary::new(graph, steps.clone()))
            }
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match *self {
            AttackSpec::None => "none".into(),
            AttackSpec::Iid { fraction } => format!("iid{fraction:.5}"),
            AttackSpec::Burst { .. } => "burst".into(),
            AttackSpec::SingleEarly => "single".into(),
            AttackSpec::Phase { phase, .. } => format!("phase_{phase:?}"),
            AttackSpec::SeedAware { .. } => "seed_aware".into(),
            AttackSpec::Scripted { ref steps } => format!("scripted{}", steps.len()),
        }
    }
}

/// Fault-schedule families, resolved into a concrete [`FaultPlan`] once
/// the graph and the predicted round horizon are known.
///
/// Rates and fractions are sanitized through [`FaultPlan::clamped_rate`]
/// at build time (the same clamping contract as [`AttackSpec::Iid`]), so
/// NaN/negative/out-of-range specs degrade to sane plans instead of
/// nonsense schedules.
#[derive(Clone, Copy, Debug, Serialize)]
pub enum FaultSpec {
    /// No faults (the empty plan; zero engine overhead).
    None,
    /// Seeded churn: each edge suffers one outage with probability
    /// `link_rate`, each party crashes once with probability
    /// `crash_rate`, outages lasting `outage_frac` of the predicted
    /// round horizon.
    Churn {
        /// Per-edge outage probability.
        link_rate: f64,
        /// Per-party crash probability.
        crash_rate: f64,
        /// Outage length as a fraction of the predicted rounds.
        outage_frac: f64,
    },
    /// A timed burst outage downing `fraction` of all edges together.
    Burst {
        /// Outage start, as a fraction of the predicted rounds.
        start_frac: f64,
        /// Outage length, as a fraction of the predicted rounds.
        len_frac: f64,
        /// Fraction of edges downed.
        fraction: f64,
    },
}

impl FaultSpec {
    /// Builds the concrete plan for a run predicted to last
    /// `predicted_rounds` wire rounds.
    pub fn build(&self, graph: &Graph, predicted_rounds: u64, seed: u64) -> FaultPlan {
        let horizon = predicted_rounds.max(1);
        let frac_rounds = |f: f64| ((FaultPlan::clamped_rate(f) * horizon as f64) as u64).max(1);
        match *self {
            FaultSpec::None => FaultPlan::none(),
            FaultSpec::Churn {
                link_rate,
                crash_rate,
                outage_frac,
            } => FaultPlan::churn(
                graph.edge_count(),
                graph.node_count(),
                FaultPlan::clamped_rate(link_rate),
                FaultPlan::clamped_rate(crash_rate),
                frac_rounds(outage_frac),
                horizon,
                seed,
            ),
            FaultSpec::Burst {
                start_frac,
                len_frac,
                fraction,
            } => FaultPlan {
                events: Vec::new(),
                bursts: vec![BurstOutage {
                    start: (FaultPlan::clamped_rate(start_frac) * horizon as f64) as u64,
                    rounds: frac_rounds(len_frac),
                    fraction: FaultPlan::clamped_rate(fraction),
                }],
                seed,
            },
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match *self {
            FaultSpec::None => "none".into(),
            FaultSpec::Churn {
                link_rate,
                crash_rate,
                ..
            } => format!("churn{link_rate:.2}-{crash_rate:.2}"),
            FaultSpec::Burst { fraction, .. } => format!("outage{fraction:.2}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_specs_resolve_and_clamp() {
        let g = TopoSpec::Ring(5).build(1);
        assert!(FaultSpec::None.build(&g, 100, 7).is_empty());
        let churn = FaultSpec::Churn {
            link_rate: 1.0,
            crash_rate: 1.0,
            outage_frac: 0.1,
        }
        .build(&g, 100, 7);
        assert!(!churn.is_empty());
        assert_eq!(churn, {
            // Deterministic in (graph, horizon, seed).
            FaultSpec::Churn {
                link_rate: 1.0,
                crash_rate: 1.0,
                outage_frac: 0.1,
            }
            .build(&g, 100, 7)
        });
        // Nonsense rates clamp instead of exploding.
        let clamped = FaultSpec::Churn {
            link_rate: f64::NAN,
            crash_rate: -3.0,
            outage_frac: 9.0,
        }
        .build(&g, 100, 7);
        assert!(clamped.is_empty());
        let burst = FaultSpec::Burst {
            start_frac: 2.0,
            len_frac: f64::NAN,
            fraction: 0.5,
        }
        .build(&g, 100, 7);
        assert_eq!(burst.bursts.len(), 1);
        assert_eq!(burst.bursts[0].start, 100, "start_frac clamps to 1.0");
        assert_eq!(burst.bursts[0].rounds, 1, "NaN length clamps to 1 round");
        assert!(!FaultSpec::None.label().is_empty());
        assert!(!churn.events.is_empty());
    }

    #[test]
    fn topo_labels_and_builds() {
        for t in [
            TopoSpec::Line(5),
            TopoSpec::Ring(5),
            TopoSpec::Star(5),
            TopoSpec::Clique(5),
            TopoSpec::Grid(2, 3),
            TopoSpec::Random(6, 9),
        ] {
            let g = t.build(3);
            assert!(g.is_connected(), "{}", t.label());
            assert!(!t.label().is_empty());
        }
    }

    #[test]
    fn workload_specs_build() {
        let specs = [
            WorkloadSpec::TokenRing { n: 4, laps: 2 },
            WorkloadSpec::LinePipeline { n: 4, epochs: 2 },
            WorkloadSpec::SumTree {
                topo: TopoSpec::Star(4),
                width: 3,
                epochs: 1,
            },
            WorkloadSpec::Gossip {
                topo: TopoSpec::Ring(4),
                rounds: 3,
            },
            WorkloadSpec::PointerChase {
                n: 3,
                width: 2,
                depth: 2,
            },
        ];
        for s in specs {
            let w = s.build(7);
            assert!(w.schedule().cc_bits() > 0, "{}", s.label());
        }
    }

    #[test]
    fn scheme_configs_validate() {
        let g = TopoSpec::Clique(5).build(1);
        for s in [Scheme::A, Scheme::B, Scheme::C, Scheme::AWithHash(12)] {
            let cfg = s.config(&g, 10, 0);
            cfg.validate(&g);
        }
    }

    #[test]
    #[should_panic(expected = "baselines")]
    fn baseline_has_no_config() {
        let g = TopoSpec::Ring(4).build(1);
        let _ = Scheme::NoCoding.config(&g, 1, 0);
    }

    #[test]
    fn attack_specs_resolve() {
        let g = TopoSpec::Ring(4).build(1);
        let geo = PhaseGeometry {
            setup: 0,
            meeting_points: 4,
            flag_passing: 5,
            simulation: 10,
            rewind: 4,
        };
        for a in [
            AttackSpec::None,
            AttackSpec::Iid { fraction: 0.01 },
            AttackSpec::Burst {
                link_index: 2,
                at_iteration: 0,
                len: 5,
            },
            AttackSpec::SingleEarly,
            AttackSpec::Phase {
                phase: PhaseKind::FlagPassing,
                prob: 0.1,
            },
            AttackSpec::SeedAware { per_iteration: 1 },
        ] {
            let adv = a.build(&g, geo, 1000, 100, 5);
            assert!(!adv.name().is_empty());
            assert!(!a.label().is_empty());
        }
    }
}
