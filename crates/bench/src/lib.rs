//! Experiment harness: declarative trial specs, Monte-Carlo runs
//! (crossbeam-parallel), and the generators behind every table/figure in
//! EXPERIMENTS.md.
//!
//! The crate's vocabulary, bottom-up:
//!
//! - A **spec** ([`WorkloadSpec`], [`Scheme`], [`AttackSpec`]) is plain
//!   data naming a topology+protocol, a coding scheme, and an adversary.
//!   Specs are cloneable plain data (all `Copy` except [`AttackSpec`],
//!   which may carry a corruption script), serializable, and sufficient
//!   — together with one `u64` seed — to rebuild a simulation
//!   bit-for-bit anywhere.
//! - A **trial** ([`run_trial`]) is one seeded simulation of a spec
//!   triple, returning a [`TrialResult`] outcome row. A **job** is a
//!   batch of trials ([`run_many`]) fanned across crossbeam scoped
//!   workers, each worker deriving its own seed stream via
//!   [`derive_trial_seed`]; results fold into a [`Summary`].
//! - A **service request** ([`SimRequest`]) is the same spec triple
//!   shipped to the `serve` crate's resident worker pool instead of run
//!   inline — [`sim_service`] wires the two crates together, and
//!   [`run_trial_serviced`] round-trips one trial through it.
//! - A **report** ([`report`]) is the artifact layer: markdown tables,
//!   the `out/<tier>-<sha>/manifest.json` provenance record, and the
//!   outcome-exact / timing-tolerant expectation diffing behind
//!   `repro diff`.
//!
//! Binaries: `experiments` (per-figure generators), `bencher` (open-loop
//! load against the service), `benchcmp` (A/B gate over bench JSON), and
//! `repro` (tiered one-command reproduction pipeline; see
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]

pub mod harness;
pub mod report;
pub mod search;
pub mod service;
pub mod spec;

pub use harness::{
    derive_trial_seed, run_many, run_many_faulted, run_trial, run_trial_faulted,
    run_trial_faulted_with_scratch, run_trial_recording, run_trial_serviced,
    run_trial_with_scratch, RecordedTrial, Summary, TrialResult,
};
pub use search::{
    record_seed, run_search, targets, SearchConfig, SearchMetric, SearchTarget, TargetReport,
};
pub use service::{sim_service, SimRequest};
pub use spec::{AttackSpec, FaultSpec, Scheme, TopoSpec, WorkloadSpec};
