//! Experiment harness: declarative trial specs, Monte-Carlo runs
//! (crossbeam-parallel), and the generators behind every table/figure in
//! EXPERIMENTS.md.
//!
//! Everything is driven by plain-data specs ([`WorkloadSpec`], [`Scheme`],
//! [`AttackSpec`]) so that each worker thread can rebuild its own
//! simulation deterministically from `(spec, trial_seed)`.

#![forbid(unsafe_code)]

pub mod harness;
pub mod spec;

pub use harness::{run_many, run_trial, run_trial_with_scratch, Summary, TrialResult};
pub use spec::{AttackSpec, Scheme, TopoSpec, WorkloadSpec};
