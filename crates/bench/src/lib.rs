//! Experiment harness: declarative trial specs, Monte-Carlo runs
//! (crossbeam-parallel), and the generators behind every table/figure in
//! EXPERIMENTS.md.
//!
//! Everything is driven by plain-data specs ([`WorkloadSpec`], [`Scheme`],
//! [`AttackSpec`]) so that each worker thread can rebuild its own
//! simulation deterministically from `(spec, trial_seed)` — which is also
//! what makes a trial a self-contained [`SimRequest`] servable by the
//! `serve` crate's worker pool (see [`service`]).

#![forbid(unsafe_code)]

pub mod harness;
pub mod service;
pub mod spec;

pub use harness::{
    derive_trial_seed, run_many, run_trial, run_trial_serviced, run_trial_with_scratch, Summary,
    TrialResult,
};
pub use service::{sim_service, SimRequest};
pub use spec::{AttackSpec, Scheme, TopoSpec, WorkloadSpec};
