//! # serve — simulation-as-a-service
//!
//! A long-lived [`SimService`] that multiplexes simulation requests over
//! a persistent pool of worker threads, in the
//! thread-local-frontends-feeding-a-backend shape: clients submit jobs
//! over bounded channels ([`crossbeam::channel`]) and receive a
//! [`Response`] on a per-request reply channel, while every worker owns
//! a reusable [`mpic::RunScratch`] (whose intra-trial
//! `crossbeam::WorkerPool` persists across requests) and shares one
//! [`mpic::ArtifactCache`] of precompiled structural artifacts.
//!
//! The service is generic over the [`Job`] trait so the queueing,
//! priority, backpressure, cancellation and shutdown machinery can be
//! tested with synthetic jobs; the concrete simulation request type
//! (`bench::SimRequest`) lives in the `bench` crate, which owns the
//! workload/scheme/attack vocabulary.
//!
//! ## Determinism
//!
//! A job's output must depend only on the job itself — never on which
//! worker ran it, what the cache contained, or how requests interleaved.
//! For simulation requests this holds by construction (cached statics
//! are byte-identical to freshly compiled ones, and outcomes are
//! invariant under `Parallelism`); the `serve_identity` integration
//! suite pins it across the scheme × adversary × parallelism matrix.
//!
//! ## Queueing model
//!
//! Two bounded FIFO lanes ([`Priority::High`] and [`Priority::Normal`]);
//! workers always drain the high lane first. When a lane is full,
//! [`Backpressure::Block`] makes `submit` wait for space and
//! [`Backpressure::Reject`] fails fast with a retry-after hint — the
//! open-loop `bencher` uses both modes to measure saturation behavior.
//!
//! ## Request lifecycle, in vocabulary order
//!
//! 1. A client handle ([`SimService::client`], cheap to clone) calls
//!    [`SimService::submit`], which enqueues the [`Job`] and returns a
//!    [`Ticket`] — a one-shot future for this request's reply.
//! 2. A worker dequeues it (high lane first), stamps the queue delay,
//!    runs it against its pooled [`JobCtx`], and sends back a
//!    [`Response`] carrying the [`Outcome`] plus per-request telemetry
//!    (`queue_ns`, `exec_ns`, serving worker, cache hit).
//! 3. [`Ticket::wait`] / [`Ticket::try_wait`] deliver the response;
//!    [`Ticket::cancel`] revokes a not-yet-started request, which
//!    surfaces as [`Outcome::Cancelled`].
//! 4. [`SimService::shutdown`] drains in-flight work and folds worker
//!    counters into [`ServiceStats`].
//!
//! Latency measurement lives beside, not inside, the service: callers
//! record ticket round-trips into [`LatencyHistogram`]s, as the `bench`
//! crate's `bencher` (ad-hoc load exploration) and `repro` (the serve
//! sweep of the tiered reproduction pipeline, see EXPERIMENTS.md) both
//! do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;

pub use hist::LatencyHistogram;

use crossbeam::channel::{bounded, Receiver, Select, Sender, TryRecvError, TrySendError};
use mpic::{ArtifactCache, Parallelism, RunScratch};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A unit of work the service executes on a worker thread.
///
/// `run` receives a [`JobCtx`] with the worker's pooled resources; the
/// contract is that the output depends only on `self` (see the crate
/// docs on determinism).
pub trait Job: Send + 'static {
    /// The job's result type, delivered in [`Response::outcome`].
    type Out: Send + 'static;

    /// Executes the job on a worker.
    fn run(&self, ctx: &mut JobCtx<'_>) -> Self::Out;
}

/// Worker-side execution context handed to [`Job::run`].
pub struct JobCtx<'a> {
    /// The worker's reusable run buffers (frames, arenas, and the
    /// persistent intra-trial `crossbeam::WorkerPool`).
    pub scratch: &'a mut RunScratch,
    /// The service-wide cache of precompiled [`mpic::SimStatics`].
    pub cache: &'a ArtifactCache,
    /// Intra-trial thread budget the service grants each request.
    pub parallelism: Parallelism,
    /// Index of the worker running this job (diagnostic only — outputs
    /// must not depend on it).
    pub worker: usize,
    /// Set by the job: did the artifact lookups hit the cache? Copied
    /// into [`Response::cache_hit`].
    pub cache_hit: bool,
}

/// Queue lane of a request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Served before any queued normal-priority request.
    High,
    /// The default lane.
    #[default]
    Normal,
}

/// What `submit` does when the chosen lane's queue is full.
#[derive(Clone, Copy, Debug)]
pub enum Backpressure {
    /// Block the submitting thread until the queue has room.
    Block,
    /// Fail fast with [`SubmitError::Overloaded`], advising the client
    /// to retry after the given duration.
    Reject {
        /// Hint returned to rejected clients.
        retry_after: Duration,
    },
}

/// Service construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads. `0` means the `SIM_THREADS` override when set,
    /// otherwise the machine's available parallelism.
    pub workers: usize,
    /// Capacity of each priority lane's queue.
    pub queue_capacity: usize,
    /// Full-queue behavior of `submit`.
    pub backpressure: Backpressure,
    /// Intra-trial thread budget granted to each request (outcome-
    /// invariant; wall-clock only).
    pub parallelism: Parallelism,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 128,
            backpressure: Backpressure::Block,
            parallelism: Parallelism::Serial,
        }
    }
}

/// Why `submit` refused a request.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full under [`Backpressure::Reject`]; retry after the
    /// hinted duration.
    Overloaded {
        /// Backoff hint from the service configuration.
        retry_after: Duration,
    },
    /// The service is shutting down (or gone); no new requests.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { retry_after } => {
                write!(f, "service overloaded; retry after {retry_after:?}")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a request ended.
#[derive(Debug, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The job ran to completion.
    Done(T),
    /// The request was cancelled before a worker started executing it
    /// (cancellation after dispatch is best-effort: the job completes).
    Cancelled,
}

impl<T> Outcome<T> {
    /// The completed output, if any.
    pub fn done(self) -> Option<T> {
        match self {
            Outcome::Done(t) => Some(t),
            Outcome::Cancelled => None,
        }
    }
}

/// A served request's reply: outcome plus queue/execution timings.
#[derive(Debug)]
pub struct Response<T> {
    /// Completion or cancellation.
    pub outcome: Outcome<T>,
    /// Nanoseconds between submission and a worker picking the request
    /// up (for cancelled requests: until the cancellation was observed).
    pub queue_ns: u64,
    /// Nanoseconds of job execution (0 for cancelled requests).
    pub exec_ns: u64,
    /// Worker that served the request (diagnostic).
    pub worker: usize,
    /// Whether the job's artifact lookups all hit the shared cache.
    pub cache_hit: bool,
}

/// Error returned by [`Ticket::wait`]: the service dropped the request
/// without replying. Graceful shutdown never produces this — accepted
/// requests (including ones whose submitter was blocked in a full
/// lane's `send`) are served or resolve [`Outcome::Cancelled`]. It can
/// only arise if the job panicked on a worker (the reply sender drops
/// during unwinding) or the service value was leaked.
#[derive(Debug, PartialEq, Eq)]
pub struct Lost;

/// Client-side handle to one in-flight request.
pub struct Ticket<T> {
    reply: Receiver<Response<T>>,
    cancel: Arc<AtomicBool>,
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("cancel_requested", &self.cancel.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<T> Ticket<T> {
    /// Requests cancellation. Effective until a worker dispatches the
    /// job; afterwards the job runs to completion and `wait` returns
    /// [`Outcome::Done`]. Idempotent.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Blocks until the reply arrives.
    pub fn wait(self) -> Result<Response<T>, Lost> {
        self.reply.recv().map_err(|_| Lost)
    }

    /// Non-blocking poll; returns the ticket back while pending.
    pub fn try_wait(self) -> Result<Response<T>, Result<Ticket<T>, Lost>> {
        match self.reply.try_recv() {
            Ok(r) => Ok(r),
            Err(TryRecvError::Empty) => Err(Ok(self)),
            Err(TryRecvError::Disconnected) => Err(Err(Lost)),
        }
    }
}

/// Monotonic counters of one service instance. Snapshot via
/// [`SimService::stats`]; all counters are cumulative since start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests whose job ran to completion.
    pub served: u64,
    /// Requests cancelled before dispatch.
    pub cancelled: u64,
    /// Requests rejected by [`Backpressure::Reject`] on a full queue.
    pub rejected: u64,
    /// Artifact-cache hits across all workers.
    pub cache_hits: u64,
    /// Artifact-cache misses (compilations) across all workers.
    pub cache_misses: u64,
    /// Distinct artifacts currently cached.
    pub cache_entries: u64,
    /// Requests accepted but not yet dispatched. Counts submitters
    /// currently blocked in a full lane's `send` under
    /// [`Backpressure::Block`] as well as messages sitting in a queue —
    /// i.e. demand waiting on the service, which can transiently exceed
    /// the configured queue capacities.
    pub queue_depth: u64,
    /// High-water mark of [`queue_depth`](Self::queue_depth) (same
    /// semantics: includes blocked submitters).
    pub queue_depth_highwater: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    served: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    depth: AtomicU64,
    depth_highwater: AtomicU64,
    /// Submitters currently inside `submit` (possibly blocked in a full
    /// lane's `send`). Shutdown waits for this to reach zero *before*
    /// telling workers to drain, so a blocked submitter can never
    /// enqueue behind the final sweep and strand its envelope.
    inflight: AtomicU64,
}

struct Shared {
    cache: ArtifactCache,
    counters: Counters,
    /// Cleared first on shutdown: submit fails fast.
    accepting: AtomicBool,
    /// Set on shutdown: workers exit once both lanes are empty.
    draining: AtomicBool,
}

struct Envelope<J: Job> {
    job: J,
    cancel: Arc<AtomicBool>,
    reply: Sender<Response<J::Out>>,
    submitted: Instant,
}

/// A cloneable submission handle to a running [`SimService`].
pub struct Client<J: Job> {
    high: Sender<Envelope<J>>,
    normal: Sender<Envelope<J>>,
    shared: Arc<Shared>,
    backpressure: Backpressure,
}

impl<J: Job> Clone for Client<J> {
    fn clone(&self) -> Self {
        Client {
            high: self.high.clone(),
            normal: self.normal.clone(),
            shared: Arc::clone(&self.shared),
            backpressure: self.backpressure,
        }
    }
}

impl<J: Job> Client<J> {
    /// Submits a job on the given priority lane. Returns a [`Ticket`]
    /// for the reply, or fails per the configured [`Backpressure`].
    pub fn submit(&self, job: J, priority: Priority) -> Result<Ticket<J::Out>, SubmitError> {
        // Register as in-flight *before* the accepting check (and
        // deregister on every exit): shutdown stores `accepting = false`
        // and then waits for `inflight == 0`, so with both sides SeqCst
        // either this submit observes the store and bails, or shutdown
        // observes the registration and waits for the enqueue to land
        // while workers are still draining.
        let inflight = &self.shared.counters.inflight;
        inflight.fetch_add(1, Ordering::SeqCst);
        let res = self.submit_inner(job, priority);
        inflight.fetch_sub(1, Ordering::SeqCst);
        res
    }

    fn submit_inner(&self, job: J, priority: Priority) -> Result<Ticket<J::Out>, SubmitError> {
        if !self.shared.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let (reply_tx, reply_rx) = bounded(1);
        let cancel = Arc::new(AtomicBool::new(false));
        let env = Envelope {
            job,
            cancel: Arc::clone(&cancel),
            reply: reply_tx,
            submitted: Instant::now(),
        };
        let lane = match priority {
            Priority::High => &self.high,
            Priority::Normal => &self.normal,
        };
        // Count the request as queued *before* handing it to the lane: a
        // worker may dispatch (and decrement) the instant the send lands,
        // so incrementing afterwards would let the depth counter go
        // transiently negative. Roll back if the lane refuses it.
        let c = &self.shared.counters;
        let depth = c.depth.fetch_add(1, Ordering::SeqCst) + 1;
        c.depth_highwater.fetch_max(depth, Ordering::Relaxed);
        match self.backpressure {
            Backpressure::Block => lane.send(env).map_err(|_| {
                c.depth.fetch_sub(1, Ordering::SeqCst);
                SubmitError::ShuttingDown
            })?,
            Backpressure::Reject { retry_after } => match lane.try_send(env) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    c.depth.fetch_sub(1, Ordering::SeqCst);
                    c.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Overloaded { retry_after });
                }
                Err(TrySendError::Disconnected(_)) => {
                    c.depth.fetch_sub(1, Ordering::SeqCst);
                    return Err(SubmitError::ShuttingDown);
                }
            },
        }
        c.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket {
            reply: reply_rx,
            cancel,
        })
    }
}

/// The simulation service: a bounded two-lane request queue feeding a
/// persistent pool of worker threads. See the crate docs for the model.
pub struct SimService<J: Job> {
    client: Client<J>,
    /// Receiver clones kept for the post-shutdown sweep.
    high_rx: Receiver<Envelope<J>>,
    normal_rx: Receiver<Envelope<J>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shut: bool,
}

impl<J: Job> SimService<J> {
    /// Starts the service: spawns the worker pool and opens the queues.
    pub fn start(cfg: ServiceConfig) -> Self {
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            mpic::sim_threads_env().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
        };
        let (high_tx, high_rx) = bounded::<Envelope<J>>(cfg.queue_capacity.max(1));
        let (normal_tx, normal_rx) = bounded::<Envelope<J>>(cfg.queue_capacity.max(1));
        let shared = Arc::new(Shared {
            cache: ArtifactCache::new(),
            counters: Counters::default(),
            accepting: AtomicBool::new(true),
            draining: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|w| {
                let high = high_rx.clone();
                let normal = normal_rx.clone();
                let shared = Arc::clone(&shared);
                let parallelism = cfg.parallelism;
                std::thread::Builder::new()
                    .name(format!("sim-worker-{w}"))
                    .spawn(move || worker_loop(w, &high, &normal, &shared, parallelism))
                    .expect("spawn service worker")
            })
            .collect();
        SimService {
            client: Client {
                high: high_tx,
                normal: normal_tx,
                shared,
                backpressure: cfg.backpressure,
            },
            high_rx,
            normal_rx,
            workers: handles,
            shut: false,
        }
    }

    /// A cloneable submission handle (frontends hold these).
    pub fn client(&self) -> Client<J> {
        self.client.clone()
    }

    /// Submits directly through the service's own handle.
    pub fn submit(&self, job: J, priority: Priority) -> Result<Ticket<J::Out>, SubmitError> {
        self.client.submit(job, priority)
    }

    /// The shared artifact cache (for inspection/warm-up).
    pub fn cache(&self) -> &ArtifactCache {
        &self.client.shared.cache
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let shared = &self.client.shared;
        let c = &shared.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            cache_hits: shared.cache.hits(),
            cache_misses: shared.cache.misses(),
            cache_entries: shared.cache.len() as u64,
            queue_depth: c.depth.load(Ordering::Relaxed),
            queue_depth_highwater: c.depth_highwater.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, wait for in-flight submits
    /// (including ones blocked on a full lane) to land, serve everything
    /// queued, and join the workers. Every accepted request's ticket
    /// resolves — [`Outcome::Done`] or [`Outcome::Cancelled`], never
    /// [`Lost`]. Returns the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        let stats = self.stats();
        // Drop proceeds with `shut = true`, so no double teardown.
        stats
    }

    fn shutdown_inner(&mut self) {
        if self.shut {
            return;
        }
        self.shut = true;
        let shared = &self.client.shared;
        shared.accepting.store(false, Ordering::SeqCst);
        // Wait for every in-flight submit — including ones blocked in a
        // full lane's `send` under Backpressure::Block — to finish while
        // the workers are still serving (so blocked senders make
        // progress). Afterwards nothing can enqueue: new submits fail
        // the accepting check before touching a lane.
        while shared.counters.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        shared.draining.store(true, Ordering::SeqCst);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Post-join sweep (defense in depth): with the inflight wait
        // above the lanes should already be empty, but deliver Cancelled
        // to anything found so no ticket is ever left unresolved.
        for rx in [&self.high_rx, &self.normal_rx] {
            while let Ok(env) = rx.try_recv() {
                shared.counters.depth.fetch_sub(1, Ordering::Relaxed);
                shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                let _ = env.reply.send(Response {
                    outcome: Outcome::Cancelled,
                    queue_ns: env.submitted.elapsed().as_nanos() as u64,
                    exec_ns: 0,
                    worker: usize::MAX,
                    cache_hit: false,
                });
            }
        }
    }
}

impl<J: Job> Drop for SimService<J> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// How long an idle worker waits before re-checking the draining flag.
/// Arrivals wake workers immediately through the channel `Select`; this
/// bounds only shutdown latency while clients still hold live senders.
const IDLE_POLL: Duration = Duration::from_millis(20);

fn worker_loop<J: Job>(
    worker: usize,
    high: &Receiver<Envelope<J>>,
    normal: &Receiver<Envelope<J>>,
    shared: &Shared,
    parallelism: Parallelism,
) {
    let mut scratch = RunScratch::new();
    let mut sel = Select::new();
    sel.recv(high);
    sel.recv(normal);
    loop {
        // Strict priority: drain the high lane before touching normal.
        // The recv errors double as the disconnect probe — never probe
        // with a second try_recv, which could consume (and then drop) an
        // envelope that raced in between the calls.
        let high_err = match high.try_recv() {
            Ok(env) => {
                serve_one(worker, env, &mut scratch, shared, parallelism);
                continue;
            }
            Err(e) => e,
        };
        let normal_err = match normal.try_recv() {
            Ok(env) => {
                serve_one(worker, env, &mut scratch, shared, parallelism);
                continue;
            }
            Err(e) => e,
        };
        // Both lanes empty right now. Exit when draining, or when both
        // lanes are disconnected (all submitters gone).
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        if high_err == TryRecvError::Disconnected && normal_err == TryRecvError::Disconnected {
            break;
        }
        let _ = sel.ready_timeout(IDLE_POLL);
    }
}

fn serve_one<J: Job>(
    worker: usize,
    env: Envelope<J>,
    scratch: &mut RunScratch,
    shared: &Shared,
    parallelism: Parallelism,
) {
    shared.counters.depth.fetch_sub(1, Ordering::Relaxed);
    let queue_ns = env.submitted.elapsed().as_nanos() as u64;
    if env.cancel.load(Ordering::SeqCst) {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        let _ = env.reply.send(Response {
            outcome: Outcome::Cancelled,
            queue_ns,
            exec_ns: 0,
            worker,
            cache_hit: false,
        });
        return;
    }
    let mut ctx = JobCtx {
        scratch,
        cache: &shared.cache,
        parallelism,
        worker,
        cache_hit: false,
    };
    let t0 = Instant::now();
    let out = env.job.run(&mut ctx);
    let exec_ns = t0.elapsed().as_nanos() as u64;
    let cache_hit = ctx.cache_hit;
    shared.counters.served.fetch_add(1, Ordering::Relaxed);
    // A dropped ticket is fine — the client walked away.
    let _ = env.reply.send(Response {
        outcome: Outcome::Done(out),
        queue_ns,
        exec_ns,
        worker,
        cache_hit,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel as ch;

    /// A job that returns its payload, optionally blocking on a gate
    /// channel first (lets tests hold a worker busy deterministically).
    struct TestJob {
        id: u64,
        gate: Option<ch::Receiver<()>>,
        done: Option<ch::Sender<u64>>,
    }

    impl TestJob {
        fn plain(id: u64) -> Self {
            TestJob {
                id,
                gate: None,
                done: None,
            }
        }
    }

    impl Job for TestJob {
        type Out = u64;
        fn run(&self, _ctx: &mut JobCtx<'_>) -> u64 {
            if let Some(gate) = &self.gate {
                let _ = gate.recv();
            }
            if let Some(done) = &self.done {
                let _ = done.send(self.id);
            }
            self.id
        }
    }

    fn single_worker() -> SimService<TestJob> {
        SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn round_trip_with_timings() {
        let svc = single_worker();
        let t = svc.submit(TestJob::plain(7), Priority::Normal).unwrap();
        let r = t.wait().unwrap();
        assert_eq!(r.outcome, Outcome::Done(7));
        assert_eq!(r.worker, 0);
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.queue_depth_highwater, 1);
    }

    #[test]
    fn high_priority_overtakes_queued_normal() {
        let svc = single_worker();
        let (gate_tx, gate_rx) = ch::bounded(1);
        let (done_tx, done_rx) = ch::bounded(8);
        // Occupy the single worker.
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: Some(done_tx.clone()),
                },
                Priority::Normal,
            )
            .unwrap();
        // Wait until the worker has actually dispatched the blocker, so
        // the next two submissions sit in the queues together.
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let normal = svc
            .submit(
                TestJob {
                    id: 1,
                    gate: None,
                    done: Some(done_tx.clone()),
                },
                Priority::Normal,
            )
            .unwrap();
        let urgent = svc
            .submit(
                TestJob {
                    id: 2,
                    gate: None,
                    done: Some(done_tx),
                },
                Priority::High,
            )
            .unwrap();
        gate_tx.send(()).unwrap();
        assert_eq!(done_rx.recv(), Ok(0)); // blocker finishes first
        assert_eq!(done_rx.recv(), Ok(2)); // high lane overtakes
        assert_eq!(done_rx.recv(), Ok(1));
        for t in [blocker, normal, urgent] {
            assert!(matches!(t.wait().unwrap().outcome, Outcome::Done(_)));
        }
        svc.shutdown();
    }

    #[test]
    fn reject_backpressure_reports_overloaded() {
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject {
                retry_after: Duration::from_millis(7),
            },
            ..ServiceConfig::default()
        });
        let (gate_tx, gate_rx) = ch::bounded(1);
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        // Wait for dispatch so exactly one queue slot is free.
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let queued = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        let r = svc.submit(TestJob::plain(2), Priority::Normal);
        assert_eq!(
            r.unwrap_err(),
            SubmitError::Overloaded {
                retry_after: Duration::from_millis(7)
            }
        );
        // The high lane has its own capacity.
        let urgent = svc.submit(TestJob::plain(3), Priority::High).unwrap();
        gate_tx.send(()).unwrap();
        for t in [blocker, queued, urgent] {
            assert!(matches!(t.wait().unwrap().outcome, Outcome::Done(_)));
        }
        let stats = svc.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.served, 3);
    }

    #[test]
    fn cancel_before_dispatch_skips_execution() {
        let svc = single_worker();
        let (gate_tx, gate_rx) = ch::bounded(1);
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let victim = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        victim.cancel();
        gate_tx.send(()).unwrap();
        let r = victim.wait().unwrap();
        assert_eq!(r.outcome, Outcome::Cancelled);
        assert_eq!(r.exec_ns, 0);
        assert!(matches!(blocker.wait().unwrap().outcome, Outcome::Done(0)));
        let stats = svc.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn cancel_after_dispatch_still_completes() {
        let svc = single_worker();
        let (gate_tx, gate_rx) = ch::bounded(1);
        let (started_tx, started_rx) = ch::bounded(1);
        let t = svc
            .submit(
                TestJob {
                    id: 5,
                    gate: Some(gate_rx),
                    done: Some(started_tx),
                },
                Priority::Normal,
            )
            .unwrap();
        // The job signals `done` only after the gate opens; to know it
        // was *dispatched*, watch the queue drain instead.
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        t.cancel(); // too late: already executing (blocked on the gate)
        gate_tx.send(()).unwrap();
        assert_eq!(started_rx.recv(), Ok(5));
        let r = t.wait().unwrap();
        assert_eq!(r.outcome, Outcome::Done(5));
        let stats = svc.shutdown();
        assert_eq!(stats.cancelled, 0);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let svc = single_worker();
        let (gate_tx, gate_rx) = ch::bounded(1);
        let mut tickets = vec![svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap()];
        for id in 1..6 {
            tickets.push(svc.submit(TestJob::plain(id), Priority::Normal).unwrap());
        }
        gate_tx.send(()).unwrap();
        let stats = svc.shutdown(); // must serve all six, then join
        assert_eq!(stats.served, 6);
        for (id, t) in tickets.into_iter().enumerate() {
            let r = t.wait().unwrap();
            assert_eq!(r.outcome, Outcome::Done(id as u64));
        }
    }

    #[test]
    fn blocked_submitter_resolves_on_shutdown() {
        // A Block-mode submitter stuck in a full lane's send while the
        // service shuts down must still get a reply (Done or Cancelled,
        // never Lost): shutdown waits for in-flight submits to land
        // before the workers drain.
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let (gate_tx, gate_rx) = ch::bounded(1);
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        // Fill the single normal-lane slot, then block a third submit.
        let queued = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        let client = svc.client();
        let submitter =
            std::thread::spawn(move || client.submit(TestJob::plain(2), Priority::Normal));
        // Give the submitter time to block in send, start the shutdown
        // (which blocks waiting for it), then release the worker.
        std::thread::sleep(Duration::from_millis(20));
        let shut = std::thread::spawn(move || svc.shutdown());
        std::thread::sleep(Duration::from_millis(10));
        gate_tx.send(()).unwrap();
        let stats = shut.join().unwrap();
        match submitter.join().unwrap() {
            Ok(t) => {
                // Accepted: the ticket must resolve, not report Lost.
                t.wait().expect("blocked submitter's ticket resolved Lost");
            }
            Err(e) => assert_eq!(e, SubmitError::ShuttingDown),
        }
        for t in [blocker, queued] {
            assert!(matches!(t.wait().unwrap().outcome, Outcome::Done(_)));
        }
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.served + stats.cancelled, stats.submitted);
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let svc = single_worker();
        let client = svc.client();
        svc.shutdown();
        assert_eq!(
            client
                .submit(TestJob::plain(1), Priority::Normal)
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn idle_workers_never_drop_racing_submissions() {
        // Each submission lands while the workers are idling in the
        // disconnect-probe path; a consuming probe there (the original
        // bug) would drop envelopes and leave tickets Lost.
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        });
        for i in 0..200 {
            let pri = if i % 8 == 0 {
                Priority::High
            } else {
                Priority::Normal
            };
            let t = svc.submit(TestJob::plain(i), pri).unwrap();
            assert_eq!(t.wait().unwrap().outcome, Outcome::Done(i));
        }
        let stats = svc.shutdown();
        assert_eq!(stats.served, 200);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn many_workers_serve_everything_once() {
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = (0..64)
            .map(|i| svc.submit(TestJob::plain(i), Priority::Normal).unwrap())
            .collect();
        let mut got: Vec<u64> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().outcome.done().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        let stats = svc.shutdown();
        assert_eq!(stats.served, 64);
        assert_eq!(stats.cancelled + stats.rejected, 0);
    }
}
