//! # serve — simulation-as-a-service
//!
//! A long-lived [`SimService`] that multiplexes simulation requests over
//! a persistent pool of worker threads, in the
//! thread-local-frontends-feeding-a-backend shape: clients submit jobs
//! over bounded channels ([`crossbeam::channel`]) and receive a
//! [`Response`] on a per-request reply channel, while every worker owns
//! a reusable [`mpic::RunScratch`] (whose intra-trial
//! `crossbeam::WorkerPool` persists across requests) and shares one
//! [`mpic::ArtifactCache`] of precompiled structural artifacts.
//!
//! The service is generic over the [`Job`] trait so the queueing,
//! priority, backpressure, cancellation and shutdown machinery can be
//! tested with synthetic jobs; the concrete simulation request type
//! (`bench::SimRequest`) lives in the `bench` crate, which owns the
//! workload/scheme/attack vocabulary.
//!
//! ## Determinism
//!
//! A job's output must depend only on the job itself — never on which
//! worker ran it, what the cache contained, or how requests interleaved.
//! For simulation requests this holds by construction (cached statics
//! are byte-identical to freshly compiled ones, and outcomes are
//! invariant under `Parallelism`); the `serve_identity` integration
//! suite pins it across the scheme × adversary × parallelism matrix.
//!
//! ## Queueing model
//!
//! Two bounded FIFO lanes ([`Priority::High`] and [`Priority::Normal`]);
//! workers always drain the high lane first. When a lane is full,
//! [`Backpressure::Block`] makes `submit` wait for space and
//! [`Backpressure::Reject`] fails fast with a retry-after hint — the
//! open-loop `bencher` uses both modes to measure saturation behavior.
//!
//! ## Request lifecycle, in vocabulary order
//!
//! 1. A client handle ([`SimService::client`], cheap to clone) calls
//!    [`SimService::submit`], which enqueues the [`Job`] and returns a
//!    [`Ticket`] — a one-shot future for this request's reply.
//! 2. A worker dequeues it (high lane first), stamps the queue delay,
//!    runs it against its pooled [`JobCtx`], and sends back a
//!    [`Response`] carrying the [`Outcome`] plus per-request telemetry
//!    (`queue_ns`, `exec_ns`, serving worker, cache hit).
//! 3. [`Ticket::wait`] / [`Ticket::try_wait`] deliver the response;
//!    [`Ticket::cancel`] revokes a not-yet-started request, which
//!    surfaces as [`Outcome::Cancelled`].
//! 4. [`SimService::shutdown`] drains in-flight work and folds worker
//!    counters into [`ServiceStats`].
//!
//! ## Robustness
//!
//! The serving path never strands a ticket:
//!
//! * **Panic containment** — a job that panics on a worker is caught
//!   ([`std::panic::catch_unwind`]); the caller receives
//!   [`Outcome::Failed`] carrying the panic message, the worker replaces
//!   its scratch (whose state the unwind may have corrupted) and keeps
//!   serving.
//! * **Deadlines** — [`Client::submit_with`] attaches a per-request
//!   deadline ([`SubmitOpts::deadline`], measured from submission); a
//!   request still queued when it expires resolves [`Outcome::TimedOut`]
//!   without executing. Dispatch is the commit point: once a worker
//!   starts a job it runs to completion.
//! * **Bounded retry** — [`Client::submit_retry`] retries
//!   [`SubmitError::Overloaded`] rejections with exponential backoff
//!   (respecting the service's `retry_after` hint) up to
//!   [`RetryPolicy::attempts`].
//!
//! The counters balance exactly:
//! `submitted = served + cancelled + rejected + timed_out` once all
//! tickets resolve (panicked requests count as served, with a separate
//! [`ServiceStats::panicked`] sub-counter).
//!
//! Latency measurement lives beside, not inside, the service: callers
//! record ticket round-trips into [`LatencyHistogram`]s, as the `bench`
//! crate's `bencher` (ad-hoc load exploration) and `repro` (the serve
//! sweep of the tiered reproduction pipeline, see EXPERIMENTS.md) both
//! do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;

pub use hist::LatencyHistogram;

use crossbeam::channel::{bounded, Receiver, Select, Sender, TryRecvError, TrySendError};
use mpic::{ArtifactCache, Parallelism, RunScratch};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A unit of work the service executes on a worker thread.
///
/// `run` receives a [`JobCtx`] with the worker's pooled resources; the
/// contract is that the output depends only on `self` (see the crate
/// docs on determinism).
pub trait Job: Send + 'static {
    /// The job's result type, delivered in [`Response::outcome`].
    type Out: Send + 'static;

    /// Executes the job on a worker.
    fn run(&self, ctx: &mut JobCtx<'_>) -> Self::Out;
}

/// Worker-side execution context handed to [`Job::run`].
pub struct JobCtx<'a> {
    /// The worker's reusable run buffers (frames, arenas, and the
    /// persistent intra-trial `crossbeam::WorkerPool`).
    pub scratch: &'a mut RunScratch,
    /// The service-wide cache of precompiled [`mpic::SimStatics`].
    pub cache: &'a ArtifactCache,
    /// Intra-trial thread budget the service grants each request.
    pub parallelism: Parallelism,
    /// Index of the worker running this job (diagnostic only — outputs
    /// must not depend on it).
    pub worker: usize,
    /// Set by the job: did the artifact lookups hit the cache? Copied
    /// into [`Response::cache_hit`].
    pub cache_hit: bool,
}

/// Queue lane of a request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Served before any queued normal-priority request.
    High,
    /// The default lane.
    #[default]
    Normal,
}

/// What `submit` does when the chosen lane's queue is full.
#[derive(Clone, Copy, Debug)]
pub enum Backpressure {
    /// Block the submitting thread until the queue has room.
    Block,
    /// Fail fast with [`SubmitError::Overloaded`], advising the client
    /// to retry after the given duration.
    Reject {
        /// Hint returned to rejected clients.
        retry_after: Duration,
    },
}

/// Service construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads. `0` means the `SIM_THREADS` override when set,
    /// otherwise the machine's available parallelism.
    pub workers: usize,
    /// Capacity of each priority lane's queue.
    pub queue_capacity: usize,
    /// Full-queue behavior of `submit`.
    pub backpressure: Backpressure,
    /// Intra-trial thread budget granted to each request (outcome-
    /// invariant; wall-clock only).
    pub parallelism: Parallelism,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 128,
            backpressure: Backpressure::Block,
            parallelism: Parallelism::Serial,
        }
    }
}

/// Why `submit` refused a request.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full under [`Backpressure::Reject`]; retry after the
    /// hinted duration.
    Overloaded {
        /// Backoff hint from the service configuration.
        retry_after: Duration,
    },
    /// The service is shutting down (or gone); no new requests.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { retry_after } => {
                write!(f, "service overloaded; retry after {retry_after:?}")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a request ended.
#[derive(Debug, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The job ran to completion.
    Done(T),
    /// The request was cancelled before a worker started executing it
    /// (cancellation after dispatch is best-effort: the job completes).
    Cancelled,
    /// The job panicked on a worker. The panic was contained
    /// ([`std::panic::catch_unwind`]): the worker survives with a fresh
    /// scratch and the reply channel is never stranded.
    Failed {
        /// The panic payload, stringified when it was a `&str`/`String`.
        panic: String,
    },
    /// The request's [`SubmitOpts::deadline`] expired while it was still
    /// queued; the job never executed.
    TimedOut,
}

impl<T> Outcome<T> {
    /// The completed output, if any.
    pub fn done(self) -> Option<T> {
        match self {
            Outcome::Done(t) => Some(t),
            Outcome::Cancelled | Outcome::Failed { .. } | Outcome::TimedOut => None,
        }
    }
}

/// A served request's reply: outcome plus queue/execution timings.
#[derive(Debug)]
pub struct Response<T> {
    /// Completion or cancellation.
    pub outcome: Outcome<T>,
    /// Nanoseconds between submission and a worker picking the request
    /// up (for cancelled requests: until the cancellation was observed).
    pub queue_ns: u64,
    /// Nanoseconds of job execution (0 for cancelled requests).
    pub exec_ns: u64,
    /// Worker that served the request (diagnostic).
    pub worker: usize,
    /// Whether the job's artifact lookups all hit the shared cache.
    pub cache_hit: bool,
}

/// Error returned by [`Ticket::wait`]: the service dropped the request
/// without replying. Graceful shutdown never produces this — accepted
/// requests (including ones whose submitter was blocked in a full
/// lane's `send`) are served or resolve [`Outcome::Cancelled`] — and
/// worker panics don't either (they're contained and reply
/// [`Outcome::Failed`]). It can only arise if the service value was
/// leaked.
#[derive(Debug, PartialEq, Eq)]
pub struct Lost;

/// Client-side handle to one in-flight request.
pub struct Ticket<T> {
    reply: Receiver<Response<T>>,
    cancel: Arc<AtomicBool>,
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("cancel_requested", &self.cancel.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<T> Ticket<T> {
    /// Requests cancellation. Effective until a worker dispatches the
    /// job; afterwards the job runs to completion and `wait` returns
    /// [`Outcome::Done`]. Idempotent.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Blocks until the reply arrives.
    pub fn wait(self) -> Result<Response<T>, Lost> {
        self.reply.recv().map_err(|_| Lost)
    }

    /// Non-blocking poll; returns the ticket back while pending.
    pub fn try_wait(self) -> Result<Response<T>, Result<Ticket<T>, Lost>> {
        match self.reply.try_recv() {
            Ok(r) => Ok(r),
            Err(TryRecvError::Empty) => Err(Ok(self)),
            Err(TryRecvError::Disconnected) => Err(Err(Lost)),
        }
    }
}

/// Monotonic counters of one service instance. Snapshot via
/// [`SimService::stats`]; all counters are cumulative since start.
///
/// Once every ticket has resolved, the lifecycle counters balance:
/// `submitted = served + cancelled + rejected + timed_out` (a shutdown
/// race surfacing as [`SubmitError::ShuttingDown`] is the one path that
/// counts nothing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests offered to the service: accepted into a queue **or**
    /// rejected by [`Backpressure::Reject`] on a full lane.
    pub submitted: u64,
    /// Requests whose job ran on a worker — including jobs that
    /// panicked there (see [`ServiceStats::panicked`]).
    pub served: u64,
    /// Requests cancelled before dispatch.
    pub cancelled: u64,
    /// Requests rejected by [`Backpressure::Reject`] on a full queue.
    pub rejected: u64,
    /// Requests whose deadline expired while queued (resolved
    /// [`Outcome::TimedOut`], never executed).
    pub timed_out: u64,
    /// Sub-count of [`ServiceStats::served`]: jobs that panicked on a
    /// worker and were contained ([`Outcome::Failed`]).
    pub panicked: u64,
    /// Overload rejections retried internally by
    /// [`Client::submit_retry`] (each backoff-and-resubmit counts one).
    pub retried: u64,
    /// Artifact-cache hits across all workers.
    pub cache_hits: u64,
    /// Artifact-cache misses (compilations) across all workers.
    pub cache_misses: u64,
    /// Distinct artifacts currently cached.
    pub cache_entries: u64,
    /// Requests accepted but not yet dispatched. Counts submitters
    /// currently blocked in a full lane's `send` under
    /// [`Backpressure::Block`] as well as messages sitting in a queue —
    /// i.e. demand waiting on the service, which can transiently exceed
    /// the configured queue capacities.
    pub queue_depth: u64,
    /// High-water mark of [`queue_depth`](Self::queue_depth) (same
    /// semantics: includes blocked submitters).
    pub queue_depth_highwater: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    served: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    panicked: AtomicU64,
    retried: AtomicU64,
    depth: AtomicU64,
    depth_highwater: AtomicU64,
    /// Submitters currently inside `submit` (possibly blocked in a full
    /// lane's `send`). Shutdown waits for this to reach zero *before*
    /// telling workers to drain, so a blocked submitter can never
    /// enqueue behind the final sweep and strand its envelope.
    inflight: AtomicU64,
}

struct Shared {
    cache: ArtifactCache,
    counters: Counters,
    /// Cleared first on shutdown: submit fails fast.
    accepting: AtomicBool,
    /// Set on shutdown: workers exit once both lanes are empty.
    draining: AtomicBool,
}

struct Envelope<J: Job> {
    job: J,
    cancel: Arc<AtomicBool>,
    reply: Sender<Response<J::Out>>,
    submitted: Instant,
    /// Absolute expiry; a worker dequeueing past it replies
    /// [`Outcome::TimedOut`] instead of executing.
    deadline: Option<Instant>,
}

/// Per-request submission options ([`Client::submit_with`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOpts {
    /// Queue lane.
    pub priority: Priority,
    /// Time the request may spend queued, measured from submission
    /// (from the *first* attempt under [`Client::submit_retry`]). A
    /// request still undispatched when it expires resolves
    /// [`Outcome::TimedOut`] without executing; once dispatched, a job
    /// always runs to completion. `None` waits indefinitely.
    pub deadline: Option<Duration>,
}

/// Bounded retry-with-backoff policy for [`Client::submit_retry`].
///
/// Only [`SubmitError::Overloaded`] is retried; [`SubmitError::ShuttingDown`]
/// is permanent and returned immediately. Each retry sleeps the larger of
/// the service's `retry_after` hint and the current backoff, then doubles
/// the backoff up to [`RetryPolicy::max_backoff`]. A `max_backoff` below
/// `base_backoff` is treated as equal to `base_backoff` (the floor wins).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total submission attempts (≥ 1; clamped). `attempts = 1` means no
    /// retry at all.
    pub attempts: u32,
    /// First retry's backoff floor.
    pub base_backoff: Duration,
    /// Backoff ceiling for the exponential doubling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

/// A cloneable submission handle to a running [`SimService`].
pub struct Client<J: Job> {
    high: Sender<Envelope<J>>,
    normal: Sender<Envelope<J>>,
    shared: Arc<Shared>,
    backpressure: Backpressure,
}

impl<J: Job> Clone for Client<J> {
    fn clone(&self) -> Self {
        Client {
            high: self.high.clone(),
            normal: self.normal.clone(),
            shared: Arc::clone(&self.shared),
            backpressure: self.backpressure,
        }
    }
}

impl<J: Job> Client<J> {
    /// Submits a job on the given priority lane. Returns a [`Ticket`]
    /// for the reply, or fails per the configured [`Backpressure`].
    pub fn submit(&self, job: J, priority: Priority) -> Result<Ticket<J::Out>, SubmitError> {
        self.submit_with(
            job,
            SubmitOpts {
                priority,
                deadline: None,
            },
        )
    }

    /// Submits a job with explicit [`SubmitOpts`] (lane + optional queue
    /// deadline).
    pub fn submit_with(&self, job: J, opts: SubmitOpts) -> Result<Ticket<J::Out>, SubmitError> {
        let deadline = opts.deadline.map(|d| Instant::now() + d);
        self.submit_at(job, opts.priority, deadline)
    }

    /// Submission against an already-anchored absolute deadline — the
    /// primitive both [`Client::submit_with`] (which anchors at call
    /// time) and [`Client::submit_retry`] (which anchors **once** for
    /// the whole retry sequence) build on.
    fn submit_at(
        &self,
        job: J,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<Ticket<J::Out>, SubmitError> {
        // Register as in-flight *before* the accepting check (and
        // deregister on every exit): shutdown stores `accepting = false`
        // and then waits for `inflight == 0`, so with both sides SeqCst
        // either this submit observes the store and bails, or shutdown
        // observes the registration and waits for the enqueue to land
        // while workers are still draining.
        let inflight = &self.shared.counters.inflight;
        inflight.fetch_add(1, Ordering::SeqCst);
        let res = self.submit_inner(job, priority, deadline);
        inflight.fetch_sub(1, Ordering::SeqCst);
        res
    }

    /// [`Client::submit_with`] plus bounded retry on overload: an
    /// [`SubmitError::Overloaded`] rejection sleeps (the larger of the
    /// backoff and the service's `retry_after` hint) and resubmits, up
    /// to `policy.attempts` total attempts. Requires `J: Clone` because
    /// a rejected submission consumes the job.
    ///
    /// [`SubmitOpts::deadline`] is anchored **once**, at the first
    /// attempt: every resubmission carries the same absolute expiry, and
    /// a backoff sleep that would overshoot it is skipped — the call
    /// returns a ticket already resolved [`Outcome::TimedOut`] instead
    /// of waiting out a rejection it can no longer recover from.
    pub fn submit_retry(
        &self,
        job: J,
        opts: SubmitOpts,
        policy: RetryPolicy,
    ) -> Result<Ticket<J::Out>, SubmitError>
    where
        J: Clone,
    {
        let attempts = policy.attempts.max(1);
        // Guard the inverted-ceiling misconfiguration: with
        // `max_backoff < base_backoff`, a bare `min(max_backoff)` would
        // shrink every retry *below* its configured floor. The floor
        // wins.
        let max_backoff = policy.max_backoff.max(policy.base_backoff);
        let started = Instant::now();
        let deadline = opts.deadline.map(|d| started + d);
        let mut backoff = policy.base_backoff;
        for attempt in 1..=attempts {
            match self.submit_at(job.clone(), opts.priority, deadline) {
                Err(SubmitError::Overloaded { retry_after }) if attempt < attempts => {
                    self.shared.counters.retried.fetch_add(1, Ordering::Relaxed);
                    let pause = backoff.max(retry_after);
                    if let Some(d) = deadline {
                        if Instant::now() + pause >= d {
                            // Sleeping past the deadline cannot succeed:
                            // a later resubmission would only expire in
                            // the queue. Resolve TimedOut now.
                            return Ok(self.timed_out_ticket(started.elapsed()));
                        }
                    }
                    std::thread::sleep(pause);
                    backoff = (backoff * 2).min(max_backoff);
                }
                res => return res,
            }
        }
        unreachable!("loop returns on the final attempt")
    }

    /// A ticket pre-resolved [`Outcome::TimedOut`] for a deadlined
    /// retry sequence abandoned client-side. Counted as one submission
    /// that timed out, so the lifecycle equation (submitted = served +
    /// cancelled + rejected + timed_out) stays balanced.
    fn timed_out_ticket(&self, waited: Duration) -> Ticket<J::Out> {
        let c = &self.shared.counters;
        c.submitted.fetch_add(1, Ordering::Relaxed);
        c.timed_out.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        let _ = reply_tx.send(Response {
            outcome: Outcome::TimedOut,
            queue_ns: waited.as_nanos() as u64,
            exec_ns: 0,
            worker: usize::MAX,
            cache_hit: false,
        });
        Ticket {
            reply: reply_rx,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    fn submit_inner(
        &self,
        job: J,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<Ticket<J::Out>, SubmitError> {
        if !self.shared.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let (reply_tx, reply_rx) = bounded(1);
        let cancel = Arc::new(AtomicBool::new(false));
        let env = Envelope {
            job,
            cancel: Arc::clone(&cancel),
            reply: reply_tx,
            submitted: Instant::now(),
            deadline,
        };
        let lane = match priority {
            Priority::High => &self.high,
            Priority::Normal => &self.normal,
        };
        // Count the request as queued *before* handing it to the lane: a
        // worker may dispatch (and decrement) the instant the send lands,
        // so incrementing afterwards would let the depth counter go
        // transiently negative. Roll back if the lane refuses it.
        let c = &self.shared.counters;
        let depth = c.depth.fetch_add(1, Ordering::SeqCst) + 1;
        c.depth_highwater.fetch_max(depth, Ordering::Relaxed);
        match self.backpressure {
            Backpressure::Block => lane.send(env).map_err(|_| {
                c.depth.fetch_sub(1, Ordering::SeqCst);
                SubmitError::ShuttingDown
            })?,
            Backpressure::Reject { retry_after } => match lane.try_send(env) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    c.depth.fetch_sub(1, Ordering::SeqCst);
                    // A rejection still counts as submitted so the
                    // lifecycle equation (submitted = served + cancelled
                    // + rejected + timed_out) balances.
                    c.submitted.fetch_add(1, Ordering::Relaxed);
                    c.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Overloaded { retry_after });
                }
                Err(TrySendError::Disconnected(_)) => {
                    c.depth.fetch_sub(1, Ordering::SeqCst);
                    return Err(SubmitError::ShuttingDown);
                }
            },
        }
        c.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket {
            reply: reply_rx,
            cancel,
        })
    }
}

/// The simulation service: a bounded two-lane request queue feeding a
/// persistent pool of worker threads. See the crate docs for the model.
pub struct SimService<J: Job> {
    client: Client<J>,
    /// Receiver clones kept for the post-shutdown sweep.
    high_rx: Receiver<Envelope<J>>,
    normal_rx: Receiver<Envelope<J>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shut: bool,
}

impl<J: Job> SimService<J> {
    /// Starts the service: spawns the worker pool and opens the queues.
    pub fn start(cfg: ServiceConfig) -> Self {
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            mpic::sim_threads_env().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
        };
        let (high_tx, high_rx) = bounded::<Envelope<J>>(cfg.queue_capacity.max(1));
        let (normal_tx, normal_rx) = bounded::<Envelope<J>>(cfg.queue_capacity.max(1));
        let shared = Arc::new(Shared {
            cache: ArtifactCache::new(),
            counters: Counters::default(),
            accepting: AtomicBool::new(true),
            draining: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|w| {
                let high = high_rx.clone();
                let normal = normal_rx.clone();
                let shared = Arc::clone(&shared);
                let parallelism = cfg.parallelism;
                std::thread::Builder::new()
                    .name(format!("sim-worker-{w}"))
                    .spawn(move || worker_loop(w, &high, &normal, &shared, parallelism))
                    .expect("spawn service worker")
            })
            .collect();
        SimService {
            client: Client {
                high: high_tx,
                normal: normal_tx,
                shared,
                backpressure: cfg.backpressure,
            },
            high_rx,
            normal_rx,
            workers: handles,
            shut: false,
        }
    }

    /// A cloneable submission handle (frontends hold these).
    pub fn client(&self) -> Client<J> {
        self.client.clone()
    }

    /// Submits directly through the service's own handle.
    pub fn submit(&self, job: J, priority: Priority) -> Result<Ticket<J::Out>, SubmitError> {
        self.client.submit(job, priority)
    }

    /// The shared artifact cache (for inspection/warm-up).
    pub fn cache(&self) -> &ArtifactCache {
        &self.client.shared.cache
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let shared = &self.client.shared;
        let c = &shared.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            retried: c.retried.load(Ordering::Relaxed),
            cache_hits: shared.cache.hits(),
            cache_misses: shared.cache.misses(),
            cache_entries: shared.cache.len() as u64,
            queue_depth: c.depth.load(Ordering::Relaxed),
            queue_depth_highwater: c.depth_highwater.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, wait for in-flight submits
    /// (including ones blocked on a full lane) to land, serve everything
    /// queued, and join the workers. Every accepted request's ticket
    /// resolves — [`Outcome::Done`] or [`Outcome::Cancelled`], never
    /// [`Lost`]. Returns the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        let stats = self.stats();
        // Drop proceeds with `shut = true`, so no double teardown.
        stats
    }

    fn shutdown_inner(&mut self) {
        if self.shut {
            return;
        }
        self.shut = true;
        let shared = &self.client.shared;
        shared.accepting.store(false, Ordering::SeqCst);
        // Wait for every in-flight submit — including ones blocked in a
        // full lane's `send` under Backpressure::Block — to finish while
        // the workers are still serving (so blocked senders make
        // progress). Afterwards nothing can enqueue: new submits fail
        // the accepting check before touching a lane.
        while shared.counters.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        shared.draining.store(true, Ordering::SeqCst);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Post-join sweep (defense in depth): with the inflight wait
        // above the lanes should already be empty, but deliver Cancelled
        // to anything found so no ticket is ever left unresolved.
        for rx in [&self.high_rx, &self.normal_rx] {
            while let Ok(env) = rx.try_recv() {
                shared.counters.depth.fetch_sub(1, Ordering::Relaxed);
                shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                let _ = env.reply.send(Response {
                    outcome: Outcome::Cancelled,
                    queue_ns: env.submitted.elapsed().as_nanos() as u64,
                    exec_ns: 0,
                    worker: usize::MAX,
                    cache_hit: false,
                });
            }
        }
    }
}

impl<J: Job> Drop for SimService<J> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// How long an idle worker waits before re-checking the draining flag.
/// Arrivals wake workers immediately through the channel `Select`; this
/// bounds only shutdown latency while clients still hold live senders.
const IDLE_POLL: Duration = Duration::from_millis(20);

fn worker_loop<J: Job>(
    worker: usize,
    high: &Receiver<Envelope<J>>,
    normal: &Receiver<Envelope<J>>,
    shared: &Shared,
    parallelism: Parallelism,
) {
    let mut scratch = RunScratch::new();
    let mut sel = Select::new();
    sel.recv(high);
    sel.recv(normal);
    loop {
        // Strict priority: drain the high lane before touching normal.
        // The recv errors double as the disconnect probe — never probe
        // with a second try_recv, which could consume (and then drop) an
        // envelope that raced in between the calls.
        let high_err = match high.try_recv() {
            Ok(env) => {
                serve_one(worker, env, &mut scratch, shared, parallelism);
                continue;
            }
            Err(e) => e,
        };
        let normal_err = match normal.try_recv() {
            Ok(env) => {
                serve_one(worker, env, &mut scratch, shared, parallelism);
                continue;
            }
            Err(e) => e,
        };
        // Both lanes empty right now. Exit when draining, or when both
        // lanes are disconnected (all submitters gone).
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        if high_err == TryRecvError::Disconnected && normal_err == TryRecvError::Disconnected {
            break;
        }
        let _ = sel.ready_timeout(IDLE_POLL);
    }
}

fn serve_one<J: Job>(
    worker: usize,
    env: Envelope<J>,
    scratch: &mut RunScratch,
    shared: &Shared,
    parallelism: Parallelism,
) {
    shared.counters.depth.fetch_sub(1, Ordering::Relaxed);
    let queue_ns = env.submitted.elapsed().as_nanos() as u64;
    if env.cancel.load(Ordering::SeqCst) {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        let _ = env.reply.send(Response {
            outcome: Outcome::Cancelled,
            queue_ns,
            exec_ns: 0,
            worker,
            cache_hit: false,
        });
        return;
    }
    // Dispatch is the deadline's commit point: expire here (the request
    // spent its budget queued) or run to completion.
    if env.deadline.is_some_and(|d| Instant::now() >= d) {
        shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
        let _ = env.reply.send(Response {
            outcome: Outcome::TimedOut,
            queue_ns,
            exec_ns: 0,
            worker,
            cache_hit: false,
        });
        return;
    }
    let t0 = Instant::now();
    // Contain job panics: the unwind may leave the worker's scratch (and
    // its embedded thread pool) in an arbitrary state, so on a panic the
    // scratch is replaced wholesale and the worker keeps serving. The
    // closure returns the job output together with the ctx fields read
    // after the run, so nothing borrows `scratch` past the unwind edge.
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut ctx = JobCtx {
            scratch,
            cache: &shared.cache,
            parallelism,
            worker,
            cache_hit: false,
        };
        let out = env.job.run(&mut ctx);
        (out, ctx.cache_hit)
    }));
    let exec_ns = t0.elapsed().as_nanos() as u64;
    shared.counters.served.fetch_add(1, Ordering::Relaxed);
    let (outcome, cache_hit) = match run {
        Ok((out, cache_hit)) => (Outcome::Done(out), cache_hit),
        Err(payload) => {
            *scratch = RunScratch::new();
            shared.counters.panicked.fetch_add(1, Ordering::Relaxed);
            (
                Outcome::Failed {
                    panic: panic_message(payload),
                },
                false,
            )
        }
    };
    // A dropped ticket is fine — the client walked away.
    let _ = env.reply.send(Response {
        outcome,
        queue_ns,
        exec_ns,
        worker,
        cache_hit,
    });
}

/// Best-effort stringification of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel as ch;

    /// A job that returns its payload, optionally blocking on a gate
    /// channel first (lets tests hold a worker busy deterministically).
    #[derive(Clone)]
    struct TestJob {
        id: u64,
        gate: Option<ch::Receiver<()>>,
        done: Option<ch::Sender<u64>>,
    }

    impl TestJob {
        fn plain(id: u64) -> Self {
            TestJob {
                id,
                gate: None,
                done: None,
            }
        }
    }

    impl Job for TestJob {
        type Out = u64;
        fn run(&self, _ctx: &mut JobCtx<'_>) -> u64 {
            if let Some(gate) = &self.gate {
                let _ = gate.recv();
            }
            if let Some(done) = &self.done {
                let _ = done.send(self.id);
            }
            self.id
        }
    }

    fn single_worker() -> SimService<TestJob> {
        SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn round_trip_with_timings() {
        let svc = single_worker();
        let t = svc.submit(TestJob::plain(7), Priority::Normal).unwrap();
        let r = t.wait().unwrap();
        assert_eq!(r.outcome, Outcome::Done(7));
        assert_eq!(r.worker, 0);
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.queue_depth_highwater, 1);
    }

    #[test]
    fn high_priority_overtakes_queued_normal() {
        let svc = single_worker();
        let (gate_tx, gate_rx) = ch::bounded(1);
        let (done_tx, done_rx) = ch::bounded(8);
        // Occupy the single worker.
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: Some(done_tx.clone()),
                },
                Priority::Normal,
            )
            .unwrap();
        // Wait until the worker has actually dispatched the blocker, so
        // the next two submissions sit in the queues together.
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let normal = svc
            .submit(
                TestJob {
                    id: 1,
                    gate: None,
                    done: Some(done_tx.clone()),
                },
                Priority::Normal,
            )
            .unwrap();
        let urgent = svc
            .submit(
                TestJob {
                    id: 2,
                    gate: None,
                    done: Some(done_tx),
                },
                Priority::High,
            )
            .unwrap();
        gate_tx.send(()).unwrap();
        assert_eq!(done_rx.recv(), Ok(0)); // blocker finishes first
        assert_eq!(done_rx.recv(), Ok(2)); // high lane overtakes
        assert_eq!(done_rx.recv(), Ok(1));
        for t in [blocker, normal, urgent] {
            assert!(matches!(t.wait().unwrap().outcome, Outcome::Done(_)));
        }
        svc.shutdown();
    }

    #[test]
    fn reject_backpressure_reports_overloaded() {
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject {
                retry_after: Duration::from_millis(7),
            },
            ..ServiceConfig::default()
        });
        let (gate_tx, gate_rx) = ch::bounded(1);
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        // Wait for dispatch so exactly one queue slot is free.
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let queued = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        let r = svc.submit(TestJob::plain(2), Priority::Normal);
        assert_eq!(
            r.unwrap_err(),
            SubmitError::Overloaded {
                retry_after: Duration::from_millis(7)
            }
        );
        // The high lane has its own capacity.
        let urgent = svc.submit(TestJob::plain(3), Priority::High).unwrap();
        gate_tx.send(()).unwrap();
        for t in [blocker, queued, urgent] {
            assert!(matches!(t.wait().unwrap().outcome, Outcome::Done(_)));
        }
        let stats = svc.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.served, 3);
    }

    #[test]
    fn cancel_before_dispatch_skips_execution() {
        let svc = single_worker();
        let (gate_tx, gate_rx) = ch::bounded(1);
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let victim = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        victim.cancel();
        gate_tx.send(()).unwrap();
        let r = victim.wait().unwrap();
        assert_eq!(r.outcome, Outcome::Cancelled);
        assert_eq!(r.exec_ns, 0);
        assert!(matches!(blocker.wait().unwrap().outcome, Outcome::Done(0)));
        let stats = svc.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn cancel_after_dispatch_still_completes() {
        let svc = single_worker();
        let (gate_tx, gate_rx) = ch::bounded(1);
        let (started_tx, started_rx) = ch::bounded(1);
        let t = svc
            .submit(
                TestJob {
                    id: 5,
                    gate: Some(gate_rx),
                    done: Some(started_tx),
                },
                Priority::Normal,
            )
            .unwrap();
        // The job signals `done` only after the gate opens; to know it
        // was *dispatched*, watch the queue drain instead.
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        t.cancel(); // too late: already executing (blocked on the gate)
        gate_tx.send(()).unwrap();
        assert_eq!(started_rx.recv(), Ok(5));
        let r = t.wait().unwrap();
        assert_eq!(r.outcome, Outcome::Done(5));
        let stats = svc.shutdown();
        assert_eq!(stats.cancelled, 0);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let svc = single_worker();
        let (gate_tx, gate_rx) = ch::bounded(1);
        let mut tickets = vec![svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap()];
        for id in 1..6 {
            tickets.push(svc.submit(TestJob::plain(id), Priority::Normal).unwrap());
        }
        gate_tx.send(()).unwrap();
        let stats = svc.shutdown(); // must serve all six, then join
        assert_eq!(stats.served, 6);
        for (id, t) in tickets.into_iter().enumerate() {
            let r = t.wait().unwrap();
            assert_eq!(r.outcome, Outcome::Done(id as u64));
        }
    }

    #[test]
    fn blocked_submitter_resolves_on_shutdown() {
        // A Block-mode submitter stuck in a full lane's send while the
        // service shuts down must still get a reply (Done or Cancelled,
        // never Lost): shutdown waits for in-flight submits to land
        // before the workers drain.
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let (gate_tx, gate_rx) = ch::bounded(1);
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        // Fill the single normal-lane slot, then block a third submit.
        let queued = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        let client = svc.client();
        let submitter =
            std::thread::spawn(move || client.submit(TestJob::plain(2), Priority::Normal));
        // Give the submitter time to block in send, start the shutdown
        // (which blocks waiting for it), then release the worker.
        std::thread::sleep(Duration::from_millis(20));
        let shut = std::thread::spawn(move || svc.shutdown());
        std::thread::sleep(Duration::from_millis(10));
        gate_tx.send(()).unwrap();
        let stats = shut.join().unwrap();
        match submitter.join().unwrap() {
            Ok(t) => {
                // Accepted: the ticket must resolve, not report Lost.
                t.wait().expect("blocked submitter's ticket resolved Lost");
            }
            Err(e) => assert_eq!(e, SubmitError::ShuttingDown),
        }
        for t in [blocker, queued] {
            assert!(matches!(t.wait().unwrap().outcome, Outcome::Done(_)));
        }
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.served + stats.cancelled, stats.submitted);
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let svc = single_worker();
        let client = svc.client();
        svc.shutdown();
        assert_eq!(
            client
                .submit(TestJob::plain(1), Priority::Normal)
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn idle_workers_never_drop_racing_submissions() {
        // Each submission lands while the workers are idling in the
        // disconnect-probe path; a consuming probe there (the original
        // bug) would drop envelopes and leave tickets Lost.
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        });
        for i in 0..200 {
            let pri = if i % 8 == 0 {
                Priority::High
            } else {
                Priority::Normal
            };
            let t = svc.submit(TestJob::plain(i), pri).unwrap();
            assert_eq!(t.wait().unwrap().outcome, Outcome::Done(i));
        }
        let stats = svc.shutdown();
        assert_eq!(stats.served, 200);
        assert_eq!(stats.queue_depth, 0);
    }

    /// A job that panics when `boom` is set (regression surface for the
    /// stranded-reply-channel bug: a panicking job used to drop the
    /// reply sender mid-unwind and leave the ticket `Lost`).
    #[derive(Clone)]
    struct MaybePanic {
        id: u64,
        boom: bool,
    }

    impl Job for MaybePanic {
        type Out = u64;
        fn run(&self, _ctx: &mut JobCtx<'_>) -> u64 {
            if self.boom {
                panic!("boom {}", self.id);
            }
            self.id
        }
    }

    #[test]
    fn worker_panic_is_contained_and_worker_survives() {
        let svc: SimService<MaybePanic> = SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            ..ServiceConfig::default()
        });
        let bomb = svc
            .submit(MaybePanic { id: 9, boom: true }, Priority::Normal)
            .unwrap();
        let r = bomb.wait().expect("panic must not strand the ticket");
        match r.outcome {
            Outcome::Failed { panic } => assert!(panic.contains("boom 9"), "got {panic:?}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        // The single worker survived the panic and keeps serving with a
        // fresh scratch.
        let after = svc
            .submit(
                MaybePanic {
                    id: 10,
                    boom: false,
                },
                Priority::Normal,
            )
            .unwrap();
        assert_eq!(after.wait().unwrap().outcome, Outcome::Done(10));
        let stats = svc.shutdown();
        assert_eq!(stats.served, 2);
        assert_eq!(stats.panicked, 1);
        assert_eq!(
            stats.submitted,
            stats.served + stats.cancelled + stats.rejected + stats.timed_out
        );
    }

    #[test]
    fn expired_deadline_times_out_without_executing() {
        let svc = single_worker();
        let (gate_tx, gate_rx) = ch::bounded(1);
        let (done_tx, done_rx) = ch::bounded(8);
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        // Queued behind the blocker with a deadline it cannot make.
        let doomed = svc
            .client()
            .submit_with(
                TestJob {
                    id: 1,
                    gate: None,
                    done: Some(done_tx),
                },
                SubmitOpts {
                    priority: Priority::Normal,
                    deadline: Some(Duration::from_millis(1)),
                },
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        gate_tx.send(()).unwrap();
        let r = doomed.wait().unwrap();
        assert_eq!(r.outcome, Outcome::TimedOut);
        assert_eq!(r.exec_ns, 0);
        assert!(done_rx.try_recv().is_err(), "timed-out job must not run");
        assert!(matches!(blocker.wait().unwrap().outcome, Outcome::Done(0)));
        let stats = svc.shutdown();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(
            stats.submitted,
            stats.served + stats.cancelled + stats.rejected + stats.timed_out
        );
    }

    #[test]
    fn submit_retry_rides_out_transient_overload() {
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject {
                retry_after: Duration::from_millis(1),
            },
            ..ServiceConfig::default()
        });
        let (gate_tx, gate_rx) = ch::bounded(1);
        // Occupy the worker, then fill the single lane slot, so the
        // retry below deterministically starts against a full lane.
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let queued = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        let client = svc.client();
        let retrier = std::thread::spawn(move || {
            client.submit_retry(
                TestJob::plain(2),
                SubmitOpts::default(),
                RetryPolicy {
                    attempts: 500,
                    base_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(5),
                },
            )
        });
        // Let it bounce off the full lane at least once, then unblock.
        while svc.stats().rejected == 0 {
            std::thread::yield_now();
        }
        gate_tx.send(()).unwrap();
        let c = retrier.join().unwrap().expect("retry must eventually land");
        for (t, want) in [(blocker, 0), (queued, 1), (c, 2)] {
            assert_eq!(t.wait().unwrap().outcome, Outcome::Done(want));
        }
        let stats = svc.shutdown();
        assert_eq!(stats.served, 3);
        assert!(stats.retried >= 1);
        assert_eq!(stats.rejected, stats.retried);
        assert_eq!(
            stats.submitted,
            stats.served + stats.cancelled + stats.rejected + stats.timed_out
        );
    }

    #[test]
    fn submit_retry_exhaustion_reports_overloaded() {
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject {
                retry_after: Duration::from_millis(1),
            },
            ..ServiceConfig::default()
        });
        let (gate_tx, gate_rx) = ch::bounded(1);
        // Occupy the worker, then fill the single normal-lane slot, so
        // every retry below hits a deterministically full lane.
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let queued = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        let res = svc.client().submit_retry(
            TestJob::plain(2),
            SubmitOpts::default(),
            RetryPolicy {
                attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
        );
        assert!(matches!(res, Err(SubmitError::Overloaded { .. })));
        gate_tx.send(()).unwrap();
        for t in [blocker, queued] {
            assert!(matches!(t.wait().unwrap().outcome, Outcome::Done(_)));
        }
        let stats = svc.shutdown();
        assert_eq!(stats.retried, 2, "attempts 3 = 1 try + 2 retries");
        assert_eq!(stats.rejected, 3);
        assert_eq!(
            stats.submitted,
            stats.served + stats.cancelled + stats.rejected + stats.timed_out
        );
    }

    /// Regression (PR 10): `submit_retry` used to re-anchor the relative
    /// deadline on every attempt and sleep full backoffs without
    /// checking it, so a deadlined request against a saturated service
    /// waited out the whole backoff schedule. Now the deadline is
    /// absolute across attempts and an overshooting sleep resolves
    /// TimedOut instead.
    #[test]
    fn submit_retry_honors_deadline_across_attempts() {
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject {
                retry_after: Duration::from_millis(1),
            },
            ..ServiceConfig::default()
        });
        let (gate_tx, gate_rx) = ch::bounded(1);
        // Saturate: worker occupied, single lane slot full.
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let queued = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        let deadline = Duration::from_millis(40);
        let t0 = Instant::now();
        let doomed = svc
            .client()
            .submit_retry(
                TestJob::plain(2),
                SubmitOpts {
                    priority: Priority::Normal,
                    deadline: Some(deadline),
                },
                RetryPolicy {
                    attempts: 1_000,
                    base_backoff: Duration::from_millis(4),
                    max_backoff: Duration::from_millis(8),
                },
            )
            .expect("deadline overshoot resolves a ticket, not an error");
        let waited = t0.elapsed();
        // With per-attempt re-anchoring (the bug) this retried for the
        // full 1000-attempt schedule; with one absolute deadline it
        // gives up within roughly the deadline itself.
        assert!(
            waited < deadline + Duration::from_millis(500),
            "retry loop outlived its deadline: {waited:?}"
        );
        let r = doomed.wait().unwrap();
        assert_eq!(r.outcome, Outcome::TimedOut);
        assert_eq!(r.exec_ns, 0);
        gate_tx.send(()).unwrap();
        for t in [blocker, queued] {
            assert!(matches!(t.wait().unwrap().outcome, Outcome::Done(_)));
        }
        let stats = svc.shutdown();
        assert_eq!(stats.timed_out, 1);
        assert!(stats.retried >= 1, "must have backed off at least once");
        assert_eq!(
            stats.submitted,
            stats.served + stats.cancelled + stats.rejected + stats.timed_out
        );
    }

    /// Regression (PR 10): an inverted ceiling (`max_backoff <
    /// base_backoff`) used to shrink every retry's sleep below the
    /// configured floor via the bare `min`. The floor now wins, and the
    /// retry sequence still lands.
    #[test]
    fn submit_retry_survives_inverted_backoff_ceiling() {
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject {
                retry_after: Duration::from_micros(100),
            },
            ..ServiceConfig::default()
        });
        let (gate_tx, gate_rx) = ch::bounded(1);
        let blocker = svc
            .submit(
                TestJob {
                    id: 0,
                    gate: Some(gate_rx),
                    done: None,
                },
                Priority::Normal,
            )
            .unwrap();
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let queued = svc.submit(TestJob::plain(1), Priority::Normal).unwrap();
        let client = svc.client();
        let retrier = std::thread::spawn(move || {
            client.submit_retry(
                TestJob::plain(2),
                SubmitOpts::default(),
                RetryPolicy {
                    attempts: 500,
                    base_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(1), // inverted
                },
            )
        });
        while svc.stats().rejected == 0 {
            std::thread::yield_now();
        }
        gate_tx.send(()).unwrap();
        let c = retrier.join().unwrap().expect("retry must land");
        for (t, want) in [(blocker, 0), (queued, 1), (c, 2)] {
            assert_eq!(t.wait().unwrap().outcome, Outcome::Done(want));
        }
        let stats = svc.shutdown();
        assert_eq!(stats.served, 3);
        assert_eq!(
            stats.submitted,
            stats.served + stats.cancelled + stats.rejected + stats.timed_out
        );
    }

    #[test]
    fn many_workers_serve_everything_once() {
        let svc: SimService<TestJob> = SimService::start(ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = (0..64)
            .map(|i| svc.submit(TestJob::plain(i), Priority::Normal).unwrap())
            .collect();
        let mut got: Vec<u64> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().outcome.done().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        let stats = svc.shutdown();
        assert_eq!(stats.served, 64);
        assert_eq!(stats.cancelled + stats.rejected, 0);
    }
}
