//! HDR-style latency histogram: log-linear buckets (32 linear
//! sub-buckets per power of two), so quantiles are accurate to ~3.2%
//! relative error across the full `u64` nanosecond range at a fixed
//! 15 KiB footprint. Recording is O(1) and allocation-free.

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Octaves above the exact range (values ≥ 2^SUB_BITS).
const OCTAVES: usize = 64 - SUB_BITS as usize;
const BUCKETS: usize = (OCTAVES + 1) * SUBS;

/// Fixed-size log-linear histogram of `u64` samples (nanoseconds by
/// convention, but unit-agnostic).
///
/// Values below `2^5` are recorded exactly; larger values land in the
/// linear sub-bucket keyed by their top 5 bits after the leading one.
/// Quantiles report a bucket's *upper bound* (conservative: reported
/// p99 is never below the true p99), except the topmost occupied bucket
/// which reports the exact observed maximum.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    octave * SUBS + sub
}

/// Largest value mapping to bucket `i` (inclusive).
fn bucket_upper(i: usize) -> u64 {
    if i < SUBS {
        return i as u64;
    }
    let octave = (i / SUBS) as u32;
    let sub = (i % SUBS) as u64;
    let base = (SUBS as u64 + sub) << (octave - 1);
    base + (1u64 << (octave - 1)) - 1
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of the recorded samples (exact, not bucketed; 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: an upper bound on the sample
    /// at rank `⌈q·n⌉`, within ~3.2% relative error. Returns 0 when
    /// empty; `q = 1` returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Never report past the true max (the top occupied
                // bucket's upper bound usually overshoots it).
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for v in [v, v + v / 3, v + v / 2] {
                let b = bucket_of(v);
                assert!(b >= last, "bucket order broke at {v}");
                assert!(bucket_upper(b) >= v, "upper bound below value at {v}");
                last = b;
            }
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        // Exact range: quantiles are exact.
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100_000u64 {
            h.record(i * 17); // uniform over [17, 1.7e6]
        }
        for (q, truth) in [(0.5, 850_000.0), (0.9, 1_530_000.0), (0.99, 1_683_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - truth) / truth;
            // Upper-bound reporting: never below truth, within 3.2% above.
            assert!(
                (-0.001..=0.032).contains(&rel),
                "q={q}: got {got}, truth {truth}, rel {rel}"
            );
        }
        assert_eq!(h.quantile(1.0), 1_700_000);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * i + 3;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.min(), c.min());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), c.quantile(q), "q={q}");
        }
        assert!((a.mean() - c.mean()).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
