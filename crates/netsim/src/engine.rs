//! The round-driven network engine.

use crate::fault::{FaultSchedule, FaultState, FaultStats};
use crate::frame::{FrameBatch, RoundFrame, Wire};
use crate::phase::PhasePos;
use netgraph::{DirectedLink, EdgeId, Graph, NodeId};

/// One channel corruption: the link and what the receiver should observe
/// instead (`Some(bit)` substitutes/inserts, `None` deletes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Corruption {
    /// The directed link whose output is overridden.
    pub link: DirectedLink,
    /// The channel output after noise: a bit, or silence.
    pub output: Option<bool>,
}

/// One corruption inside a [`FrameBatch`]: the batch round it lands in
/// plus the per-link override — the batched form keeps full per-round
/// addressing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundCorruption {
    /// Round offset within the batch (`0..batch.rounds()`).
    pub round: usize,
    /// The corruption applied in that round.
    pub corruption: Corruption,
}

/// One endpoint's live meeting-points position on an edge, as published
/// through [`AdaptiveView::mp_view`]: the repair-loop counters of
/// Algorithm 2 plus the two meeting-point candidates the *next* exchange
/// will hash.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MpSideView {
    /// Consecutive meeting-points iterations `k` on this side.
    pub k: u64,
    /// Mismatch-evidence counter `E` on this side.
    pub e: u64,
    /// Whether this side currently classifies the link as mid-repair.
    pub in_meeting_points: bool,
    /// Meeting-point candidate `mpc1` (chunks) of the latest exchange.
    pub mpc1: usize,
    /// Meeting-point candidate `mpc2` (chunks) of the latest exchange.
    pub mpc2: usize,
    /// Transcript length (chunks) on this side.
    pub chunks: usize,
}

/// Both endpoints' [`MpSideView`]s of one edge (`lo` = the lower node id).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeMpView {
    /// The lower-id endpoint's side.
    pub lo: MpSideView,
    /// The higher-id endpoint's side.
    pub hi: MpSideView,
}

/// One party's live flag-passing state, as published through
/// [`AdaptiveView::flag_view`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlagView {
    /// The party's own status bit (Algorithm 1 lines 6–13).
    pub status: bool,
    /// Its running up-sweep aggregate.
    pub aggregate: bool,
    /// The network-correct flag it acts on this iteration.
    pub net_correct: bool,
}

/// Live-execution view offered to non-oblivious adversaries.
///
/// The paper's non-oblivious adversary (§6) sees the parties' inputs and
/// the entire transcript so far — in particular the hash seeds that crossed
/// the network — and picks corruptions adaptively. We expose that power as
/// a trait implemented by the coding-scheme runner.
///
/// # Phase-aware surface
///
/// Beyond the per-edge divergence bits and the §6.1 seed-aware oracle,
/// the runner publishes its live phase position and per-phase state:
/// where the current round falls ([`AdaptiveView::phase_of`]), each
/// endpoint's meeting-point candidates and repair counters
/// ([`AdaptiveView::mp_view`]), each party's flag state
/// ([`AdaptiveView::flag_view`]), the size of the active-party set while
/// the rewind wave runs ([`AdaptiveView::rewind_active`]), and a
/// cross-iteration scratch slot ([`AdaptiveView::memory`] /
/// [`AdaptiveView::set_memory`]) so strategies can condition on what they
/// observed in earlier iterations. Every phase-aware method has a
/// withholding default (`None` / zero): the runner only answers when the
/// experiment's `AdversaryClass` grants phase visibility, so the same
/// attack code degrades to idle under a stricter adversary model.
pub trait AdaptiveView {
    /// True if the two endpoints of `edge` currently hold differing
    /// pairwise transcripts.
    fn diverged(&self, edge: EdgeId) -> bool;

    /// Transcript length (in chunks) at the lower endpoint of `edge`.
    fn transcript_chunks(&self, edge: EdgeId) -> usize;

    /// Seed-aware oracle (§6.1 attack): find a corruption of one of this
    /// round's sends on `edge` that will make the *next* meeting-points
    /// full-transcript hash comparison collide, so the error goes
    /// undetected. Returns `None` when no such corruption exists this
    /// round.
    fn collision_corruption(&self, edge: EdgeId, sends: &RoundFrame) -> Option<Corruption>;

    /// Where absolute round `round` falls in the scheme's phase layout
    /// (iteration, phase kind, round-within-phase). `None` when phase
    /// visibility is withheld. Batch adversaries pass
    /// `first_round + offset` to locate each round of the batch.
    fn phase_of(&self, round: u64) -> Option<PhasePos> {
        let _ = round;
        None
    }

    /// Both endpoints' live meeting-points state on `edge` (counters and
    /// the candidates the next rollback would target). `None` when phase
    /// visibility is withheld.
    fn mp_view(&self, edge: EdgeId) -> Option<EdgeMpView> {
        let _ = edge;
        None
    }

    /// `node`'s live flag-passing state. `None` when phase visibility is
    /// withheld.
    fn flag_view(&self, node: NodeId) -> Option<FlagView> {
        let _ = node;
        None
    }

    /// While the rewind wave runs: how many parties may still send a
    /// rewind request this round (the wave's active set). `None` outside
    /// the rewind phase or when phase visibility is withheld.
    fn rewind_active(&self) -> Option<usize> {
        None
    }

    /// Reads the cross-iteration memory slot (0 when withheld). The slot
    /// is owned by the run, survives across rounds and iterations, and is
    /// adversary-private: the honest parties never read it.
    fn memory(&self) -> u64 {
        0
    }

    /// Writes the cross-iteration memory slot (no-op when withheld).
    fn set_memory(&self, value: u64) {
        let _ = value;
    }
}

/// An adversary controlling the noise.
pub trait Adversary {
    /// Corruptions for the current round. `sends` is the honest frame,
    /// indexed by the graph's [`netgraph::LinkId`]s. `view` is `None` when
    /// the runner withholds the live state (oblivious-only experiments)
    /// and `Some` otherwise; oblivious adversaries must ignore it.
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        remaining_budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption>;

    /// Whether this adversary can corrupt a whole [`FrameBatch`] in one
    /// [`Adversary::corrupt_batch`] call. When `false` (the default),
    /// [`Network::step_rounds_into`] falls back to consulting
    /// [`Adversary::corrupt`] round by round — outcome-identical, just
    /// without the single-call fast path.
    fn batch_aware(&self) -> bool {
        false
    }

    /// Corruptions for a whole batch of independent rounds
    /// `[first_round, first_round + sends.rounds())`, in round order.
    ///
    /// Implementations MUST produce exactly the corruption stream that
    /// `sends.rounds()` sequential [`Adversary::corrupt`] calls would —
    /// same corruptions, same order, same private-randomness consumption —
    /// so that the batched and bit-serial engine paths stay byte-identical.
    /// Only consulted when [`Adversary::batch_aware`] returns `true`; the
    /// default implementation panics to make an incomplete override loud.
    ///
    /// `remaining_budget` is the budget at the *start* of the batch;
    /// adversaries whose decisions depend on mid-batch budget draw-down
    /// must stay on the per-round path (`batch_aware = false`).
    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        remaining_budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        let _ = (first_round, sends, remaining_budget, view);
        unimplemented!("batch_aware adversary must override corrupt_batch")
    }

    /// Whether this adversary's pattern is independent of the execution
    /// (additive / fixing oblivious adversaries of §2.1).
    fn is_oblivious(&self) -> bool {
        true
    }

    /// Display name for experiment output.
    fn name(&self) -> &'static str;
}

/// Communication and noise accounting of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Rounds elapsed.
    pub rounds: u64,
    /// Honest transmissions (the instance's `CC`).
    pub cc: u64,
    /// Corruptions actually applied.
    pub corruptions: u64,
    /// Corruptions the adversary attempted beyond its budget (dropped).
    pub dropped_corruptions: u64,
}

impl NetStats {
    /// Achieved noise fraction `corruptions / CC` (0 if nothing was sent).
    pub fn noise_fraction(&self) -> f64 {
        if self.cc == 0 {
            0.0
        } else {
            self.corruptions as f64 / self.cc as f64
        }
    }
}

/// The synchronous noisy network.
///
/// The hot path is [`Network::step_into`]: the caller owns two
/// [`RoundFrame`] buffers (sends and receptions) and reuses them every
/// round — no per-round allocation. [`Network::step`] is a thin
/// convenience wrapper over the legacy [`Wire`] map form.
///
/// # Examples
///
/// ```
/// use netgraph::{topology, DirectedLink};
/// use netsim::{attacks::NoNoise, Network, RoundFrame};
/// let g = topology::line(3);
/// let id = g.link_id(DirectedLink { from: 0, to: 1 }).unwrap();
/// let mut net = Network::new(g, Box::new(NoNoise), u64::MAX);
/// let mut sends = RoundFrame::for_graph(net.graph());
/// let mut rx = RoundFrame::for_graph(net.graph());
/// sends.set(id, true);
/// net.step_into(&sends, None, &mut rx);
/// assert_eq!(rx.get(id), Some(true));
/// assert_eq!(net.stats().cc, 1);
/// ```
pub struct Network {
    graph: Graph,
    adversary: Box<dyn Adversary>,
    budget: u64,
    stats: NetStats,
    /// Scratch frames of [`Network::step_rounds_into`]'s per-round
    /// fallback path, allocated on first use and reused across batches.
    fallback_frames: Option<(RoundFrame, RoundFrame)>,
    /// Installed wire-fault schedule, if any (see [`FaultSchedule`]).
    faults: Option<FaultState>,
}

impl Network {
    /// Creates a network over `graph` with the given adversary and a hard
    /// cap of `budget` corruptions.
    pub fn new(graph: Graph, adversary: Box<dyn Adversary>, budget: u64) -> Self {
        Network {
            graph,
            adversary,
            budget,
            stats: NetStats::default(),
            fallback_frames: None,
            faults: None,
        }
    }

    /// Installs a wire-fault schedule (link outages, party crashes).
    /// Masking is applied identically on the bit-serial and the batched
    /// paths, *after* the adversary and budget accounting — see the
    /// [`FaultSchedule`] docs for the exact semantics. Installing
    /// an empty schedule clears faults. Call before the first step:
    /// transitions scheduled at already-elapsed rounds apply on the next
    /// step, which is almost never what a caller wants.
    pub fn install_faults(&mut self, schedule: FaultSchedule) {
        self.faults = if schedule.is_empty() {
            None
        } else {
            Some(FaultState::new(schedule, self.graph.link_count()))
        };
    }

    /// Fault accounting so far (all zero when no schedule is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map(FaultState::stats)
            .unwrap_or_default()
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Accounting so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Corruption budget still available.
    pub fn remaining_budget(&self) -> u64 {
        self.budget - self.stats.corruptions
    }

    /// Executes one synchronous round: applies the adversary to the honest
    /// sends and writes what each receiving endpoint observes into `rx`
    /// (silent link = silence). `sends` and `rx` are caller-owned buffers
    /// sized to the graph; nothing is allocated per round.
    ///
    /// # Panics
    ///
    /// Panics if `sends` or `rx` is not sized to the graph's link count.
    pub fn step_into(
        &mut self,
        sends: &RoundFrame,
        view: Option<&dyn AdaptiveView>,
        rx: &mut RoundFrame,
    ) {
        assert_eq!(
            sends.link_count(),
            self.graph.link_count(),
            "sends frame not sized to graph"
        );
        self.stats.rounds += 1;
        self.stats.cc += sends.count_set() as u64;
        let remaining = self.budget - self.stats.corruptions;
        let corruptions = self
            .adversary
            .corrupt(self.stats.rounds - 1, sends, remaining, view);
        rx.copy_from(sends);
        for c in corruptions {
            let Some(id) = self.graph.link_id(c.link) else {
                continue; // corrupting a non-edge is meaningless
            };
            let honest = sends.get(id);
            if honest == c.output {
                continue; // no change, not a corruption
            }
            if self.stats.corruptions >= self.budget {
                self.stats.dropped_corruptions += 1;
                continue;
            }
            self.stats.corruptions += 1;
            match c.output {
                Some(bit) => rx.set(id, bit),
                None => rx.clear(id),
            }
        }
        if let Some(f) = &mut self.faults {
            f.mask_frame(self.stats.rounds - 1, rx);
        }
    }

    /// Executes a whole batch of **independent** synchronous rounds in one
    /// call: every round of `sends` passes through the adversary and the
    /// budget accounting exactly as if stepped individually through
    /// [`Network::step_into`], and the receptions land in `rx`.
    ///
    /// Outcome contract: after this call, `rx`, [`Network::stats`] and the
    /// adversary state are byte-identical to `sends.rounds()` sequential
    /// `step_into` calls over the batch's per-round frames. The fast path
    /// (a [`Adversary::batch_aware`] adversary) is one bulk lane copy plus
    /// one `corrupt_batch` consultation; other adversaries are consulted
    /// round by round against extracted frames.
    ///
    /// Rounds inside a batch must not depend on each other's receptions —
    /// the caller sees `rx` only when every round has already been sent.
    ///
    /// # Panics
    ///
    /// Panics if `sends` or `rx` is not sized to the graph's link count,
    /// or if their round counts differ.
    pub fn step_rounds_into(
        &mut self,
        sends: &FrameBatch,
        view: Option<&dyn AdaptiveView>,
        rx: &mut FrameBatch,
    ) {
        assert_eq!(
            sends.link_count(),
            self.graph.link_count(),
            "sends batch not sized to graph"
        );
        assert_eq!(sends.rounds(), rx.rounds(), "batch round mismatch");
        let rounds = sends.rounds();
        if self.adversary.batch_aware() {
            let first_round = self.stats.rounds;
            self.stats.rounds += rounds as u64;
            self.stats.cc += sends.count_set() as u64;
            let remaining = self.budget - self.stats.corruptions;
            let corruptions = self
                .adversary
                .corrupt_batch(first_round, sends, remaining, view);
            rx.copy_from(sends);
            for rc in corruptions {
                debug_assert!(rc.round < rounds, "corruption past batch end");
                let Some(id) = self.graph.link_id(rc.corruption.link) else {
                    continue; // corrupting a non-edge is meaningless
                };
                let honest = sends.get(id, rc.round);
                if honest == rc.corruption.output {
                    continue; // no change, not a corruption
                }
                if self.stats.corruptions >= self.budget {
                    self.stats.dropped_corruptions += 1;
                    continue;
                }
                self.stats.corruptions += 1;
                match rc.corruption.output {
                    Some(bit) => rx.set(id, rc.round, bit),
                    None => rx.clear(id, rc.round),
                }
            }
            // Masking applies per round in round order — byte-identical
            // to the sequential path, which masks each round as it steps.
            if let Some(f) = &mut self.faults {
                for r in 0..rounds {
                    f.mask_batch_round(first_round + r as u64, rx, r);
                }
            }
        } else {
            // Per-round fallback: exactly the sequential protocol, frames
            // extracted from the lanes (scratch reused across batches).
            let links = sends.link_count();
            let (mut tx, mut rxf) = self
                .fallback_frames
                .take()
                .unwrap_or_else(|| (RoundFrame::new(links), RoundFrame::new(links)));
            for r in 0..rounds {
                sends.round_into(r, &mut tx);
                self.step_into(&tx, view, &mut rxf);
                rx.set_round(r, &rxf);
            }
            self.fallback_frames = Some((tx, rxf));
        }
    }

    /// Legacy convenience wrapper over [`Network::step_into`] in terms of
    /// the [`Wire`] map form. Allocates two frames and a map per call —
    /// use `step_into` with reused buffers on hot paths.
    ///
    /// # Panics
    ///
    /// Panics if a send uses a link that is not an edge of the graph.
    pub fn step(&mut self, sends: &Wire, view: Option<&dyn AdaptiveView>) -> Wire {
        let frame = RoundFrame::from_wire(&self.graph, sends);
        let mut rx = RoundFrame::for_graph(&self.graph);
        self.step_into(&frame, view, &mut rx);
        rx.to_wire(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{BurstLink, NoNoise};
    use netgraph::topology;

    fn dl(from: usize, to: usize) -> DirectedLink {
        DirectedLink { from, to }
    }

    #[test]
    fn no_noise_passes_everything() {
        let g = topology::ring(4);
        let mut net = Network::new(g, Box::new(NoNoise), 0);
        let mut sends = Wire::new();
        sends.insert(dl(0, 1), true);
        sends.insert(dl(2, 1), false);
        let rx = net.step(&sends, None);
        assert_eq!(rx, sends);
        assert_eq!(net.stats().cc, 2);
        assert_eq!(net.stats().corruptions, 0);
    }

    #[test]
    fn step_into_reuses_buffers() {
        let g = topology::ring(4);
        let id01 = g.link_id(dl(0, 1)).unwrap();
        let id21 = g.link_id(dl(2, 1)).unwrap();
        let mut net = Network::new(g.clone(), Box::new(NoNoise), 0);
        let mut sends = RoundFrame::for_graph(&g);
        let mut rx = RoundFrame::for_graph(&g);
        for round in 0..3 {
            sends.clear_all();
            sends.set(id01, round % 2 == 0);
            sends.set(id21, true);
            net.step_into(&sends, None, &mut rx);
            assert_eq!(rx, sends);
        }
        assert_eq!(net.stats().rounds, 3);
        assert_eq!(net.stats().cc, 6);
    }

    #[test]
    fn burst_flips_and_counts() {
        let g = topology::line(3);
        let atk = BurstLink::new(&g, dl(0, 1), 0, 10);
        let mut net = Network::new(g, Box::new(atk), 100);
        let mut sends = Wire::new();
        sends.insert(dl(0, 1), false);
        let rx = net.step(&sends, None);
        assert_eq!(rx.get(&dl(0, 1)), Some(&true)); // 0 + 1 = 1: substitution
        assert_eq!(net.stats().corruptions, 1);
        // A `true` bit under additive-1 becomes silence (deletion).
        let mut sends = Wire::new();
        sends.insert(dl(0, 1), true);
        let rx = net.step(&sends, None);
        assert_eq!(rx.get(&dl(0, 1)), None);
        assert_eq!(net.stats().corruptions, 2);
    }

    #[test]
    fn burst_inserts_on_silence() {
        let g = topology::line(3);
        let atk = BurstLink::new(&g, dl(0, 1), 0, 10);
        let mut net = Network::new(g, Box::new(atk), 100);
        let rx = net.step(&Wire::new(), None);
        // Insertion: receiver observes a bit that was never sent.
        assert!(rx.contains_key(&dl(0, 1)));
        assert_eq!(net.stats().cc, 0);
        assert_eq!(net.stats().corruptions, 1);
    }

    #[test]
    fn budget_is_enforced() {
        let g = topology::line(3);
        let atk = BurstLink::new(&g, dl(0, 1), 0, 10);
        let mut net = Network::new(g, Box::new(atk), 2);
        for _ in 0..5 {
            let mut sends = Wire::new();
            sends.insert(dl(0, 1), true);
            net.step(&sends, None);
        }
        assert_eq!(net.stats().corruptions, 2);
        assert_eq!(net.stats().dropped_corruptions, 3);
    }

    #[test]
    fn noise_fraction() {
        let s = NetStats {
            rounds: 10,
            cc: 100,
            corruptions: 5,
            dropped_corruptions: 0,
        };
        assert!((s.noise_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn rejects_send_on_non_edge() {
        let g = topology::line(3);
        let mut net = Network::new(g, Box::new(NoNoise), 0);
        let mut sends = Wire::new();
        sends.insert(dl(0, 2), true);
        net.step(&sends, None);
    }

    #[test]
    fn downed_link_drops_symbols_and_insertions() {
        let g = topology::line(3);
        let id01 = g.link_id(dl(0, 1)).unwrap();
        let id12 = g.link_id(dl(1, 2)).unwrap();
        // BurstLink inserts on silence; the outage must drop that too.
        let atk = BurstLink::new(&g, dl(0, 1), 0, 1);
        let mut net = Network::new(g.clone(), Box::new(atk), 100);
        let mut sched = FaultSchedule::new();
        sched.link_down(0, id01);
        sched.link_up(2, id01);
        net.install_faults(sched);
        let mut sends = RoundFrame::for_graph(&g);
        let mut rx = RoundFrame::for_graph(&g);
        // Round 0: nothing sent on 0→1; adversary inserts; outage masks it.
        sends.set(id12, true);
        net.step_into(&sends, None, &mut rx);
        assert_eq!(rx.get(id01), None, "insertion on a downed link dropped");
        assert_eq!(rx.get(id12), Some(true), "other links unaffected");
        assert_eq!(net.stats().corruptions, 1, "adversary still pays budget");
        // Round 1: honest symbol on the downed link is dropped; cc still
        // counts the attempted transmission.
        sends.clear_all();
        sends.set(id01, true);
        net.step_into(&sends, None, &mut rx);
        assert_eq!(rx.get(id01), None);
        assert_eq!(net.stats().cc, 2);
        // Round 2: link is back up.
        sends.clear_all();
        sends.set(id01, false);
        net.step_into(&sends, None, &mut rx);
        assert_eq!(rx.get(id01), Some(false));
        let f = net.fault_stats();
        assert_eq!(f.links_downed, 1);
        assert_eq!(f.masked_symbols, 2);
        assert_eq!(f.crash_rounds, 0);
    }

    #[test]
    fn batched_and_serial_fault_paths_identical() {
        let g = topology::ring(4);
        let rounds = 7usize;
        let build_net = || {
            let mut net = Network::new(g.clone(), Box::new(NoNoise), 0);
            let mut sched = FaultSchedule::new();
            sched.link_down(1, 0);
            sched.link_up(4, 0);
            let incident: Vec<_> = g
                .neighbors(2)
                .iter()
                .flat_map(|&v| [g.link_id(dl(2, v)).unwrap(), g.link_id(dl(v, 2)).unwrap()])
                .collect();
            sched.crash_party(2, &incident);
            sched.recover_party(5, &incident);
            net.install_faults(sched);
            net
        };
        let mut batch_tx = FrameBatch::for_graph(&g, rounds);
        for r in 0..rounds {
            for lid in 0..g.link_count() {
                if (r + lid) % 3 != 0 {
                    batch_tx.set(lid, r, (r ^ lid) % 2 == 0);
                }
            }
        }
        // Batched path.
        let mut net_b = build_net();
        let mut batch_rx = FrameBatch::for_graph(&g, rounds);
        net_b.step_rounds_into(&batch_tx, None, &mut batch_rx);
        // Bit-serial path over the same rounds.
        let mut net_s = build_net();
        let mut tx = RoundFrame::for_graph(&g);
        let mut rx = RoundFrame::for_graph(&g);
        for r in 0..rounds {
            batch_tx.round_into(r, &mut tx);
            net_s.step_into(&tx, None, &mut rx);
            for lid in 0..g.link_count() {
                assert_eq!(
                    batch_rx.get(lid, r),
                    rx.get(lid),
                    "round {r} link {lid} diverged"
                );
            }
        }
        assert_eq!(net_b.stats(), net_s.stats());
        assert_eq!(net_b.fault_stats(), net_s.fault_stats());
        assert!(net_b.fault_stats().masked_symbols > 0);
        assert_eq!(net_b.fault_stats().crash_rounds, 3);
    }

    #[test]
    #[should_panic(expected = "not sized to graph")]
    fn rejects_mis_sized_frame() {
        let g = topology::line(3);
        let mut net = Network::new(g, Box::new(NoNoise), 0);
        let sends = RoundFrame::new(2);
        let mut rx = RoundFrame::new(2);
        net.step_into(&sends, None, &mut rx);
    }
}
