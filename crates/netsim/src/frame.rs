//! The dense per-round wire representation.
//!
//! A [`RoundFrame`] holds one synchronous round's channel contents for
//! every directed link of a graph: two bit-packed vectors (presence and
//! value) indexed by [`LinkId`]. Setting, getting and clearing a link is
//! O(1); wiping or copying a whole frame is O(m/64); iterating the
//! occupied links is O(m/64 + sends). The legacy map form
//! ([`Wire`] = `BTreeMap<DirectedLink, bool>`) converts losslessly in
//! both directions given the graph.

use netgraph::{Graph, LinkId};
use std::collections::BTreeMap;

/// The legacy map form of one round's sends: directed link → bit. Links
/// absent from the map are silent. Kept for conversions and tests; the
/// engine's hot path is [`RoundFrame`].
pub type Wire = BTreeMap<netgraph::DirectedLink, bool>;

/// One round of wire contents over a fixed link universe, bit-packed.
///
/// A frame is sized to a graph's [`Graph::link_count`] and indexed by
/// [`LinkId`]. Every link is either *silent* (absent) or carries a bit.
///
/// # Examples
///
/// ```
/// use netgraph::topology;
/// use netsim::RoundFrame;
/// let g = topology::ring(4);
/// let mut f = RoundFrame::for_graph(&g);
/// let id = g.link_id(netgraph::DirectedLink { from: 0, to: 1 }).unwrap();
/// f.set(id, true);
/// assert_eq!(f.get(id), Some(true));
/// assert_eq!(f.count_set(), 1);
/// f.clear_all();
/// assert!(f.is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundFrame {
    /// Bit `i` set ⇔ link `i` carries a symbol this round.
    presence: Vec<u64>,
    /// Bit `i` = the carried bit (meaningful only where presence is set).
    value: Vec<u64>,
    links: usize,
}

impl RoundFrame {
    /// An all-silent frame over `links` directed links.
    pub fn new(links: usize) -> RoundFrame {
        let words = links.div_ceil(64);
        RoundFrame {
            presence: vec![0; words],
            value: vec![0; words],
            links,
        }
    }

    /// An all-silent frame sized to `graph`'s directed links.
    pub fn for_graph(graph: &Graph) -> RoundFrame {
        RoundFrame::new(graph.link_count())
    }

    /// Number of directed links the frame covers (silent or not).
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// Puts `bit` on link `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    #[inline]
    pub fn set(&mut self, id: LinkId, bit: bool) {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        let (w, b) = (id / 64, id % 64);
        self.presence[w] |= 1 << b;
        if bit {
            self.value[w] |= 1 << b;
        } else {
            self.value[w] &= !(1 << b);
        }
    }

    /// The bit on link `id`, or `None` if the link is silent.
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    #[inline]
    pub fn get(&self, id: LinkId) -> Option<bool> {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        let (w, b) = (id / 64, id % 64);
        if self.presence[w] >> b & 1 == 1 {
            Some(self.value[w] >> b & 1 == 1)
        } else {
            None
        }
    }

    /// Silences link `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    #[inline]
    pub fn clear(&mut self, id: LinkId) {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        let (w, b) = (id / 64, id % 64);
        self.presence[w] &= !(1 << b);
        self.value[w] &= !(1 << b);
    }

    /// Silences every link (the frame stays allocated — the buffer-reuse
    /// idiom is `clear_all` + `set` each round).
    pub fn clear_all(&mut self) {
        self.presence.fill(0);
        self.value.fill(0);
    }

    /// Number of links carrying a symbol.
    pub fn count_set(&self) -> usize {
        self.presence.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every link is silent.
    pub fn is_empty(&self) -> bool {
        self.presence.iter().all(|&w| w == 0)
    }

    /// Makes `self` a copy of `other` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the frames cover different link universes.
    pub fn copy_from(&mut self, other: &RoundFrame) {
        assert_eq!(self.links, other.links, "frame size mismatch");
        self.presence.copy_from_slice(&other.presence);
        self.value.copy_from_slice(&other.value);
    }

    /// Iterates `(link, bit)` over the non-silent links in [`LinkId`]
    /// order.
    pub fn iter_set(&self) -> impl Iterator<Item = (LinkId, bool)> + '_ {
        self.presence
            .iter()
            .enumerate()
            .flat_map(move |(wi, &word)| {
                let value = self.value[wi];
                BitIter { word }.map(move |b| (wi * 64 + b, value >> b & 1 == 1))
            })
    }

    /// Builds a frame from the legacy map form.
    ///
    /// # Panics
    ///
    /// Panics if a key is not an edge of `graph` (the legacy engine
    /// rejected such sends the same way).
    pub fn from_wire(graph: &Graph, wire: &Wire) -> RoundFrame {
        let mut f = RoundFrame::for_graph(graph);
        for (&link, &bit) in wire {
            let id = graph
                .link_id(link)
                .unwrap_or_else(|| panic!("send on non-edge {link}"));
            f.set(id, bit);
        }
        f
    }

    /// Converts to the legacy map form.
    ///
    /// # Panics
    ///
    /// Panics if the frame was not sized to `graph`.
    pub fn to_wire(&self, graph: &Graph) -> Wire {
        assert_eq!(self.links, graph.link_count(), "frame/graph mismatch");
        self.iter_set()
            .map(|(id, bit)| (graph.link(id), bit))
            .collect()
    }
}

impl From<(&Graph, &Wire)> for RoundFrame {
    fn from((graph, wire): (&Graph, &Wire)) -> RoundFrame {
        RoundFrame::from_wire(graph, wire)
    }
}

/// Iterator over the set bit positions of one word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{topology, DirectedLink};

    fn dl(from: usize, to: usize) -> DirectedLink {
        DirectedLink { from, to }
    }

    #[test]
    fn set_get_clear() {
        let mut f = RoundFrame::new(130);
        assert_eq!(f.get(0), None);
        f.set(0, true);
        f.set(64, false);
        f.set(129, true);
        assert_eq!(f.get(0), Some(true));
        assert_eq!(f.get(64), Some(false));
        assert_eq!(f.get(129), Some(true));
        assert_eq!(f.count_set(), 3);
        f.set(0, false); // overwrite clears the value bit
        assert_eq!(f.get(0), Some(false));
        f.clear(0);
        assert_eq!(f.get(0), None);
        assert_eq!(f.count_set(), 2);
        f.clear_all();
        assert!(f.is_empty());
        assert_eq!(f.count_set(), 0);
    }

    #[test]
    fn iter_set_in_order() {
        let mut f = RoundFrame::new(200);
        for &(i, b) in &[(3usize, true), (63, false), (64, true), (199, false)] {
            f.set(i, b);
        }
        let got: Vec<(usize, bool)> = f.iter_set().collect();
        assert_eq!(got, vec![(3, true), (63, false), (64, true), (199, false)]);
    }

    #[test]
    fn wire_roundtrip() {
        let g = topology::ring(5);
        let mut w = Wire::new();
        w.insert(dl(0, 1), true);
        w.insert(dl(1, 0), false);
        w.insert(dl(4, 0), true);
        let f = RoundFrame::from_wire(&g, &w);
        assert_eq!(f.count_set(), 3);
        assert_eq!(f.to_wire(&g), w);
        let f2: RoundFrame = (&g, &w).into();
        assert_eq!(f2, f);
    }

    #[test]
    fn copy_from_reuses_buffer() {
        let g = topology::line(4);
        let mut a = RoundFrame::for_graph(&g);
        a.set(1, true);
        let mut b = RoundFrame::for_graph(&g);
        b.set(4, false);
        b.copy_from(&a);
        assert_eq!(b, a);
        assert_eq!(b.get(4), None);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn from_wire_rejects_non_edge() {
        let g = topology::line(3);
        let mut w = Wire::new();
        w.insert(dl(0, 2), true);
        let _ = RoundFrame::from_wire(&g, &w);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_rejects_out_of_range() {
        let mut f = RoundFrame::new(4);
        f.set(4, true);
    }
}
