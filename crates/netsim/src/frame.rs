//! The dense per-round wire representation.
//!
//! A [`RoundFrame`] holds one synchronous round's channel contents for
//! every directed link of a graph: two bit-packed vectors (presence and
//! value) indexed by [`LinkId`]. Setting, getting and clearing a link is
//! O(1); wiping or copying a whole frame is O(m/64); iterating the
//! occupied links is O(m/64 + sends). The legacy map form
//! ([`Wire`] = `BTreeMap<DirectedLink, bool>`) converts losslessly in
//! both directions given the graph.

use netgraph::{Graph, LinkId};
use std::collections::BTreeMap;

/// The legacy map form of one round's sends: directed link → bit. Links
/// absent from the map are silent. Kept for conversions and tests; the
/// engine's hot path is [`RoundFrame`].
pub type Wire = BTreeMap<netgraph::DirectedLink, bool>;

/// One round of wire contents over a fixed link universe, bit-packed.
///
/// A frame is sized to a graph's [`Graph::link_count`] and indexed by
/// [`LinkId`]. Every link is either *silent* (absent) or carries a bit.
///
/// # Examples
///
/// ```
/// use netgraph::topology;
/// use netsim::RoundFrame;
/// let g = topology::ring(4);
/// let mut f = RoundFrame::for_graph(&g);
/// let id = g.link_id(netgraph::DirectedLink { from: 0, to: 1 }).unwrap();
/// f.set(id, true);
/// assert_eq!(f.get(id), Some(true));
/// assert_eq!(f.count_set(), 1);
/// f.clear_all();
/// assert!(f.is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundFrame {
    /// Bit `i` set ⇔ link `i` carries a symbol this round.
    presence: Vec<u64>,
    /// Bit `i` = the carried bit (meaningful only where presence is set).
    value: Vec<u64>,
    links: usize,
}

impl RoundFrame {
    /// An all-silent frame over `links` directed links.
    pub fn new(links: usize) -> RoundFrame {
        let words = links.div_ceil(64);
        RoundFrame {
            presence: vec![0; words],
            value: vec![0; words],
            links,
        }
    }

    /// An all-silent frame sized to `graph`'s directed links.
    pub fn for_graph(graph: &Graph) -> RoundFrame {
        RoundFrame::new(graph.link_count())
    }

    /// Number of directed links the frame covers (silent or not).
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// Puts `bit` on link `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    #[inline]
    pub fn set(&mut self, id: LinkId, bit: bool) {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        let (w, b) = (id / 64, id % 64);
        self.presence[w] |= 1 << b;
        if bit {
            self.value[w] |= 1 << b;
        } else {
            self.value[w] &= !(1 << b);
        }
    }

    /// The bit on link `id`, or `None` if the link is silent.
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    #[inline]
    pub fn get(&self, id: LinkId) -> Option<bool> {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        let (w, b) = (id / 64, id % 64);
        if self.presence[w] >> b & 1 == 1 {
            Some(self.value[w] >> b & 1 == 1)
        } else {
            None
        }
    }

    /// Silences link `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    #[inline]
    pub fn clear(&mut self, id: LinkId) {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        let (w, b) = (id / 64, id % 64);
        self.presence[w] &= !(1 << b);
        self.value[w] &= !(1 << b);
    }

    /// Silences every link (the frame stays allocated — the buffer-reuse
    /// idiom is `clear_all` + `set` each round).
    pub fn clear_all(&mut self) {
        self.presence.fill(0);
        self.value.fill(0);
    }

    /// Number of links carrying a symbol.
    pub fn count_set(&self) -> usize {
        self.presence.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every link is silent.
    pub fn is_empty(&self) -> bool {
        self.presence.iter().all(|&w| w == 0)
    }

    /// Makes `self` a copy of `other` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the frames cover different link universes.
    pub fn copy_from(&mut self, other: &RoundFrame) {
        assert_eq!(self.links, other.links, "frame size mismatch");
        self.presence.copy_from_slice(&other.presence);
        self.value.copy_from_slice(&other.value);
    }

    /// Iterates `(link, bit)` over the non-silent links in [`LinkId`]
    /// order.
    pub fn iter_set(&self) -> impl Iterator<Item = (LinkId, bool)> + '_ {
        self.presence
            .iter()
            .enumerate()
            .flat_map(move |(wi, &word)| {
                let value = self.value[wi];
                BitIter { word }.map(move |b| (wi * 64 + b, value >> b & 1 == 1))
            })
    }

    /// Builds a frame from the legacy map form.
    ///
    /// # Panics
    ///
    /// Panics if a key is not an edge of `graph` (the legacy engine
    /// rejected such sends the same way).
    pub fn from_wire(graph: &Graph, wire: &Wire) -> RoundFrame {
        let mut f = RoundFrame::for_graph(graph);
        for (&link, &bit) in wire {
            let id = graph
                .link_id(link)
                .unwrap_or_else(|| panic!("send on non-edge {link}"));
            f.set(id, bit);
        }
        f
    }

    /// Converts to the legacy map form.
    ///
    /// # Panics
    ///
    /// Panics if the frame was not sized to `graph`.
    pub fn to_wire(&self, graph: &Graph) -> Wire {
        assert_eq!(self.links, graph.link_count(), "frame/graph mismatch");
        self.iter_set()
            .map(|(id, bit)| (graph.link(id), bit))
            .collect()
    }
}

impl From<(&Graph, &Wire)> for RoundFrame {
    fn from((graph, wire): (&Graph, &Wire)) -> RoundFrame {
        RoundFrame::from_wire(graph, wire)
    }
}

/// A batch of `R` *independent* wire rounds over a fixed link universe,
/// bit-packed **lane-major**: each directed link owns a contiguous lane of
/// `R` presence bits and `R` value bits, one per round.
///
/// This is the word-level counterpart of a sequence of [`RoundFrame`]s.
/// Writing a link's whole multi-round message is one
/// [`FrameBatch::set_bits`] call (a few word stores) instead of `R`
/// scattered [`RoundFrame::set`] calls across `R` frames, and reading it
/// back is a [`FrameBatch::lane`] slice view. The engine consumes a batch
/// through [`crate::Network::step_rounds_into`], which is outcome-identical
/// to stepping the rounds one by one.
///
/// Batches only make sense for rounds with **no data dependency** between
/// them (every round's sends are known up front) — the meeting-points
/// hash exchange and the randomness-exchange prologue of the coding
/// scheme, not the chunk-simulation rounds.
///
/// # Examples
///
/// ```
/// use netgraph::topology;
/// use netsim::FrameBatch;
/// let g = topology::ring(4);
/// let mut b = FrameBatch::for_graph(&g, 32);
/// let id = g.link_id(netgraph::DirectedLink { from: 0, to: 1 }).unwrap();
/// b.set_bits(id, &[0xDEAD_BEEF], 32);
/// assert_eq!(b.get(id, 0), Some(true));
/// assert_eq!(b.get(id, 4), Some(false));
/// assert_eq!(b.count_set(), 32);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameBatch {
    /// Lane-major presence bits: lane `i` occupies words
    /// `[i·wpl, (i+1)·wpl)`; bit `r` of the lane ⇔ link `i` speaks in
    /// round `r` of the batch.
    presence: Vec<u64>,
    /// Lane-major value bits (meaningful only where presence is set).
    value: Vec<u64>,
    links: usize,
    rounds: usize,
    /// Words per lane = `ceil(rounds / 64)`.
    wpl: usize,
}

impl FrameBatch {
    /// An all-silent batch of `rounds` rounds over `links` directed links.
    pub fn new(links: usize, rounds: usize) -> FrameBatch {
        let wpl = rounds.div_ceil(64).max(1);
        FrameBatch {
            presence: vec![0; links * wpl],
            value: vec![0; links * wpl],
            links,
            rounds,
            wpl,
        }
    }

    /// An all-silent batch sized to `graph`'s directed links.
    pub fn for_graph(graph: &Graph, rounds: usize) -> FrameBatch {
        FrameBatch::new(graph.link_count(), rounds)
    }

    /// Number of directed links each round covers.
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// Number of rounds in the batch.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Words per link lane.
    pub fn words_per_lane(&self) -> usize {
        self.wpl
    }

    #[inline]
    fn check(&self, id: LinkId, round: usize) {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        assert!(
            round < self.rounds,
            "round {round} out of batch range {}",
            self.rounds
        );
    }

    /// Writes link `id`'s whole lane: the link speaks in rounds
    /// `0..nbits` with the bits of `words` (little-endian, bit `r` of the
    /// message in bit `r % 64` of `words[r / 64]`) and is silent in rounds
    /// `nbits..rounds`. Overwrites any previous lane content.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range, `nbits > rounds()`, or `words` has
    /// fewer than `ceil(nbits / 64)` words.
    pub fn set_bits(&mut self, id: LinkId, words: &[u64], nbits: usize) {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        assert!(
            nbits <= self.rounds,
            "nbits {nbits} exceeds batch rounds {}",
            self.rounds
        );
        let need = nbits.div_ceil(64);
        assert!(words.len() >= need, "need {need} words for {nbits} bits");
        let lane = id * self.wpl;
        self.presence[lane..lane + self.wpl].fill(0);
        self.value[lane..lane + self.wpl].fill(0);
        for (w, &word) in words[..need].iter().enumerate() {
            let full = (w + 1) * 64 <= nbits;
            let mask = if full {
                u64::MAX
            } else {
                (1u64 << (nbits % 64)) - 1
            };
            self.presence[lane + w] = mask;
            self.value[lane + w] = word & mask;
        }
    }

    /// Copies link `id`'s first `nbits` rounds into caller-owned word
    /// buffers: value bits into `value` and presence bits into `presence`
    /// (same packing as [`FrameBatch::set_bits`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range, `nbits > rounds()`, or either
    /// buffer has fewer than `ceil(nbits / 64)` words.
    pub fn get_bits(&self, id: LinkId, value: &mut [u64], presence: &mut [u64], nbits: usize) {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        assert!(
            nbits <= self.rounds,
            "nbits {nbits} exceeds batch rounds {}",
            self.rounds
        );
        let need = nbits.div_ceil(64);
        assert!(
            value.len() >= need && presence.len() >= need,
            "word buffers too short"
        );
        let lane = id * self.wpl;
        for w in 0..need {
            let full = (w + 1) * 64 <= nbits;
            let mask = if full {
                u64::MAX
            } else {
                (1u64 << (nbits % 64)) - 1
            };
            value[w] = self.value[lane + w] & mask;
            presence[w] = self.presence[lane + w] & mask;
        }
    }

    /// Borrow of link `id`'s lane as `(value words, presence words)` —
    /// the zero-copy form of [`FrameBatch::get_bits`].
    ///
    /// # Panics
    ///
    /// Panics if `id >= link_count()`.
    pub fn lane(&self, id: LinkId) -> (&[u64], &[u64]) {
        assert!(id < self.links, "link {id} out of range {}", self.links);
        let lane = id * self.wpl;
        (
            &self.value[lane..lane + self.wpl],
            &self.presence[lane..lane + self.wpl],
        )
    }

    /// Puts `bit` on link `id` in round `round` of the batch.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `round` is out of range.
    #[inline]
    pub fn set(&mut self, id: LinkId, round: usize, bit: bool) {
        self.check(id, round);
        let (w, b) = (id * self.wpl + round / 64, round % 64);
        self.presence[w] |= 1 << b;
        if bit {
            self.value[w] |= 1 << b;
        } else {
            self.value[w] &= !(1 << b);
        }
    }

    /// The bit on link `id` in round `round`, or `None` if silent.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `round` is out of range.
    #[inline]
    pub fn get(&self, id: LinkId, round: usize) -> Option<bool> {
        self.check(id, round);
        let (w, b) = (id * self.wpl + round / 64, round % 64);
        if self.presence[w] >> b & 1 == 1 {
            Some(self.value[w] >> b & 1 == 1)
        } else {
            None
        }
    }

    /// Silences link `id` in round `round`.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `round` is out of range.
    #[inline]
    pub fn clear(&mut self, id: LinkId, round: usize) {
        self.check(id, round);
        let (w, b) = (id * self.wpl + round / 64, round % 64);
        self.presence[w] &= !(1 << b);
        self.value[w] &= !(1 << b);
    }

    /// Silences every link in every round (the buffer stays allocated).
    pub fn clear_all(&mut self) {
        self.presence.fill(0);
        self.value.fill(0);
    }

    /// Total transmissions in the batch (the sum of every round's
    /// [`RoundFrame::count_set`]).
    pub fn count_set(&self) -> usize {
        self.presence.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Makes `self` a copy of `other` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the batches differ in link universe or round count.
    pub fn copy_from(&mut self, other: &FrameBatch) {
        assert_eq!(self.links, other.links, "batch link mismatch");
        assert_eq!(self.rounds, other.rounds, "batch round mismatch");
        self.presence.copy_from_slice(&other.presence);
        self.value.copy_from_slice(&other.value);
    }

    /// Extracts round `round` of the batch into `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `round` is out of range or `frame` covers a different
    /// link universe.
    pub fn round_into(&self, round: usize, frame: &mut RoundFrame) {
        assert!(
            round < self.rounds,
            "round {round} out of batch range {}",
            self.rounds
        );
        assert_eq!(frame.link_count(), self.links, "frame size mismatch");
        let (w, b) = (round / 64, round % 64);
        frame.presence.fill(0);
        frame.value.fill(0);
        for id in 0..self.links {
            let lane = id * self.wpl + w;
            if self.presence[lane] >> b & 1 == 1 {
                frame.presence[id / 64] |= 1 << (id % 64);
                if self.value[lane] >> b & 1 == 1 {
                    frame.value[id / 64] |= 1 << (id % 64);
                }
            }
        }
    }

    /// Writes `frame` in as round `round` of the batch (overwriting that
    /// round on every link).
    ///
    /// # Panics
    ///
    /// Panics if `round` is out of range or `frame` covers a different
    /// link universe.
    pub fn set_round(&mut self, round: usize, frame: &RoundFrame) {
        assert!(
            round < self.rounds,
            "round {round} out of batch range {}",
            self.rounds
        );
        assert_eq!(frame.link_count(), self.links, "frame size mismatch");
        let (w, b) = (round / 64, round % 64);
        for id in 0..self.links {
            let lane = id * self.wpl + w;
            match frame.get(id) {
                Some(bit) => {
                    self.presence[lane] |= 1 << b;
                    if bit {
                        self.value[lane] |= 1 << b;
                    } else {
                        self.value[lane] &= !(1 << b);
                    }
                }
                None => {
                    self.presence[lane] &= !(1 << b);
                    self.value[lane] &= !(1 << b);
                }
            }
        }
    }
}

/// Iterator over the set bit positions of one word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{topology, DirectedLink};

    fn dl(from: usize, to: usize) -> DirectedLink {
        DirectedLink { from, to }
    }

    #[test]
    fn set_get_clear() {
        let mut f = RoundFrame::new(130);
        assert_eq!(f.get(0), None);
        f.set(0, true);
        f.set(64, false);
        f.set(129, true);
        assert_eq!(f.get(0), Some(true));
        assert_eq!(f.get(64), Some(false));
        assert_eq!(f.get(129), Some(true));
        assert_eq!(f.count_set(), 3);
        f.set(0, false); // overwrite clears the value bit
        assert_eq!(f.get(0), Some(false));
        f.clear(0);
        assert_eq!(f.get(0), None);
        assert_eq!(f.count_set(), 2);
        f.clear_all();
        assert!(f.is_empty());
        assert_eq!(f.count_set(), 0);
    }

    #[test]
    fn iter_set_in_order() {
        let mut f = RoundFrame::new(200);
        for &(i, b) in &[(3usize, true), (63, false), (64, true), (199, false)] {
            f.set(i, b);
        }
        let got: Vec<(usize, bool)> = f.iter_set().collect();
        assert_eq!(got, vec![(3, true), (63, false), (64, true), (199, false)]);
    }

    #[test]
    fn wire_roundtrip() {
        let g = topology::ring(5);
        let mut w = Wire::new();
        w.insert(dl(0, 1), true);
        w.insert(dl(1, 0), false);
        w.insert(dl(4, 0), true);
        let f = RoundFrame::from_wire(&g, &w);
        assert_eq!(f.count_set(), 3);
        assert_eq!(f.to_wire(&g), w);
        let f2: RoundFrame = (&g, &w).into();
        assert_eq!(f2, f);
    }

    #[test]
    fn copy_from_reuses_buffer() {
        let g = topology::line(4);
        let mut a = RoundFrame::for_graph(&g);
        a.set(1, true);
        let mut b = RoundFrame::for_graph(&g);
        b.set(4, false);
        b.copy_from(&a);
        assert_eq!(b, a);
        assert_eq!(b.get(4), None);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn from_wire_rejects_non_edge() {
        let g = topology::line(3);
        let mut w = Wire::new();
        w.insert(dl(0, 2), true);
        let _ = RoundFrame::from_wire(&g, &w);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_rejects_out_of_range() {
        let mut f = RoundFrame::new(4);
        f.set(4, true);
    }

    #[test]
    fn batch_set_bits_lane_roundtrip() {
        let mut b = FrameBatch::new(3, 100);
        assert_eq!(b.words_per_lane(), 2);
        let msg = [0xABCD_EF01_2345_6789u64, 0x3FF];
        b.set_bits(1, &msg, 74);
        for r in 0..74 {
            let want = msg[r / 64] >> (r % 64) & 1 == 1;
            assert_eq!(b.get(1, r), Some(want), "round {r}");
        }
        for r in 74..100 {
            assert_eq!(b.get(1, r), None);
        }
        assert_eq!(b.count_set(), 74);
        let (mut v, mut p) = ([0u64; 2], [0u64; 2]);
        b.get_bits(1, &mut v, &mut p, 74);
        assert_eq!(v, [msg[0], msg[1] & ((1 << 10) - 1)]);
        assert_eq!(p, [u64::MAX, (1 << 10) - 1]);
        let (lv, lp) = b.lane(1);
        assert_eq!(lv, &v);
        assert_eq!(lp, &p);
        // Other lanes untouched.
        assert_eq!(b.lane(0), (&[0u64; 2][..], &[0u64; 2][..]));
        // Overwriting shortens the lane.
        b.set_bits(1, &[0b101], 3);
        assert_eq!(b.count_set(), 3);
        assert_eq!(b.get(1, 2), Some(true));
        assert_eq!(b.get(1, 3), None);
    }

    #[test]
    fn batch_per_round_ops_and_round_frames() {
        let g = topology::ring(4);
        let mut b = FrameBatch::for_graph(&g, 5);
        b.set(0, 0, true);
        b.set(3, 4, false);
        b.set(7, 2, true);
        assert_eq!(b.get(0, 0), Some(true));
        b.clear(0, 0);
        assert_eq!(b.get(0, 0), None);
        let mut f = RoundFrame::for_graph(&g);
        b.round_into(4, &mut f);
        assert_eq!(f.count_set(), 1);
        assert_eq!(f.get(3), Some(false));
        // set_round writes a whole frame back in.
        let mut f2 = RoundFrame::for_graph(&g);
        f2.set(1, true);
        f2.set(3, true);
        b.set_round(4, &f2);
        b.round_into(4, &mut f);
        assert_eq!(f, f2);
        // clear_all wipes everything.
        b.clear_all();
        assert_eq!(b.count_set(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds batch rounds")]
    fn batch_rejects_oversized_message() {
        let mut b = FrameBatch::new(2, 8);
        b.set_bits(0, &[0], 9);
    }

    #[test]
    #[should_panic(expected = "out of batch range")]
    fn batch_rejects_round_out_of_range() {
        let b = FrameBatch::new(2, 8);
        let _ = b.get(0, 8);
    }
}
