//! Deterministic wire-level fault schedules: link outages and party
//! crashes applied by the [`crate::Network`] engine.
//!
//! A [`FaultSchedule`] is a compiled, engine-ready list of transitions
//! keyed by the **absolute wire round** (the engine's
//! [`crate::NetStats::rounds`] counter, which both the bit-serial and the
//! batched paths advance identically — that is what makes fault outcomes
//! byte-identical across `WireMode`s). The schedule is built by the
//! coding-scheme layer (`mpic::FaultPlan::compile`), which owns the
//! seedable, validated plan vocabulary; this module owns only the wire
//! semantics:
//!
//! * a **downed link** silently drops every symbol it would deliver —
//!   honest transmissions *and* adversarial insertions. The sender still
//!   pays the communication (`cc` counts attempted transmissions) and the
//!   adversary still pays budget for corruptions it lands on the link:
//!   the outage masks the *reception*, exactly like the paper's deletion
//!   noise, so the meeting-point/rewind machinery sees ordinary silence;
//! * a **crashed party** is fail-silent at its network interface: every
//!   incident directed link (both directions) is masked, so the party
//!   sends nothing anyone hears and hears nothing anyone sends. Its
//!   local state machine keeps running against silence and resynchronizes
//!   after recovery through the standard meeting-point comparison and
//!   rewind wave (see the README's fault-model section for the resync
//!   rule).
//!
//! Masking happens *after* the adversary and the budget accounting, so
//! [`crate::NetStats`] is unchanged by faults; the fault-only accounting
//! lands in [`FaultStats`].

use crate::frame::{FrameBatch, RoundFrame};
use netgraph::LinkId;

/// Accounting of the faults a run actually applied. Deterministic given
/// the schedule and the traffic; byte-identical across the engine's wire
/// paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Scheduled link-outage `down` transitions applied (crash-induced
    /// isolation is *not* counted here — see
    /// [`FaultStats::crash_rounds`]).
    pub links_downed: u64,
    /// Sum over rounds of the number of parties crashed in that round.
    pub crash_rounds: u64,
    /// Symbols (honest or inserted) silently dropped by downed links and
    /// crashed parties.
    pub masked_symbols: u64,
}

/// One compiled link transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct LinkTransition {
    round: u64,
    lid: LinkId,
    /// `true` downs the link (reference-counted), `false` releases one
    /// hold on it.
    down: bool,
    /// Crash-induced transitions are excluded from
    /// [`FaultStats::links_downed`].
    from_crash: bool,
}

/// One compiled party-crash counter transition (used only for
/// [`FaultStats::crash_rounds`]; the wire effect of a crash is carried by
/// the per-link transitions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PartyTransition {
    round: u64,
    crash: bool,
}

/// A compiled schedule of wire faults, addressed by absolute round.
///
/// Transitions take effect at the *start* of their round: a link downed
/// at round `r` drops round `r`'s symbols. Down/up pairs on the same
/// link nest by reference counting, so a link crushed by both a
/// scheduled outage and a neighboring crash stays down until both lift.
/// An `up` for a link that is already up is a no-op (stray releases are
/// clamped, never underflow).
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    links: Vec<LinkTransition>,
    parties: Vec<PartyTransition>,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Whether the schedule contains no transitions at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.parties.is_empty()
    }

    /// Downs directed link `lid` from round `round` (counted in
    /// [`FaultStats::links_downed`] when applied).
    pub fn link_down(&mut self, round: u64, lid: LinkId) {
        self.links.push(LinkTransition {
            round,
            lid,
            down: true,
            from_crash: false,
        });
    }

    /// Releases one hold on directed link `lid` from round `round`.
    pub fn link_up(&mut self, round: u64, lid: LinkId) {
        self.links.push(LinkTransition {
            round,
            lid,
            down: false,
            from_crash: false,
        });
    }

    /// Crashes a party from round `round`: masks all its incident
    /// directed links (callers pass both directions) and starts counting
    /// [`FaultStats::crash_rounds`].
    pub fn crash_party(&mut self, round: u64, incident: &[LinkId]) {
        for &lid in incident {
            self.links.push(LinkTransition {
                round,
                lid,
                down: true,
                from_crash: true,
            });
        }
        self.parties.push(PartyTransition { round, crash: true });
    }

    /// Recovers a party crashed with the same `incident` set.
    pub fn recover_party(&mut self, round: u64, incident: &[LinkId]) {
        for &lid in incident {
            self.links.push(LinkTransition {
                round,
                lid,
                down: false,
                from_crash: true,
            });
        }
        self.parties.push(PartyTransition {
            round,
            crash: false,
        });
    }

    /// Sorts transitions into application order (stable, so same-round
    /// transitions apply in insertion order — deterministic for any
    /// plan).
    fn finalize(&mut self) {
        self.links.sort_by_key(|t| t.round);
        self.parties.sort_by_key(|t| t.round);
    }
}

/// The engine's live fault state: the schedule plus the current down-set,
/// advanced monotonically by round.
#[derive(Debug)]
pub(crate) struct FaultState {
    schedule: FaultSchedule,
    link_cursor: usize,
    party_cursor: usize,
    /// Reference count of holds on each directed link.
    down_count: Vec<u32>,
    /// Sorted cache of the links with `down_count > 0`.
    active: Vec<LinkId>,
    /// Parties currently crashed.
    crashed: u64,
    stats: FaultStats,
}

impl FaultState {
    /// Compiles `schedule` against a graph with `link_count` directed
    /// links. Transitions naming out-of-range links are dropped (the
    /// plan layer validates and clamps before compiling; this is the
    /// engine's last-resort guard).
    pub(crate) fn new(mut schedule: FaultSchedule, link_count: usize) -> Self {
        schedule.links.retain(|t| t.lid < link_count);
        schedule.finalize();
        FaultState {
            schedule,
            link_cursor: 0,
            party_cursor: 0,
            down_count: vec![0; link_count],
            active: Vec::new(),
            crashed: 0,
            stats: FaultStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Applies every transition scheduled at or before `round`. Rounds
    /// are monotone in the engine, so the cursors only move forward.
    fn advance_to(&mut self, round: u64) {
        while let Some(t) = self.schedule.links.get(self.link_cursor) {
            if t.round > round {
                break;
            }
            let t = *t;
            self.link_cursor += 1;
            if t.down {
                if self.down_count[t.lid] == 0 {
                    let pos = self.active.binary_search(&t.lid).unwrap_err();
                    self.active.insert(pos, t.lid);
                }
                self.down_count[t.lid] += 1;
                if !t.from_crash {
                    self.stats.links_downed += 1;
                }
            } else if self.down_count[t.lid] > 0 {
                self.down_count[t.lid] -= 1;
                if self.down_count[t.lid] == 0 {
                    if let Ok(pos) = self.active.binary_search(&t.lid) {
                        self.active.remove(pos);
                    }
                }
            }
            // A release on an already-up link is a clamped no-op.
        }
        while let Some(t) = self.schedule.parties.get(self.party_cursor) {
            if t.round > round {
                break;
            }
            if t.crash {
                self.crashed += 1;
            } else {
                self.crashed = self.crashed.saturating_sub(1);
            }
            self.party_cursor += 1;
        }
    }

    /// Masks one round's receptions in a [`RoundFrame`]: advances the
    /// schedule to `round`, silences every downed link, and accounts the
    /// crash round.
    pub(crate) fn mask_frame(&mut self, round: u64, rx: &mut RoundFrame) {
        self.advance_to(round);
        for &lid in &self.active {
            if rx.get(lid).is_some() {
                self.stats.masked_symbols += 1;
                rx.clear(lid);
            }
        }
        self.stats.crash_rounds += self.crashed;
    }

    /// Batch-round analogue of [`FaultState::mask_frame`]: masks batch
    /// offset `offset` (absolute round `round`) of `rx`.
    pub(crate) fn mask_batch_round(&mut self, round: u64, rx: &mut FrameBatch, offset: usize) {
        self.advance_to(round);
        for &lid in &self.active {
            if rx.get(lid, offset).is_some() {
                self.stats.masked_symbols += 1;
                rx.clear(lid, offset);
            }
        }
        self.stats.crash_rounds += self.crashed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_empty() {
        assert!(FaultSchedule::new().is_empty());
        let mut s = FaultSchedule::new();
        s.link_down(3, 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn down_up_toggles_masking() {
        let mut s = FaultSchedule::new();
        s.link_down(1, 0);
        s.link_up(3, 0);
        let mut st = FaultState::new(s, 2);
        let mut fr = RoundFrame::new(2);
        for round in 0..5 {
            fr.clear_all();
            fr.set(0, true);
            fr.set(1, false);
            st.mask_frame(round, &mut fr);
            let expect_masked = (1..3).contains(&round);
            assert_eq!(fr.get(0).is_none(), expect_masked, "round {round}");
            assert_eq!(
                fr.get(1),
                Some(false),
                "round {round}: other link untouched"
            );
        }
        assert_eq!(st.stats().links_downed, 1);
        assert_eq!(st.stats().masked_symbols, 2);
    }

    #[test]
    fn crash_masks_and_counts_rounds() {
        let mut s = FaultSchedule::new();
        s.crash_party(2, &[0, 1]);
        s.recover_party(4, &[0, 1]);
        let mut st = FaultState::new(s, 4);
        let mut fr = RoundFrame::new(4);
        for round in 0..6 {
            fr.clear_all();
            fr.set(0, true);
            fr.set(1, true);
            fr.set(2, true);
            st.mask_frame(round, &mut fr);
            let down = (2..4).contains(&round);
            assert_eq!(fr.get(0).is_none(), down);
            assert_eq!(fr.get(1).is_none(), down);
            assert_eq!(fr.get(2), Some(true));
        }
        // Crash isolation does not count as a scheduled link outage.
        assert_eq!(st.stats().links_downed, 0);
        assert_eq!(st.stats().crash_rounds, 2);
        assert_eq!(st.stats().masked_symbols, 4);
    }

    #[test]
    fn overlapping_holds_refcount() {
        let mut s = FaultSchedule::new();
        s.link_down(0, 0);
        s.crash_party(1, &[0]);
        s.link_up(2, 0); // outage lifts, crash still holds the link
        s.recover_party(4, &[0]);
        let mut st = FaultState::new(s, 1);
        let mut fr = RoundFrame::new(1);
        for round in 0..6 {
            fr.clear_all();
            fr.set(0, true);
            st.mask_frame(round, &mut fr);
            assert_eq!(fr.get(0).is_none(), round < 4, "round {round}");
        }
    }

    #[test]
    fn stray_release_is_clamped() {
        let mut s = FaultSchedule::new();
        s.link_up(0, 0); // nothing to release
        s.link_down(1, 0);
        let mut st = FaultState::new(s, 1);
        let mut fr = RoundFrame::new(1);
        fr.set(0, true);
        st.mask_frame(0, &mut fr);
        assert_eq!(
            fr.get(0),
            Some(true),
            "stray release must not down the link"
        );
        fr.clear_all();
        fr.set(0, true);
        st.mask_frame(1, &mut fr);
        assert!(fr.get(0).is_none(), "later down still applies");
    }

    #[test]
    fn out_of_range_links_dropped() {
        let mut s = FaultSchedule::new();
        s.link_down(0, 99);
        let mut st = FaultState::new(s, 2);
        let mut fr = RoundFrame::new(2);
        fr.set(0, true);
        st.mask_frame(0, &mut fr);
        assert_eq!(fr.get(0), Some(true));
        assert_eq!(st.stats().links_downed, 0);
    }
}
