//! The public round geometry of the coding scheme.
//!
//! Every phase of the simulation occupies an a-priori fixed number of
//! rounds (paper §3.1: "each phase consists of a fixed number of rounds …
//! there is never an ambiguity as to which phase is being executed").
//! Since the geometry is fixed and input-independent, it is *public*: even
//! an oblivious adversary may aim its noise pattern at a phase of its
//! choice. [`PhaseGeometry`] is how the runner publishes that layout to
//! adversaries.

/// Which phase a round belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub enum PhaseKind {
    /// Randomness exchange (Algorithm 5), before iteration 0; absent under
    /// a CRS.
    Setup,
    /// Meeting-points consistency check.
    MeetingPoints,
    /// Flag passing over the spanning tree.
    FlagPassing,
    /// Chunk simulation (including the leading ⊥ round).
    Simulation,
    /// Rewind wave.
    Rewind,
}

/// Where a round falls: which iteration, phase, and offset within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhasePos {
    /// Iteration index (0-based; 0 also covers the setup prologue).
    pub iteration: u64,
    /// Phase of the iteration.
    pub phase: PhaseKind,
    /// Round offset within the phase.
    pub offset: u64,
}

/// Fixed round counts of the scheme's phases.
///
/// # Examples
///
/// ```
/// use netsim::{PhaseGeometry, PhaseKind};
/// let g = PhaseGeometry { setup: 10, meeting_points: 4, flag_passing: 6, simulation: 21, rewind: 5 };
/// assert_eq!(g.iteration_rounds(), 36);
/// let p = g.locate(10 + 36 + 4);
/// assert_eq!(p.iteration, 1);
/// assert_eq!(p.phase, PhaseKind::FlagPassing);
/// assert_eq!(p.offset, 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseGeometry {
    /// Rounds of the randomness-exchange prologue (0 under a CRS).
    pub setup: u64,
    /// Rounds per meeting-points phase.
    pub meeting_points: u64,
    /// Rounds per flag-passing phase.
    pub flag_passing: u64,
    /// Rounds per simulation phase (⊥ round + chunk rounds).
    pub simulation: u64,
    /// Rounds per rewind phase.
    pub rewind: u64,
}

impl PhaseGeometry {
    /// Rounds in one full iteration.
    pub fn iteration_rounds(&self) -> u64 {
        self.meeting_points + self.flag_passing + self.simulation + self.rewind
    }

    /// Locates an absolute round number.
    pub fn locate(&self, round: u64) -> PhasePos {
        if round < self.setup {
            return PhasePos {
                iteration: 0,
                phase: PhaseKind::Setup,
                offset: round,
            };
        }
        let r = round - self.setup;
        let per = self.iteration_rounds();
        let iteration = r / per;
        let mut off = r % per;
        for (phase, len) in [
            (PhaseKind::MeetingPoints, self.meeting_points),
            (PhaseKind::FlagPassing, self.flag_passing),
            (PhaseKind::Simulation, self.simulation),
            (PhaseKind::Rewind, self.rewind),
        ] {
            if off < len {
                return PhasePos {
                    iteration,
                    phase,
                    offset: off,
                };
            }
            off -= len;
        }
        unreachable!("offset within iteration exhausted all phases")
    }

    /// The absolute round at which `iteration`'s `phase` begins.
    pub fn phase_start(&self, iteration: u64, phase: PhaseKind) -> u64 {
        let base = self.setup + iteration * self.iteration_rounds();
        let off = match phase {
            PhaseKind::Setup => return 0,
            PhaseKind::MeetingPoints => 0,
            PhaseKind::FlagPassing => self.meeting_points,
            PhaseKind::Simulation => self.meeting_points + self.flag_passing,
            PhaseKind::Rewind => self.meeting_points + self.flag_passing + self.simulation,
        };
        base + off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: PhaseGeometry = PhaseGeometry {
        setup: 7,
        meeting_points: 3,
        flag_passing: 4,
        simulation: 11,
        rewind: 5,
    };

    #[test]
    fn setup_then_phases_in_order() {
        assert_eq!(G.locate(0).phase, PhaseKind::Setup);
        assert_eq!(G.locate(6).phase, PhaseKind::Setup);
        let p = G.locate(7);
        assert_eq!(
            (p.iteration, p.phase, p.offset),
            (0, PhaseKind::MeetingPoints, 0)
        );
        let p = G.locate(7 + 3);
        assert_eq!(p.phase, PhaseKind::FlagPassing);
        let p = G.locate(7 + 3 + 4);
        assert_eq!(p.phase, PhaseKind::Simulation);
        let p = G.locate(7 + 3 + 4 + 11);
        assert_eq!(p.phase, PhaseKind::Rewind);
        let p = G.locate(7 + 23);
        assert_eq!((p.iteration, p.phase), (1, PhaseKind::MeetingPoints));
    }

    #[test]
    fn every_round_locates_consistently() {
        for round in 0..200 {
            let p = G.locate(round);
            if p.phase != PhaseKind::Setup {
                let start = G.phase_start(p.iteration, p.phase);
                assert_eq!(start + p.offset, round, "round {round}");
            }
        }
    }

    #[test]
    fn phase_start_matches_locate() {
        for it in 0..3 {
            for phase in [
                PhaseKind::MeetingPoints,
                PhaseKind::FlagPassing,
                PhaseKind::Simulation,
                PhaseKind::Rewind,
            ] {
                let s = G.phase_start(it, phase);
                let p = G.locate(s);
                assert_eq!((p.iteration, p.phase, p.offset), (it, phase, 0));
            }
        }
    }
}
