//! Synchronous noisy-network engine and adversaries.
//!
//! Model (paper §2.1): rounds are synchronous; each link carries at most
//! one symbol per round per direction; the channel alphabet is
//! `Σ ∪ {*}` = {0, 1, silence}. The adversary may **substitute** a bit,
//! **delete** a transmission (bit → silence), or **insert** one (silence →
//! bit); each such change counts as one corruption, and the noise budget is
//! a fraction of the *actual* communication of the instance.
//!
//! # The wire representation
//!
//! One round's channel contents are a [`RoundFrame`]: two bit-packed
//! vectors (presence + value) indexed by the graph's dense
//! [`netgraph::LinkId`]. Probing a link is O(1), wiping or copying a
//! frame is O(m/64), and a frame never allocates after construction.
//!
//! The [`Network`] engine is driven round-by-round by the coding-scheme
//! runner through [`Network::step_into`]: the runner owns a sends frame
//! and a receptions frame, fills the former, and the engine consults the
//! [`Adversary`], enforces the corruption budget, counts communication,
//! and writes what each receiver observes into the latter — both buffers
//! reused every round.
//!
//! # Batched wire rounds
//!
//! Phases whose rounds carry **no data dependency** (every round's sends
//! are known up front — the coding scheme's 4τ-round meeting-points hash
//! exchange and its randomness-exchange prologue) go through the
//! word-level batch path instead: a [`FrameBatch`] packs `R` rounds
//! **lane-major** (each link owns `R` contiguous presence/value bits), so
//! a link's whole multi-round message is written with one
//! [`FrameBatch::set_bits`] word store and read back as a
//! [`FrameBatch::lane`] slice. [`Network::step_rounds_into`] consumes a
//! batch in one call — one bulk copy, one [`Adversary::corrupt_batch`]
//! consultation for batch-aware adversaries (every oblivious attack in
//! [`attacks`]) and a per-round fallback for the rest — with the
//! contract that receptions, [`NetStats`] and adversary state end up
//! byte-identical to stepping the rounds one at a time. Corruptions in a
//! batch are addressed per round via [`RoundCorruption`], so nothing is
//! lost relative to the bit-serial path.
//!
//! ## Migration note (`Wire` users)
//!
//! Before this redesign the wire was `Wire = BTreeMap<DirectedLink,
//! bool>` and the engine's only entry point was `step(&Wire, view) ->
//! Wire`, which cloned the map every round. `Wire` and [`Network::step`]
//! survive as a conversion layer — `step` is a thin wrapper that
//! round-trips through [`RoundFrame::from_wire`] / [`RoundFrame::to_wire`]
//! and allocates per call, so port hot loops to `step_into`:
//!
//! * `wire.insert(link, bit)` → `frame.set(graph.link_id(link)?, bit)`
//!   (resolve ids once, outside the loop, where possible);
//! * `wire.get(&link)` → `frame.get(id)` (returns `Option<bool>` by
//!   value);
//! * `wire.contains_key(&link)` → `frame.get(id).is_some()`;
//! * iteration → [`RoundFrame::iter_set`], which yields `(LinkId, bool)`
//!   in id order;
//! * [`Adversary::corrupt`] and [`AdaptiveView::collision_corruption`]
//!   now receive `&RoundFrame`; attacks resolve their target links to ids
//!   at construction (constructors take `&Graph`).
//!
//! Adversaries come in two flavors mirroring the paper:
//! * **oblivious** ([`Adversary::is_oblivious`] = true) — their decisions
//!   depend only on `(round, link)` and private randomness fixed up front
//!   (the additive adversary of §2.1);
//! * **non-oblivious** — they may inspect an [`AdaptiveView`] of the live
//!   execution, including a seed-aware hash-collision oracle (the §6.1
//!   attack surface).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
mod engine;
mod fault;
mod frame;
mod phase;

pub use engine::{
    AdaptiveView, Adversary, Corruption, EdgeMpView, FlagView, MpSideView, NetStats, Network,
    RoundCorruption,
};
pub use fault::{FaultSchedule, FaultStats};
pub use frame::{FrameBatch, RoundFrame, Wire};
pub use phase::{PhaseGeometry, PhaseKind, PhasePos};
