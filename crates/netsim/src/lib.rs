//! Synchronous noisy-network engine and adversaries.
//!
//! Model (paper §2.1): rounds are synchronous; each link carries at most
//! one symbol per round per direction; the channel alphabet is
//! `Σ ∪ {*}` = {0, 1, silence}. The adversary may **substitute** a bit,
//! **delete** a transmission (bit → silence), or **insert** one (silence →
//! bit); each such change counts as one corruption, and the noise budget is
//! a fraction of the *actual* communication of the instance.
//!
//! The [`Network`] engine is driven round-by-round by the coding-scheme
//! runner: the runner supplies the honest sends, the engine consults the
//! [`Adversary`], enforces the corruption budget, counts communication, and
//! returns what each receiver observes.
//!
//! Adversaries come in two flavors mirroring the paper:
//! * **oblivious** ([`Adversary::is_oblivious`] = true) — their decisions
//!   depend only on `(round, link)` and private randomness fixed up front
//!   (the additive adversary of §2.1);
//! * **non-oblivious** — they may inspect an [`AdaptiveView`] of the live
//!   execution, including a seed-aware hash-collision oracle (the §6.1
//!   attack surface).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
mod engine;
mod phase;

pub use engine::{AdaptiveView, Adversary, Corruption, NetStats, Network, Wire};
pub use phase::{PhaseGeometry, PhaseKind, PhasePos};
