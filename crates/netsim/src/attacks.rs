//! The attack library used by the experiments.
//!
//! All "oblivious" attacks draw from private randomness with a consumption
//! pattern that is a function of `(round, link)` only — they are exactly
//! the additive adversaries of §2.1, just generated lazily instead of as a
//! pre-materialized noise tensor. The seed-aware attack is the §6.1
//! non-oblivious adversary.
//!
//! Attacks that touch specific links resolve them to dense
//! [`netgraph::LinkId`]s at construction (hence the `&Graph` parameter),
//! so probing the per-round [`RoundFrame`] is O(1) per link.

use crate::engine::{AdaptiveView, Adversary, Corruption, RoundCorruption};
use crate::frame::{FrameBatch, RoundFrame};
use crate::phase::{PhaseGeometry, PhaseKind};
use netgraph::{DirectedLink, Graph, LinkId};
use smallbias::Xoshiro256;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Ternary additive noise (§2.1): symbols are {0, 1, *}≅{0, 1, 2} and the
/// adversary adds `e ∈ {1, 2}` mod 3 to the channel.
fn additive(honest: Option<bool>, e: u8) -> Option<bool> {
    let x = match honest {
        Some(false) => 0u8,
        Some(true) => 1,
        None => 2,
    };
    match (x + e) % 3 {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

/// The silent adversary.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoNoise;

impl Adversary for NoNoise {
    fn corrupt(
        &mut self,
        _: u64,
        _: &RoundFrame,
        _: u64,
        _: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        Vec::new()
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        _: u64,
        _: &FrameBatch,
        _: u64,
        _: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Shared batch-corruption loop of the sampler-driven attacks: replays
/// the sequential per-round RNG consumption (round-major `take` over the
/// link universe) and emits hits only for rounds where `emit` holds —
/// the one place the byte-identical-to-sequential contract lives for
/// both [`IidNoise`] and [`PhaseTargeted`].
fn sampled_batch(
    links: &[DirectedLink],
    sampler: &mut GapSampler,
    sends: &FrameBatch,
    emit: impl Fn(usize) -> bool,
) -> Vec<RoundCorruption> {
    let mut out = Vec::new();
    for r in 0..sends.rounds() {
        let emit_round = emit(r);
        sampler.take(links.len() as u64, |off, e| {
            if emit_round {
                let id = off as usize;
                out.push(RoundCorruption {
                    round: r,
                    corruption: Corruption {
                        link: links[id],
                        output: additive(sends.get(id, r), e),
                    },
                });
            }
        });
    }
    out
}

/// Geometric gap sampler: enumerates the *hit* slots of an i.i.d.
/// Bernoulli(`prob`) process over an abstract slot sequence without
/// touching the misses. Instead of one RNG draw per slot, one draw per hit
/// yields the gap to the next hit — per-round adversary cost drops from
/// `O(links)` to `O(expected hits)`, which is what makes high-rate rounds
/// over hundreds of links cheap. The induced hit pattern is a function of
/// private randomness only, so attacks built on it remain oblivious
/// (additive, §2.1).
struct GapSampler {
    rng: Xoshiro256,
    prob: f64,
    /// Absolute index of the next hit slot (`u64::MAX` = never).
    next_hit: u64,
    /// First slot not yet consumed.
    cursor: u64,
}

impl GapSampler {
    fn new(prob: f64, rng: Xoshiro256) -> Self {
        let mut s = GapSampler {
            rng,
            prob,
            next_hit: 0,
            cursor: 0,
        };
        s.next_hit = s.draw_gap();
        s
    }

    /// Misses before the next hit: `Geometric(prob)` via inversion.
    fn draw_gap(&mut self) -> u64 {
        if self.prob >= 1.0 {
            return 0;
        }
        if self.prob <= 0.0 {
            return u64::MAX;
        }
        let u = self.rng.unit_f64(); // [0, 1): 1 - u is in (0, 1]
        let g = ((1.0 - u).ln() / (1.0 - self.prob).ln()).floor();
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Consumes the next `count` slots, invoking `hit` with the relative
    /// offset and an additive error `e ∈ {1, 2}` for each hit among them.
    fn take(&mut self, count: u64, mut hit: impl FnMut(u64, u8)) {
        let end = self.cursor.saturating_add(count);
        while self.next_hit < end {
            let e = 1 + (self.rng.next_u64() % 2) as u8;
            hit(self.next_hit - self.cursor, e);
            let gap = self.draw_gap();
            self.next_hit = self.next_hit.saturating_add(1).saturating_add(gap);
        }
        self.cursor = end;
    }
}

/// Oblivious i.i.d. additive noise: every `(round, directed link)` slot is
/// corrupted independently with probability `prob`, with a uniformly random
/// additive offset in {1, 2}. Hits are enumerated by a geometric gap
/// sampler, so a round costs `O(hits)`, not `O(links)`; the pattern is a
/// function of the private RNG only and therefore independent of the
/// execution.
pub struct IidNoise {
    /// All directed links in [`netgraph::LinkId`] order (index = id).
    links: Vec<DirectedLink>,
    sampler: GapSampler,
    /// Rounds to leave untouched at the start (e.g. to spare the setup).
    skip_before: u64,
}

impl IidNoise {
    /// Noise over every directed link of `graph` with per-slot probability
    /// `prob`, seeded RNG.
    pub fn new(graph: &Graph, prob: f64, seed: u64) -> Self {
        IidNoise {
            links: graph.links().to_vec(),
            sampler: GapSampler::new(prob, Xoshiro256::seeded(seed ^ 0x6e6f_6973_65aa_bb01)),
            skip_before: 0,
        }
    }

    /// Leaves rounds `< round` noiseless (the pattern still advances,
    /// preserving obliviousness of the remaining rounds).
    pub fn skip_before(mut self, round: u64) -> Self {
        self.skip_before = round;
        self
    }
}

impl Adversary for IidNoise {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let mut out = Vec::new();
        let links = &self.links;
        let emit = round >= self.skip_before;
        self.sampler.take(links.len() as u64, |off, e| {
            if emit {
                let id = off as usize;
                out.push(Corruption {
                    link: links[id],
                    output: additive(sends.get(id), e),
                });
            }
        });
        out
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        let skip = self.skip_before;
        sampled_batch(&self.links, &mut self.sampler, sends, |r| {
            first_round + r as u64 >= skip
        })
    }

    fn name(&self) -> &'static str {
        "iid"
    }
}

/// Oblivious burst: additive-1 noise on one directed link for a round
/// window (flips bits, turns silence into inserted zeros... mod-3: silence
/// becomes `0`).
#[derive(Clone, Copy, Debug)]
pub struct BurstLink {
    link: DirectedLink,
    id: LinkId,
    start: u64,
    len: u64,
}

impl BurstLink {
    /// Burst on `link` during rounds `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not an edge of `graph`.
    pub fn new(graph: &Graph, link: DirectedLink, start: u64, len: u64) -> Self {
        let id = graph.link_id(link).expect("burst on non-edge");
        BurstLink {
            link,
            id,
            start,
            len,
        }
    }
}

impl Adversary for BurstLink {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        if round < self.start || round >= self.start + self.len {
            return Vec::new();
        }
        vec![Corruption {
            link: self.link,
            output: additive(sends.get(self.id), 1),
        }]
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        (0..sends.rounds())
            .filter(|&r| {
                let round = first_round + r as u64;
                round >= self.start && round < self.start + self.len
            })
            .map(|r| RoundCorruption {
                round: r,
                corruption: Corruption {
                    link: self.link,
                    output: additive(sends.get(self.id, r), 1),
                },
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "burst"
    }
}

/// A single additive corruption at one `(round, link)` — the minimal attack
/// of the paper's §1.2 line example (F4).
#[derive(Clone, Copy, Debug)]
pub struct SingleError {
    link: DirectedLink,
    id: LinkId,
    round: u64,
    fired: bool,
}

impl SingleError {
    /// One corruption on `link` at `round`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not an edge of `graph`.
    pub fn new(graph: &Graph, link: DirectedLink, round: u64) -> Self {
        let id = graph.link_id(link).expect("single error on non-edge");
        SingleError {
            link,
            id,
            round,
            fired: false,
        }
    }
}

impl Adversary for SingleError {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        if self.fired || round != self.round {
            return Vec::new();
        }
        self.fired = true;
        vec![Corruption {
            link: self.link,
            output: additive(sends.get(self.id), 1),
        }]
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        if self.fired || self.round < first_round {
            return Vec::new();
        }
        let off = (self.round - first_round) as usize;
        if off >= sends.rounds() {
            return Vec::new();
        }
        self.fired = true;
        vec![RoundCorruption {
            round: off,
            corruption: Corruption {
                link: self.link,
                output: additive(sends.get(self.id, off), 1),
            },
        }]
    }

    fn name(&self) -> &'static str {
        "single"
    }
}

/// Oblivious phase-targeted noise: i.i.d. additive noise restricted to one
/// phase kind (the phase layout is public, so this is still oblivious).
/// Used to attack flag passing, the rewind wave, the meeting points, or the
/// randomness exchange specifically.
pub struct PhaseTargeted {
    geometry: PhaseGeometry,
    phase: PhaseKind,
    /// All directed links in [`netgraph::LinkId`] order (index = id).
    links: Vec<DirectedLink>,
    sampler: GapSampler,
}

impl PhaseTargeted {
    /// Noise over every directed link of `graph` with per-slot probability
    /// `prob`, confined to `phase`.
    pub fn new(
        graph: &Graph,
        geometry: PhaseGeometry,
        phase: PhaseKind,
        prob: f64,
        seed: u64,
    ) -> Self {
        PhaseTargeted {
            geometry,
            phase,
            links: graph.links().to_vec(),
            sampler: GapSampler::new(prob, Xoshiro256::seeded(seed ^ 0x7068_6173_65cc_dd02)),
        }
    }
}

impl Adversary for PhaseTargeted {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let mut out = Vec::new();
        let links = &self.links;
        let emit = self.geometry.locate(round).phase == self.phase;
        self.sampler.take(links.len() as u64, |off, e| {
            if emit {
                let id = off as usize;
                out.push(Corruption {
                    link: links[id],
                    output: additive(sends.get(id), e),
                });
            }
        });
        out
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        let (geometry, phase) = (self.geometry, self.phase);
        sampled_batch(&self.links, &mut self.sampler, sends, |r| {
            geometry.locate(first_round + r as u64).phase == phase
        })
    }

    fn name(&self) -> &'static str {
        "phase_targeted"
    }
}

/// The §6.1 **non-oblivious, seed-aware** adversary: during every
/// simulation phase it hunts (via the runner's oracle) for a corruption
/// whose damage will be masked by a hash collision at the next
/// meeting-points check — guaranteed-undetected errors. It spends at most
/// `per_iteration` corruptions per iteration.
///
/// Against a constant hash length (Algorithm A) the hunt succeeds roughly
/// every iteration once `m` candidate positions × 2^{-τ} ≳ 1 and the
/// simulation never converges; against τ = Θ(log m) (Algorithm B) the
/// success probability per candidate is `m^{-Θ(1)}` and the hunt starves.
///
/// Deliberately **not** [`Adversary::batch_aware`]: its oracle reads live
/// per-round simulation state, which only exists on the sequential path —
/// batched steps (meeting points, exchange) reach it through the engine's
/// per-round fallback, where it correctly stays idle.
pub struct SeedAwareCollision {
    geometry: PhaseGeometry,
    edges: usize,
    per_iteration: u64,
    spent_this_iteration: u64,
    current_iteration: u64,
}

impl SeedAwareCollision {
    /// Hunts over all `edges` edges, at most `per_iteration` hits per
    /// iteration.
    pub fn new(geometry: PhaseGeometry, edges: usize, per_iteration: u64) -> Self {
        SeedAwareCollision {
            geometry,
            edges,
            per_iteration,
            spent_this_iteration: 0,
            current_iteration: u64::MAX,
        }
    }
}

impl Adversary for SeedAwareCollision {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let Some(view) = view else {
            return Vec::new();
        };
        let pos = self.geometry.locate(round);
        if pos.phase != PhaseKind::Simulation || budget == 0 {
            return Vec::new();
        }
        if pos.iteration != self.current_iteration {
            self.current_iteration = pos.iteration;
            self.spent_this_iteration = 0;
        }
        if self.spent_this_iteration >= self.per_iteration {
            return Vec::new();
        }
        for edge in 0..self.edges {
            // Only attack links that are currently in agreement — the point
            // is to *create* a fresh undetected divergence.
            if view.diverged(edge) {
                continue;
            }
            if let Some(c) = view.collision_corruption(edge, sends) {
                self.spent_this_iteration += 1;
                return vec![c];
            }
        }
        Vec::new()
    }

    fn is_oblivious(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "seed_aware"
    }
}

// ---------------------------------------------------------------------
// Phase-aware adaptive attacks (PR 5).
//
// All four condition on the live view's phase-aware surface
// (`AdaptiveView::phase_of` and friends). When the runner withholds phase
// visibility (`AdversaryClass::{Oblivious,SeedAware}`), `phase_of`
// returns `None` and every one of them idles — the same attack code
// degrades gracefully to a no-op under a stricter adversary model.
// ---------------------------------------------------------------------

/// Runs two adversaries' corruption streams in the same round — the
/// composition the suites and experiments use to pair a wave-triggering
/// oblivious attack (e.g. a burst) with a phase-aware one. Oblivious iff
/// both halves are; never batch-aware (the halves are consulted through
/// the engine's per-round fallback, which preserves each one's stream).
pub struct Pair(pub Box<dyn Adversary>, pub Box<dyn Adversary>);

impl Adversary for Pair {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        remaining_budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let mut out = self.0.corrupt(round, sends, remaining_budget, view);
        out.extend(self.1.corrupt(round, sends, remaining_budget, view));
        out
    }

    fn is_oblivious(&self) -> bool {
        self.0.is_oblivious() && self.1.is_oblivious()
    }

    fn name(&self) -> &'static str {
        "pair"
    }
}

/// Walks a batch round by round through a per-round `decide` procedure,
/// preserving the sequential corruption stream — the shared batch-native
/// path of the deterministic phase-aware attacks.
fn decided_batch(
    first_round: u64,
    sends: &FrameBatch,
    mut decide: impl FnMut(u64, &dyn Fn(LinkId) -> Option<bool>) -> Vec<Corruption>,
) -> Vec<RoundCorruption> {
    let mut out = Vec::new();
    for r in 0..sends.rounds() {
        for corruption in decide(first_round + r as u64, &|id| sends.get(id, r)) {
            out.push(RoundCorruption {
                round: r,
                corruption,
            });
        }
    }
    out
}

/// The per-edge directed-link pair `(lo → hi, hi → lo)` for every edge,
/// resolved once at construction so phase-aware attacks address an edge's
/// two directions in O(1).
fn edge_links(graph: &Graph) -> Vec<(DirectedLink, LinkId, DirectedLink, LinkId)> {
    graph
        .edges()
        .map(|(_, u, v)| {
            let fwd = DirectedLink { from: u, to: v };
            let bwd = DirectedLink { from: v, to: u };
            (
                fwd,
                graph.link_id(fwd).expect("edge link"),
                bwd,
                graph.link_id(bwd).expect("edge link"),
            )
        })
        .collect()
}

/// Phase-aware **meeting-points splitter**: spends its budget exclusively
/// on the 4τ-bit meeting-points exchange, in two modes chosen per edge
/// from the live view:
///
/// * *split* — on an edge whose transcripts still agree, corrupt one bit
///   of `h(T)` **and** one bit of `h(T[..mpc1])` in one direction. The
///   receiver sees a confirmed mismatch whose only surviving rollback
///   candidate is its own `mpc2`, truncates one chunk, and returns to
///   `Simulate` — an **asymmetric** rollback that manufactures a length
///   divergence for 2 corruptions without ever touching payload;
/// * *stall* — on an edge that has already diverged, corrupt one bit of
///   `h(k)` in each direction. Both endpoints reset their `k, E`
///   counters (counted as `mp_resets`), so the repair loop restarts from
///   scratch and the divergence survives another iteration.
///
/// Its oblivious counterpart is [`PhaseTargeted`] aimed at
/// [`PhaseKind::MeetingPoints`], which sprays the same rounds blindly;
/// the splitter lands every corruption on a field that matters.
///
/// Batch-native: the meeting-points exchange is exactly the phase the
/// batched wire path accelerates, so [`Adversary::corrupt_batch`] walks
/// the batch's rounds through the same per-round decision procedure (no
/// private randomness, so the streams are identical by construction).
pub struct MeetingPointSplitter {
    /// Per-edge directed links, edge-id order.
    elinks: Vec<(DirectedLink, LinkId, DirectedLink, LinkId)>,
    tau: u32,
    /// Max edges attacked per iteration (each costs ≤ 2 corruptions).
    per_iteration: u64,
    spent_this_iteration: u64,
    current_iteration: u64,
    /// Edges chosen for a split at offset τ, to re-target at offset 2τ.
    split_targets: Vec<usize>,
}

impl MeetingPointSplitter {
    /// Splitter over all edges of `graph` for hash length `tau`,
    /// attacking at most `per_iteration` edges per iteration.
    pub fn new(graph: &Graph, tau: u32, per_iteration: u64) -> Self {
        MeetingPointSplitter {
            elinks: edge_links(graph),
            tau,
            per_iteration,
            spent_this_iteration: 0,
            current_iteration: u64::MAX,
            split_targets: Vec::new(),
        }
    }

    /// The shared per-round decision procedure of both engine paths.
    fn decide(
        &mut self,
        round: u64,
        get: &dyn Fn(LinkId) -> Option<bool>,
        view: &dyn AdaptiveView,
    ) -> Vec<Corruption> {
        let Some(pos) = view.phase_of(round) else {
            return Vec::new(); // phase visibility withheld
        };
        if pos.phase != PhaseKind::MeetingPoints {
            return Vec::new();
        }
        if pos.iteration != self.current_iteration {
            self.current_iteration = pos.iteration;
            self.spent_this_iteration = 0;
            self.split_targets.clear();
        }
        let tau = self.tau as u64;
        let mut out = Vec::new();
        let mut hit =
            |elinks: &[(DirectedLink, LinkId, DirectedLink, LinkId)], e: usize, both: bool| {
                let (fwd, fid, bwd, bid) = elinks[e];
                out.push(Corruption {
                    link: fwd,
                    output: additive(get(fid), 1),
                });
                if both {
                    out.push(Corruption {
                        link: bwd,
                        output: additive(get(bid), 1),
                    });
                }
            };
        match pos.offset {
            // Bit 0 of h(k): stall every already-diverged edge.
            0 => {
                for e in 0..self.elinks.len() {
                    if self.spent_this_iteration >= self.per_iteration {
                        break;
                    }
                    if view.diverged(e) {
                        self.spent_this_iteration += 1;
                        hit(&self.elinks, e, true);
                    }
                }
            }
            // Bit 0 of h(T): open a split on agreeing edges…
            o if o == tau => {
                for e in 0..self.elinks.len() {
                    if self.spent_this_iteration >= self.per_iteration {
                        break;
                    }
                    if !view.diverged(e) {
                        self.spent_this_iteration += 1;
                        self.split_targets.push(e);
                        hit(&self.elinks, e, false);
                    }
                }
            }
            // …and bit 0 of h(T[..mpc1]): close it (same edges, same
            // direction), leaving mpc2 as the only rollback candidate.
            o if o == 2 * tau => {
                let targets = std::mem::take(&mut self.split_targets);
                for &e in &targets {
                    hit(&self.elinks, e, false);
                }
                self.split_targets = targets;
            }
            _ => {}
        }
        out
    }
}

impl Adversary for MeetingPointSplitter {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let Some(view) = view else {
            return Vec::new();
        };
        self.decide(round, &|id| sends.get(id), view)
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        let Some(view) = view else {
            return Vec::new();
        };
        decided_batch(first_round, sends, |round, get| {
            self.decide(round, get, view)
        })
    }

    fn is_oblivious(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "mp_splitter"
    }
}

/// Phase-aware **flag flipper**: desynchronizes the network by flipping
/// live *continue* flags to *stop* during the flag-passing phase. One
/// up-sweep flip poisons every aggregate above the victim, so the root
/// broadcasts *stop* and the whole network idles for the iteration —
/// one corruption buys a full stalled iteration (`stalled_iterations`),
/// where the oblivious [`PhaseTargeted`] counterpart mostly lands on
/// silent slots or flags that were *stop* anyway.
///
/// Batch-native for the same reason as [`MeetingPointSplitter`]: the
/// decision procedure is deterministic per round, so the batched walk
/// emits exactly the sequential stream. (Flag passing itself is
/// data-dependent and never batched by the runner, so in practice the
/// batch path only ever sees this attack idle.)
pub struct FlagFlipper {
    /// All directed links in [`netgraph::LinkId`] order (index = id).
    links: Vec<DirectedLink>,
    /// Max flags flipped per iteration.
    per_iteration: u64,
    spent_this_iteration: u64,
    current_iteration: u64,
}

impl FlagFlipper {
    /// Flipper over `graph`, at most `per_iteration` flips per iteration.
    pub fn new(graph: &Graph, per_iteration: u64) -> Self {
        FlagFlipper {
            links: graph.links().to_vec(),
            per_iteration,
            spent_this_iteration: 0,
            current_iteration: u64::MAX,
        }
    }

    fn decide(
        &mut self,
        round: u64,
        get: &dyn Fn(LinkId) -> Option<bool>,
        view: &dyn AdaptiveView,
    ) -> Vec<Corruption> {
        let Some(pos) = view.phase_of(round) else {
            return Vec::new();
        };
        if pos.phase != PhaseKind::FlagPassing {
            return Vec::new();
        }
        if pos.iteration != self.current_iteration {
            self.current_iteration = pos.iteration;
            self.spent_this_iteration = 0;
        }
        let mut out = Vec::new();
        for id in 0..self.links.len() {
            if self.spent_this_iteration >= self.per_iteration {
                break;
            }
            if get(id) == Some(true) {
                self.spent_this_iteration += 1;
                out.push(Corruption {
                    link: self.links[id],
                    output: Some(false),
                });
            }
        }
        out
    }
}

impl Adversary for FlagFlipper {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let Some(view) = view else {
            return Vec::new();
        };
        self.decide(round, &|id| sends.get(id), view)
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        let Some(view) = view else {
            return Vec::new();
        };
        decided_batch(first_round, sends, |round, get| {
            self.decide(round, get, view)
        })
    }

    fn is_oblivious(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "flag_flipper"
    }
}

/// Phase-aware **rewind suppressor**: watches the rewind wave's active
/// set through [`AdaptiveView::rewind_active`] and spends budget exactly
/// on rounds where the set *shrinks* — the rounds in which the wave
/// front is advancing — deleting every rewind request on the wire. A
/// deleted request leaves the sender truncated and the receiver not,
/// so instead of closing a length gap the wave widens it, and the
/// damage surfaces as extra repair iterations. The previous round's
/// active-set size is carried in the view's cross-iteration memory slot.
///
/// Its oblivious counterpart is [`PhaseTargeted`] on
/// [`PhaseKind::Rewind`], which wastes most hits on silent links.
///
/// Deliberately **not** [`Adversary::batch_aware`]: the active-set
/// signal only exists on the sequential path (the runner batches rewind
/// rounds only when the phase is disabled and silent), so the engine's
/// per-round fallback — where this attack correctly idles outside the
/// rewind phase — is the honest implementation.
pub struct RewindSuppressor {
    /// All directed links in [`netgraph::LinkId`] order (index = id).
    links: Vec<DirectedLink>,
    /// Max deletions per rewind phase.
    per_phase: u64,
    spent_this_phase: u64,
    current_iteration: u64,
}

impl RewindSuppressor {
    /// Suppressor over `graph`, deleting at most `per_phase` requests per
    /// rewind phase.
    pub fn new(graph: &Graph, per_phase: u64) -> Self {
        RewindSuppressor {
            links: graph.links().to_vec(),
            per_phase,
            spent_this_phase: 0,
            current_iteration: u64::MAX,
        }
    }
}

impl Adversary for RewindSuppressor {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let Some(view) = view else {
            return Vec::new();
        };
        let Some(pos) = view.phase_of(round) else {
            return Vec::new();
        };
        if pos.phase != PhaseKind::Rewind {
            return Vec::new();
        }
        let Some(active) = view.rewind_active() else {
            return Vec::new(); // rewind disabled, or visibility withheld
        };
        if pos.iteration != self.current_iteration {
            self.current_iteration = pos.iteration;
            self.spent_this_phase = 0;
        }
        if pos.offset == 0 {
            // Phase start: everyone is nominally active; just record.
            view.set_memory(active as u64);
            return Vec::new();
        }
        let prev = view.memory();
        view.set_memory(active as u64);
        if (active as u64) >= prev {
            return Vec::new(); // wave not advancing: save the budget
        }
        let mut out = Vec::new();
        for (id, _) in sends.iter_set() {
            if self.spent_this_phase >= self.per_phase {
                break;
            }
            self.spent_this_phase += 1;
            out.push(Corruption {
                link: self.links[id],
                output: None, // delete the rewind request
            });
        }
        out
    }

    fn is_oblivious(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "rewind_suppressor"
    }
}

/// Phase-aware **cross-iteration hunter**: the §6.1 seed-aware collision
/// hunt, but with its budget *amortized across iterations* through the
/// view's memory slot. Each simulation phase deposits `per_iteration`
/// hunting credits (capped at `burst_cap`); every predicted-collision
/// corruption spends one. Iterations in which the oracle finds nothing
/// bank their credits, so when the execution finally reaches a
/// collision-rich configuration the hunter can land a burst the
/// fixed-allowance [`SeedAwareCollision`] would have had to spread out.
///
/// Like [`SeedAwareCollision`], deliberately **not**
/// [`Adversary::batch_aware`]: its oracle reads live per-round
/// simulation state that only exists on the sequential path.
pub struct CrossIterationHunter {
    edges: usize,
    per_iteration: u64,
    burst_cap: u64,
    current_iteration: u64,
}

impl CrossIterationHunter {
    /// Hunts over all `edges` edges, earning `per_iteration` credits per
    /// iteration, banked up to `burst_cap`.
    pub fn new(edges: usize, per_iteration: u64, burst_cap: u64) -> Self {
        CrossIterationHunter {
            edges,
            per_iteration,
            burst_cap: burst_cap.max(per_iteration),
            current_iteration: u64::MAX,
        }
    }
}

impl Adversary for CrossIterationHunter {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let Some(view) = view else {
            return Vec::new();
        };
        let Some(pos) = view.phase_of(round) else {
            return Vec::new(); // phase visibility withheld: starve
        };
        if pos.phase != PhaseKind::Simulation || budget == 0 {
            return Vec::new();
        }
        // Credits live in the cross-iteration memory slot.
        let mut credits = view.memory();
        if pos.iteration != self.current_iteration {
            self.current_iteration = pos.iteration;
            credits = (credits + self.per_iteration).min(self.burst_cap);
        }
        let mut out = Vec::new();
        for edge in 0..self.edges {
            if credits == 0 {
                break;
            }
            if view.diverged(edge) {
                continue; // the point is to create fresh divergence
            }
            if let Some(c) = view.collision_corruption(edge, sends) {
                credits -= 1;
                out.push(c);
            }
        }
        view.set_memory(credits);
        out
    }

    fn is_oblivious(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "cross_iteration_hunter"
    }
}

/// One step of a [`ScriptedAdversary`]: an additive error `e ∈ {1, 2}`
/// on the directed link with dense id `lid`, at absolute round `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct ScriptStep {
    /// Absolute engine round the corruption lands in.
    pub round: u64,
    /// Dense [`LinkId`] of the target link.
    pub lid: LinkId,
    /// Additive error in {1, 2} (mod-3 over {0, 1, *}).
    pub e: u8,
}

/// A fully scripted oblivious adversary: a fixed, budget-respecting
/// corruption script fixed before the run (the additive noise tensor of
/// §2.1, materialized). The invariant fuzz suites generate random
/// scripts ([`ScriptedAdversary::random`]) and replay them through every
/// engine path and scheme configuration.
pub struct ScriptedAdversary {
    /// All directed links in [`netgraph::LinkId`] order (index = id).
    links: Vec<DirectedLink>,
    /// Steps sorted by round (stable on lid).
    script: Vec<ScriptStep>,
    cursor: usize,
}

impl ScriptedAdversary {
    /// An adversary replaying `script` (sorted internally by round).
    ///
    /// Steps sharing a `(round, lid)` slot would double-corrupt one link
    /// — two budget charges for one wire effect — so duplicates are
    /// collapsed here, keeping the first in sorted order.
    pub fn new(graph: &Graph, mut script: Vec<ScriptStep>) -> Self {
        script.sort_by_key(|s| (s.round, s.lid));
        script.dedup_by_key(|s| (s.round, s.lid));
        ScriptedAdversary {
            links: graph.links().to_vec(),
            script,
            cursor: 0,
        }
    }

    /// A deterministic random script of `len` steps over rounds
    /// `[0, max_round)`, derived from `seed` — the reusable generator of
    /// the invariant fuzz suites (proptest draws `(seed, len)` and the
    /// script follows). Draws are rejected until the script holds `len`
    /// *distinct* `(round, lid)` slots (capped at the slot universe), so
    /// the generated script never double-corrupts a link.
    pub fn random(graph: &Graph, max_round: u64, len: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::seeded(seed ^ 0x5c21_97ed_ab1e_5007);
        let links = graph.link_count() as u64;
        let rounds = max_round.max(1);
        let target = (len as u64).min(rounds.saturating_mul(links)) as usize;
        let mut seen = BTreeSet::new();
        let mut script = Vec::with_capacity(target);
        while script.len() < target {
            let step = ScriptStep {
                round: rng.next_u64() % rounds,
                lid: (rng.next_u64() % links) as LinkId,
                e: 1 + (rng.next_u64() % 2) as u8,
            };
            if seen.insert((step.round, step.lid)) {
                script.push(step);
            }
        }
        ScriptedAdversary::new(graph, script)
    }

    /// The script (sorted by round).
    pub fn script(&self) -> &[ScriptStep] {
        &self.script
    }
}

impl Adversary for ScriptedAdversary {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        remaining_budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let mut out = Vec::new();
        while self.cursor < self.script.len() && self.script[self.cursor].round < round {
            self.cursor += 1; // rounds the engine never asked about
        }
        while self.cursor < self.script.len() && self.script[self.cursor].round == round {
            let s = self.script[self.cursor];
            // Steps past the budget are consumed, not deferred: the
            // engine's budget only ever shrinks, so a step suppressed
            // here could never legally fire in a later round either.
            self.cursor += 1;
            if (out.len() as u64) < remaining_budget {
                out.push(Corruption {
                    link: self.links[s.lid],
                    output: additive(sends.get(s.lid), s.e),
                });
            }
        }
        out
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        remaining_budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        let end = first_round + sends.rounds() as u64;
        let mut out = Vec::new();
        while self.cursor < self.script.len() && self.script[self.cursor].round < first_round {
            self.cursor += 1;
        }
        // Every emitted step lands (additive errors never no-op and the
        // lid is always an edge), so one shared draw-down across the
        // batch replays the sequential per-round accounting exactly.
        while self.cursor < self.script.len() && self.script[self.cursor].round < end {
            let s = self.script[self.cursor];
            self.cursor += 1;
            if (out.len() as u64) < remaining_budget {
                let r = (s.round - first_round) as usize;
                out.push(RoundCorruption {
                    round: r,
                    corruption: Corruption {
                        link: self.links[s.lid],
                        output: additive(sends.get(s.lid, r), s.e),
                    },
                });
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "scripted"
    }
}

// ---------------------------------------------------------------------
// Script genomes (PR 10): the adversary-search outer loop treats a
// corruption script as a genome. The operators below are pure, seeded
// functions — same inputs, same child — and every child goes through
// `repair_script`, so offspring are budget-respecting, sorted by
// `(round, lid)` and free of double-corrupted slots by construction.
// ---------------------------------------------------------------------

/// The universe a script genome lives in: rounds `[0, max_round)`, link
/// ids `[0, links)`, at most `budget` steps (one corruption each).
#[derive(Clone, Copy, Debug)]
pub struct ScriptBounds {
    /// Exclusive upper bound on step rounds.
    pub max_round: u64,
    /// Size of the dense [`LinkId`] universe.
    pub links: usize,
    /// Maximum script length (= the engine corruption budget).
    pub budget: u64,
}

/// Clamps, sorts and dedupes a raw script into `bounds`: rounds and lids
/// clamped into range, errors forced into {1, 2}, steps sorted by
/// `(round, lid)`, duplicate slots collapsed (first wins), and the tail
/// truncated to `bounds.budget`. Idempotent; every genome operator runs
/// its output through here.
pub fn repair_script(mut script: Vec<ScriptStep>, bounds: ScriptBounds) -> Vec<ScriptStep> {
    let max_round = bounds.max_round.max(1);
    let links = bounds.links.max(1);
    for s in &mut script {
        s.round = s.round.min(max_round - 1);
        s.lid = s.lid.min(links - 1);
        if !(1..=2).contains(&s.e) {
            s.e = 1 + s.e % 2;
        }
    }
    script.sort_by_key(|s| (s.round, s.lid));
    script.dedup_by_key(|s| (s.round, s.lid));
    script.truncate(bounds.budget.min(usize::MAX as u64) as usize);
    script
}

/// Seeded point mutation: each step independently gets its round
/// jittered (±`max_round`/16), its link re-targeted, its error pattern
/// flipped, or is dropped; with spare budget a fresh random step is
/// spliced in. Deterministic in `(script, bounds, seed)`.
pub fn mutate_script(script: &[ScriptStep], bounds: ScriptBounds, seed: u64) -> Vec<ScriptStep> {
    let mut rng = Xoshiro256::seeded(seed ^ 0x6d75_7461_7465_aa01);
    let max_round = bounds.max_round.max(1);
    let links = bounds.links.max(1) as u64;
    let window = (max_round / 16).max(1);
    let mut child = Vec::with_capacity(script.len() + 1);
    for &s in script {
        let mut s = s;
        match rng.next_u64() % 8 {
            // Round jitter: slide the step by a signed delta in
            // [-window, window], saturating at the genome's bounds.
            0..=2 => {
                let delta = (rng.next_u64() % (2 * window + 1)) as i128 - window as i128;
                let r = (s.round as i128 + delta).clamp(0, (max_round - 1) as i128);
                s.round = r as u64;
            }
            // Link re-target.
            3 | 4 => s.lid = (rng.next_u64() % links) as LinkId,
            // Error-pattern flip (1 ↔ 2).
            5 => s.e = 3 - s.e,
            // Drop.
            6 => continue,
            // Keep.
            _ => {}
        }
        child.push(s);
    }
    if (child.len() as u64) < bounds.budget && rng.next_u64() % 2 == 0 {
        child.push(ScriptStep {
            round: rng.next_u64() % max_round,
            lid: (rng.next_u64() % links) as LinkId,
            e: 1 + (rng.next_u64() % 2) as u8,
        });
    }
    repair_script(child, bounds)
}

/// Seeded splice crossover: picks a pivot round and concatenates `a`'s
/// steps before it with `b`'s steps from it on — the child inherits one
/// parent's opening and the other's endgame. Deterministic in
/// `(a, b, bounds, seed)`.
pub fn crossover_scripts(
    a: &[ScriptStep],
    b: &[ScriptStep],
    bounds: ScriptBounds,
    seed: u64,
) -> Vec<ScriptStep> {
    let mut rng = Xoshiro256::seeded(seed ^ 0x6372_6f73_735f_bb02);
    let pivot = rng.next_u64() % bounds.max_round.max(1);
    let child = a
        .iter()
        .filter(|s| s.round < pivot)
        .chain(b.iter().filter(|s| s.round >= pivot))
        .copied()
        .collect();
    repair_script(child, bounds)
}

/// Wraps any adversary and transcribes the corruptions the engine will
/// actually *apply* into a [`ScriptStep`] sink — the bridge that renders
/// the hand-built adaptive attacks as scripts to seed the search
/// population. The wrapper is transparent (it forwards every emitted
/// corruption unchanged), so a wrapped run is byte-identical to an
/// unwrapped one; it mirrors the engine's application filter (non-edges
/// and no-ops skipped, budget draw-down) so the recorded script replays
/// to the same wire effects *and* the same budget accounting. By
/// determinism, replaying the sink through a [`ScriptedAdversary`]
/// against the same trial seed reproduces the recorded run exactly.
///
/// None of the shipped attacks targets one `(round, link)` slot twice,
/// so the recording is slot-unique in practice; a hypothetical
/// double-hit would be collapsed by `ScriptedAdversary::new` on replay.
pub struct ScriptRecorder {
    inner: Box<dyn Adversary>,
    graph: Graph,
    sink: Rc<RefCell<Vec<ScriptStep>>>,
}

/// {0, 1, *} → {0, 1, 2}, the mod-3 symbol encoding of §2.1.
fn sym(x: Option<bool>) -> u8 {
    match x {
        Some(false) => 0,
        Some(true) => 1,
        None => 2,
    }
}

impl ScriptRecorder {
    /// Wraps `inner`, returning the recorder and a shared handle to the
    /// growing script (read it after the run).
    pub fn new(graph: &Graph, inner: Box<dyn Adversary>) -> (Self, Rc<RefCell<Vec<ScriptStep>>>) {
        let sink = Rc::new(RefCell::new(Vec::new()));
        (
            ScriptRecorder {
                inner,
                graph: graph.clone(),
                sink: Rc::clone(&sink),
            },
            sink,
        )
    }
}

impl Adversary for ScriptRecorder {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        remaining_budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let out = self.inner.corrupt(round, sends, remaining_budget, view);
        let mut sink = self.sink.borrow_mut();
        let mut applied = 0u64;
        for c in &out {
            let Some(lid) = self.graph.link_id(c.link) else {
                continue; // the engine ignores non-edges
            };
            let honest = sends.get(lid);
            if honest == c.output || applied >= remaining_budget {
                continue; // no-op / over budget: the engine won't apply it
            }
            applied += 1;
            let e = (sym(c.output) + 3 - sym(honest)) % 3;
            sink.push(ScriptStep { round, lid, e });
        }
        out
    }

    fn batch_aware(&self) -> bool {
        self.inner.batch_aware()
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        remaining_budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        let out = self
            .inner
            .corrupt_batch(first_round, sends, remaining_budget, view);
        let mut sink = self.sink.borrow_mut();
        let mut applied = 0u64;
        for rc in &out {
            let Some(lid) = self.graph.link_id(rc.corruption.link) else {
                continue;
            };
            let honest = sends.get(lid, rc.round);
            if honest == rc.corruption.output || applied >= remaining_budget {
                continue;
            }
            applied += 1;
            let e = (sym(rc.corruption.output) + 3 - sym(honest)) % 3;
            sink.push(ScriptStep {
                round: first_round + rc.round as u64,
                lid,
                e,
            });
        }
        out
    }

    fn is_oblivious(&self) -> bool {
        self.inner.is_oblivious()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::topology;

    fn dl(from: usize, to: usize) -> DirectedLink {
        DirectedLink { from, to }
    }

    #[test]
    fn additive_table() {
        assert_eq!(additive(Some(false), 1), Some(true)); // 0+1 = 1
        assert_eq!(additive(Some(true), 1), None); // 1+1 = 2 = *
        assert_eq!(additive(None, 1), Some(false)); // 2+1 = 0
        assert_eq!(additive(Some(false), 2), None); // deletion
        assert_eq!(additive(Some(true), 2), Some(false)); // substitution
        assert_eq!(additive(None, 2), Some(true)); // insertion
    }

    #[test]
    fn iid_noise_is_reproducible() {
        let g = topology::line(2);
        let mut a = IidNoise::new(&g, 0.5, 1);
        let mut b = IidNoise::new(&g, 0.5, 1);
        let sends = RoundFrame::for_graph(&g);
        for round in 0..50 {
            assert_eq!(
                a.corrupt(round, &sends, u64::MAX, None),
                b.corrupt(round, &sends, u64::MAX, None)
            );
        }
    }

    #[test]
    fn iid_noise_rate_close_to_prob() {
        let g = topology::line(2); // 2 directed links
        let mut a = IidNoise::new(&g, 0.1, 42);
        let sends = RoundFrame::for_graph(&g);
        let mut hits = 0;
        for round in 0..10_000 {
            hits += a.corrupt(round, &sends, u64::MAX, None).len();
        }
        // Expected hits per round = links × prob = 0.2.
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn single_error_fires_once() {
        let g = topology::line(2);
        let mut a = SingleError::new(&g, dl(0, 1), 5);
        let sends = RoundFrame::for_graph(&g);
        let mut total = 0;
        for round in 0..10 {
            total += a.corrupt(round, &sends, u64::MAX, None).len();
        }
        assert_eq!(total, 1);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn single_error_rejects_non_edge() {
        let g = topology::line(3);
        let _ = SingleError::new(&g, dl(0, 2), 0);
    }

    #[test]
    fn phase_targeted_respects_phase() {
        let g = PhaseGeometry {
            setup: 0,
            meeting_points: 5,
            flag_passing: 5,
            simulation: 5,
            rewind: 5,
        };
        let graph = topology::line(2);
        let mut a = PhaseTargeted::new(&graph, g, PhaseKind::FlagPassing, 1.0, 3);
        let sends = RoundFrame::for_graph(&graph);
        for round in 0..40 {
            let cs = a.corrupt(round, &sends, u64::MAX, None);
            let in_fp = g.locate(round).phase == PhaseKind::FlagPassing;
            assert_eq!(!cs.is_empty(), in_fp, "round {round}");
        }
    }

    #[test]
    fn phase_aware_attacks_idle_without_view() {
        let graph = topology::line(3);
        let sends = RoundFrame::for_graph(&graph);
        let mut attacks: Vec<Box<dyn Adversary>> = vec![
            Box::new(MeetingPointSplitter::new(&graph, 8, 2)),
            Box::new(FlagFlipper::new(&graph, 1)),
            Box::new(RewindSuppressor::new(&graph, 4)),
            Box::new(CrossIterationHunter::new(2, 1, 4)),
        ];
        for a in &mut attacks {
            assert!(a.corrupt(5, &sends, u64::MAX, None).is_empty());
            assert!(!a.is_oblivious());
        }
    }

    #[test]
    fn scripted_adversary_replays_in_round_order() {
        let graph = topology::line(3);
        let steps = vec![
            ScriptStep {
                round: 7,
                lid: 1,
                e: 2,
            },
            ScriptStep {
                round: 2,
                lid: 0,
                e: 1,
            },
            ScriptStep {
                round: 7,
                lid: 0,
                e: 1,
            },
        ];
        let mut a = ScriptedAdversary::new(&graph, steps);
        assert_eq!(a.script()[0].round, 2, "sorted by round");
        let sends = RoundFrame::for_graph(&graph);
        assert!(a.corrupt(0, &sends, u64::MAX, None).is_empty());
        assert_eq!(a.corrupt(2, &sends, u64::MAX, None).len(), 1);
        // Skipped rounds are dropped, same-round steps batch together.
        assert_eq!(a.corrupt(7, &sends, u64::MAX, None).len(), 2);
        assert!(a.corrupt(8, &sends, u64::MAX, None).is_empty());
    }

    #[test]
    fn scripted_random_is_deterministic_and_budget_sized() {
        let graph = topology::ring(4);
        let a = ScriptedAdversary::random(&graph, 100, 17, 5);
        let b = ScriptedAdversary::random(&graph, 100, 17, 5);
        assert_eq!(a.script(), b.script());
        assert_eq!(a.script().len(), 17);
        assert!(a
            .script()
            .iter()
            .all(|s| s.round < 100 && s.lid < graph.link_count() && (1..=2).contains(&s.e)));
    }

    #[test]
    fn scripted_construction_dedupes_double_corrupted_slots() {
        let graph = topology::line(3);
        let step = |round, lid, e| ScriptStep { round, lid, e };
        let a = ScriptedAdversary::new(
            &graph,
            vec![step(4, 1, 2), step(4, 1, 1), step(4, 0, 1), step(2, 1, 2)],
        );
        // (4, 1) collapsed to one step (first in sorted order wins).
        assert_eq!(a.script(), &[step(2, 1, 2), step(4, 0, 1), step(4, 1, 2)]);
    }

    /// Regression (PR 10): an over-long script used to ignore
    /// `remaining_budget` and push the engine into dropping corruptions;
    /// now the adversary draws the budget down itself.
    #[test]
    fn scripted_over_long_script_never_exceeds_engine_budget() {
        let graph = topology::line(3);
        let script: Vec<ScriptStep> = (0..6)
            .map(|r| ScriptStep {
                round: r,
                lid: 0,
                e: 1,
            })
            .collect();

        // Sequential path.
        let adv = ScriptedAdversary::new(&graph, script.clone());
        let mut net = crate::Network::new(graph.clone(), Box::new(adv), 3);
        let sends = RoundFrame::for_graph(&graph);
        let mut rx = RoundFrame::for_graph(&graph);
        for _ in 0..6 {
            net.step_into(&sends, None, &mut rx);
        }
        assert_eq!(net.stats().corruptions, 3);
        assert_eq!(net.stats().dropped_corruptions, 0, "budget not honored");

        // Batched path: same accounting in one call.
        let adv = ScriptedAdversary::new(&graph, script);
        let mut net = crate::Network::new(graph.clone(), Box::new(adv), 3);
        let batch = FrameBatch::for_graph(&graph, 6);
        let mut brx = FrameBatch::for_graph(&graph, 6);
        net.step_rounds_into(&batch, None, &mut brx);
        assert_eq!(net.stats().corruptions, 3);
        assert_eq!(net.stats().dropped_corruptions, 0);
    }

    #[test]
    fn scripted_random_draws_distinct_slots() {
        let graph = topology::ring(4);
        let a = ScriptedAdversary::random(&graph, 3, 20, 9);
        // Only 3 rounds × 8 links = 24 slots; all 20 steps distinct.
        let slots: BTreeSet<_> = a.script().iter().map(|s| (s.round, s.lid)).collect();
        assert_eq!(slots.len(), 20);
    }

    fn bounds() -> ScriptBounds {
        ScriptBounds {
            max_round: 64,
            links: 8,
            budget: 10,
        }
    }

    fn well_formed(script: &[ScriptStep], b: ScriptBounds) {
        assert!(script.len() as u64 <= b.budget, "over budget");
        assert!(script
            .windows(2)
            .all(|w| (w[0].round, w[0].lid) < (w[1].round, w[1].lid)));
        assert!(script
            .iter()
            .all(|s| s.round < b.max_round && s.lid < b.links && (1..=2).contains(&s.e)));
    }

    #[test]
    fn genome_operators_are_deterministic_and_repaired() {
        let graph = topology::ring(4);
        let b = bounds();
        let a = ScriptedAdversary::random(&graph, b.max_round, 10, 1);
        let c = ScriptedAdversary::random(&graph, b.max_round, 10, 2);
        for seed in 0..20 {
            let m1 = mutate_script(a.script(), b, seed);
            let m2 = mutate_script(a.script(), b, seed);
            assert_eq!(m1, m2);
            well_formed(&m1, b);
            let x1 = crossover_scripts(a.script(), c.script(), b, seed);
            let x2 = crossover_scripts(a.script(), c.script(), b, seed);
            assert_eq!(x1, x2);
            well_formed(&x1, b);
        }
    }

    #[test]
    fn repair_clamps_into_bounds() {
        let b = bounds();
        let wild = vec![
            ScriptStep {
                round: 1_000,
                lid: 99,
                e: 0,
            },
            ScriptStep {
                round: 5,
                lid: 3,
                e: 7,
            },
        ];
        let fixed = repair_script(wild, b);
        well_formed(&fixed, b);
        assert_eq!(fixed.len(), 2);
    }

    #[test]
    fn recorder_transcribes_applied_corruptions_only() {
        let graph = topology::line(2);
        let lid = graph.link_id(dl(0, 1)).unwrap();
        // Burst of 5 insertions, but the engine budget only admits 3:
        // the sink must hold exactly the applied prefix.
        let burst = BurstLink::new(&graph, dl(0, 1), 3, 5);
        let (rec, sink) = ScriptRecorder::new(&graph, Box::new(burst));
        let mut net = crate::Network::new(graph.clone(), Box::new(rec), 3);
        let sends = RoundFrame::for_graph(&graph);
        let mut rx = RoundFrame::for_graph(&graph);
        for _ in 0..10 {
            net.step_into(&sends, None, &mut rx);
        }
        assert_eq!(net.stats().corruptions, 3);
        assert_eq!(net.stats().dropped_corruptions, 2, "burst overshoots");
        let script = sink.borrow().clone();
        // Silence + additive 1 = insertion of a 0; e recovered as 1.
        assert_eq!(
            script,
            (3..6)
                .map(|round| ScriptStep { round, lid, e: 1 })
                .collect::<Vec<_>>()
        );
        // Replaying the sink reproduces the applied corruptions with a
        // clean budget ledger.
        let replay = ScriptedAdversary::new(&graph, script);
        let mut net = crate::Network::new(graph.clone(), Box::new(replay), 3);
        let mut rx = RoundFrame::for_graph(&graph);
        for _ in 0..10 {
            net.step_into(&sends, None, &mut rx);
        }
        assert_eq!(net.stats().corruptions, 3);
        assert_eq!(net.stats().dropped_corruptions, 0);
    }

    #[test]
    fn seed_aware_idle_without_view() {
        let g = PhaseGeometry {
            setup: 0,
            meeting_points: 1,
            flag_passing: 1,
            simulation: 5,
            rewind: 1,
        };
        let graph = topology::line(4);
        let mut a = SeedAwareCollision::new(g, 3, 1);
        let sends = RoundFrame::for_graph(&graph);
        assert!(a.corrupt(3, &sends, u64::MAX, None).is_empty());
        assert!(!a.is_oblivious());
    }
}
