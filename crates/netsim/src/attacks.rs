//! The attack library used by the experiments.
//!
//! All "oblivious" attacks draw from private randomness with a consumption
//! pattern that is a function of `(round, link)` only — they are exactly
//! the additive adversaries of §2.1, just generated lazily instead of as a
//! pre-materialized noise tensor. The seed-aware attack is the §6.1
//! non-oblivious adversary.
//!
//! Attacks that touch specific links resolve them to dense
//! [`netgraph::LinkId`]s at construction (hence the `&Graph` parameter),
//! so probing the per-round [`RoundFrame`] is O(1) per link.

use crate::engine::{AdaptiveView, Adversary, Corruption, RoundCorruption};
use crate::frame::{FrameBatch, RoundFrame};
use crate::phase::{PhaseGeometry, PhaseKind};
use netgraph::{DirectedLink, Graph, LinkId};
use smallbias::Xoshiro256;

/// Ternary additive noise (§2.1): symbols are {0, 1, *}≅{0, 1, 2} and the
/// adversary adds `e ∈ {1, 2}` mod 3 to the channel.
fn additive(honest: Option<bool>, e: u8) -> Option<bool> {
    let x = match honest {
        Some(false) => 0u8,
        Some(true) => 1,
        None => 2,
    };
    match (x + e) % 3 {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

/// The silent adversary.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoNoise;

impl Adversary for NoNoise {
    fn corrupt(
        &mut self,
        _: u64,
        _: &RoundFrame,
        _: u64,
        _: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        Vec::new()
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        _: u64,
        _: &FrameBatch,
        _: u64,
        _: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Shared batch-corruption loop of the sampler-driven attacks: replays
/// the sequential per-round RNG consumption (round-major `take` over the
/// link universe) and emits hits only for rounds where `emit` holds —
/// the one place the byte-identical-to-sequential contract lives for
/// both [`IidNoise`] and [`PhaseTargeted`].
fn sampled_batch(
    links: &[DirectedLink],
    sampler: &mut GapSampler,
    sends: &FrameBatch,
    emit: impl Fn(usize) -> bool,
) -> Vec<RoundCorruption> {
    let mut out = Vec::new();
    for r in 0..sends.rounds() {
        let emit_round = emit(r);
        sampler.take(links.len() as u64, |off, e| {
            if emit_round {
                let id = off as usize;
                out.push(RoundCorruption {
                    round: r,
                    corruption: Corruption {
                        link: links[id],
                        output: additive(sends.get(id, r), e),
                    },
                });
            }
        });
    }
    out
}

/// Geometric gap sampler: enumerates the *hit* slots of an i.i.d.
/// Bernoulli(`prob`) process over an abstract slot sequence without
/// touching the misses. Instead of one RNG draw per slot, one draw per hit
/// yields the gap to the next hit — per-round adversary cost drops from
/// `O(links)` to `O(expected hits)`, which is what makes high-rate rounds
/// over hundreds of links cheap. The induced hit pattern is a function of
/// private randomness only, so attacks built on it remain oblivious
/// (additive, §2.1).
struct GapSampler {
    rng: Xoshiro256,
    prob: f64,
    /// Absolute index of the next hit slot (`u64::MAX` = never).
    next_hit: u64,
    /// First slot not yet consumed.
    cursor: u64,
}

impl GapSampler {
    fn new(prob: f64, rng: Xoshiro256) -> Self {
        let mut s = GapSampler {
            rng,
            prob,
            next_hit: 0,
            cursor: 0,
        };
        s.next_hit = s.draw_gap();
        s
    }

    /// Misses before the next hit: `Geometric(prob)` via inversion.
    fn draw_gap(&mut self) -> u64 {
        if self.prob >= 1.0 {
            return 0;
        }
        if self.prob <= 0.0 {
            return u64::MAX;
        }
        let u = self.rng.unit_f64(); // [0, 1): 1 - u is in (0, 1]
        let g = ((1.0 - u).ln() / (1.0 - self.prob).ln()).floor();
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Consumes the next `count` slots, invoking `hit` with the relative
    /// offset and an additive error `e ∈ {1, 2}` for each hit among them.
    fn take(&mut self, count: u64, mut hit: impl FnMut(u64, u8)) {
        let end = self.cursor.saturating_add(count);
        while self.next_hit < end {
            let e = 1 + (self.rng.next_u64() % 2) as u8;
            hit(self.next_hit - self.cursor, e);
            let gap = self.draw_gap();
            self.next_hit = self.next_hit.saturating_add(1).saturating_add(gap);
        }
        self.cursor = end;
    }
}

/// Oblivious i.i.d. additive noise: every `(round, directed link)` slot is
/// corrupted independently with probability `prob`, with a uniformly random
/// additive offset in {1, 2}. Hits are enumerated by a geometric gap
/// sampler, so a round costs `O(hits)`, not `O(links)`; the pattern is a
/// function of the private RNG only and therefore independent of the
/// execution.
pub struct IidNoise {
    /// All directed links in [`netgraph::LinkId`] order (index = id).
    links: Vec<DirectedLink>,
    sampler: GapSampler,
    /// Rounds to leave untouched at the start (e.g. to spare the setup).
    skip_before: u64,
}

impl IidNoise {
    /// Noise over every directed link of `graph` with per-slot probability
    /// `prob`, seeded RNG.
    pub fn new(graph: &Graph, prob: f64, seed: u64) -> Self {
        IidNoise {
            links: graph.links().to_vec(),
            sampler: GapSampler::new(prob, Xoshiro256::seeded(seed ^ 0x6e6f_6973_65aa_bb01)),
            skip_before: 0,
        }
    }

    /// Leaves rounds `< round` noiseless (the pattern still advances,
    /// preserving obliviousness of the remaining rounds).
    pub fn skip_before(mut self, round: u64) -> Self {
        self.skip_before = round;
        self
    }
}

impl Adversary for IidNoise {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let mut out = Vec::new();
        let links = &self.links;
        let emit = round >= self.skip_before;
        self.sampler.take(links.len() as u64, |off, e| {
            if emit {
                let id = off as usize;
                out.push(Corruption {
                    link: links[id],
                    output: additive(sends.get(id), e),
                });
            }
        });
        out
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        let skip = self.skip_before;
        sampled_batch(&self.links, &mut self.sampler, sends, |r| {
            first_round + r as u64 >= skip
        })
    }

    fn name(&self) -> &'static str {
        "iid"
    }
}

/// Oblivious burst: additive-1 noise on one directed link for a round
/// window (flips bits, turns silence into inserted zeros... mod-3: silence
/// becomes `0`).
#[derive(Clone, Copy, Debug)]
pub struct BurstLink {
    link: DirectedLink,
    id: LinkId,
    start: u64,
    len: u64,
}

impl BurstLink {
    /// Burst on `link` during rounds `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not an edge of `graph`.
    pub fn new(graph: &Graph, link: DirectedLink, start: u64, len: u64) -> Self {
        let id = graph.link_id(link).expect("burst on non-edge");
        BurstLink {
            link,
            id,
            start,
            len,
        }
    }
}

impl Adversary for BurstLink {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        if round < self.start || round >= self.start + self.len {
            return Vec::new();
        }
        vec![Corruption {
            link: self.link,
            output: additive(sends.get(self.id), 1),
        }]
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        (0..sends.rounds())
            .filter(|&r| {
                let round = first_round + r as u64;
                round >= self.start && round < self.start + self.len
            })
            .map(|r| RoundCorruption {
                round: r,
                corruption: Corruption {
                    link: self.link,
                    output: additive(sends.get(self.id, r), 1),
                },
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "burst"
    }
}

/// A single additive corruption at one `(round, link)` — the minimal attack
/// of the paper's §1.2 line example (F4).
#[derive(Clone, Copy, Debug)]
pub struct SingleError {
    link: DirectedLink,
    id: LinkId,
    round: u64,
    fired: bool,
}

impl SingleError {
    /// One corruption on `link` at `round`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not an edge of `graph`.
    pub fn new(graph: &Graph, link: DirectedLink, round: u64) -> Self {
        let id = graph.link_id(link).expect("single error on non-edge");
        SingleError {
            link,
            id,
            round,
            fired: false,
        }
    }
}

impl Adversary for SingleError {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        if self.fired || round != self.round {
            return Vec::new();
        }
        self.fired = true;
        vec![Corruption {
            link: self.link,
            output: additive(sends.get(self.id), 1),
        }]
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        if self.fired || self.round < first_round {
            return Vec::new();
        }
        let off = (self.round - first_round) as usize;
        if off >= sends.rounds() {
            return Vec::new();
        }
        self.fired = true;
        vec![RoundCorruption {
            round: off,
            corruption: Corruption {
                link: self.link,
                output: additive(sends.get(self.id, off), 1),
            },
        }]
    }

    fn name(&self) -> &'static str {
        "single"
    }
}

/// Oblivious phase-targeted noise: i.i.d. additive noise restricted to one
/// phase kind (the phase layout is public, so this is still oblivious).
/// Used to attack flag passing, the rewind wave, the meeting points, or the
/// randomness exchange specifically.
pub struct PhaseTargeted {
    geometry: PhaseGeometry,
    phase: PhaseKind,
    /// All directed links in [`netgraph::LinkId`] order (index = id).
    links: Vec<DirectedLink>,
    sampler: GapSampler,
}

impl PhaseTargeted {
    /// Noise over every directed link of `graph` with per-slot probability
    /// `prob`, confined to `phase`.
    pub fn new(
        graph: &Graph,
        geometry: PhaseGeometry,
        phase: PhaseKind,
        prob: f64,
        seed: u64,
    ) -> Self {
        PhaseTargeted {
            geometry,
            phase,
            links: graph.links().to_vec(),
            sampler: GapSampler::new(prob, Xoshiro256::seeded(seed ^ 0x7068_6173_65cc_dd02)),
        }
    }
}

impl Adversary for PhaseTargeted {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let mut out = Vec::new();
        let links = &self.links;
        let emit = self.geometry.locate(round).phase == self.phase;
        self.sampler.take(links.len() as u64, |off, e| {
            if emit {
                let id = off as usize;
                out.push(Corruption {
                    link: links[id],
                    output: additive(sends.get(id), e),
                });
            }
        });
        out
    }

    fn batch_aware(&self) -> bool {
        true
    }

    fn corrupt_batch(
        &mut self,
        first_round: u64,
        sends: &FrameBatch,
        _budget: u64,
        _view: Option<&dyn AdaptiveView>,
    ) -> Vec<RoundCorruption> {
        let (geometry, phase) = (self.geometry, self.phase);
        sampled_batch(&self.links, &mut self.sampler, sends, |r| {
            geometry.locate(first_round + r as u64).phase == phase
        })
    }

    fn name(&self) -> &'static str {
        "phase_targeted"
    }
}

/// The §6.1 **non-oblivious, seed-aware** adversary: during every
/// simulation phase it hunts (via the runner's oracle) for a corruption
/// whose damage will be masked by a hash collision at the next
/// meeting-points check — guaranteed-undetected errors. It spends at most
/// `per_iteration` corruptions per iteration.
///
/// Against a constant hash length (Algorithm A) the hunt succeeds roughly
/// every iteration once `m` candidate positions × 2^{-τ} ≳ 1 and the
/// simulation never converges; against τ = Θ(log m) (Algorithm B) the
/// success probability per candidate is `m^{-Θ(1)}` and the hunt starves.
///
/// Deliberately **not** [`Adversary::batch_aware`]: its oracle reads live
/// per-round simulation state, which only exists on the sequential path —
/// batched steps (meeting points, exchange) reach it through the engine's
/// per-round fallback, where it correctly stays idle.
pub struct SeedAwareCollision {
    geometry: PhaseGeometry,
    edges: usize,
    per_iteration: u64,
    spent_this_iteration: u64,
    current_iteration: u64,
}

impl SeedAwareCollision {
    /// Hunts over all `edges` edges, at most `per_iteration` hits per
    /// iteration.
    pub fn new(geometry: PhaseGeometry, edges: usize, per_iteration: u64) -> Self {
        SeedAwareCollision {
            geometry,
            edges,
            per_iteration,
            spent_this_iteration: 0,
            current_iteration: u64::MAX,
        }
    }
}

impl Adversary for SeedAwareCollision {
    fn corrupt(
        &mut self,
        round: u64,
        sends: &RoundFrame,
        budget: u64,
        view: Option<&dyn AdaptiveView>,
    ) -> Vec<Corruption> {
        let Some(view) = view else {
            return Vec::new();
        };
        let pos = self.geometry.locate(round);
        if pos.phase != PhaseKind::Simulation || budget == 0 {
            return Vec::new();
        }
        if pos.iteration != self.current_iteration {
            self.current_iteration = pos.iteration;
            self.spent_this_iteration = 0;
        }
        if self.spent_this_iteration >= self.per_iteration {
            return Vec::new();
        }
        for edge in 0..self.edges {
            // Only attack links that are currently in agreement — the point
            // is to *create* a fresh undetected divergence.
            if view.diverged(edge) {
                continue;
            }
            if let Some(c) = view.collision_corruption(edge, sends) {
                self.spent_this_iteration += 1;
                return vec![c];
            }
        }
        Vec::new()
    }

    fn is_oblivious(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "seed_aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::topology;

    fn dl(from: usize, to: usize) -> DirectedLink {
        DirectedLink { from, to }
    }

    #[test]
    fn additive_table() {
        assert_eq!(additive(Some(false), 1), Some(true)); // 0+1 = 1
        assert_eq!(additive(Some(true), 1), None); // 1+1 = 2 = *
        assert_eq!(additive(None, 1), Some(false)); // 2+1 = 0
        assert_eq!(additive(Some(false), 2), None); // deletion
        assert_eq!(additive(Some(true), 2), Some(false)); // substitution
        assert_eq!(additive(None, 2), Some(true)); // insertion
    }

    #[test]
    fn iid_noise_is_reproducible() {
        let g = topology::line(2);
        let mut a = IidNoise::new(&g, 0.5, 1);
        let mut b = IidNoise::new(&g, 0.5, 1);
        let sends = RoundFrame::for_graph(&g);
        for round in 0..50 {
            assert_eq!(
                a.corrupt(round, &sends, u64::MAX, None),
                b.corrupt(round, &sends, u64::MAX, None)
            );
        }
    }

    #[test]
    fn iid_noise_rate_close_to_prob() {
        let g = topology::line(2); // 2 directed links
        let mut a = IidNoise::new(&g, 0.1, 42);
        let sends = RoundFrame::for_graph(&g);
        let mut hits = 0;
        for round in 0..10_000 {
            hits += a.corrupt(round, &sends, u64::MAX, None).len();
        }
        // Expected hits per round = links × prob = 0.2.
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn single_error_fires_once() {
        let g = topology::line(2);
        let mut a = SingleError::new(&g, dl(0, 1), 5);
        let sends = RoundFrame::for_graph(&g);
        let mut total = 0;
        for round in 0..10 {
            total += a.corrupt(round, &sends, u64::MAX, None).len();
        }
        assert_eq!(total, 1);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn single_error_rejects_non_edge() {
        let g = topology::line(3);
        let _ = SingleError::new(&g, dl(0, 2), 0);
    }

    #[test]
    fn phase_targeted_respects_phase() {
        let g = PhaseGeometry {
            setup: 0,
            meeting_points: 5,
            flag_passing: 5,
            simulation: 5,
            rewind: 5,
        };
        let graph = topology::line(2);
        let mut a = PhaseTargeted::new(&graph, g, PhaseKind::FlagPassing, 1.0, 3);
        let sends = RoundFrame::for_graph(&graph);
        for round in 0..40 {
            let cs = a.corrupt(round, &sends, u64::MAX, None);
            let in_fp = g.locate(round).phase == PhaseKind::FlagPassing;
            assert_eq!(!cs.is_empty(), in_fp, "round {round}");
        }
    }

    #[test]
    fn seed_aware_idle_without_view() {
        let g = PhaseGeometry {
            setup: 0,
            meeting_points: 1,
            flag_passing: 1,
            simulation: 5,
            rewind: 1,
        };
        let graph = topology::line(4);
        let mut a = SeedAwareCollision::new(g, 3, 1);
        let sends = RoundFrame::for_graph(&graph);
        assert!(a.corrupt(3, &sends, u64::MAX, None).is_empty());
        assert!(!a.is_oblivious());
    }
}
