//! Party logic: the input-dependent half of a noiseless protocol.

use crate::Schedule;
use netgraph::{DirectedLink, Graph, NodeId};

/// The message-content logic of one party in a noiseless protocol Π.
///
/// The *schedule* decides when a party speaks; `PartyLogic` decides what it
/// says. Implementations must be deterministic functions of the
/// constructor-supplied input and the bits fed through [`recv_bit`] — the
/// interactive-coding simulation replays chunks from recorded transcripts
/// and relies on getting bit-identical behavior.
///
/// Within a round, a party's `send_bit` calls happen first (in sorted link
/// order), then its `recv_bit` calls (in sorted link order); a bit sent in
/// round `r` can therefore depend only on bits received in rounds `< r`.
///
/// [`recv_bit`]: PartyLogic::recv_bit
pub trait PartyLogic {
    /// The bit this party sends on `link` (where `link.from` is this party)
    /// in schedule round `round`.
    fn send_bit(&mut self, round: usize, link: DirectedLink) -> bool;

    /// Delivers the bit received on `link` (where `link.to` is this party)
    /// in schedule round `round`.
    ///
    /// Under simulation the delivered bit may be a *default* substituted
    /// for a deleted symbol; the surrounding coding scheme ensures such
    /// chunks are eventually rolled back, so logic may treat every call as
    /// genuine.
    fn recv_bit(&mut self, round: usize, link: DirectedLink, bit: bool);

    /// The party's final output (meaningful once the whole schedule ran).
    fn output(&self) -> Vec<u8>;

    /// Clones the current state. Snapshots of party state at chunk
    /// boundaries power the rewind machinery.
    fn clone_box(&self) -> Box<dyn PartyLogic>;
}

impl Clone for Box<dyn PartyLogic> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A packaged noiseless protocol: topology + speaking order + per-party
/// logic factory. All experiment workloads implement this.
pub trait Workload {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// The network G = (V, E).
    fn graph(&self) -> &Graph;

    /// The fixed speaking order of Π.
    fn schedule(&self) -> &Schedule;

    /// Instantiates the logic of party `node` (capturing its input).
    fn spawn(&self, node: NodeId) -> Box<dyn PartyLogic>;
}
