//! Noiseless execution of the chunked protocol Π′ — the ground truth.
//!
//! Noisy simulations are judged against this run: success means every
//! pairwise transcript restricted to the real chunks matches the reference
//! edge transcript, and every party output matches the reference output.

use crate::{ChunkRecord, ChunkedParty, ChunkedProtocol, Sym, Workload};
use netgraph::NodeId;

/// Result of a noiseless reference execution.
#[derive(Clone, Debug)]
pub struct ReferenceRun {
    /// Output of each party after the full schedule.
    pub outputs: Vec<Vec<u8>>,
    /// For each edge id: the per-chunk link transcript (identical at both
    /// endpoints in the absence of noise).
    pub edge_transcripts: Vec<Vec<ChunkRecord>>,
    /// Total payload communication `CC(Π′)` = real chunks × chunk bits.
    pub cc_bits: usize,
}

/// Runs Π′ noiselessly over all real chunks.
pub fn run_reference(w: &dyn Workload, proto: &ChunkedProtocol) -> ReferenceRun {
    let g = w.graph();
    let n = g.node_count();
    let m = g.edge_count();
    let mut parties: Vec<ChunkedParty> = (0..n).map(|v| ChunkedParty::spawn(w, v)).collect();
    let mut edge_transcripts: Vec<Vec<ChunkRecord>> = vec![Vec::new(); m];

    for c in 0..proto.real_chunks() {
        let mut records: Vec<ChunkRecord> = (0..m)
            .map(|_| ChunkRecord {
                chunk: c as u64,
                syms: Vec::new(),
            })
            .collect();
        let layout = proto.layout(c).clone();
        // Precompute party slots once per chunk for the senders' order.
        let party_slots: Vec<Vec<crate::PartySlot>> =
            (0..n).map(|v| proto.party_slots(c, v)).collect();
        let mut cursors = vec![0usize; n];
        for (ri, round) in layout.rounds.iter().enumerate() {
            // Sends first (all parties, sorted slot order), then receives.
            let mut bits = Vec::with_capacity(round.len());
            for slot in round {
                let u = slot.link.from;
                // Advance u's cursor to this send slot (party slot order is
                // monotone in processing order).
                let ps = &party_slots[u];
                while !(ps[cursors[u]].round_in_chunk == ri
                    && ps[cursors[u]].is_send
                    && ps[cursors[u]].link == slot.link)
                {
                    cursors[u] += 1;
                }
                let pslot = ps[cursors[u]];
                cursors[u] += 1;
                let bit = parties[u].send(&pslot);
                bits.push(bit);
                let e = g.edge_between(slot.link.from, slot.link.to).unwrap();
                records[e].syms.push(Sym::from_bit(bit));
            }
            for (slot, &bit) in round.iter().zip(&bits) {
                let v = slot.link.to;
                let ps = &party_slots[v];
                while !(ps[cursors[v]].round_in_chunk == ri
                    && !ps[cursors[v]].is_send
                    && ps[cursors[v]].link == slot.link)
                {
                    cursors[v] += 1;
                }
                let pslot = ps[cursors[v]];
                cursors[v] += 1;
                parties[v].recv(&pslot, Some(bit));
            }
        }
        for (e, rec) in records.into_iter().enumerate() {
            edge_transcripts[e].push(rec);
        }
    }

    ReferenceRun {
        outputs: parties.iter().map(ChunkedParty::output).collect(),
        edge_transcripts,
        cc_bits: proto.real_chunks() * proto.chunk_bits(),
    }
}

/// Per-party, per-chunk symbol sequences restricted to one link, as both
/// endpoints would record them. In a noiseless run these are exactly the
/// edge transcript; helper for tests.
pub fn link_record_len(proto: &ChunkedProtocol, c: usize, u: NodeId, v: NodeId) -> usize {
    proto.link_slot_count(c, u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Gossip;
    use netgraph::topology;

    #[test]
    fn transcripts_have_expected_lengths() {
        let w = Gossip::new(topology::ring(4), 6, 3);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let run = run_reference(&w, &p);
        for (e, per_chunk) in run.edge_transcripts.iter().enumerate() {
            assert_eq!(per_chunk.len(), p.real_chunks());
            let (u, v) = w.graph().endpoints(e);
            for (c, rec) in per_chunk.iter().enumerate() {
                assert_eq!(rec.chunk, c as u64);
                assert_eq!(
                    rec.syms.len(),
                    link_record_len(&p, c, u, v),
                    "edge {e} chunk {c}"
                );
            }
        }
    }

    #[test]
    fn padding_slots_are_zero() {
        let w = Gossip::new(topology::line(3), 2, 1);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let run = run_reference(&w, &p);
        // The heartbeat (first 2 slots of every per-link chunk record, one
        // per direction) must be Zero.
        for per_chunk in &run.edge_transcripts {
            for rec in per_chunk {
                assert_eq!(rec.syms[0], Sym::Zero);
                assert_eq!(rec.syms[1], Sym::Zero);
            }
        }
    }
}
