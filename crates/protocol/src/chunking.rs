//! §3.2 preprocessing: partitioning Π into chunks of exactly `5K` bits.
//!
//! Given a workload Π, we build the padded protocol Π′:
//!
//! * every chunk opens with a **heartbeat** round in which every directed
//!   link carries one bit (the paper assumes w.l.o.g. every party speaks to
//!   every neighbor at least once per chunk);
//! * original rounds of Π are packed greedily while the chunk has room;
//! * **filler** slots top the chunk up to exactly `chunk_bits` (the paper's
//!   "virtual round" making each chunk exactly 5K bits);
//! * past the end of Π, **dummy chunks** (heartbeat + filler only) continue
//!   indefinitely — the standard padding against all-noise-at-the-end.
//!
//! Heartbeat and filler bits are constant zero. They are recorded in the
//! pairwise transcripts, so corrupting them is detectable, but they are
//! never fed to the inner [`PartyLogic`].

use crate::{PartyLogic, Workload};
use netgraph::{DirectedLink, Graph, LinkId, NodeId};
use std::rc::Rc;

/// What a slot carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKind {
    /// Per-chunk keep-alive bit (constant 0).
    Heartbeat,
    /// A bit of the original protocol Π.
    Payload,
    /// Padding bit making the chunk exactly `chunk_bits` (constant 0).
    Filler,
}

/// One transmission slot inside a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// The directed link that speaks.
    pub link: DirectedLink,
    /// The dense [`LinkId`] of `link`, resolved at chunking time so hot
    /// loops never search the adjacency.
    pub lid: LinkId,
    /// Payload vs. padding.
    pub kind: SlotKind,
    /// For [`SlotKind::Payload`]: the original schedule round; otherwise 0.
    pub payload_round: usize,
}

/// The slots of one chunk, grouped into rounds.
#[derive(Clone, Debug, Default)]
pub struct ChunkLayout {
    /// Rounds of the chunk; each round's slots are sorted by link.
    pub rounds: Vec<Vec<Slot>>,
    bits: usize,
}

impl ChunkLayout {
    /// Total bits in the chunk (equals `chunk_bits` by construction).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of rounds the chunk occupies.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }
}

/// A slot from one party's perspective, in that party's processing order
/// (per round: all sends, then all receives, each sorted by link).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartySlot {
    /// Round within the chunk.
    pub round_in_chunk: usize,
    /// The directed link.
    pub link: DirectedLink,
    /// The dense [`LinkId`] of `link` (precomputed; no adjacency search).
    pub lid: LinkId,
    /// Payload vs. padding.
    pub kind: SlotKind,
    /// Original schedule round for payload slots.
    pub payload_round: usize,
    /// True if this party is the sender on `link`.
    pub is_send: bool,
}

/// Cached per-(chunk-shape, party) position tables: where this party's
/// symbols with each neighbor sit inside a chunk, in layout order.
///
/// Two chunks with the same *structural shape* (identical [`LinkId`]
/// sequence per round, payload content ignored) share one plan, so the
/// runner's per-iteration "walk the whole layout per party" pass from
/// before this cache is now a table lookup. Computed once by
/// [`ChunkedProtocol::new`]; retrieved via [`ChunkedProtocol::party_plan`].
#[derive(Clone, Debug, Default)]
pub struct PartyPlan {
    /// Per neighbor (in the party's sorted adjacency order): this chunk's
    /// `(round-in-chunk, symbol index)` pairs on the *outgoing* directed
    /// link, sorted by round.
    pub pos_out: Vec<Vec<(u32, u32)>>,
    /// Same for the *incoming* directed link.
    pub pos_in: Vec<Vec<(u32, u32)>>,
    /// Total symbols this chunk exchanges with each neighbor (both
    /// directions) — the symbol-index space of `pos_out`/`pos_in`.
    pub pair_syms: Vec<usize>,
}

impl PartyPlan {
    /// Symbol index of the send slot to neighbor `ni` in round `ri`.
    ///
    /// # Panics
    ///
    /// Panics if the link carries no outgoing symbol in that round.
    pub fn pos_out_idx(&self, ni: usize, ri: usize) -> usize {
        Self::pos_idx(&self.pos_out[ni], ri)
    }

    /// Symbol index of the receive slot from neighbor `ni` in round `ri`.
    ///
    /// # Panics
    ///
    /// Panics if the link carries no incoming symbol in that round.
    pub fn pos_in_idx(&self, ni: usize, ri: usize) -> usize {
        Self::pos_idx(&self.pos_in[ni], ri)
    }

    fn pos_idx(slots: &[(u32, u32)], ri: usize) -> usize {
        let i = slots
            .binary_search_by_key(&(ri as u32), |&(r, _)| r)
            .expect("no slot on link in round");
        slots[i].1 as usize
    }
}

/// The structural identity of a chunk: the [`LinkId`] sequence of every
/// round. Chunks with equal keys share their [`PartyPlan`]s.
type ShapeKey = Vec<Vec<LinkId>>;

/// Position tables of one distinct chunk shape, for every party.
#[derive(Clone, Debug)]
struct ShapePlans {
    plans: Vec<PartyPlan>,
}

/// Hash-indexed shape deduplicator used at chunking time, so compiling a
/// protocol whose chunks all differ structurally stays linear in the
/// number of chunks instead of quadratic.
#[derive(Default)]
struct ShapeInterner {
    shapes: Vec<ShapePlans>,
    index: std::collections::HashMap<ShapeKey, usize>,
}

impl ShapeInterner {
    /// Index of `layout`'s structural shape, compiling per-party position
    /// tables if this link-per-round sequence has not been seen.
    fn intern(&mut self, layout: &ChunkLayout, g: &Graph) -> usize {
        let key: ShapeKey = layout
            .rounds
            .iter()
            .map(|round| round.iter().map(|s| s.lid).collect())
            .collect();
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let plans = build_shape_plans(&key, g);
        self.shapes.push(ShapePlans { plans });
        self.index.insert(key, self.shapes.len() - 1);
        self.shapes.len() - 1
    }
}

/// One chunk's party-partitioned slot tables: every party's
/// [`PartySlot`]s in processing order, flattened with per-party offsets.
#[derive(Clone, Debug, Default)]
struct PartySlots {
    flat: Vec<PartySlot>,
    /// `n + 1` offsets; party `u`'s slots are `flat[offsets[u]..offsets[u + 1]]`.
    offsets: Vec<usize>,
}

impl PartySlots {
    fn of(&self, u: NodeId) -> &[PartySlot] {
        &self.flat[self.offsets[u]..self.offsets[u + 1]]
    }
}

/// Π′: the chunked, padded form of a workload's schedule.
///
/// # Examples
///
/// ```
/// use netgraph::topology;
/// use protocol::{workloads::TokenRing, ChunkedProtocol, Workload};
/// let w = TokenRing::new(4, 3, 1);
/// let m = w.graph().edge_count();
/// let p = ChunkedProtocol::new(&w, 5 * m);
/// assert!(p.real_chunks() >= 1);
/// assert_eq!(p.layout(0).bits(), 5 * m);
/// assert_eq!(p.layout(p.real_chunks() + 7).bits(), 5 * m); // dummy chunk
/// ```
#[derive(Clone, Debug)]
pub struct ChunkedProtocol {
    chunk_bits: usize,
    real: Vec<ChunkLayout>,
    dummy: ChunkLayout,
    max_rounds: usize,
    n: usize,
    m: usize,
    /// Party-partitioned slot tables, one per real chunk (parallel to
    /// `real`), so [`ChunkedProtocol::party_slots_cached`] is a borrow.
    real_slots: Vec<PartySlots>,
    /// Slot tables of the dummy chunk (every index past `real`).
    dummy_slots: PartySlots,
    /// Distinct structural shapes and their per-party position tables.
    shapes: Vec<ShapePlans>,
    /// `real[c]`'s shape index into `shapes`.
    real_shape: Vec<usize>,
    /// The dummy chunk's shape index.
    dummy_shape: usize,
}

impl ChunkedProtocol {
    /// Chunks `w`'s schedule into chunks of exactly `chunk_bits` bits
    /// (the paper's `5K`).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bits < 4m` — a chunk must fit the heartbeat (2m
    /// bits) plus the largest possible round (≤ 2m bits) or packing could
    /// stall.
    pub fn new(w: &dyn Workload, chunk_bits: usize) -> Self {
        let g = w.graph();
        let m = g.edge_count();
        assert!(
            chunk_bits >= 4 * m,
            "chunk_bits {chunk_bits} must be at least 4m = {}",
            4 * m
        );
        let heartbeat: Vec<Slot> = directed_sorted(g)
            .into_iter()
            .map(|link| Slot {
                link,
                lid: g.link_id(link).expect("heartbeat on non-edge"),
                kind: SlotKind::Heartbeat,
                payload_round: 0,
            })
            .collect();

        let sched = w.schedule();
        let mut real = Vec::new();
        let mut r = 0usize;
        while r < sched.round_count() {
            let mut layout = ChunkLayout {
                rounds: vec![heartbeat.clone()],
                bits: heartbeat.len(),
            };
            // Greedy packing of original rounds.
            while r < sched.round_count() {
                let links = sched.links_at(r);
                if layout.bits + links.len() > chunk_bits {
                    break;
                }
                layout.rounds.push(
                    links
                        .iter()
                        .map(|&link| Slot {
                            link,
                            lid: g.link_id(link).expect("schedule slot on non-edge"),
                            kind: SlotKind::Payload,
                            payload_round: r,
                        })
                        .collect(),
                );
                layout.bits += links.len();
                r += 1;
            }
            fill_chunk(&mut layout, g, chunk_bits);
            real.push(layout);
        }
        // Degenerate protocols (empty schedule) still get zero real chunks;
        // dummy chunks carry the simulation.
        let mut dummy = ChunkLayout {
            rounds: vec![heartbeat],
            bits: 2 * m,
        };
        fill_chunk(&mut dummy, g, chunk_bits);
        let max_rounds = real
            .iter()
            .map(ChunkLayout::round_count)
            .chain(std::iter::once(dummy.round_count()))
            .max()
            .unwrap();
        // Compile the per-chunk party slot tables and the deduplicated
        // per-shape position tables (one pass over each layout; shared
        // across every iteration that simulates the chunk).
        let n = g.node_count();
        let real_slots: Vec<PartySlots> = real.iter().map(|l| build_party_slots(l, n)).collect();
        let dummy_slots = build_party_slots(&dummy, n);
        let mut interner = ShapeInterner::default();
        let mut real_shape = Vec::with_capacity(real.len());
        for layout in &real {
            real_shape.push(interner.intern(layout, g));
        }
        let dummy_shape = interner.intern(&dummy, g);
        let shapes = interner.shapes;
        ChunkedProtocol {
            chunk_bits,
            real,
            dummy,
            max_rounds,
            n,
            m,
            real_slots,
            dummy_slots,
            shapes,
            real_shape,
            dummy_shape,
        }
    }

    /// Chunk size in bits (the paper's `5K`).
    pub fn chunk_bits(&self) -> usize {
        self.chunk_bits
    }

    /// Number of chunks carrying original protocol bits (`|Π|`).
    pub fn real_chunks(&self) -> usize {
        self.real.len()
    }

    /// Layout of chunk `c`; indices past [`Self::real_chunks`] yield the
    /// dummy chunk.
    pub fn layout(&self, c: usize) -> &ChunkLayout {
        self.real.get(c).unwrap_or(&self.dummy)
    }

    /// Upper bound on rounds per chunk; the simulation phase reserves this
    /// many rounds (plus the ⊥ round).
    pub fn max_rounds_per_chunk(&self) -> usize {
        self.max_rounds
    }

    /// Number of parties.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of links.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Party `u`'s slots in chunk `c`, in processing order (per round:
    /// sends sorted by link, then receives sorted by link).
    pub fn party_slots(&self, c: usize, u: NodeId) -> Vec<PartySlot> {
        self.party_slots_cached(c, u).to_vec()
    }

    /// Borrow of party `u`'s precompiled slot table for chunk `c` (the
    /// zero-copy form of [`ChunkedProtocol::party_slots`]).
    pub fn party_slots_cached(&self, c: usize, u: NodeId) -> &[PartySlot] {
        self.real_slots.get(c).unwrap_or(&self.dummy_slots).of(u)
    }

    /// Party `u`'s cached position tables for chunk `c` (shared across
    /// all chunks of the same structural shape).
    pub fn party_plan(&self, c: usize, u: NodeId) -> &PartyPlan {
        let shape = self.real_shape.get(c).copied().unwrap_or(self.dummy_shape);
        &self.shapes[shape].plans[u]
    }

    /// Number of distinct structural chunk shapes the protocol compiled
    /// (diagnostics; the dummy chunk contributes one).
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Number of slots chunk `c` places on the undirected link `{u, v}`
    /// (as seen by either endpoint).
    pub fn link_slot_count(&self, c: usize, u: NodeId, v: NodeId) -> usize {
        self.layout(c)
            .rounds
            .iter()
            .flatten()
            .filter(|s| {
                (s.link.from == u && s.link.to == v) || (s.link.from == v && s.link.to == u)
            })
            .count()
    }
}

/// All 2m directed links in canonical sorted order.
fn directed_sorted(g: &Graph) -> Vec<DirectedLink> {
    let mut links: Vec<DirectedLink> = g.directed_links().collect();
    links.sort_unstable();
    links
}

/// Appends filler rounds until the chunk holds exactly `chunk_bits` bits.
fn fill_chunk(layout: &mut ChunkLayout, g: &Graph, chunk_bits: usize) {
    let links = directed_sorted(g);
    let mut remaining = chunk_bits - layout.bits;
    while remaining > 0 {
        let take = remaining.min(links.len());
        layout.rounds.push(
            links[..take]
                .iter()
                .map(|&link| Slot {
                    link,
                    lid: g.link_id(link).expect("filler on non-edge"),
                    kind: SlotKind::Filler,
                    payload_round: 0,
                })
                .collect(),
        );
        layout.bits += take;
        remaining -= take;
    }
}

/// Partitions a layout into every party's processing-order slot table in
/// one pass (per round: sends by link order, then receives by link order —
/// round slots are already link-sorted).
fn build_party_slots(layout: &ChunkLayout, n: usize) -> PartySlots {
    let mut per_party: Vec<Vec<PartySlot>> = vec![Vec::new(); n];
    for (ri, round) in layout.rounds.iter().enumerate() {
        for slot in round {
            per_party[slot.link.from].push(PartySlot {
                round_in_chunk: ri,
                link: slot.link,
                lid: slot.lid,
                kind: slot.kind,
                payload_round: slot.payload_round,
                is_send: true,
            });
        }
        for slot in round {
            per_party[slot.link.to].push(PartySlot {
                round_in_chunk: ri,
                link: slot.link,
                lid: slot.lid,
                kind: slot.kind,
                payload_round: slot.payload_round,
                is_send: false,
            });
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut flat = Vec::with_capacity(per_party.iter().map(Vec::len).sum());
    offsets.push(0);
    for mut slots in per_party {
        flat.append(&mut slots);
        offsets.push(flat.len());
    }
    PartySlots { flat, offsets }
}

/// Compiles the per-party position tables of one structural shape.
fn build_shape_plans(key: &ShapeKey, g: &Graph) -> Vec<PartyPlan> {
    let n = g.node_count();
    let mut plans: Vec<PartyPlan> = (0..n)
        .map(|u| {
            let deg = g.degree(u);
            PartyPlan {
                pos_out: vec![Vec::new(); deg],
                pos_in: vec![Vec::new(); deg],
                pair_syms: vec![0; deg],
            }
        })
        .collect();
    // One pass over the shape: each slot advances the sender's and the
    // receiver's shared per-neighbor symbol counter (transcript symbol
    // order is layout order, counted identically at both endpoints).
    for (ri, round) in key.iter().enumerate() {
        for &lid in round {
            let link = g.link(lid);
            let sni = g.link_src_nbr(lid);
            let plan = &mut plans[link.from];
            let idx = plan.pair_syms[sni];
            plan.pos_out[sni].push((ri as u32, idx as u32));
            plan.pair_syms[sni] += 1;
            let dni = g.link_dst_nbr(lid);
            let plan = &mut plans[link.to];
            let idx = plan.pair_syms[dni];
            plan.pos_in[dni].push((ri as u32, idx as u32));
            plan.pair_syms[dni] += 1;
        }
    }
    plans
}

/// A party of the chunked protocol Π′: wraps the inner [`PartyLogic`] and
/// routes payload slots to it while answering padding slots itself.
///
/// The inner Π-state is held behind an [`Rc`] with **clone-on-mutate**
/// semantics: [`Clone`] is a reference-count bump, and the state is
/// deep-cloned ([`PartyLogic::clone_box`]) only at the first payload bit
/// that actually mutates a shared copy. The coding-scheme runner keeps one
/// snapshot per simulated chunk for the rewind machinery; under this
/// representation a chunk that carries no payload for a party (dummy and
/// padding-only chunks — the majority of iterations of a long run) costs
/// no clone at all, and the snapshot chain stores O(distinct states)
/// instead of O(chunks) deep copies.
pub struct ChunkedParty {
    node: NodeId,
    inner: Rc<dyn PartyLogic>,
}

impl Clone for ChunkedParty {
    fn clone(&self) -> Self {
        ChunkedParty {
            node: self.node,
            inner: Rc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for ChunkedParty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChunkedParty(node={})", self.node)
    }
}

impl ChunkedParty {
    /// Spawns party `node` of workload `w` (fresh Π-state).
    pub fn spawn(w: &dyn Workload, node: NodeId) -> Self {
        ChunkedParty {
            node,
            inner: Rc::from(w.spawn(node)),
        }
    }

    /// This party's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Mutable access to the Π-state, deep-cloning first iff it is shared
    /// (the copy-on-write step).
    fn inner_mut(&mut self) -> &mut dyn PartyLogic {
        if Rc::get_mut(&mut self.inner).is_none() {
            self.inner = Rc::from(self.inner.clone_box());
        }
        Rc::get_mut(&mut self.inner).expect("uniquely owned after clone-on-write")
    }

    /// True if `self` and `other` currently share one Π-state allocation
    /// (diagnostics for the copy-on-write machinery).
    pub fn shares_state_with(&self, other: &ChunkedParty) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Computes the bit to send for one of this party's send slots.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a send slot of this party.
    pub fn send(&mut self, slot: &PartySlot) -> bool {
        assert!(slot.is_send && slot.link.from == self.node);
        match slot.kind {
            SlotKind::Payload => self.inner_mut().send_bit(slot.payload_round, slot.link),
            SlotKind::Heartbeat | SlotKind::Filler => false,
        }
    }

    /// Delivers a received symbol for one of this party's receive slots.
    /// A deleted symbol (`None`) is fed to the inner logic as the default
    /// bit `0` — the surrounding coding scheme guarantees such chunks are
    /// detected and rolled back.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a receive slot of this party.
    pub fn recv(&mut self, slot: &PartySlot, sym: Option<bool>) {
        assert!(!slot.is_send && slot.link.to == self.node);
        if slot.kind == SlotKind::Payload {
            self.inner_mut()
                .recv_bit(slot.payload_round, slot.link, sym.unwrap_or(false));
        }
    }

    /// The inner party's output.
    pub fn output(&self) -> Vec<u8> {
        self.inner.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Gossip, TokenRing};
    use crate::Workload;

    #[test]
    fn every_chunk_is_exact() {
        let w = TokenRing::new(5, 10, 3);
        let m = w.graph().edge_count();
        let p = ChunkedProtocol::new(&w, 5 * m);
        for c in 0..p.real_chunks() + 3 {
            assert_eq!(p.layout(c).bits(), 5 * m, "chunk {c}");
            let counted: usize = p.layout(c).rounds.iter().map(Vec::len).sum();
            assert_eq!(counted, 5 * m);
        }
    }

    #[test]
    fn heartbeat_covers_all_links_first() {
        let w = TokenRing::new(4, 2, 0);
        let g = w.graph();
        let p = ChunkedProtocol::new(&w, 5 * g.edge_count());
        let hb = &p.layout(0).rounds[0];
        assert_eq!(hb.len(), 2 * g.edge_count());
        assert!(hb.iter().all(|s| s.kind == SlotKind::Heartbeat));
    }

    #[test]
    fn all_payload_bits_covered_exactly_once() {
        let w = Gossip::new(netgraph::topology::ring(5), 13, 7);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..p.real_chunks() {
            for s in p.layout(c).rounds.iter().flatten() {
                if s.kind == SlotKind::Payload {
                    assert!(seen.insert((s.payload_round, s.link)), "duplicate {s:?}");
                }
            }
        }
        let expected: std::collections::BTreeSet<_> = w.schedule().slots().collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn payload_rounds_preserve_schedule_order() {
        let w = TokenRing::new(6, 4, 9);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let mut last = 0usize;
        for c in 0..p.real_chunks() {
            for s in p.layout(c).rounds.iter().flatten() {
                if s.kind == SlotKind::Payload {
                    assert!(s.payload_round >= last);
                    last = s.payload_round;
                }
            }
        }
    }

    #[test]
    fn party_slots_partition_layout() {
        let w = Gossip::new(netgraph::topology::star(5), 6, 1);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        for c in 0..p.real_chunks() + 1 {
            let total: usize = (0..5).map(|u| p.party_slots(c, u).len()).sum();
            // Every slot appears exactly twice: once as send, once as recv.
            assert_eq!(total, 2 * p.layout(c).bits());
        }
    }

    #[test]
    fn party_slot_order_sends_before_recvs_per_round() {
        let w = Gossip::new(netgraph::topology::clique(4), 3, 2);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        for u in 0..4 {
            let slots = p.party_slots(0, u);
            for win in slots.windows(2) {
                let (a, b) = (&win[0], &win[1]);
                assert!(a.round_in_chunk <= b.round_in_chunk);
                if a.round_in_chunk == b.round_in_chunk && !a.is_send {
                    assert!(!b.is_send, "recv before send within round for {u}");
                }
            }
        }
    }

    #[test]
    fn link_slot_counts_symmetric() {
        let w = Gossip::new(netgraph::topology::grid(2, 3), 4, 5);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        for (_, u, v) in w.graph().edges().collect::<Vec<_>>() {
            assert_eq!(p.link_slot_count(0, u, v), p.link_slot_count(0, v, u));
            assert!(p.link_slot_count(0, u, v) >= 2, "heartbeat both ways");
        }
    }

    #[test]
    #[should_panic(expected = "at least 4m")]
    fn rejects_tiny_chunks() {
        let w = TokenRing::new(4, 2, 0);
        let _ = ChunkedProtocol::new(&w, w.graph().edge_count());
    }

    #[test]
    fn slots_carry_correct_link_ids() {
        let w = Gossip::new(netgraph::topology::grid(2, 3), 4, 5);
        let g = w.graph();
        let p = ChunkedProtocol::new(&w, 5 * g.edge_count());
        for c in 0..p.real_chunks() + 1 {
            for s in p.layout(c).rounds.iter().flatten() {
                assert_eq!(Some(s.lid), g.link_id(s.link));
            }
            for u in 0..g.node_count() {
                for s in p.party_slots_cached(c, u) {
                    assert_eq!(Some(s.lid), g.link_id(s.link));
                }
            }
        }
    }

    #[test]
    fn cached_party_slots_match_layout_walk() {
        let w = Gossip::new(netgraph::topology::random_connected(7, 11, 3), 5, 2);
        let g = w.graph();
        let p = ChunkedProtocol::new(&w, 5 * g.edge_count());
        for c in 0..p.real_chunks() + 2 {
            let layout = p.layout(c);
            for u in 0..g.node_count() {
                // The pre-cache algorithm, verbatim.
                let mut want = Vec::new();
                for (ri, round) in layout.rounds.iter().enumerate() {
                    for slot in round.iter().filter(|s| s.link.from == u) {
                        want.push((ri, slot.link, slot.kind, slot.payload_round, true));
                    }
                    for slot in round.iter().filter(|s| s.link.to == u) {
                        want.push((ri, slot.link, slot.kind, slot.payload_round, false));
                    }
                }
                let got: Vec<_> = p
                    .party_slots_cached(c, u)
                    .iter()
                    .map(|s| (s.round_in_chunk, s.link, s.kind, s.payload_round, s.is_send))
                    .collect();
                assert_eq!(got, want, "chunk {c} party {u}");
            }
        }
    }

    #[test]
    fn party_plan_matches_layout_walk() {
        let w = Gossip::new(netgraph::topology::grid(3, 3), 4, 8);
        let g = w.graph();
        let p = ChunkedProtocol::new(&w, 5 * g.edge_count());
        for c in 0..p.real_chunks() + 2 {
            let layout = p.layout(c);
            for u in 0..g.node_count() {
                // The pre-cache per-iteration walk, verbatim.
                let deg = g.degree(u);
                let mut pos_out = vec![Vec::new(); deg];
                let mut pos_in = vec![Vec::new(); deg];
                let mut pair_syms = vec![0usize; deg];
                for (ri, round) in layout.rounds.iter().enumerate() {
                    for slot in round {
                        let lid = g.link_id(slot.link).unwrap();
                        if slot.link.from == u {
                            let ni = g.link_src_nbr(lid);
                            pos_out[ni].push((ri as u32, pair_syms[ni] as u32));
                            pair_syms[ni] += 1;
                        } else if slot.link.to == u {
                            let ni = g.link_dst_nbr(lid);
                            pos_in[ni].push((ri as u32, pair_syms[ni] as u32));
                            pair_syms[ni] += 1;
                        }
                    }
                }
                let plan = p.party_plan(c, u);
                assert_eq!(plan.pos_out, pos_out, "chunk {c} party {u}");
                assert_eq!(plan.pos_in, pos_in, "chunk {c} party {u}");
                assert_eq!(plan.pair_syms, pair_syms, "chunk {c} party {u}");
            }
        }
    }

    #[test]
    fn shapes_dedupe_dummy_iterations() {
        let w = Gossip::new(netgraph::topology::ring(5), 6, 3);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        // Every chunk index past the real ones maps to the one dummy shape.
        let a = p.party_plan(p.real_chunks() + 1, 0) as *const PartyPlan;
        let b = p.party_plan(p.real_chunks() + 7, 0) as *const PartyPlan;
        assert_eq!(a, b, "dummy chunks must share one plan");
        assert!(p.shape_count() <= p.real_chunks() + 1);
    }

    #[test]
    fn cow_party_clones_share_until_payload_mutation() {
        let w = TokenRing::new(4, 2, 5);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let mut a = ChunkedParty::spawn(&w, 0);
        // Padding slots never touch Π-state: snapshots stay shared.
        let slots: Vec<PartySlot> = p.party_slots(0, 0);
        let snapshot = a.clone();
        assert!(a.shares_state_with(&snapshot));
        for s in &slots {
            match (s.is_send, s.kind) {
                (true, SlotKind::Heartbeat | SlotKind::Filler) => {
                    let _ = a.send(s);
                }
                (false, SlotKind::Heartbeat | SlotKind::Filler) => {
                    a.recv(s, Some(false));
                }
                _ => {}
            }
        }
        assert!(
            a.shares_state_with(&snapshot),
            "padding slots must not deep-clone"
        );
        // First payload slot triggers exactly one deep clone.
        if let Some(s) = slots
            .iter()
            .find(|s| s.is_send && s.kind == SlotKind::Payload)
        {
            let _ = a.send(s);
            assert!(!a.shares_state_with(&snapshot));
        }
        // Outputs equal regardless of sharing.
        assert_eq!(snapshot.output(), ChunkedParty::spawn(&w, 0).output());
    }
}
