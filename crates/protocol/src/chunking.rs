//! §3.2 preprocessing: partitioning Π into chunks of exactly `5K` bits.
//!
//! Given a workload Π, we build the padded protocol Π′:
//!
//! * every chunk opens with a **heartbeat** round in which every directed
//!   link carries one bit (the paper assumes w.l.o.g. every party speaks to
//!   every neighbor at least once per chunk);
//! * original rounds of Π are packed greedily while the chunk has room;
//! * **filler** slots top the chunk up to exactly `chunk_bits` (the paper's
//!   "virtual round" making each chunk exactly 5K bits);
//! * past the end of Π, **dummy chunks** (heartbeat + filler only) continue
//!   indefinitely — the standard padding against all-noise-at-the-end.
//!
//! Heartbeat and filler bits are constant zero. They are recorded in the
//! pairwise transcripts, so corrupting them is detectable, but they are
//! never fed to the inner [`PartyLogic`].

use crate::{PartyLogic, Workload};
use netgraph::{DirectedLink, Graph, NodeId};

/// What a slot carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKind {
    /// Per-chunk keep-alive bit (constant 0).
    Heartbeat,
    /// A bit of the original protocol Π.
    Payload,
    /// Padding bit making the chunk exactly `chunk_bits` (constant 0).
    Filler,
}

/// One transmission slot inside a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// The directed link that speaks.
    pub link: DirectedLink,
    /// Payload vs. padding.
    pub kind: SlotKind,
    /// For [`SlotKind::Payload`]: the original schedule round; otherwise 0.
    pub payload_round: usize,
}

/// The slots of one chunk, grouped into rounds.
#[derive(Clone, Debug, Default)]
pub struct ChunkLayout {
    /// Rounds of the chunk; each round's slots are sorted by link.
    pub rounds: Vec<Vec<Slot>>,
    bits: usize,
}

impl ChunkLayout {
    /// Total bits in the chunk (equals `chunk_bits` by construction).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of rounds the chunk occupies.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }
}

/// A slot from one party's perspective, in that party's processing order
/// (per round: all sends, then all receives, each sorted by link).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartySlot {
    /// Round within the chunk.
    pub round_in_chunk: usize,
    /// The directed link.
    pub link: DirectedLink,
    /// Payload vs. padding.
    pub kind: SlotKind,
    /// Original schedule round for payload slots.
    pub payload_round: usize,
    /// True if this party is the sender on `link`.
    pub is_send: bool,
}

/// Π′: the chunked, padded form of a workload's schedule.
///
/// # Examples
///
/// ```
/// use netgraph::topology;
/// use protocol::{workloads::TokenRing, ChunkedProtocol, Workload};
/// let w = TokenRing::new(4, 3, 1);
/// let m = w.graph().edge_count();
/// let p = ChunkedProtocol::new(&w, 5 * m);
/// assert!(p.real_chunks() >= 1);
/// assert_eq!(p.layout(0).bits(), 5 * m);
/// assert_eq!(p.layout(p.real_chunks() + 7).bits(), 5 * m); // dummy chunk
/// ```
#[derive(Clone, Debug)]
pub struct ChunkedProtocol {
    chunk_bits: usize,
    real: Vec<ChunkLayout>,
    dummy: ChunkLayout,
    max_rounds: usize,
    n: usize,
    m: usize,
}

impl ChunkedProtocol {
    /// Chunks `w`'s schedule into chunks of exactly `chunk_bits` bits
    /// (the paper's `5K`).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bits < 4m` — a chunk must fit the heartbeat (2m
    /// bits) plus the largest possible round (≤ 2m bits) or packing could
    /// stall.
    pub fn new(w: &dyn Workload, chunk_bits: usize) -> Self {
        let g = w.graph();
        let m = g.edge_count();
        assert!(
            chunk_bits >= 4 * m,
            "chunk_bits {chunk_bits} must be at least 4m = {}",
            4 * m
        );
        let heartbeat: Vec<Slot> = directed_sorted(g)
            .into_iter()
            .map(|link| Slot {
                link,
                kind: SlotKind::Heartbeat,
                payload_round: 0,
            })
            .collect();

        let sched = w.schedule();
        let mut real = Vec::new();
        let mut r = 0usize;
        while r < sched.round_count() {
            let mut layout = ChunkLayout {
                rounds: vec![heartbeat.clone()],
                bits: heartbeat.len(),
            };
            // Greedy packing of original rounds.
            while r < sched.round_count() {
                let links = sched.links_at(r);
                if layout.bits + links.len() > chunk_bits {
                    break;
                }
                layout.rounds.push(
                    links
                        .iter()
                        .map(|&link| Slot {
                            link,
                            kind: SlotKind::Payload,
                            payload_round: r,
                        })
                        .collect(),
                );
                layout.bits += links.len();
                r += 1;
            }
            fill_chunk(&mut layout, g, chunk_bits);
            real.push(layout);
        }
        // Degenerate protocols (empty schedule) still get zero real chunks;
        // dummy chunks carry the simulation.
        let mut dummy = ChunkLayout {
            rounds: vec![heartbeat],
            bits: 2 * m,
        };
        fill_chunk(&mut dummy, g, chunk_bits);
        let max_rounds = real
            .iter()
            .map(ChunkLayout::round_count)
            .chain(std::iter::once(dummy.round_count()))
            .max()
            .unwrap();
        ChunkedProtocol {
            chunk_bits,
            real,
            dummy,
            max_rounds,
            n: g.node_count(),
            m,
        }
    }

    /// Chunk size in bits (the paper's `5K`).
    pub fn chunk_bits(&self) -> usize {
        self.chunk_bits
    }

    /// Number of chunks carrying original protocol bits (`|Π|`).
    pub fn real_chunks(&self) -> usize {
        self.real.len()
    }

    /// Layout of chunk `c`; indices past [`Self::real_chunks`] yield the
    /// dummy chunk.
    pub fn layout(&self, c: usize) -> &ChunkLayout {
        self.real.get(c).unwrap_or(&self.dummy)
    }

    /// Upper bound on rounds per chunk; the simulation phase reserves this
    /// many rounds (plus the ⊥ round).
    pub fn max_rounds_per_chunk(&self) -> usize {
        self.max_rounds
    }

    /// Number of parties.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of links.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Party `u`'s slots in chunk `c`, in processing order (per round:
    /// sends sorted by link, then receives sorted by link).
    pub fn party_slots(&self, c: usize, u: NodeId) -> Vec<PartySlot> {
        let mut out = Vec::new();
        self.party_slots_into(c, u, &mut out);
        out
    }

    /// [`ChunkedProtocol::party_slots`] writing into a caller-owned buffer
    /// (cleared first), so per-iteration drivers reuse one allocation.
    pub fn party_slots_into(&self, c: usize, u: NodeId, out: &mut Vec<PartySlot>) {
        out.clear();
        let layout = self.layout(c);
        for (ri, round) in layout.rounds.iter().enumerate() {
            for slot in round.iter().filter(|s| s.link.from == u) {
                out.push(PartySlot {
                    round_in_chunk: ri,
                    link: slot.link,
                    kind: slot.kind,
                    payload_round: slot.payload_round,
                    is_send: true,
                });
            }
            for slot in round.iter().filter(|s| s.link.to == u) {
                out.push(PartySlot {
                    round_in_chunk: ri,
                    link: slot.link,
                    kind: slot.kind,
                    payload_round: slot.payload_round,
                    is_send: false,
                });
            }
        }
    }

    /// Number of slots chunk `c` places on the undirected link `{u, v}`
    /// (as seen by either endpoint).
    pub fn link_slot_count(&self, c: usize, u: NodeId, v: NodeId) -> usize {
        self.layout(c)
            .rounds
            .iter()
            .flatten()
            .filter(|s| {
                (s.link.from == u && s.link.to == v) || (s.link.from == v && s.link.to == u)
            })
            .count()
    }
}

/// All 2m directed links in canonical sorted order.
fn directed_sorted(g: &Graph) -> Vec<DirectedLink> {
    let mut links: Vec<DirectedLink> = g.directed_links().collect();
    links.sort_unstable();
    links
}

/// Appends filler rounds until the chunk holds exactly `chunk_bits` bits.
fn fill_chunk(layout: &mut ChunkLayout, g: &Graph, chunk_bits: usize) {
    let links = directed_sorted(g);
    let mut remaining = chunk_bits - layout.bits;
    while remaining > 0 {
        let take = remaining.min(links.len());
        layout.rounds.push(
            links[..take]
                .iter()
                .map(|&link| Slot {
                    link,
                    kind: SlotKind::Filler,
                    payload_round: 0,
                })
                .collect(),
        );
        layout.bits += take;
        remaining -= take;
    }
}

/// A party of the chunked protocol Π′: wraps the inner [`PartyLogic`] and
/// routes payload slots to it while answering padding slots itself.
pub struct ChunkedParty {
    node: NodeId,
    inner: Box<dyn PartyLogic>,
}

impl Clone for ChunkedParty {
    fn clone(&self) -> Self {
        ChunkedParty {
            node: self.node,
            inner: self.inner.clone_box(),
        }
    }
}

impl std::fmt::Debug for ChunkedParty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChunkedParty(node={})", self.node)
    }
}

impl ChunkedParty {
    /// Spawns party `node` of workload `w` (fresh Π-state).
    pub fn spawn(w: &dyn Workload, node: NodeId) -> Self {
        ChunkedParty {
            node,
            inner: w.spawn(node),
        }
    }

    /// This party's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Computes the bit to send for one of this party's send slots.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a send slot of this party.
    pub fn send(&mut self, slot: &PartySlot) -> bool {
        assert!(slot.is_send && slot.link.from == self.node);
        match slot.kind {
            SlotKind::Payload => self.inner.send_bit(slot.payload_round, slot.link),
            SlotKind::Heartbeat | SlotKind::Filler => false,
        }
    }

    /// Delivers a received symbol for one of this party's receive slots.
    /// A deleted symbol (`None`) is fed to the inner logic as the default
    /// bit `0` — the surrounding coding scheme guarantees such chunks are
    /// detected and rolled back.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a receive slot of this party.
    pub fn recv(&mut self, slot: &PartySlot, sym: Option<bool>) {
        assert!(!slot.is_send && slot.link.to == self.node);
        if slot.kind == SlotKind::Payload {
            self.inner
                .recv_bit(slot.payload_round, slot.link, sym.unwrap_or(false));
        }
    }

    /// The inner party's output.
    pub fn output(&self) -> Vec<u8> {
        self.inner.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Gossip, TokenRing};
    use crate::Workload;

    #[test]
    fn every_chunk_is_exact() {
        let w = TokenRing::new(5, 10, 3);
        let m = w.graph().edge_count();
        let p = ChunkedProtocol::new(&w, 5 * m);
        for c in 0..p.real_chunks() + 3 {
            assert_eq!(p.layout(c).bits(), 5 * m, "chunk {c}");
            let counted: usize = p.layout(c).rounds.iter().map(Vec::len).sum();
            assert_eq!(counted, 5 * m);
        }
    }

    #[test]
    fn heartbeat_covers_all_links_first() {
        let w = TokenRing::new(4, 2, 0);
        let g = w.graph();
        let p = ChunkedProtocol::new(&w, 5 * g.edge_count());
        let hb = &p.layout(0).rounds[0];
        assert_eq!(hb.len(), 2 * g.edge_count());
        assert!(hb.iter().all(|s| s.kind == SlotKind::Heartbeat));
    }

    #[test]
    fn all_payload_bits_covered_exactly_once() {
        let w = Gossip::new(netgraph::topology::ring(5), 13, 7);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..p.real_chunks() {
            for s in p.layout(c).rounds.iter().flatten() {
                if s.kind == SlotKind::Payload {
                    assert!(seen.insert((s.payload_round, s.link)), "duplicate {s:?}");
                }
            }
        }
        let expected: std::collections::BTreeSet<_> = w.schedule().slots().collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn payload_rounds_preserve_schedule_order() {
        let w = TokenRing::new(6, 4, 9);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let mut last = 0usize;
        for c in 0..p.real_chunks() {
            for s in p.layout(c).rounds.iter().flatten() {
                if s.kind == SlotKind::Payload {
                    assert!(s.payload_round >= last);
                    last = s.payload_round;
                }
            }
        }
    }

    #[test]
    fn party_slots_partition_layout() {
        let w = Gossip::new(netgraph::topology::star(5), 6, 1);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        for c in 0..p.real_chunks() + 1 {
            let total: usize = (0..5).map(|u| p.party_slots(c, u).len()).sum();
            // Every slot appears exactly twice: once as send, once as recv.
            assert_eq!(total, 2 * p.layout(c).bits());
        }
    }

    #[test]
    fn party_slot_order_sends_before_recvs_per_round() {
        let w = Gossip::new(netgraph::topology::clique(4), 3, 2);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        for u in 0..4 {
            let slots = p.party_slots(0, u);
            for win in slots.windows(2) {
                let (a, b) = (&win[0], &win[1]);
                assert!(a.round_in_chunk <= b.round_in_chunk);
                if a.round_in_chunk == b.round_in_chunk && !a.is_send {
                    assert!(!b.is_send, "recv before send within round for {u}");
                }
            }
        }
    }

    #[test]
    fn link_slot_counts_symmetric() {
        let w = Gossip::new(netgraph::topology::grid(2, 3), 4, 5);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        for (_, u, v) in w.graph().edges().collect::<Vec<_>>() {
            assert_eq!(p.link_slot_count(0, u, v), p.link_slot_count(0, v, u));
            assert!(p.link_slot_count(0, u, v) >= 2, "heartbeat both ways");
        }
    }

    #[test]
    #[should_panic(expected = "at least 4m")]
    fn rejects_tiny_chunks() {
        let w = TokenRing::new(4, 2, 0);
        let _ = ChunkedProtocol::new(&w, w.graph().edge_count());
    }
}
