//! Fixed speaking orders.

use netgraph::DirectedLink;

/// The fixed, input-independent speaking order of a noiseless protocol:
/// for each round, the sorted list of directed links that carry one bit.
///
/// # Examples
///
/// ```
/// use netgraph::DirectedLink;
/// use protocol::Schedule;
/// let mut s = Schedule::new();
/// s.push_round(vec![DirectedLink { from: 0, to: 1 }]);
/// s.push_round(vec![
///     DirectedLink { from: 1, to: 0 },
///     DirectedLink { from: 1, to: 2 },
/// ]);
/// assert_eq!(s.round_count(), 2);
/// assert_eq!(s.cc_bits(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    rounds: Vec<Vec<DirectedLink>>,
    cc: usize,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Appends a round; the link list is sorted and deduplicated so the
    /// order is canonical.
    ///
    /// # Panics
    ///
    /// Panics if the round is empty — the model allows silent parties but a
    /// fully silent round carries no information and only inflates round
    /// complexity; callers should simply not emit it.
    pub fn push_round(&mut self, mut links: Vec<DirectedLink>) {
        assert!(
            !links.is_empty(),
            "schedule rounds must carry at least one bit"
        );
        links.sort_unstable();
        links.dedup();
        self.cc += links.len();
        self.rounds.push(links);
    }

    /// Number of rounds `RC(Π)`.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total bits `CC(Π)`.
    pub fn cc_bits(&self) -> usize {
        self.cc
    }

    /// The sorted directed links speaking in round `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn links_at(&self, r: usize) -> &[DirectedLink] {
        &self.rounds[r]
    }

    /// Iterates over `(round, link)` pairs in global slot order.
    pub fn slots(&self) -> impl Iterator<Item = (usize, DirectedLink)> + '_ {
        self.rounds
            .iter()
            .enumerate()
            .flat_map(|(r, links)| links.iter().map(move |&l| (r, l)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dl(from: usize, to: usize) -> DirectedLink {
        DirectedLink { from, to }
    }

    #[test]
    fn counts_and_order() {
        let mut s = Schedule::new();
        s.push_round(vec![dl(2, 1), dl(0, 1)]);
        s.push_round(vec![dl(1, 0)]);
        assert_eq!(s.round_count(), 2);
        assert_eq!(s.cc_bits(), 3);
        assert_eq!(s.links_at(0), &[dl(0, 1), dl(2, 1)]);
    }

    #[test]
    fn dedups_within_round() {
        let mut s = Schedule::new();
        s.push_round(vec![dl(0, 1), dl(0, 1)]);
        assert_eq!(s.cc_bits(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn rejects_empty_round() {
        Schedule::new().push_round(vec![]);
    }

    #[test]
    fn slots_iterate_in_order() {
        let mut s = Schedule::new();
        s.push_round(vec![dl(0, 1)]);
        s.push_round(vec![dl(1, 2), dl(2, 1)]);
        let slots: Vec<_> = s.slots().collect();
        assert_eq!(slots, vec![(0, dl(0, 1)), (1, dl(1, 2)), (1, dl(2, 1))]);
    }
}
