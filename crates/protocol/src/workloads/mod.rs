//! The noiseless-protocol workloads driven by the experiments.
//!
//! All workloads have input-independent speaking orders (§2.1) and
//! deterministic, seed-derived inputs:
//!
//! * [`TokenRing`] — one bit per round walks a ring; extremely sparse
//!   communication (exercises the non-fully-utilized model, F9).
//! * [`LinePipeline`] — the paper's §1.2 motivating example: a value flows
//!   down a line, then the two tail parties chat for n rounds (F4).
//! * [`SumTree`] — convergecast + broadcast aggregation over the BFS tree.
//! * [`Gossip`] — fully utilized stress test: every link speaks both ways
//!   every round.
//! * [`PointerChase`] — long sequential dependency chains between the two
//!   ends of a line (classic interactive-coding workload).
//! * [`Synthetic`] — random fixed speaking orders, for property tests.

mod gossip;
mod line_pipeline;
mod pointer_chase;
mod sum_tree;
mod synthetic;
mod token_ring;

pub use gossip::Gossip;
pub use line_pipeline::LinePipeline;
pub use pointer_chase::PointerChase;
pub use sum_tree::SumTree;
pub use synthetic::Synthetic;
pub use token_ring::TokenRing;

/// splitmix64 mixer: deterministic input derivation from workload seeds.
pub(crate) fn mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::{ChunkedProtocol, Workload};
    use netgraph::topology;

    /// Checks the workload invariants every consumer relies on:
    /// schedule non-empty, all links in the graph, deterministic spawns.
    fn check_workload(w: &dyn Workload) {
        let g = w.graph();
        assert!(w.schedule().cc_bits() > 0, "{}: empty schedule", w.name());
        for (r, link) in w.schedule().slots() {
            assert!(
                g.edge_between(link.from, link.to).is_some(),
                "{}: round {r} uses non-edge {link}",
                w.name()
            );
        }
        // Spawning twice and running the reference twice gives identical
        // outputs (determinism).
        let p = ChunkedProtocol::new(w, 5 * g.edge_count());
        let a = run_reference(w, &p);
        let b = run_reference(w, &p);
        assert_eq!(a.outputs, b.outputs, "{}: nondeterministic", w.name());
        assert_eq!(a.edge_transcripts, b.edge_transcripts);
    }

    #[test]
    fn all_workloads_well_formed() {
        check_workload(&TokenRing::new(5, 4, 11));
        check_workload(&LinePipeline::new(6, 3, 12));
        check_workload(&SumTree::new(topology::grid(2, 3), 4, 2, 13));
        check_workload(&Gossip::new(topology::clique(4), 9, 14));
        check_workload(&PointerChase::new(4, 3, 3, 15));
        check_workload(&Synthetic::new(topology::ring(4), 12, 16));
    }
}
