//! Pointer chasing between the two ends of a line.

use super::mix64;
use crate::{PartyLogic, Schedule, Workload};
use netgraph::{topology, DirectedLink, Graph, NodeId};

/// Pointer chasing, the classic hard workload for interactive coding:
/// party 0 holds table `A`, party `n−1` holds table `B`, both over
/// `2^width` entries of `width` bits. A pointer shuttles down the line,
/// gets mapped through `B`, shuttles back, gets mapped through `A`, for
/// `depth` double-hops. Intermediate parties forward bits. Every message
/// depends on the entire history, so any uncorrected corruption destroys
/// the final pointer.
///
/// Output: the current pointer value at the two table holders (forwarders
/// output their last forwarded word).
///
/// # Examples
///
/// ```
/// use protocol::{workloads::PointerChase, Workload};
/// let w = PointerChase::new(4, 3, 2, 1);
/// // depth * 2 legs * (n-1) hops * width bits
/// assert_eq!(w.schedule().cc_bits(), 2 * 2 * 3 * 3);
/// ```
#[derive(Clone, Debug)]
pub struct PointerChase {
    graph: Graph,
    schedule: Schedule,
    table_a: Vec<u64>,
    table_b: Vec<u64>,
    n: usize,
    width: u32,
    depth: usize,
}

impl PointerChase {
    /// Line of `n` parties, `width`-bit pointers, `depth` double-hops.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `width` is 0 or > 10, or `depth == 0`.
    pub fn new(n: usize, width: u32, depth: usize, seed: u64) -> Self {
        assert!(n >= 2);
        assert!((1..=10).contains(&width));
        assert!(depth >= 1);
        let graph = topology::line(n);
        let mut schedule = Schedule::new();
        for _ in 0..depth {
            // Forward leg 0 → n−1, bit-serial per hop.
            for hop in 0..n - 1 {
                for _ in 0..width {
                    schedule.push_round(vec![DirectedLink {
                        from: hop,
                        to: hop + 1,
                    }]);
                }
            }
            // Backward leg n−1 → 0.
            for hop in (0..n - 1).rev() {
                for _ in 0..width {
                    schedule.push_round(vec![DirectedLink {
                        from: hop + 1,
                        to: hop,
                    }]);
                }
            }
        }
        let size = 1usize << width;
        let mask = (1u64 << width) - 1;
        let mut s = seed;
        let table_a = (0..size).map(|_| mix64(&mut s) & mask).collect();
        let table_b = (0..size).map(|_| mix64(&mut s) & mask).collect();
        PointerChase {
            graph,
            schedule,
            table_a,
            table_b,
            n,
            width,
            depth,
        }
    }

    /// Ground-truth final pointer, chased directly through the tables.
    pub fn expected_pointer(&self) -> u64 {
        let mut p = self.table_a[0];
        for _ in 0..self.depth {
            p = self.table_b[p as usize];
            p = self.table_a[p as usize];
        }
        p
    }
}

#[derive(Clone)]
struct ChaseParty {
    node: NodeId,
    n: usize,
    width: u32,
    /// Table A at node 0, table B at node n−1, empty elsewhere.
    table: Vec<u64>,
    /// Word being assembled from incoming bits.
    rx: u64,
    rx_bits: u32,
    /// Word currently being transmitted.
    tx: u64,
    tx_bits: u32,
}

impl ChaseParty {
    fn load_tx(&mut self, value: u64) {
        self.tx = value;
        self.tx_bits = 0;
    }
}

impl PartyLogic for ChaseParty {
    fn send_bit(&mut self, _round: usize, _link: DirectedLink) -> bool {
        let bit = (self.tx >> self.tx_bits) & 1 == 1;
        self.tx_bits += 1;
        if self.tx_bits == self.width {
            self.tx_bits = 0;
        }
        bit
    }

    fn recv_bit(&mut self, _round: usize, _link: DirectedLink, bit: bool) {
        if bit {
            self.rx |= 1 << self.rx_bits;
        }
        self.rx_bits += 1;
        if self.rx_bits == self.width {
            let word = self.rx;
            self.rx = 0;
            self.rx_bits = 0;
            let endpoint = self.node == 0 || self.node == self.n - 1;
            let next = if endpoint {
                // Map the pointer through the local table.
                self.table[word as usize]
            } else {
                // Forwarders relay verbatim.
                word
            };
            self.load_tx(next);
        }
    }

    fn output(&self) -> Vec<u8> {
        self.tx.to_le_bytes().to_vec()
    }

    fn clone_box(&self) -> Box<dyn PartyLogic> {
        Box::new(self.clone())
    }
}

impl Workload for PointerChase {
    fn name(&self) -> &'static str {
        "pointer_chase"
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    fn spawn(&self, node: NodeId) -> Box<dyn PartyLogic> {
        let table = if node == 0 {
            self.table_a.clone()
        } else if node == self.n - 1 {
            self.table_b.clone()
        } else {
            Vec::new()
        };
        let mut party = ChaseParty {
            node,
            n: self.n,
            width: self.width,
            table,
            rx: 0,
            rx_bits: 0,
            tx: 0,
            tx_bits: 0,
        };
        if node == 0 {
            // Party 0 opens with A[0].
            let first = party.table[0];
            party.load_tx(first);
        }
        party.tx = if node == 0 { party.tx } else { 0 };
        Box::new(party)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::ChunkedProtocol;

    #[test]
    fn reference_matches_direct_chase() {
        for (n, width, depth, seed) in [(2, 3, 2, 1u64), (4, 3, 3, 2), (5, 4, 2, 3)] {
            let w = PointerChase::new(n, width, depth, seed);
            let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
            let run = run_reference(&w, &p);
            let expected = w.expected_pointer();
            let got = u64::from_le_bytes(run.outputs[0][..8].try_into().unwrap());
            assert_eq!(got, expected, "n={n} width={width} depth={depth}");
        }
    }

    #[test]
    fn two_party_special_case() {
        let w = PointerChase::new(2, 2, 4, 9);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let run = run_reference(&w, &p);
        let got = u64::from_le_bytes(run.outputs[0][..8].try_into().unwrap());
        assert_eq!(got, w.expected_pointer());
    }
}
