//! Randomized synthetic protocols: arbitrary speaking orders for
//! property-testing the entire chunking/simulation pipeline.

use super::mix64;
use crate::{PartyLogic, Schedule, Workload};
use netgraph::{DirectedLink, Graph, NodeId};

/// A protocol with a *random but fixed* speaking order: each round
/// activates a random non-empty subset of directed links, and message
/// contents mix the sender's accumulator state (as in
/// [`super::Gossip`]). This is the adversarial-shape workload for
/// property tests — chunk packing sees rounds of every width from 1 to 2m
/// in arbitrary order.
///
/// # Examples
///
/// ```
/// use netgraph::topology;
/// use protocol::{workloads::Synthetic, Workload};
/// let w = Synthetic::new(topology::grid(2, 2), 20, 7);
/// assert_eq!(w.schedule().round_count(), 20);
/// assert!(w.schedule().cc_bits() >= 20);
/// ```
#[derive(Clone, Debug)]
pub struct Synthetic {
    graph: Graph,
    schedule: Schedule,
    inputs: Vec<u64>,
}

impl Synthetic {
    /// Random fixed speaking order over `graph` with `rounds` rounds,
    /// derived deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(graph: Graph, rounds: usize, seed: u64) -> Self {
        assert!(rounds >= 1);
        let links: Vec<DirectedLink> = graph.directed_links().collect();
        let mut s = seed ^ 0x5e1f_5e1f;
        let mut schedule = Schedule::new();
        for _ in 0..rounds {
            let mut round: Vec<DirectedLink> = links
                .iter()
                .copied()
                .filter(|_| mix64(&mut s) % 3 == 0)
                .collect();
            if round.is_empty() {
                // Model requires ≥ 1 bit per round; pick one link.
                round.push(links[(mix64(&mut s) % links.len() as u64) as usize]);
            }
            schedule.push_round(round);
        }
        Synthetic::from_schedule(graph, schedule, seed)
    }

    /// A **sparse, irregular** speaking order: every round activates
    /// exactly one directed link, drawn from a skewed distribution (half
    /// the rounds cluster on one "hot" link, the rest scatter), so
    /// per-link traffic has long silent gaps and chunk boundaries fall
    /// mid-conversation. This is the workload shape that stresses the
    /// rewind machinery: a mid-chunk corruption leaves length gaps that
    /// only a multi-round rewind wave can close (see the
    /// `adaptive_phases` suite, which asserts the wave via the
    /// `rewind_wave_depth` counter).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn sparse(graph: Graph, rounds: usize, seed: u64) -> Self {
        assert!(rounds >= 1);
        let links: Vec<DirectedLink> = graph.directed_links().collect();
        let mut s = seed ^ 0x51a5_51a5;
        let hot = links[(mix64(&mut s) % links.len() as u64) as usize];
        let mut schedule = Schedule::new();
        for _ in 0..rounds {
            let link = if mix64(&mut s) % 2 == 0 {
                hot
            } else {
                links[(mix64(&mut s) % links.len() as u64) as usize]
            };
            schedule.push_round(vec![link]);
        }
        Synthetic::from_schedule(graph, schedule, seed)
    }

    fn from_schedule(graph: Graph, schedule: Schedule, seed: u64) -> Self {
        let mut t = seed;
        let inputs = (0..graph.node_count()).map(|_| mix64(&mut t)).collect();
        Synthetic {
            graph,
            schedule,
            inputs,
        }
    }
}

#[derive(Clone)]
struct SynParty {
    acc: u64,
}

impl PartyLogic for SynParty {
    fn send_bit(&mut self, round: usize, link: DirectedLink) -> bool {
        let mut k = self
            .acc
            .wrapping_add((round as u64) << 7)
            .wrapping_add((link.to as u64) << 29);
        mix64(&mut k) & 1 == 1
    }

    fn recv_bit(&mut self, round: usize, link: DirectedLink, bit: bool) {
        let mut k = self
            .acc
            .wrapping_add(u64::from(bit) | ((round as u64) << 13) | ((link.from as u64) << 37));
        self.acc = mix64(&mut k);
    }

    fn output(&self) -> Vec<u8> {
        self.acc.to_le_bytes().to_vec()
    }

    fn clone_box(&self) -> Box<dyn PartyLogic> {
        Box::new(self.clone())
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        "synthetic"
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    fn spawn(&self, node: NodeId) -> Box<dyn PartyLogic> {
        Box::new(SynParty {
            acc: self.inputs[node],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::ChunkedProtocol;
    use netgraph::topology;

    #[test]
    fn deterministic_given_seed() {
        let a = Synthetic::new(topology::ring(5), 15, 9);
        let b = Synthetic::new(topology::ring(5), 15, 9);
        assert_eq!(a.schedule(), b.schedule());
    }

    #[test]
    fn chunking_handles_arbitrary_round_widths() {
        for seed in 0..8 {
            let w = Synthetic::new(topology::random_connected(6, 9, seed), 25, seed);
            let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
            for c in 0..p.real_chunks() {
                assert_eq!(p.layout(c).bits(), 5 * w.graph().edge_count());
            }
            let run = run_reference(&w, &p);
            assert_eq!(run.outputs.len(), 6);
        }
    }
}
