//! The paper's §1.2 motivating example on the line topology.

use super::mix64;
use crate::{PartyLogic, Schedule, Workload};
use netgraph::{topology, DirectedLink, Graph, NodeId};

/// The line-network workload from the paper's introduction: in each epoch,
/// a running parity flows `0 → 1 → … → n−1`, and then the two tail parties
/// `n−2` and `n−1` exchange `n` back-and-forth messages.
///
/// This is exactly the protocol used to argue that, without flag passing
/// and the rewind phase, a single early error wastes Θ(n²) communication:
/// an error on link (0,1) in epoch `e` invalidates all the tail chatter of
/// epochs `e, e+1, …` until the rewind wave reaches the tail.
///
/// # Examples
///
/// ```
/// use protocol::{workloads::LinePipeline, Workload};
/// let w = LinePipeline::new(5, 2, 3);
/// // per epoch: n−1 pipeline bits + n chat bits
/// assert_eq!(w.schedule().cc_bits(), 2 * (4 + 5));
/// ```
#[derive(Clone, Debug)]
pub struct LinePipeline {
    graph: Graph,
    schedule: Schedule,
    inputs: Vec<bool>,
    n: usize,
    epochs: usize,
}

impl LinePipeline {
    /// Line of `n` parties, `epochs` epochs, inputs derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `epochs == 0`.
    pub fn new(n: usize, epochs: usize, seed: u64) -> Self {
        assert!(n >= 3 && epochs >= 1);
        let graph = topology::line(n);
        let mut schedule = Schedule::new();
        for _ in 0..epochs {
            for i in 0..n - 1 {
                schedule.push_round(vec![DirectedLink { from: i, to: i + 1 }]);
            }
            for t in 0..n {
                let (from, to) = if t % 2 == 0 {
                    (n - 1, n - 2)
                } else {
                    (n - 2, n - 1)
                };
                schedule.push_round(vec![DirectedLink { from, to }]);
            }
        }
        let mut s = seed;
        let inputs = (0..n).map(|_| mix64(&mut s) & 1 == 1).collect();
        LinePipeline {
            graph,
            schedule,
            inputs,
            n,
            epochs,
        }
    }

    /// The seed-derived input bits.
    pub fn inputs(&self) -> &[bool] {
        &self.inputs
    }

    /// Closed-form output of party `v` (two bytes: last pipeline parity,
    /// chat accumulator).
    pub fn expected_output(&self, v: NodeId) -> Vec<u8> {
        let n = self.n;
        let mut parity_hist = 0u8; // party v's latest forwarded/received parity
        let mut chat_acc = 0u8;
        for _ in 0..self.epochs {
            // Pipeline: prefix parity arriving at each party.
            // party i receives parity of inputs[0..=i-1] XORed progressively:
            // arriving value at i is b_0 ^ b_1 … ^ b_{i-1}.
            let mut x = false;
            let mut arrived = vec![false; n];
            for i in 0..n - 1 {
                x ^= self.inputs[i];
                arrived[i + 1] = x;
            }
            if v > 0 {
                parity_hist = u8::from(arrived[v]);
            }
            // Chat between n−2 and n−1: c_0 = arrived[n−1] ^ input[n−1];
            // each turn the speaker XORs its input into the last bit.
            let mut c = arrived[n - 1];
            for t in 0..n {
                let speaker = if t % 2 == 0 { n - 1 } else { n - 2 };
                c ^= self.inputs[speaker];
                if v == n - 1 || v == n - 2 {
                    chat_acc = chat_acc.wrapping_mul(2).wrapping_add(u8::from(c));
                }
            }
        }
        vec![parity_hist, chat_acc]
    }
}

struct PipeParty {
    node: NodeId,
    n: usize,
    input: bool,
    /// Last parity value received from the left (or own input for node 0).
    parity: bool,
    parity_hist: u8,
    /// Chat register (tail parties only).
    chat: bool,
    chat_acc: u8,
}

impl PipeParty {
    /// True if `round` is a pipeline hop (first n−1 rounds of each epoch);
    /// the remaining n rounds of the epoch are tail chat.
    fn is_pipeline_round(&self, round: usize) -> bool {
        round % (2 * self.n - 1) < self.n - 1
    }
}

impl PartyLogic for PipeParty {
    fn send_bit(&mut self, round: usize, _link: DirectedLink) -> bool {
        if self.is_pipeline_round(round) {
            // Pipeline hop: forward running parity (node 0 seeds it).
            if self.node == 0 {
                self.input
            } else {
                self.parity ^ self.input
            }
        } else {
            // Chat turn: XOR own input into the chat register.
            self.chat ^= self.input;
            self.chat_acc = self
                .chat_acc
                .wrapping_mul(2)
                .wrapping_add(u8::from(self.chat));
            self.chat
        }
    }

    fn recv_bit(&mut self, round: usize, _link: DirectedLink, bit: bool) {
        if self.is_pipeline_round(round) {
            // Pipeline arrival from the left.
            self.parity = bit;
            self.parity_hist = u8::from(bit);
            if self.node == self.n - 1 {
                // Seed the chat register for this epoch.
                self.chat = bit;
            }
        } else {
            // Chat arrival.
            self.chat = bit;
            self.chat_acc = self.chat_acc.wrapping_mul(2).wrapping_add(u8::from(bit));
        }
    }

    fn output(&self) -> Vec<u8> {
        vec![self.parity_hist, self.chat_acc]
    }

    fn clone_box(&self) -> Box<dyn PartyLogic> {
        Box::new(PipeParty { ..*self })
    }
}

impl Workload for LinePipeline {
    fn name(&self) -> &'static str {
        "line_pipeline"
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    fn spawn(&self, node: NodeId) -> Box<dyn PartyLogic> {
        Box::new(PipeParty {
            node,
            n: self.n,
            input: self.inputs[node],
            parity: false,
            parity_hist: 0,
            chat: false,
            chat_acc: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::ChunkedProtocol;

    #[test]
    fn reference_matches_closed_form() {
        for seed in [1u64, 5, 42] {
            let w = LinePipeline::new(5, 3, seed);
            let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
            let run = run_reference(&w, &p);
            for v in 0..5 {
                assert_eq!(
                    run.outputs[v],
                    w.expected_output(v),
                    "seed {seed} party {v}"
                );
            }
        }
    }

    #[test]
    fn tail_chatter_dominates() {
        // The paper's point: each epoch spends more bits on the last link
        // than on any other.
        let w = LinePipeline::new(8, 1, 0);
        let tail = DirectedLink { from: 7, to: 6 };
        let tail_bits = w
            .schedule()
            .slots()
            .filter(|&(_, l)| l == tail || l == tail.reversed())
            .count();
        assert!(tail_bits > 8 / 2);
    }
}
