//! Fully-utilized gossip: every directed link speaks every round.

use super::mix64;
use crate::{PartyLogic, Schedule, Workload};
use netgraph::{DirectedLink, Graph, NodeId};

/// Dense state-mixing gossip: in every round, every party sends one bit on
/// every incident link (a deterministic function of its accumulator) and
/// mixes every received bit back in. This is the fully-utilized regime of
/// \[RS94\]/\[HS16\] embedded in our more general model, and the stress test
/// for transcript bookkeeping — any single corruption diffuses into every
/// party's state within diameter rounds.
///
/// Output: the party's 8-byte accumulator.
///
/// # Examples
///
/// ```
/// use netgraph::topology;
/// use protocol::{workloads::Gossip, Workload};
/// let w = Gossip::new(topology::clique(4), 5, 1);
/// // 2m bits per round.
/// assert_eq!(w.schedule().cc_bits(), 5 * 2 * 6);
/// ```
#[derive(Clone, Debug)]
pub struct Gossip {
    graph: Graph,
    schedule: Schedule,
    inputs: Vec<u64>,
}

impl Gossip {
    /// Gossip over `graph` for `rounds` rounds with seed-derived inputs.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(graph: Graph, rounds: usize, seed: u64) -> Self {
        assert!(rounds >= 1);
        let mut schedule = Schedule::new();
        let all: Vec<DirectedLink> = graph.directed_links().collect();
        for _ in 0..rounds {
            schedule.push_round(all.clone());
        }
        let mut s = seed;
        let inputs = (0..graph.node_count()).map(|_| mix64(&mut s)).collect();
        Gossip {
            graph,
            schedule,
            inputs,
        }
    }

    /// Seed-derived 64-bit inputs.
    pub fn inputs(&self) -> &[u64] {
        &self.inputs
    }
}

#[derive(Clone)]
struct GossipParty {
    acc: u64,
}

impl PartyLogic for GossipParty {
    fn send_bit(&mut self, round: usize, link: DirectedLink) -> bool {
        // Deterministic function of state, round, and destination.
        let mut k = self
            .acc
            .wrapping_add((round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((link.to as u64) << 17)
            .wrapping_add((link.from as u64) << 3);
        mix64(&mut k) & 1 == 1
    }

    fn recv_bit(&mut self, round: usize, link: DirectedLink, bit: bool) {
        let mut k = self
            .acc
            .wrapping_add(u64::from(bit))
            .wrapping_add((round as u64) << 9)
            .wrapping_add((link.from as u64) << 21);
        self.acc = mix64(&mut k);
    }

    fn output(&self) -> Vec<u8> {
        self.acc.to_le_bytes().to_vec()
    }

    fn clone_box(&self) -> Box<dyn PartyLogic> {
        Box::new(self.clone())
    }
}

impl Workload for Gossip {
    fn name(&self) -> &'static str {
        "gossip"
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    fn spawn(&self, node: NodeId) -> Box<dyn PartyLogic> {
        Box::new(GossipParty {
            acc: self.inputs[node],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::ChunkedProtocol;
    use netgraph::topology;

    #[test]
    fn outputs_depend_on_every_input() {
        // Flipping any party's input changes every output (after enough
        // rounds to diffuse) — the sensitivity that makes gossip a good
        // correctness probe for the simulation.
        let g = topology::ring(5);
        let base = Gossip::new(g.clone(), 10, 7);
        let p = ChunkedProtocol::new(&base, 5 * g.edge_count());
        let base_out = run_reference(&base, &p).outputs;
        let other = Gossip::new(g, 10, 8);
        let other_out = run_reference(&other, &p).outputs;
        for v in 0..5 {
            assert_ne!(base_out[v], other_out[v], "party {v} insensitive");
        }
    }

    #[test]
    fn fully_utilized_schedule() {
        let w = Gossip::new(topology::grid(2, 2), 3, 0);
        let m = w.graph().edge_count();
        for r in 0..3 {
            assert_eq!(w.schedule().links_at(r).len(), 2 * m);
        }
    }
}
