//! A token walking around a ring, one bit per round.

use super::mix64;
use crate::{PartyLogic, Schedule, Workload};
use netgraph::{topology, DirectedLink, Graph, NodeId};

/// A token (one bit) circulates a ring for `laps` laps; each party XORs its
/// input bit into the token as it passes. Exactly one bit is sent per
/// round, making this the sparsest possible workload — the case where the
/// non-fully-utilized model of the paper matters most.
///
/// Output of each party: the token value it last observed and how many
/// times it held the token.
///
/// # Examples
///
/// ```
/// use protocol::{workloads::TokenRing, Workload};
/// let w = TokenRing::new(5, 2, 7);
/// assert_eq!(w.schedule().cc_bits(), 5 * 2);
/// assert_eq!(w.graph().node_count(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct TokenRing {
    graph: Graph,
    schedule: Schedule,
    inputs: Vec<bool>,
    n: usize,
}

impl TokenRing {
    /// Ring of `n` parties, `laps` full laps, inputs derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `laps == 0`.
    pub fn new(n: usize, laps: usize, seed: u64) -> Self {
        assert!(n >= 3 && laps >= 1);
        let graph = topology::ring(n);
        let mut schedule = Schedule::new();
        for hop in 0..laps * n {
            let from = hop % n;
            let to = (hop + 1) % n;
            schedule.push_round(vec![DirectedLink { from, to }]);
        }
        let mut s = seed;
        let inputs = (0..n).map(|_| mix64(&mut s) & 1 == 1).collect();
        TokenRing {
            graph,
            schedule,
            inputs,
            n,
        }
    }

    /// The seed-derived input bits.
    pub fn inputs(&self) -> &[bool] {
        &self.inputs
    }

    /// Ground-truth output for party `v`, computed in closed form (used to
    /// cross-validate the reference executor).
    pub fn expected_output(&self, v: NodeId) -> Vec<u8> {
        let laps = self.schedule.round_count() / self.n;
        // Token after hop t (t = 0 is party 0's first send).
        let mut token = false;
        let mut last_seen = false;
        let mut holds = 0u32;
        for hop in 0..laps * self.n {
            let sender = hop % self.n;
            token ^= self.inputs[sender];
            let receiver = (hop + 1) % self.n;
            if receiver == v {
                last_seen = token;
                holds += 1;
            }
        }
        vec![u8::from(last_seen), holds as u8]
    }
}

struct TokenParty {
    input: bool,
    token: bool,
    last_seen: bool,
    holds: u32,
}

impl PartyLogic for TokenParty {
    fn send_bit(&mut self, _round: usize, _link: DirectedLink) -> bool {
        self.token ^ self.input
    }

    fn recv_bit(&mut self, _round: usize, _link: DirectedLink, bit: bool) {
        self.token = bit;
        self.last_seen = bit;
        self.holds += 1;
    }

    fn output(&self) -> Vec<u8> {
        vec![u8::from(self.last_seen), self.holds as u8]
    }

    fn clone_box(&self) -> Box<dyn PartyLogic> {
        Box::new(TokenParty {
            input: self.input,
            token: self.token,
            last_seen: self.last_seen,
            holds: self.holds,
        })
    }
}

impl Workload for TokenRing {
    fn name(&self) -> &'static str {
        "token_ring"
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    fn spawn(&self, node: NodeId) -> Box<dyn PartyLogic> {
        Box::new(TokenParty {
            input: self.inputs[node],
            token: false,
            last_seen: false,
            holds: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::ChunkedProtocol;

    #[test]
    fn reference_matches_closed_form() {
        let w = TokenRing::new(6, 3, 99);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let run = run_reference(&w, &p);
        for v in 0..6 {
            assert_eq!(run.outputs[v], w.expected_output(v), "party {v}");
        }
    }

    #[test]
    fn schedule_is_one_bit_per_round() {
        let w = TokenRing::new(4, 2, 0);
        for r in 0..w.schedule().round_count() {
            assert_eq!(w.schedule().links_at(r).len(), 1);
        }
    }

    #[test]
    fn inputs_depend_on_seed() {
        let a = TokenRing::new(8, 1, 1);
        let b = TokenRing::new(8, 1, 2);
        assert_ne!(a.inputs(), b.inputs());
    }
}
