//! Convergecast + broadcast aggregation over a BFS spanning tree.

use super::mix64;
use crate::{PartyLogic, Schedule, Workload};
use netgraph::{DirectedLink, Graph, NodeId, SpanningTree};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Epochs of tree aggregation over an arbitrary connected graph: every
/// epoch, each party contributes a `width`-bit value (`input + epoch`,
/// truncated); partial sums (mod 2^width) convergecast up the BFS tree
/// rooted at node 0, then the total broadcasts back down. Level-synchronous
/// and bit-serial, so the speaking order is fixed and input-independent.
///
/// Output of every party: the XOR of all epoch totals, as two bytes.
///
/// # Examples
///
/// ```
/// use netgraph::topology;
/// use protocol::{workloads::SumTree, Workload};
/// let w = SumTree::new(topology::star(5), 4, 2, 9);
/// assert!(w.schedule().cc_bits() > 0);
/// ```
#[derive(Clone)]
pub struct SumTree {
    graph: Graph,
    tree: SpanningTree,
    schedule: Schedule,
    inputs: Vec<u64>,
    width: u32,
    epochs: usize,
    /// For each schedule round: which bit of the value is on the wire.
    round_bit: Arc<Vec<u32>>,
}

impl std::fmt::Debug for SumTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SumTree")
            .field("n", &self.graph.node_count())
            .field("width", &self.width)
            .field("epochs", &self.epochs)
            .finish()
    }
}

impl SumTree {
    /// Builds the workload over `graph` with `width`-bit values.
    ///
    /// # Panics
    ///
    /// Panics if `graph` is disconnected, `width` is 0 or > 16,
    /// `epochs == 0`, or the graph has a single node.
    pub fn new(graph: Graph, width: u32, epochs: usize, seed: u64) -> Self {
        assert!((1..=16).contains(&width));
        assert!(epochs >= 1);
        assert!(graph.node_count() >= 2);
        let tree = SpanningTree::bfs(&graph, 0);
        let n = graph.node_count();
        let depth = tree.depth();
        let mut schedule = Schedule::new();
        let mut round_bit = Vec::new();
        for _ in 0..epochs {
            // Up-sweep: deepest level first.
            for level in (2..=depth).rev() {
                let links: Vec<DirectedLink> = (0..n)
                    .filter(|&v| tree.level(v) == level)
                    .map(|v| DirectedLink {
                        from: v,
                        to: tree.parent(v).expect("non-root has parent"),
                    })
                    .collect();
                if links.is_empty() {
                    continue;
                }
                for bit in 0..width {
                    schedule.push_round(links.clone());
                    round_bit.push(bit);
                }
            }
            // Down-sweep: each level broadcasts the total to its children.
            for level in 1..depth {
                let links: Vec<DirectedLink> = (0..n)
                    .filter(|&v| tree.level(v) == level)
                    .flat_map(|v| {
                        tree.children(v)
                            .iter()
                            .map(move |&c| DirectedLink { from: v, to: c })
                    })
                    .collect();
                if links.is_empty() {
                    continue;
                }
                for bit in 0..width {
                    schedule.push_round(links.clone());
                    round_bit.push(bit);
                }
            }
        }
        let mut s = seed;
        let mask = (1u64 << width) - 1;
        let inputs = (0..n).map(|_| mix64(&mut s) & mask).collect();
        SumTree {
            graph,
            tree,
            schedule,
            inputs,
            width,
            epochs,
            round_bit: Arc::new(round_bit),
        }
    }

    /// Seed-derived per-party inputs.
    pub fn inputs(&self) -> &[u64] {
        &self.inputs
    }

    /// Closed-form expected output: per epoch, the total is
    /// `Σ ((input_v + epoch) mod 2^width) mod 2^width`; every party outputs
    /// the XOR of all epoch totals, little-endian in two bytes.
    pub fn expected_output(&self) -> Vec<u8> {
        let mask = (1u64 << self.width) - 1;
        let mut acc = 0u64;
        for e in 0..self.epochs as u64 {
            let total: u64 = self
                .inputs
                .iter()
                .fold(0u64, |t, &x| (t + ((x + e) & mask)) & mask);
            acc ^= total;
        }
        vec![(acc & 0xff) as u8, (acc >> 8) as u8]
    }
}

#[derive(Clone)]
struct SumParty {
    width: u32,
    input: u64,
    epoch: u64,
    /// Own epoch value plus child sums received so far this epoch.
    partial: u64,
    /// In-flight value bits per sending neighbor.
    rx: BTreeMap<NodeId, u64>,
    children_reported: usize,
    /// The epoch total (valid once learned/computed).
    total: u64,
    acc: u64,
    is_root: bool,
    children: Vec<NodeId>,
    mask: u64,
    round_bit: Arc<Vec<u32>>,
}

impl SumParty {
    fn epoch_value(&self) -> u64 {
        (self.input + self.epoch) & self.mask
    }

    fn advance_epoch(&mut self) {
        self.acc ^= self.total;
        self.epoch += 1;
        self.partial = self.epoch_value();
        self.children_reported = 0;
    }
}

impl PartyLogic for SumParty {
    fn send_bit(&mut self, round: usize, link: DirectedLink) -> bool {
        let bit = self.round_bit[round];
        let value = if self.children.contains(&link.to) {
            // Down-sweep: broadcast the total.
            self.total
        } else {
            // Up-sweep: send the partial sum to the parent.
            self.partial
        };
        (value >> bit) & 1 == 1
    }

    fn recv_bit(&mut self, round: usize, link: DirectedLink, bit: bool) {
        let idx = self.round_bit[round];
        let entry = self.rx.entry(link.from).or_insert(0);
        if idx == 0 {
            *entry = 0;
        }
        if bit {
            *entry |= 1 << idx;
        }
        if idx + 1 == self.width {
            let value = self.rx.remove(&link.from).unwrap_or(0);
            if self.children.contains(&link.from) {
                // A child's partial sum completed.
                self.partial = (self.partial + value) & self.mask;
                self.children_reported += 1;
                if self.is_root && self.children_reported == self.children.len() {
                    // Root learns the total; its down-sends use it, then the
                    // next epoch begins for the root immediately.
                    self.total = self.partial;
                    self.advance_epoch();
                }
            } else {
                // The total arriving from the parent.
                self.total = value;
                self.advance_epoch();
            }
        }
    }

    fn output(&self) -> Vec<u8> {
        vec![(self.acc & 0xff) as u8, (self.acc >> 8) as u8]
    }

    fn clone_box(&self) -> Box<dyn PartyLogic> {
        Box::new(self.clone())
    }
}

impl Workload for SumTree {
    fn name(&self) -> &'static str {
        "sum_tree"
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    fn spawn(&self, node: NodeId) -> Box<dyn PartyLogic> {
        let mask = (1u64 << self.width) - 1;
        Box::new(SumParty {
            width: self.width,
            input: self.inputs[node],
            epoch: 0,
            partial: self.inputs[node] & mask,
            rx: BTreeMap::new(),
            children_reported: 0,
            total: 0,
            acc: 0,
            is_root: node == 0,
            children: self.tree.children(node).to_vec(),
            mask,
            round_bit: Arc::clone(&self.round_bit),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::ChunkedProtocol;
    use netgraph::topology;

    #[test]
    fn reference_matches_closed_form_on_star() {
        let w = SumTree::new(topology::star(5), 4, 3, 7);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let run = run_reference(&w, &p);
        let expected = w.expected_output();
        for v in 0..5 {
            assert_eq!(run.outputs[v], expected, "party {v}");
        }
    }

    #[test]
    fn reference_matches_closed_form_on_many_topologies() {
        for (g, label) in [
            (topology::line(6), "line"),
            (topology::grid(2, 3), "grid"),
            (topology::binary_tree(7), "btree"),
            (topology::clique(5), "clique"),
            (topology::random_connected(9, 14, 4), "random"),
        ] {
            let w = SumTree::new(g, 3, 2, 21);
            let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
            let run = run_reference(&w, &p);
            let expected = w.expected_output();
            for (v, out) in run.outputs.iter().enumerate() {
                assert_eq!(out, &expected, "{label} party {v}");
            }
        }
    }

    #[test]
    fn single_epoch_width_one() {
        let w = SumTree::new(topology::line(3), 1, 1, 5);
        let p = ChunkedProtocol::new(&w, 5 * w.graph().edge_count());
        let run = run_reference(&w, &p);
        assert_eq!(run.outputs[0], w.expected_output());
    }
}
