//! Noiseless multiparty protocols Π and their chunked form.
//!
//! The paper simulates an *underlying* protocol Π over G = (V, E) whose
//! **speaking order is fixed** — which directed link carries a bit in which
//! round is known to everyone and independent of inputs; only message
//! *contents* depend on inputs (§2.1). This crate provides:
//!
//! * [`Schedule`] — the fixed speaking order,
//! * [`PartyLogic`] — the input-dependent message contents,
//! * [`Workload`] — a packaged (graph, schedule, logic) protocol; the
//!   [`workloads`] module ships the six families used by the experiments,
//! * [`ChunkedProtocol`] — the §3.2 preprocessing: Π is padded (heartbeat +
//!   filler) and partitioned into chunks of *exactly* `5K` bits, followed
//!   by unlimited dummy chunks,
//! * the [`mod@reference`] module — a noiseless executor producing the ground-truth
//!   transcripts and outputs that noisy simulations are judged against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunking;
mod logic;
pub mod reference;
mod schedule;
pub mod workloads;

pub use chunking::{
    ChunkLayout, ChunkedParty, ChunkedProtocol, PartyPlan, PartySlot, Slot, SlotKind,
};
pub use logic::{PartyLogic, Workload};
pub use schedule::Schedule;

/// A symbol as observed on a link: a bit, or `*` ("no message", §2.1).
///
/// `Star` is what a receiver records when a scheduled transmission was
/// deleted by the adversary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sym {
    /// A received/sent `0` bit.
    Zero,
    /// A received/sent `1` bit.
    One,
    /// No symbol (deletion observed at a scheduled slot).
    Star,
}

impl Sym {
    /// Builds a symbol from a bit.
    pub fn from_bit(b: bool) -> Sym {
        if b {
            Sym::One
        } else {
            Sym::Zero
        }
    }

    /// The bit value, if any.
    pub fn bit(self) -> Option<bool> {
        match self {
            Sym::Zero => Some(false),
            Sym::One => Some(true),
            Sym::Star => None,
        }
    }

    /// 2-bit encoding used when transcripts are serialized for hashing.
    pub fn code(self) -> u64 {
        match self {
            Sym::Zero => 0,
            Sym::One => 1,
            Sym::Star => 2,
        }
    }
}

/// One chunk of a pairwise transcript: the chunk index plus the symbols
/// observed on one link, in slot order (paper §3.2: the transcript of chunk
/// `i` consists of the simulated communication *and* the chunk number —
/// footnote 11 explains the chunk number defeats the inner-product hash's
/// insensitivity to trailing zeros).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Chunk index (0-based).
    pub chunk: u64,
    /// Observed symbols for this link's slots in this chunk, in slot order.
    pub syms: Vec<Sym>,
}
