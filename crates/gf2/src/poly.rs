//! Dense polynomials over GF(2^8), in support of the Reed–Solomon codec.
//!
//! Coefficients are stored low-degree first (`coeffs[i]` multiplies `x^i`).
//! The zero polynomial is the empty coefficient vector.

use crate::Gf256;

/// A dense polynomial over [`Gf256`], low-degree-first coefficients.
///
/// # Examples
///
/// ```
/// use gf2::{Gf256, poly::Poly256};
/// // p(x) = 1 + x
/// let p = Poly256::from_coeffs(vec![Gf256::ONE, Gf256::ONE]);
/// // p * p = 1 + x^2 over GF(2^8)
/// let sq = p.mul(&p);
/// assert_eq!(sq.coeffs(), &[Gf256::ONE, Gf256::ZERO, Gf256::ONE]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Poly256 {
    coeffs: Vec<Gf256>,
}

impl Poly256 {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly256 { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly256 {
            coeffs: vec![Gf256::ONE],
        }
    }

    /// Builds a polynomial from low-degree-first coefficients, trimming
    /// trailing zeros.
    pub fn from_coeffs(coeffs: Vec<Gf256>) -> Self {
        let mut p = Poly256 { coeffs };
        p.trim();
        p
    }

    /// The monomial `c · x^d`.
    pub fn monomial(c: Gf256, d: usize) -> Self {
        if c.is_zero() {
            return Poly256::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; d + 1];
        coeffs[d] = c;
        Poly256 { coeffs }
    }

    fn trim(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// Low-degree-first coefficients (no trailing zeros).
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// True if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of `x^i` (zero beyond the stored degree).
    pub fn coeff(&self, i: usize) -> Gf256 {
        self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO)
    }

    /// Polynomial addition (= subtraction in characteristic 2).
    pub fn add(&self, other: &Poly256) -> Poly256 {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.coeff(i) + other.coeff(i));
        }
        Poly256::from_coeffs(out)
    }

    /// Schoolbook polynomial multiplication.
    pub fn mul(&self, other: &Poly256) -> Poly256 {
        if self.is_zero() || other.is_zero() {
            return Poly256::zero();
        }
        let mut out = vec![Gf256::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly256::from_coeffs(out)
    }

    /// Multiplies every coefficient by `c`.
    pub fn scale(&self, c: Gf256) -> Poly256 {
        Poly256::from_coeffs(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// Multiplies by `x^d`.
    pub fn shift(&self, d: usize) -> Poly256 {
        if self.is_zero() {
            return Poly256::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; d];
        coeffs.extend_from_slice(&self.coeffs);
        Poly256 { coeffs }
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Formal derivative. In characteristic 2 the even-degree terms vanish.
    pub fn derivative(&self) -> Poly256 {
        let mut out = Vec::new();
        for (i, &c) in self.coeffs.iter().enumerate().skip(1) {
            // d/dx c x^i = (i mod 2) c x^(i-1) over GF(2^8).
            out.push(if i % 2 == 1 { c } else { Gf256::ZERO });
        }
        Poly256::from_coeffs(out)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q * divisor + r` and `deg r < deg divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Poly256) -> (Poly256, Poly256) {
        assert!(!divisor.is_zero(), "division by zero polynomial");
        let dd = divisor.degree().unwrap();
        let lead_inv = divisor.coeffs[dd].inv();
        let mut rem = self.coeffs.clone();
        if rem.len() <= dd {
            return (Poly256::zero(), self.clone());
        }
        let qlen = rem.len() - dd;
        let mut quot = vec![Gf256::ZERO; qlen];
        for qi in (0..qlen).rev() {
            let c = rem[qi + dd] * lead_inv;
            if c.is_zero() {
                continue;
            }
            quot[qi] = c;
            for (k, &dc) in divisor.coeffs.iter().enumerate() {
                rem[qi + k] += c * dc;
            }
        }
        (Poly256::from_coeffs(quot), Poly256::from_coeffs(rem))
    }

    /// Truncates to terms of degree `< n` (i.e. reduces mod `x^n`).
    pub fn truncated(&self, n: usize) -> Poly256 {
        Poly256::from_coeffs(self.coeffs.iter().copied().take(n).collect())
    }

    /// Product `∏ (1 + roots[i]·x)`, the standard erasure-locator shape.
    pub fn from_locator_roots(roots: &[Gf256]) -> Poly256 {
        let mut acc = Poly256::one();
        for &r in roots {
            acc = acc.mul(&Poly256::from_coeffs(vec![Gf256::ONE, r]));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn poly(v: &[u8]) -> Poly256 {
        Poly256::from_coeffs(v.iter().map(|&b| Gf256(b)).collect())
    }

    #[test]
    fn add_self_is_zero() {
        let p = poly(&[1, 2, 3]);
        assert!(p.add(&p).is_zero());
    }

    #[test]
    fn mul_by_one_and_zero() {
        let p = poly(&[5, 0, 7]);
        assert_eq!(p.mul(&Poly256::one()), p);
        assert!(p.mul(&Poly256::zero()).is_zero());
    }

    #[test]
    fn degree_and_trim() {
        assert_eq!(poly(&[0, 0, 0]).degree(), None);
        assert_eq!(poly(&[1, 0, 2, 0]).degree(), Some(2));
    }

    #[test]
    fn eval_known() {
        // p(x) = 3 + 2x over GF(2^8): p(1) = 3 ^ 2 = 1.
        let p = poly(&[3, 2]);
        assert_eq!(p.eval(Gf256::ONE), Gf256(1));
        assert_eq!(p.eval(Gf256::ZERO), Gf256(3));
    }

    #[test]
    fn derivative_drops_even_terms() {
        // p = a + bx + cx^2 + dx^3 -> p' = b + dx^2.
        let p = poly(&[9, 7, 5, 3]);
        assert_eq!(p.derivative(), poly(&[7, 0, 3]));
    }

    #[test]
    fn shift_is_mul_by_x_power() {
        let p = poly(&[1, 2]);
        let x2 = Poly256::monomial(Gf256::ONE, 2);
        assert_eq!(p.shift(2), p.mul(&x2));
    }

    #[test]
    fn locator_roots_eval_to_at_inverse_points() {
        // ∏(1 + r x) vanishes at x = r^{-1}.
        let roots = [Gf256(3), Gf256(9), Gf256(200)];
        let loc = Poly256::from_locator_roots(&roots);
        for r in roots {
            assert_eq!(loc.eval(r.inv()), Gf256::ZERO);
        }
        assert_eq!(loc.eval(Gf256::ZERO), Gf256::ONE);
    }

    proptest! {
        #[test]
        fn div_rem_reconstructs(a in proptest::collection::vec(any::<u8>(), 0..24),
                                b in proptest::collection::vec(any::<u8>(), 1..12)) {
            let pa = poly(&a);
            let pb = poly(&b);
            prop_assume!(!pb.is_zero());
            let (q, r) = pa.div_rem(&pb);
            prop_assert_eq!(q.mul(&pb).add(&r), pa);
            if let Some(rd) = r.degree() {
                prop_assert!(rd < pb.degree().unwrap());
            }
        }

        #[test]
        fn mul_commutative(a in proptest::collection::vec(any::<u8>(), 0..16),
                           b in proptest::collection::vec(any::<u8>(), 0..16)) {
            prop_assert_eq!(poly(&a).mul(&poly(&b)), poly(&b).mul(&poly(&a)));
        }

        #[test]
        fn eval_is_ring_hom(a in proptest::collection::vec(any::<u8>(), 0..16),
                            b in proptest::collection::vec(any::<u8>(), 0..16),
                            x: u8) {
            let (pa, pb, x) = (poly(&a), poly(&b), Gf256(x));
            prop_assert_eq!(pa.mul(&pb).eval(x), pa.eval(x) * pb.eval(x));
            prop_assert_eq!(pa.add(&pb).eval(x), pa.eval(x) + pb.eval(x));
        }

        #[test]
        fn div_rem_eval_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..24),
                                  b in proptest::collection::vec(any::<u8>(), 1..12),
                                  x: u8) {
            // q·b + r reconstructs a not just structurally but under
            // evaluation at an arbitrary point.
            let (pa, pb, x) = (poly(&a), poly(&b), Gf256(x));
            prop_assume!(!pb.is_zero());
            let (q, r) = pa.div_rem(&pb);
            prop_assert_eq!(q.eval(x) * pb.eval(x) + r.eval(x), pa.eval(x));
        }

        #[test]
        fn scale_matches_constant_mul(a in proptest::collection::vec(any::<u8>(), 0..16),
                                      c: u8) {
            let pa = poly(&a);
            prop_assert_eq!(pa.scale(Gf256(c)), pa.mul(&Poly256::monomial(Gf256(c), 0)));
        }

        #[test]
        fn derivative_product_rule(a in proptest::collection::vec(any::<u8>(), 0..12),
                                   b in proptest::collection::vec(any::<u8>(), 0..12)) {
            // (fg)' = f'g + fg' holds in GF(2^8)[x].
            let (f, g) = (poly(&a), poly(&b));
            let lhs = f.mul(&g).derivative();
            let rhs = f.derivative().mul(&g).add(&f.mul(&g.derivative()));
            prop_assert_eq!(lhs, rhs);
        }
    }
}
