//! Binary-field arithmetic used by the MPIC reproduction.
//!
//! Two fields are provided:
//!
//! * [`Gf256`] — the byte field GF(2^8) with log/exp tables, used by the
//!   Reed–Solomon codec in the `rscode` crate.
//! * [`Gf64`] — GF(2^64) with software carry-less multiplication, used by
//!   the AGHP small-bias generator in the `smallbias` crate.
//!
//! Plus dense polynomials over GF(2^8) ([`poly::Poly256`]) for the
//! Reed–Solomon generator/locator/evaluator machinery.
//!
//! Everything is implemented from scratch (no external crates); arithmetic
//! is deliberately branch-free in the hot paths and fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gf256;
mod gf64;
pub mod poly;

pub use gf256::Gf256;
pub use gf64::Gf64;
