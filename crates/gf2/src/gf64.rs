//! GF(2^64) via software carry-less multiplication, reduced by
//! `x^64 + x^4 + x^3 + x + 1` (the lexicographically-least irreducible
//! pentanomial of degree 64, low part `0x1b`).
//!
//! This field backs the AGHP small-bias generator in the `smallbias` crate,
//! which needs fast `pow` (random access into the ε-biased string) and fast
//! sequential multiplication (streaming access).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign};

/// Low 64 bits of the reduction polynomial (the `x^64` term is implicit).
#[cfg(test)]
const POLY_LOW: u64 = 0x1b;

/// An element of GF(2^64).
///
/// # Examples
///
/// ```
/// use gf2::Gf64;
/// let a = Gf64::new(0x0123_4567_89ab_cdef);
/// assert_eq!(a * Gf64::ONE, a);
/// assert_eq!(a * a.inv(), Gf64::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf64(pub u64);

/// Carry-less multiply of two 64-bit words into a 128-bit product.
///
/// Pure-software shift/xor ladder, processing 4 bits of `b` at a time via a
/// small table of multiples of `a` — ~16 iterations instead of 64.
fn clmul(a: u64, b: u64) -> (u64, u64) {
    // Table of a * {0..15} as 65..68-bit values (hi bits spill into `hi`).
    let mut tab_lo = [0u64; 16];
    let mut tab_hi = [0u64; 16];
    for i in 1..16usize {
        // i = j ^ (1 << k) for the lowest set bit k of i.
        let k = i.trailing_zeros();
        let j = i ^ (1 << k);
        let (slo, shi) = shl128(a, 0, k);
        tab_lo[i] = tab_lo[j] ^ slo;
        tab_hi[i] = tab_hi[j] ^ shi;
    }
    let mut lo = 0u64;
    let mut hi = 0u64;
    // Process b in nibbles from the top.
    for nib in (0..16).rev() {
        // Shift accumulator left by 4.
        let (nlo, nhi) = shl128(lo, hi, 4);
        lo = nlo;
        hi = nhi;
        let idx = ((b >> (nib * 4)) & 0xf) as usize;
        lo ^= tab_lo[idx];
        hi ^= tab_hi[idx];
    }
    (lo, hi)
}

/// Shifts a 128-bit value (lo, hi) left by `s` bits (0 <= s < 64).
fn shl128(lo: u64, hi: u64, s: u32) -> (u64, u64) {
    if s == 0 {
        (lo, hi)
    } else {
        (lo << s, (hi << s) | (lo >> (64 - s)))
    }
}

/// Reduces a 128-bit carry-less product modulo `x^64 + x^4 + x^3 + x + 1`.
fn reduce(lo: u64, hi: u64) -> u64 {
    // x^64 ≡ x^4 + x^3 + x + 1 (mod p), so fold `hi` down twice: folding the
    // top 64 bits produces a value of degree < 68, whose own top 4 bits are
    // folded again.
    // hi * (x^4 + x^3 + x + 1):
    let f1 = hi ^ (hi << 1) ^ (hi << 3) ^ (hi << 4);
    // Bits shifted out of the top by the <<1/<<3/<<4 terms:
    let c1 = (hi >> 63) ^ (hi >> 61) ^ (hi >> 60);
    let f2 = c1 ^ (c1 << 1) ^ (c1 << 3) ^ (c1 << 4);
    lo ^ f1 ^ f2
}

impl Gf64 {
    /// The additive identity.
    pub const ZERO: Gf64 = Gf64(0);
    /// The multiplicative identity.
    pub const ONE: Gf64 = Gf64(1);

    /// Wraps a word as a field element.
    pub fn new(v: u64) -> Self {
        Gf64(v)
    }

    /// True if this is the zero element.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Raises `self` to the `e`-th power by square-and-multiply
    /// (with `0^0 = 1`).
    pub fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Gf64::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat: `a^(2^64 - 2)`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn inv(self) -> Self {
        assert!(!self.is_zero(), "inverse of zero in GF(2^64)");
        // 2^64 - 2 = 0xFFFF_FFFF_FFFF_FFFE
        self.pow(u64::MAX - 1)
    }

    /// GF(2)-trace-like inner product of the bit representations of two
    /// elements: parity of `popcount(a & b)`. Used by the AGHP generator,
    /// which outputs `⟨x^i, y⟩` bits.
    pub fn dot_bit(self, other: Gf64) -> bool {
        (self.0 & other.0).count_ones() & 1 == 1
    }
}

impl fmt::Debug for Gf64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf64({:#018x})", self.0)
    }
}

impl fmt::Display for Gf64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for Gf64 {
    fn from(v: u64) -> Self {
        Gf64(v)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Gf64 {
    type Output = Gf64;
    fn add(self, rhs: Gf64) -> Gf64 {
        Gf64(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf64 {
    fn add_assign(&mut self, rhs: Gf64) {
        self.0 ^= rhs.0;
    }
}

impl Mul for Gf64 {
    type Output = Gf64;
    fn mul(self, rhs: Gf64) -> Gf64 {
        let (lo, hi) = clmul(self.0, rhs.0);
        Gf64(reduce(lo, hi))
    }
}

impl MulAssign for Gf64 {
    fn mul_assign(&mut self, rhs: Gf64) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clmul_small_cases() {
        // (x + 1)(x + 1) = x^2 + 1 over GF(2)[x].
        assert_eq!(clmul(0b11, 0b11), (0b101, 0));
        // x^63 * x = x^64.
        assert_eq!(clmul(1 << 63, 0b10), (0, 1));
        assert_eq!(clmul(0, 0xdead_beef), (0, 0));
    }

    /// Bit-at-a-time reference carry-less multiply.
    fn clmul_ref(a: u64, b: u64) -> (u64, u64) {
        let mut lo = 0u64;
        let mut hi = 0u64;
        for i in 0..64 {
            if (b >> i) & 1 == 1 {
                let (slo, shi) = shl128(a, 0, i);
                lo ^= slo;
                hi ^= shi;
            }
        }
        (lo, hi)
    }

    #[test]
    fn x64_reduces_to_poly_low() {
        // x^32 * x^32 = x^64 ≡ POLY_LOW.
        let x32 = Gf64(1 << 32);
        assert_eq!(x32 * x32, Gf64(POLY_LOW));
    }

    #[test]
    fn one_is_identity() {
        let a = Gf64(0x0123_4567_89ab_cdef);
        assert_eq!(a * Gf64::ONE, a);
        assert_eq!(Gf64::ONE * a, a);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Gf64(0x9e37_79b9_7f4a_7c15);
        let mut acc = Gf64::ONE;
        for e in 0..200u64 {
            assert_eq!(a.pow(e), acc, "e={e}");
            acc *= a;
        }
    }

    #[test]
    fn fermat_order() {
        // a^(2^64 - 1) = 1 for a != 0.
        let a = Gf64(0xdead_beef_cafe_f00d);
        assert_eq!(a.pow(u64::MAX), Gf64::ONE);
    }

    proptest! {
        #[test]
        fn clmul_matches_reference(a: u64, b: u64) {
            prop_assert_eq!(clmul(a, b), clmul_ref(a, b));
        }

        #[test]
        fn mul_commutative(a: u64, b: u64) {
            prop_assert_eq!(Gf64(a) * Gf64(b), Gf64(b) * Gf64(a));
        }

        #[test]
        fn mul_associative(a: u64, b: u64, c: u64) {
            prop_assert_eq!((Gf64(a) * Gf64(b)) * Gf64(c), Gf64(a) * (Gf64(b) * Gf64(c)));
        }

        #[test]
        fn distributive(a: u64, b: u64, c: u64) {
            prop_assert_eq!(Gf64(a) * (Gf64(b) + Gf64(c)),
                            Gf64(a) * Gf64(b) + Gf64(a) * Gf64(c));
        }

        #[test]
        fn inverse_roundtrip(a in 1u64..) {
            prop_assert_eq!(Gf64(a) * Gf64(a).inv(), Gf64::ONE);
        }

        #[test]
        fn inv_is_involution(a in 1u64..) {
            prop_assert_eq!(Gf64(a).inv().inv(), Gf64(a));
        }

        #[test]
        fn frobenius_squaring_is_additive(a: u64, b: u64) {
            // Characteristic 2: x ↦ x² is a field homomorphism.
            let (a, b) = (Gf64(a), Gf64(b));
            prop_assert_eq!((a + b) * (a + b), a * a + b * b);
        }

        #[test]
        fn dot_bit_is_symmetric_and_bilinear(a: u64, b: u64, c: u64) {
            let (a, b, c) = (Gf64(a), Gf64(b), Gf64(c));
            prop_assert_eq!(a.dot_bit(b), b.dot_bit(a));
            prop_assert_eq!((a + b).dot_bit(c), a.dot_bit(c) ^ b.dot_bit(c));
        }
    }
}
